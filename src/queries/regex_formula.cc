#include "queries/regex_formula.h"

namespace strdb {

namespace {

StringFormula Translate(const Regex& regex, const std::string& var) {
  switch (regex.kind()) {
    case Regex::Kind::kEpsilon:
      return StringFormula::Lambda();
    case Regex::Kind::kChar:
      return StringFormula::Atomic(Dir::kLeft, {var},
                                   WindowFormula::CharEq(var, regex.ch()));
    case Regex::Kind::kConcat:
      return StringFormula::Concat(Translate(regex.Left(), var),
                                   Translate(regex.Right(), var));
    case Regex::Kind::kUnion:
      return StringFormula::Union(Translate(regex.Left(), var),
                                  Translate(regex.Right(), var));
    case Regex::Kind::kStar:
      return StringFormula::Star(Translate(regex.Left(), var));
  }
  return StringFormula::Lambda();
}

}  // namespace

StringFormula RegexToStringFormula(const Regex& regex,
                                   const std::string& var) {
  return StringFormula::Concat(
      Translate(regex, var),
      StringFormula::Atomic(Dir::kLeft, {var}, WindowFormula::Undef(var)));
}

Result<StringFormula> RegexMembershipFormula(const std::string& pattern,
                                             const std::string& var,
                                             const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(Regex regex, Regex::Parse(pattern, alphabet));
  return RegexToStringFormula(regex, var);
}

}  // namespace strdb
