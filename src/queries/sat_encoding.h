#ifndef STRDB_QUERIES_SAT_ENCODING_H_
#define STRDB_QUERIES_SAT_ENCODING_H_

#include <optional>
#include <string>
#include <vector>

#include "baseline/sat_solver.h"
#include "core/alphabet.h"
#include "core/result.h"
#include "fsa/fsa.h"
#include "fsa/generate.h"

namespace strdb {

// A runnable demonstration of Theorem 6.5's quantifier-limited fragment
// at the Σ^p_1 (= NP) level: propositional satisfiability expressed as
// ∃z: shape(x1, z) ∧ check(x1, z), where
//
//  * x1 encodes the CNF instance as a string,
//  * z is the candidate truth assignment in {T,F}^n,
//  * shape is a *unidirectional* 2-FSA with the limitation property
//    [x1] ↝ [z] (the fragment's "type qualifier", checkable by the
//    safety analyser), and
//  * check is a *right-restricted* 2-FSA whose single bidirectional
//    tape is z (it rewinds z once per verified literal).
//
// Substitution note (see DESIGN.md): the paper's M_k machines use binary
// variable indices for the hardness direction; this demonstration uses
// unary indices (variable i is '1'^i), which keeps exactly the
// structural properties the membership direction of the theorem needs.
//
// Encoding over SatAlphabet() = {1, T, F, p, n, ',', ';'}:
//   instance := '1'^num_vars ';' clause (';' clause)*  |  '1'^num_vars ';'
//   clause   := literal (',' literal)*
//   literal  := ('p' | 'n') '1'^i          (positive/negative variable i)

Alphabet SatAlphabet();

// Serialises a CNF instance; fails on empty clauses or variables out of
// range.
Result<std::string> EncodeCnf(const CnfInstance& cnf);

// The unidirectional shape machine: accepts (x1, z) iff x1 starts with
// a well-formed '1'^n ';' header and z ∈ {T,F}^n.
Result<Fsa> BuildAssignmentShapeMachine(const Alphabet& alphabet);

// The combined machine: shape plus "every clause has a literal
// satisfied by z" (z is scanned forward per literal and rewound, making
// it the single bidirectional tape).
Result<Fsa> BuildSatCheckMachine(const Alphabet& alphabet);

// Decides satisfiability through the alignment machinery: encodes the
// instance, fixes tape x1, and runs the check machine as a generator
// over z.  Returns a satisfying assignment or nullopt.
Result<std::optional<std::vector<bool>>> SolveSatViaAlignment(
    const CnfInstance& cnf, const GenerateOptions& options = {});

// ---------------------------------------------------------------------------
// One level up the hierarchy (Theorem 6.5 for Π^p_2): instances
// ∀ x1..x_{nf} ∃ x_{nf+1}..x_{nf+ne} . CNF, encoded as
//   '1'^nf ';' '1'^ne ';' clauses
// and decided as ∀z1 ∃z2: check(x, z1, z2) — the universal block is
// enumerated from its shape machine, the existential block searched by
// the generator, exactly mirroring the formula's quantifier structure.

struct QbfPi2Instance {
  int num_forall = 0;
  int num_exists = 0;
  // Literals index 1..num_forall for the universal block, then
  // num_forall+1..num_forall+num_exists for the existential one.
  std::vector<std::vector<int>> clauses;
};

Result<std::string> EncodeQbfPi2(const QbfPi2Instance& qbf);

// The 3-tape checker (x = instance, z1 = universal assignment, z2 =
// existential assignment).  Both assignment tapes are bidirectional —
// the evaluation layers the quantifiers outside, as the theorem's
// formula does.
Result<Fsa> BuildQbf2CheckMachine(const Alphabet& alphabet);

Result<bool> SolvePi2ViaAlignment(const QbfPi2Instance& qbf,
                                  const GenerateOptions& options = {});

// Exhaustive baseline.
bool SolvePi2BruteForce(const QbfPi2Instance& qbf);

}  // namespace strdb

#endif  // STRDB_QUERIES_SAT_ENCODING_H_
