#include "queries/grammar.h"

#include <set>

namespace strdb {

namespace {

StringFormula L(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kLeft, std::move(vars),
                               std::move(window));
}

StringFormula R(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kRight, std::move(vars),
                               std::move(window));
}

Status ValidateGrammar(const Grammar& grammar, char separator,
                       const Alphabet& alphabet) {
  auto check_char = [&](char c) -> Status {
    if (!alphabet.Contains(std::string(1, c))) {
      return Status::InvalidArgument(std::string("grammar symbol '") + c +
                                     "' not in the alphabet");
    }
    if (c == separator) {
      return Status::InvalidArgument(
          "the separator may not occur as a grammar symbol");
    }
    return Status::OK();
  };
  STRDB_RETURN_IF_ERROR(check_char(grammar.start_symbol));
  for (const GrammarRule& rule : grammar.rules) {
    if (rule.lhs.empty()) {
      return Status::InvalidArgument("grammar rules need a nonempty lhs");
    }
    for (char c : rule.lhs) STRDB_RETURN_IF_ERROR(check_char(c));
    for (char c : rule.rhs) STRDB_RETURN_IF_ERROR(check_char(c));
  }
  if (!alphabet.Contains(std::string(1, separator))) {
    return Status::InvalidArgument("separator not in the alphabet");
  }
  return Status::OK();
}

}  // namespace

namespace {

struct GrammarPieces {
  StringFormula phi1;    // structure: x2 = x3 = u > ... > S with u = x1
  StringFormula rewind;  // reset x2, x3 (bidirectional)
  StringFormula phi2;    // pairwise derivation steps (does not use x1)
};

}  // namespace

static GrammarPieces BuildGrammarPieces(const Grammar& grammar,
                                        char separator,
                                        const std::string& x1,
                                        const std::string& x2,
                                        const std::string& x3);

Result<StringFormula> GrammarDerivationFormula(const Grammar& grammar,
                                               char separator,
                                               const std::string& x1,
                                               const std::string& x2,
                                               const std::string& x3,
                                               const Alphabet& alphabet) {
  STRDB_RETURN_IF_ERROR(ValidateGrammar(grammar, separator, alphabet));
  GrammarPieces pieces = BuildGrammarPieces(grammar, separator, x1, x2, x3);
  return StringFormula::ConcatAll({std::move(pieces.phi1),
                                   std::move(pieces.rewind),
                                   std::move(pieces.phi2)});
}

static GrammarPieces BuildGrammarPieces(const Grammar& grammar,
                                        char separator,
                                        const std::string& x1,
                                        const std::string& x2,
                                        const std::string& x3) {

  // --- φ(1): x2 = x3 = v1 > v2 > ... > vn with v1 = u (= x1), vn = S.
  StringFormula common_u = StringFormula::Star(
      L({x1, x2, x3},
        WindowFormula::And(
            WindowFormula::And(WindowFormula::AllEqual({x1, x2, x3}),
                               WindowFormula::NotUndef(x1)),
            WindowFormula::NotCharEq(x1, separator))));
  StringFormula u_done = L(
      {x1, x2, x3},
      WindowFormula::And(
          WindowFormula::And(WindowFormula::Undef(x1),
                             WindowFormula::CharEq(x2, separator)),
          WindowFormula::CharEq(x3, separator)));
  StringFormula mid_step =
      L({x2, x3}, WindowFormula::And(WindowFormula::VarEq(x2, x3),
                                     WindowFormula::NotUndef(x2)));
  // Either S follows u's separator directly (n = 2) or the middle
  // segments run until the final separator before S.
  StringFormula middle = StringFormula::Union(
      StringFormula::Lambda(),
      StringFormula::Concat(
          StringFormula::Star(mid_step),
          L({x2, x3},
            WindowFormula::And(WindowFormula::CharEq(x2, separator),
                               WindowFormula::CharEq(x3, separator)))));
  StringFormula s_segment = StringFormula::Concat(
      L({x2, x3},
        WindowFormula::And(WindowFormula::CharEq(x2, grammar.start_symbol),
                           WindowFormula::CharEq(x3, grammar.start_symbol))),
      L({x2, x3}, WindowFormula::And(WindowFormula::VarEq(x2, x3),
                                     WindowFormula::Undef(x3))));
  StringFormula phi1 = StringFormula::ConcatAll(
      {std::move(common_u), std::move(u_done), std::move(middle),
       std::move(s_segment)});

  // --- (C): rewind x2 and x3 to the initial alignment.
  StringFormula rewind = StringFormula::Concat(
      StringFormula::Star(
          R({x2, x3}, WindowFormula::And(WindowFormula::VarEq(x2, x3),
                                         WindowFormula::NotUndef(x2)))),
      R({x2, x3}, WindowFormula::And(WindowFormula::VarEq(x2, x3),
                                     WindowFormula::Undef(x3))));

  // --- φ(2): with x2 a segment ahead of x3, every adjacent pair
  // satisfies v_{i+1} ⇒_G v_i via some rule application.
  // χ_r: x2 spells the lhs while x3 spells the rhs.
  std::vector<StringFormula> rule_formulas;
  for (const GrammarRule& rule : grammar.rules) {
    std::vector<StringFormula> steps;
    for (char c : rule.lhs) {
      steps.push_back(L({x2}, WindowFormula::CharEq(x2, c)));
    }
    for (char c : rule.rhs) {
      steps.push_back(L({x3}, WindowFormula::CharEq(x3, c)));
    }
    rule_formulas.push_back(StringFormula::ConcatAll(std::move(steps)));
  }
  StringFormula chi_rules = StringFormula::UnionAll(std::move(rule_formulas));
  auto in_segment_eq = [&]() {
    return L({x2, x3},
             WindowFormula::And(
                 WindowFormula::And(WindowFormula::VarEq(x2, x3),
                                    WindowFormula::NotUndef(x2)),
                 WindowFormula::NotCharEq(x2, separator)));
  };
  StringFormula chi_g = StringFormula::ConcatAll(
      {StringFormula::Star(in_segment_eq()), std::move(chi_rules),
       StringFormula::Star(in_segment_eq())});

  StringFormula skip_first = StringFormula::Concat(
      StringFormula::Star(
          L({x2}, WindowFormula::And(WindowFormula::NotUndef(x2),
                                     WindowFormula::NotCharEq(x2, separator)))),
      L({x2}, WindowFormula::CharEq(x2, separator)));
  StringFormula both_sep = L(
      {x2, x3}, WindowFormula::And(WindowFormula::CharEq(x2, separator),
                                   WindowFormula::CharEq(x3, separator)));
  StringFormula last_pair = L(
      {x2, x3}, WindowFormula::And(WindowFormula::Undef(x2),
                                   WindowFormula::CharEq(x3, separator)));
  StringFormula phi2 = StringFormula::ConcatAll(
      {std::move(skip_first),
       StringFormula::Star(StringFormula::Concat(chi_g, std::move(both_sep))),
       chi_g, std::move(last_pair)});

  return GrammarPieces{std::move(phi1), std::move(rewind), std::move(phi2)};
}

Result<CalcFormula> GrammarLanguageQuery(const Grammar& grammar,
                                         char separator,
                                         const std::string& x1,
                                         const Alphabet& alphabet) {
  const std::string x2 = x1 + "_d2";
  const std::string x3 = x1 + "_d3";
  STRDB_ASSIGN_OR_RETURN(
      StringFormula phi,
      GrammarDerivationFormula(grammar, separator, x1, x2, x3, alphabet));
  return CalcFormula::Exists({x2, x3}, CalcFormula::Str(std::move(phi)));
}

Result<CalcFormula> GrammarLanguageQueryConjunctive(
    const Grammar& grammar, char separator, const std::string& x1,
    const Alphabet& alphabet) {
  STRDB_RETURN_IF_ERROR(ValidateGrammar(grammar, separator, alphabet));
  const std::string x2 = x1 + "_d2";
  const std::string x3 = x1 + "_d3";
  GrammarPieces pieces = BuildGrammarPieces(grammar, separator, x1, x2, x3);
  // Both conjuncts are unidirectional (the rewind piece is discarded);
  // the ∧ evaluates each from the initial alignment.
  CalcFormula body =
      CalcFormula::And(CalcFormula::Str(std::move(pieces.phi1)),
                       CalcFormula::Str(std::move(pieces.phi2)));
  return CalcFormula::Exists({x2, x3}, std::move(body));
}

Grammar TuringToBackwardGrammar(const TuringMachine& machine,
                                char grammar_start, char left_marker,
                                char visit_marker, char sweeper,
                                char snippet) {
  Grammar g;
  g.start_symbol = grammar_start;
  const char kSnippet = snippet;  // tape-snippet generator nonterminal

  // Initial rules: S → ⊦ T q T ⊨ for each seed state, with T deriving
  // arbitrary visited-tape snippets.
  for (char q : machine.states) {
    g.rules.push_back(
        {std::string(1, grammar_start),
         std::string(1, left_marker) + kSnippet + q + kSnippet +
             visit_marker});
  }
  for (char a : machine.tape_alphabet) {
    g.rules.push_back({std::string(1, kSnippet), std::string(1, a) + kSnippet});
  }
  g.rules.push_back({std::string(1, kSnippet), ""});

  // Final rules: accept when the start state sits at the left end of the
  // tape holding the input string.
  g.rules.push_back(
      {std::string(1, left_marker) + machine.start_state,
       std::string(1, sweeper)});
  for (char a : machine.input_alphabet) {
    g.rules.push_back({std::string(1, sweeper) + a,
                       std::string(1, a) + sweeper});
  }
  g.rules.push_back({std::string(1, sweeper) + visit_marker, ""});

  // Backward-simulation rules (state written left of the scanned cell).
  for (const TuringMachine::Rule& r : machine.rules) {
    if (r.move_right) {
      // q X ⊢ Y p  (head right): backward  Y p → q X.
      g.rules.push_back({std::string(1, r.write) + r.next_state,
                         std::string(1, r.state) + r.read});
      if (r.read == machine.blank) {
        // Frontier: q ⊨ ⊢ Y p ⊨ : backward  Y p ⊨ → q ⊨.
        g.rules.push_back(
            {std::string(1, r.write) + r.next_state + visit_marker,
             std::string(1, r.state) + visit_marker});
      }
    } else {
      // Z q X ⊢ p Z Y  (head left): backward  p Z Y → Z q X, ∀Z.
      for (char z : machine.tape_alphabet) {
        g.rules.push_back(
            {std::string(1, r.next_state) + z + r.write,
             std::string(1, z) + r.state + r.read});
        if (r.read == machine.blank) {
          g.rules.push_back(
              {std::string(1, r.next_state) + z + r.write + visit_marker,
               std::string(1, z) + r.state + visit_marker});
        }
      }
    }
  }
  return g;
}

}  // namespace strdb
