#include "queries/temporal.h"

namespace strdb {

namespace {

StringFormula Step(const std::vector<std::string>& vars, WindowFormula w) {
  return StringFormula::Atomic(Dir::kLeft, vars, std::move(w));
}

StringFormula StepBack(const std::vector<std::string>& vars,
                       WindowFormula w) {
  return StringFormula::Atomic(Dir::kRight, vars, std::move(w));
}

}  // namespace

StringFormula TemporalNext(const std::vector<std::string>& vars,
                           WindowFormula phi) {
  return Step(vars, std::move(phi));
}

StringFormula TemporalUntil(const std::vector<std::string>& vars,
                            WindowFormula phi, WindowFormula psi) {
  return StringFormula::Concat(
      StringFormula::Star(Step(vars, std::move(phi))),
      Step(vars, std::move(psi)));
}

StringFormula TemporalEventually(const std::vector<std::string>& vars,
                                 WindowFormula phi) {
  return TemporalUntil(vars, WindowFormula::True(), std::move(phi));
}

StringFormula TemporalHenceforth(const std::vector<std::string>& vars,
                                 WindowFormula phi) {
  return StringFormula::Concat(
      StringFormula::Star(Step(vars, std::move(phi))),
      Step(vars, WindowFormula::AllUndef(vars)));
}

StringFormula TemporalSince(const std::vector<std::string>& vars,
                            WindowFormula phi, WindowFormula psi) {
  return StringFormula::Concat(
      StringFormula::Star(StepBack(vars, std::move(phi))),
      StepBack(vars, std::move(psi)));
}

StringFormula TemporalOccursIn(const std::string& x, const std::string& y) {
  // eventually along y (x = y along x,y until x = ε): the outer
  // modality contributes the positioning loop ([y]l ⊤)*, the inner
  // until matches x against y until x is exhausted.
  return StringFormula::Concat(
      StringFormula::Star(Step({y}, WindowFormula::True())),
      TemporalUntil({x, y}, WindowFormula::VarEq(x, y),
                    WindowFormula::Undef(x)));
}

}  // namespace strdb
