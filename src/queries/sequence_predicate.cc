#include "queries/sequence_predicate.h"

namespace strdb {

namespace {

// Copies one atom from channel `ch` into the target `tgt`.
StringFormula CopyAtom(const std::string& ch, const std::string& tgt,
                       std::optional<char> separator) {
  if (!separator.has_value()) {
    // One character, which must exist.
    return StringFormula::Atomic(
        Dir::kLeft, {ch, tgt},
        WindowFormula::And(WindowFormula::VarEq(tgt, ch),
                           WindowFormula::NotUndef(ch)));
  }
  // ([ch,tgt]l(tgt = ch ∧ ch ≠ sep))* . [ch,tgt]l(tgt = ch = sep):
  // copy the segment and its terminator.
  return StringFormula::Concat(
      StringFormula::Star(StringFormula::Atomic(
          Dir::kLeft, {ch, tgt},
          WindowFormula::And(WindowFormula::VarEq(tgt, ch),
                             WindowFormula::NotCharEq(ch, *separator)))),
      StringFormula::Atomic(
          Dir::kLeft, {ch, tgt},
          WindowFormula::And(WindowFormula::VarEq(tgt, ch),
                             WindowFormula::CharEq(ch, *separator))));
}

Result<StringFormula> Translate(const Regex& pattern,
                                const std::vector<std::string>& vars,
                                std::optional<char> separator) {
  switch (pattern.kind()) {
    case Regex::Kind::kEpsilon:
      return StringFormula::Lambda();
    case Regex::Kind::kChar: {
      int channel = pattern.ch() - '1';
      if (channel < 0 || channel + 1 >= static_cast<int>(vars.size())) {
        return Status::InvalidArgument(
            std::string("pattern symbol '") + pattern.ch() +
            "' does not name a channel");
      }
      return CopyAtom(vars[static_cast<size_t>(channel)], vars.back(),
                      separator);
    }
    case Regex::Kind::kConcat: {
      STRDB_ASSIGN_OR_RETURN(StringFormula l,
                             Translate(pattern.Left(), vars, separator));
      STRDB_ASSIGN_OR_RETURN(StringFormula r,
                             Translate(pattern.Right(), vars, separator));
      return StringFormula::Concat(std::move(l), std::move(r));
    }
    case Regex::Kind::kUnion: {
      STRDB_ASSIGN_OR_RETURN(StringFormula l,
                             Translate(pattern.Left(), vars, separator));
      STRDB_ASSIGN_OR_RETURN(StringFormula r,
                             Translate(pattern.Right(), vars, separator));
      return StringFormula::Union(std::move(l), std::move(r));
    }
    case Regex::Kind::kStar: {
      STRDB_ASSIGN_OR_RETURN(StringFormula inner,
                             Translate(pattern.Left(), vars, separator));
      return StringFormula::Star(std::move(inner));
    }
  }
  return Status::Internal("unknown regex node");
}

}  // namespace

Result<StringFormula> SequencePredicateFormula(
    const Regex& pattern, const std::vector<std::string>& vars,
    std::optional<char> separator) {
  if (vars.size() < 2) {
    return Status::InvalidArgument(
        "need at least one channel and the target variable");
  }
  STRDB_ASSIGN_OR_RETURN(StringFormula body,
                         Translate(pattern, vars, separator));
  // Final exhaustion check across all channels and the target (the
  // Theorem 6.4 construction's [x1..xn+1]l(x1 = ... = xn+1 = ε)).
  WindowFormula done = WindowFormula::And(
      WindowFormula::AllEqual(vars), WindowFormula::Undef(vars.back()));
  return StringFormula::Concat(
      std::move(body),
      StringFormula::Atomic(Dir::kLeft, vars, std::move(done)));
}

Result<StringFormula> SequencePredicateFormula(
    const std::string& pattern, const std::vector<std::string>& vars,
    std::optional<char> separator) {
  if (vars.size() < 2 || vars.size() > 10) {
    return Status::InvalidArgument("supports 1 to 9 channels");
  }
  std::string digits;
  for (size_t i = 1; i < vars.size(); ++i) {
    digits.push_back(static_cast<char>('0' + i));
  }
  STRDB_ASSIGN_OR_RETURN(Alphabet channel_alphabet,
                         Alphabet::Create(digits + "%"));
  // '%' is only present to satisfy the two-character minimum for
  // single-channel patterns; it never occurs in the pattern itself.
  STRDB_ASSIGN_OR_RETURN(Regex regex,
                         Regex::Parse(pattern, channel_alphabet));
  return SequencePredicateFormula(regex, vars, separator);
}

}  // namespace strdb
