#ifndef STRDB_QUERIES_TEMPORAL_H_
#define STRDB_QUERIES_TEMPORAL_H_

#include <string>
#include <vector>

#include "strform/string_formula.h"

namespace strdb {

// The temporal-logic reading of transposes (§6): a left transpose is a
// step into the future of the mentioned rows, a right transpose into
// their past.  These build the paper's derived modalities.

// next along x1..xk φ  ≡  [x1..xk]l φ.
StringFormula TemporalNext(const std::vector<std::string>& vars,
                           WindowFormula phi);

// φ along x1..xk until ψ  ≡  ([x1..xk]l φ)* . ([x1..xk]l ψ).
StringFormula TemporalUntil(const std::vector<std::string>& vars,
                            WindowFormula phi, WindowFormula psi);

// eventually along x1..xk φ  ≡  ([x1..xk]l ⊤)* . ([x1..xk]l φ).
StringFormula TemporalEventually(const std::vector<std::string>& vars,
                                 WindowFormula phi);

// henceforth along x1..xk φ  ≡  ([x1..xk]l φ)* . [x1..xk]l(x1=..=xk=ε).
StringFormula TemporalHenceforth(const std::vector<std::string>& vars,
                                 WindowFormula phi);

// φ along x1..xk since ψ  ≡  ([x1..xk]r φ)* . ([x1..xk]r ψ).
StringFormula TemporalSince(const std::vector<std::string>& vars,
                            WindowFormula phi, WindowFormula psi);

// The paper's showcase: "x occurs in y" as
// eventually along y (x = y along x,y until x = ε).
StringFormula TemporalOccursIn(const std::string& x, const std::string& y);

}  // namespace strdb

#endif  // STRDB_QUERIES_TEMPORAL_H_
