#include "queries/lba.h"

#include <algorithm>
#include <set>

namespace strdb {

namespace {

StringFormula L(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kLeft, std::move(vars),
                               std::move(window));
}

StringFormula R(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kRight, std::move(vars),
                               std::move(window));
}

}  // namespace

Result<StringFormula> LbaAcceptanceFormula(const Lba& machine,
                                           const std::string& input,
                                           const std::string& var,
                                           char left_marker,
                                           char right_marker,
                                           const Alphabet& alphabet) {
  // Validation: all characters distinct and inside the alphabet.
  std::set<char> seen;
  auto check = [&](char c, const char* what) -> Status {
    if (!alphabet.Contains(std::string(1, c))) {
      return Status::InvalidArgument(std::string(what) + " '" + c +
                                     "' not in the alphabet");
    }
    return Status::OK();
  };
  STRDB_RETURN_IF_ERROR(check(left_marker, "marker"));
  STRDB_RETURN_IF_ERROR(check(right_marker, "marker"));
  for (char q : machine.states) {
    STRDB_RETURN_IF_ERROR(check(q, "state"));
    if (!seen.insert(q).second) {
      return Status::InvalidArgument("duplicate state character");
    }
  }
  for (char a : machine.tape_alphabet) {
    STRDB_RETURN_IF_ERROR(check(a, "tape symbol"));
    if (seen.count(a) > 0) {
      return Status::InvalidArgument(
          "tape symbols and states must be distinct");
    }
  }
  for (char c : input) {
    if (std::find(machine.tape_alphabet.begin(), machine.tape_alphabet.end(),
                  c) == machine.tape_alphabet.end()) {
      return Status::InvalidArgument("input leaves the tape alphabet");
    }
  }
  if (input.empty()) {
    return Status::InvalidArgument("LBA inputs must be nonempty");
  }

  const int n = static_cast<int>(input.size());
  const int config_len = n + 3;  // ⊦ + state + n cells + ⊨

  // ψ(a, b): window holds a, the same column of the next configuration
  // holds b, and the window ends one right of a (the paper's device).
  auto psi = [&](char a, char b) {
    std::vector<StringFormula> parts;
    parts.push_back(L({}, WindowFormula::CharEq(var, a)));
    parts.push_back(StringFormula::Power(
        L({var}, WindowFormula::NotUndef(var)), config_len - 1));
    parts.push_back(L({var}, WindowFormula::CharEq(var, b)));
    parts.push_back(StringFormula::Power(
        R({var}, WindowFormula::True()), config_len - 1));
    return StringFormula::ConcatAll(std::move(parts));
  };

  // χ'': any character copied unchanged into the next configuration.
  std::vector<StringFormula> copies;
  std::vector<char> all_chars;
  for (char q : machine.states) all_chars.push_back(q);
  for (char a : machine.tape_alphabet) all_chars.push_back(a);
  for (char c : all_chars) copies.push_back(psi(c, c));
  StringFormula chi_copy = StringFormula::UnionAll(std::move(copies));

  // χ_r per transition rule.
  std::vector<StringFormula> rule_formulas;
  for (const Lba::Rule& r : machine.rules) {
    if (r.move_right) {
      // q X  ⊢  Y p.
      rule_formulas.push_back(StringFormula::Concat(
          psi(r.state, r.write), psi(r.read, r.next_state)));
    } else {
      // Z q X  ⊢  p Z Y for every tape symbol Z.
      for (char z : machine.tape_alphabet) {
        rule_formulas.push_back(StringFormula::ConcatAll(
            {psi(z, r.next_state), psi(r.state, z), psi(r.read, r.write)}));
      }
    }
  }
  if (rule_formulas.empty()) {
    rule_formulas.push_back(StringFormula::Atomic(
        Dir::kLeft, {}, WindowFormula::Not(WindowFormula::True())));
  }
  StringFormula chi_rules = StringFormula::UnionAll(std::move(rule_formulas));

  // One derivation step: boundary markers copied, exactly one rule
  // applied somewhere in between, everything else copied.
  StringFormula step = StringFormula::ConcatAll(
      {psi(left_marker, left_marker), StringFormula::Star(chi_copy),
       std::move(chi_rules), StringFormula::Star(chi_copy),
       psi(right_marker, right_marker)});

  // Initial configuration: ⊦ p0 c1 .. cn ⊨ spelled out.
  std::vector<StringFormula> head;
  head.push_back(L({var}, WindowFormula::CharEq(var, left_marker)));
  head.push_back(L({var}, WindowFormula::CharEq(var, machine.start_state)));
  for (char c : input) {
    head.push_back(L({var}, WindowFormula::CharEq(var, c)));
  }
  head.push_back(L({var}, WindowFormula::CharEq(var, right_marker)));
  StringFormula initial = StringFormula::ConcatAll(std::move(head));

  // Rewind to the start of the first configuration before stepping.
  StringFormula rewind = StringFormula::Concat(
      StringFormula::Star(R({var}, WindowFormula::NotUndef(var))),
      R({var}, WindowFormula::Undef(var)));

  // Final configuration: exactly one configuration remains, it contains
  // the accept state, and the string ends with its ⊨.
  WindowFormula interior = WindowFormula::And(
      WindowFormula::And(WindowFormula::NotCharEq(var, left_marker),
                         WindowFormula::NotCharEq(var, right_marker)),
      WindowFormula::NotUndef(var));
  StringFormula last = StringFormula::ConcatAll(
      {L({}, WindowFormula::CharEq(var, left_marker)),
       StringFormula::Star(L({var}, interior)),
       L({var}, WindowFormula::CharEq(var, machine.accept_state)),
       StringFormula::Star(L({var}, interior)),
       L({var}, WindowFormula::CharEq(var, right_marker)),
       L({var}, WindowFormula::Undef(var))});

  // Position the window on the first configuration's ⊦ (the rewind
  // parked it one column to the left).
  StringFormula onto_first =
      L({var}, WindowFormula::CharEq(var, left_marker));

  return StringFormula::ConcatAll(
      {std::move(initial), std::move(rewind), std::move(onto_first),
       StringFormula::Star(std::move(step)), std::move(last)});
}

}  // namespace strdb
