#ifndef STRDB_QUERIES_LBA_H_
#define STRDB_QUERIES_LBA_H_

#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"
#include "strform/string_formula.h"

namespace strdb {

// A linear bounded automaton over single-character states and symbols,
// for the Theorem 6.6 reduction (PSPACE-complete expression
// complexity).  The head works on the input cells only: rules never
// scan the endmarkers, and the machine must not move left from cell 1
// nor right from cell n (such rules are simply inapplicable there).
struct Lba {
  char start_state = 'P';
  char accept_state = 'A';
  std::vector<char> states;         // includes start and accept
  std::vector<char> tape_alphabet;  // working symbols (input ⊆ tape)
  struct Rule {
    char state = 0;
    char read = 0;
    char next_state = 0;
    char write = 0;
    bool move_right = true;
  };
  std::vector<Rule> rules;
};

// Theorem 6.6: builds the right-restricted string formula φ on the one
// variable `var` that is satisfiable iff `machine` accepts `input`
// (i.e. reaches its accept state).  The witness value of `var` encodes
// an accepting computation as a concatenation of configurations
//   ⊦ w1 .. w_{i-1} q w_i .. w_n ⊨           (state before scanned cell)
// each of length |input|+3, checked pairwise column by column with the
// slide-ahead/slide-back device ψ(n,a,b) of the paper's proof.  Formula
// size is O(|input| · |rules| · |Γ|), matching the theorem's bound.
//
// `left_marker` and `right_marker` are the configuration delimiters ⊦
// and ⊨; they, the states and the tape symbols must all be distinct
// members of `alphabet`.
Result<StringFormula> LbaAcceptanceFormula(const Lba& machine,
                                           const std::string& input,
                                           const std::string& var,
                                           char left_marker,
                                           char right_marker,
                                           const Alphabet& alphabet);

}  // namespace strdb

#endif  // STRDB_QUERIES_LBA_H_
