#include "queries/examples.h"

#include "fsa/accept.h"
#include "fsa/compile.h"

namespace strdb {

namespace {

// [vars]l(window) as a one-step StringFormula.
StringFormula L(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kLeft, std::move(vars),
                               std::move(window));
}

StringFormula R(std::vector<std::string> vars, WindowFormula window) {
  return StringFormula::Atomic(Dir::kRight, std::move(vars),
                               std::move(window));
}

}  // namespace

Result<StringFormula> SpellsConstant(const std::string& var,
                                     const std::string& word,
                                     const Alphabet& alphabet) {
  if (!alphabet.Contains(word)) {
    return Status::InvalidArgument("constant leaves the alphabet");
  }
  std::vector<StringFormula> steps;
  for (char c : word) {
    steps.push_back(L({var}, WindowFormula::CharEq(var, c)));
  }
  steps.push_back(L({var}, WindowFormula::Undef(var)));
  return StringFormula::ConcatAll(std::move(steps));
}

StringFormula StringEqualityFormula(const std::string& x,
                                    const std::string& y) {
  // ([x,y]l x=y)* . [x,y]l(x = y = ε).
  return StringFormula::Concat(
      StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
      L({x, y}, WindowFormula::And(WindowFormula::VarEq(x, y),
                                   WindowFormula::Undef(y))));
}

StringFormula ConcatenationFormula(const std::string& x, const std::string& y,
                                   const std::string& z) {
  // ([x,y]l x=y)* . ([x,z]l x=z)* . [x,y,z]l(x = y = z = ε).
  return StringFormula::ConcatAll(
      {StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       StringFormula::Star(L({x, z}, WindowFormula::VarEq(x, z))),
       L({x, y, z}, WindowFormula::And(WindowFormula::AllEqual({x, y, z}),
                                       WindowFormula::Undef(z)))});
}

StringFormula ManifoldFormula(const std::string& x, const std::string& y) {
  // (([x,y]l x=y)* . [y]l(y=ε) . ([y]r y≠ε)* . [y]r(y=ε))* .
  // ([x,y]l x=y)* . [x,y]l(x = y = ε).
  StringFormula round = StringFormula::ConcatAll(
      {StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       L({y}, WindowFormula::Undef(y)),
       StringFormula::Star(R({y}, WindowFormula::NotUndef(y))),
       R({y}, WindowFormula::Undef(y))});
  return StringFormula::ConcatAll(
      {StringFormula::Star(std::move(round)),
       StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       L({x, y}, WindowFormula::And(WindowFormula::VarEq(x, y),
                                    WindowFormula::Undef(y)))});
}

StringFormula ShuffleFormula(const std::string& x, const std::string& y,
                             const std::string& z) {
  // (([x,y]l x=y) + ([x,z]l x=z))* . [x,y,z]l(x = y = z = ε).
  return StringFormula::Concat(
      StringFormula::Star(
          StringFormula::Union(L({x, y}, WindowFormula::VarEq(x, y)),
                               L({x, z}, WindowFormula::VarEq(x, z)))),
      L({x, y, z}, WindowFormula::And(WindowFormula::AllEqual({x, y, z}),
                                      WindowFormula::Undef(z))));
}

StringFormula OccursInFormula(const std::string& x, const std::string& y) {
  // ([y]l ⊤)* . ([x,y]l x=y)* . [x]l(x=ε).
  return StringFormula::ConcatAll(
      {StringFormula::Star(L({y}, WindowFormula::True())),
       StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       L({x}, WindowFormula::Undef(x))});
}

StringFormula EditDistanceAtMostFormula(const std::string& x,
                                        const std::string& y, int k) {
  // ([x,y]l x=y)* . (([x,y]l ⊤ + [x]l ⊤ + [y]l ⊤) . ([x,y]l x=y)*)^k .
  // [x,y]l(x = y = ε).
  StringFormula match = StringFormula::Star(L({x, y},
                                              WindowFormula::VarEq(x, y)));
  StringFormula edit = StringFormula::UnionAll(
      {L({x, y}, WindowFormula::True()), L({x}, WindowFormula::True()),
       L({y}, WindowFormula::True())});
  StringFormula block =
      StringFormula::Concat(std::move(edit), match);
  return StringFormula::ConcatAll(
      {match, StringFormula::Power(std::move(block), k),
       L({x, y}, WindowFormula::And(WindowFormula::VarEq(x, y),
                                    WindowFormula::Undef(y)))});
}

StringFormula EditDistanceCounterFormula(const std::string& x,
                                         const std::string& y,
                                         const std::string& z, char mark) {
  // ([x,y]l x=y)* .
  // (([x,y,z]l z=mark + [x,z]l z=mark + [y,z]l z=mark) . ([x,y]l x=y)*)* .
  // [x,y,z]l(x = y = z = ε).
  StringFormula match = StringFormula::Star(L({x, y},
                                              WindowFormula::VarEq(x, y)));
  StringFormula edit = StringFormula::UnionAll(
      {L({x, y, z}, WindowFormula::CharEq(z, mark)),
       L({x, z}, WindowFormula::CharEq(z, mark)),
       L({y, z}, WindowFormula::CharEq(z, mark))});
  StringFormula block = StringFormula::Concat(std::move(edit), match);
  return StringFormula::ConcatAll(
      {match, StringFormula::Star(std::move(block)),
       L({x, y, z}, WindowFormula::And(WindowFormula::AllEqual({x, y, z}),
                                       WindowFormula::Undef(z)))});
}

Result<int> EditDistanceViaAlignment(const std::string& x,
                                     const std::string& y,
                                     const Alphabet& alphabet, int cap) {
  const char mark = alphabet.CharOf(0);
  StringFormula counter = EditDistanceCounterFormula("u", "v", "w", mark);
  STRDB_ASSIGN_OR_RETURN(
      Fsa fsa, CompileStringFormula(counter, alphabet, {"u", "v", "w"}));
  std::string z;
  for (int j = 0; j <= cap; ++j) {
    STRDB_ASSIGN_OR_RETURN(bool within, Accepts(fsa, {x, y, z}));
    if (within) return j;
    z += mark;
  }
  return Status::NotFound("edit distance exceeds the probe cap " +
                          std::to_string(cap));
}

Result<CalcFormula> AXbXaQuery(const std::string& x, const std::string& y,
                               const std::string& z,
                               const Alphabet& alphabet) {
  if (alphabet.size() < 2) {
    return Status::InvalidArgument("need at least characters a and b");
  }
  const char a = alphabet.CharOf(0);
  const char b = alphabet.CharOf(1);
  // [x]l(x=a) . ([x,y]l x=y)* . [x,y]l(x=b ∧ y=ε) .
  // ([x,z]l x=z)* . [x,z]l(x=a ∧ z=ε) . [x]l(x=ε).
  StringFormula shape = StringFormula::ConcatAll(
      {L({x}, WindowFormula::CharEq(x, a)),
       StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       L({x, y}, WindowFormula::And(WindowFormula::CharEq(x, b),
                                    WindowFormula::Undef(y))),
       StringFormula::Star(L({x, z}, WindowFormula::VarEq(x, z))),
       L({x, z}, WindowFormula::And(WindowFormula::CharEq(x, a),
                                    WindowFormula::Undef(z))),
       L({x}, WindowFormula::Undef(x))});
  return CalcFormula::Exists(
      {y, z},
      CalcFormula::And(CalcFormula::Str(StringEqualityFormula(y, z)),
                       CalcFormula::Str(std::move(shape))));
}

Result<CalcFormula> EqualAsAndBsQuery(const std::string& x,
                                      const std::string& y,
                                      const std::string& z,
                                      const Alphabet& alphabet) {
  if (alphabet.size() < 2) {
    return Status::InvalidArgument("need at least characters a and b");
  }
  const char a = alphabet.CharOf(0);
  const char b = alphabet.CharOf(1);
  // (([x,y]l(x=a ∧ y≠ε)) + ([x,z]l(x=b ∧ z≠ε)))* . [x,y,z]l(x=y=z=ε)
  StringFormula count = StringFormula::Concat(
      StringFormula::Star(StringFormula::Union(
          L({x, y}, WindowFormula::And(WindowFormula::CharEq(x, a),
                                       WindowFormula::NotUndef(y))),
          L({x, z}, WindowFormula::And(WindowFormula::CharEq(x, b),
                                       WindowFormula::NotUndef(z))))),
      L({x, y, z}, WindowFormula::And(WindowFormula::AllEqual({x, y, z}),
                                      WindowFormula::Undef(z))));
  // ([y,z]l(y≠ε ∧ z≠ε))* . [y,z]l(y = z = ε): equal lengths.
  StringFormula equal_len = StringFormula::Concat(
      StringFormula::Star(
          L({y, z}, WindowFormula::And(WindowFormula::NotUndef(y),
                                       WindowFormula::NotUndef(z)))),
      L({y, z}, WindowFormula::And(WindowFormula::VarEq(y, z),
                                   WindowFormula::Undef(z))));
  return CalcFormula::Exists(
      {y, z}, CalcFormula::And(CalcFormula::Str(std::move(count)),
                               CalcFormula::Str(std::move(equal_len))));
}

Result<CalcFormula> AnBnCnQuery(const std::string& x, const std::string& y,
                                const Alphabet& alphabet) {
  if (alphabet.size() < 3) {
    return Status::InvalidArgument("need at least characters a, b, c");
  }
  const char a = alphabet.CharOf(0);
  const char b = alphabet.CharOf(1);
  const char c = alphabet.CharOf(2);
  // ([x,y]l(x=a ∧ y≠ε))* . [y]l(y=ε) .
  // ([x]l ⊤ . [y]r(x=b ∧ y≠ε))* . [y]r(y=ε) .
  // ([x,y]l(x=c ∧ y≠ε))* . [x,y]l(x = y = ε).
  StringFormula body = StringFormula::ConcatAll(
      {StringFormula::Star(
           L({x, y}, WindowFormula::And(WindowFormula::CharEq(x, a),
                                        WindowFormula::NotUndef(y)))),
       L({y}, WindowFormula::Undef(y)),
       StringFormula::Star(StringFormula::Concat(
           L({x}, WindowFormula::True()),
           R({y}, WindowFormula::And(WindowFormula::CharEq(x, b),
                                     WindowFormula::NotUndef(y))))),
       R({y}, WindowFormula::Undef(y)),
       StringFormula::Star(
           L({x, y}, WindowFormula::And(WindowFormula::CharEq(x, c),
                                        WindowFormula::NotUndef(y)))),
       L({x, y}, WindowFormula::And(WindowFormula::VarEq(x, y),
                                    WindowFormula::Undef(y)))});
  return CalcFormula::Exists({y}, CalcFormula::Str(std::move(body)));
}

Result<CalcFormula> TranslationHalvesQuery(const std::string& x,
                                           const std::string& y,
                                           const std::string& z,
                                           const Alphabet& alphabet) {
  if (alphabet.size() < 2) {
    return Status::InvalidArgument("need at least characters a and b");
  }
  const char a = alphabet.CharOf(0);
  const char b = alphabet.CharOf(1);
  // ([x,y]l x=y)* . [y]l(y=ε) . ([x,z]l x=z)* . [z]l(z=ε) — plus the
  // x-exhaustion check the paper's text omits.
  StringFormula split = StringFormula::ConcatAll(
      {StringFormula::Star(L({x, y}, WindowFormula::VarEq(x, y))),
       L({y}, WindowFormula::Undef(y)),
       StringFormula::Star(L({x, z}, WindowFormula::VarEq(x, z))),
       L({x, z}, WindowFormula::And(WindowFormula::Undef(x),
                                    WindowFormula::Undef(z)))});
  // ([y,z]l((y=a ∧ z=b) ∨ (y=b ∧ z=a)))* . [y,z]l(y = z = ε).
  StringFormula translated = StringFormula::Concat(
      StringFormula::Star(L(
          {y, z},
          WindowFormula::Or(
              WindowFormula::And(WindowFormula::CharEq(y, a),
                                 WindowFormula::CharEq(z, b)),
              WindowFormula::And(WindowFormula::CharEq(y, b),
                                 WindowFormula::CharEq(z, a))))),
      L({y, z}, WindowFormula::And(WindowFormula::VarEq(y, z),
                                   WindowFormula::Undef(z))));
  return CalcFormula::Exists(
      {y, z}, CalcFormula::And(CalcFormula::Str(std::move(split)),
                               CalcFormula::Str(std::move(translated))));
}

}  // namespace strdb
