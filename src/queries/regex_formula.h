#ifndef STRDB_QUERIES_REGEX_FORMULA_H_
#define STRDB_QUERIES_REGEX_FORMULA_H_

#include <string>

#include "baseline/regex.h"
#include "core/result.h"
#include "strform/string_formula.h"

namespace strdb {

// Theorem 6.1 (⊆ direction): translates a regular expression into a
// unidirectional one-variable string formula defining the same
// language: every character c becomes [var]l(var = 'c') and the result
// is capped with [var]l(var = ε) so the whole string must be consumed.
StringFormula RegexToStringFormula(const Regex& regex,
                                   const std::string& var);

// Convenience: parse `pattern` (see Regex syntax) and translate.
Result<StringFormula> RegexMembershipFormula(const std::string& pattern,
                                             const std::string& var,
                                             const Alphabet& alphabet);

}  // namespace strdb

#endif  // STRDB_QUERIES_REGEX_FORMULA_H_
