#include "queries/sat_encoding.h"

#include <cstdlib>

namespace strdb {

Alphabet SatAlphabet() {
  Result<Alphabet> a = Alphabet::Create("1TFpn,;");
  // The literal above is well-formed by construction.
  return a.value_or(Alphabet::Binary());
}

Result<std::string> EncodeCnf(const CnfInstance& cnf) {
  if (cnf.num_vars <= 0) {
    return Status::InvalidArgument("need at least one variable");
  }
  std::string out(static_cast<size_t>(cnf.num_vars), '1');
  out += ';';
  for (size_t ci = 0; ci < cnf.clauses.size(); ++ci) {
    const std::vector<int>& clause = cnf.clauses[ci];
    if (clause.empty()) {
      return Status::InvalidArgument("empty clause is unsatisfiable");
    }
    if (ci > 0) out += ';';
    for (size_t li = 0; li < clause.size(); ++li) {
      int literal = clause[li];
      int var = std::abs(literal);
      if (var < 1 || var > cnf.num_vars) {
        return Status::OutOfRange("literal variable out of range");
      }
      if (li > 0) out += ',';
      out += (literal > 0) ? 'p' : 'n';
      out.append(static_cast<size_t>(var), '1');
    }
  }
  return out;
}

namespace {

// Symbol shorthand for the machines below.
struct SatSyms {
  Sym one, t, f, pos, neg, comma, semi;
};

Result<SatSyms> LookupSyms(const Alphabet& alphabet) {
  SatSyms s;
  STRDB_ASSIGN_OR_RETURN(s.one, alphabet.SymOf('1'));
  STRDB_ASSIGN_OR_RETURN(s.t, alphabet.SymOf('T'));
  STRDB_ASSIGN_OR_RETURN(s.f, alphabet.SymOf('F'));
  STRDB_ASSIGN_OR_RETURN(s.pos, alphabet.SymOf('p'));
  STRDB_ASSIGN_OR_RETURN(s.neg, alphabet.SymOf('n'));
  STRDB_ASSIGN_OR_RETURN(s.comma, alphabet.SymOf(','));
  STRDB_ASSIGN_OR_RETURN(s.semi, alphabet.SymOf(';'));
  return s;
}

Status Add(Fsa* fsa, int from, int to, Sym x, Sym z, Move dx, Move dz) {
  Transition t;
  t.from = from;
  t.to = to;
  t.read = {x, z};
  t.move = {dx, dz};
  return fsa->AddTransition(std::move(t));
}

}  // namespace

Result<Fsa> BuildAssignmentShapeMachine(const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(SatSyms s, LookupSyms(alphabet));
  Fsa fsa(alphabet, 2);
  const int start = fsa.start();
  const int header = fsa.AddState();
  const int rest = fsa.AddState();
  const int accept = fsa.AddState();
  fsa.SetFinal(accept);

  STRDB_RETURN_IF_ERROR(Add(&fsa, start, header, kLeftEnd, kLeftEnd, +1, +1));
  // One z symbol per header '1'.
  STRDB_RETURN_IF_ERROR(Add(&fsa, header, header, s.one, s.t, +1, +1));
  STRDB_RETURN_IF_ERROR(Add(&fsa, header, header, s.one, s.f, +1, +1));
  // Header ends exactly when z does.
  STRDB_RETURN_IF_ERROR(Add(&fsa, header, rest, s.semi, kRightEnd, +1, 0));
  // The remainder of the instance is skipped blindly.
  for (Sym c : {s.one, s.t, s.f, s.pos, s.neg, s.comma, s.semi}) {
    STRDB_RETURN_IF_ERROR(Add(&fsa, rest, rest, c, kRightEnd, +1, 0));
  }
  STRDB_RETURN_IF_ERROR(
      Add(&fsa, rest, accept, kRightEnd, kRightEnd, 0, 0));
  return fsa;
}

Result<Fsa> BuildSatCheckMachine(const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(SatSyms s, LookupSyms(alphabet));
  Fsa fsa(alphabet, 2);
  const int start = fsa.start();
  const int header = fsa.AddState();
  const int rewind0 = fsa.AddState();  // rewind z after the header pass
  const int literal = fsa.AddState();  // clause/literal choice point, z at ⊢
  const int skip = fsa.AddState();     // skipping an unverified literal
  const int verify_pos = fsa.AddState();
  const int verify_neg = fsa.AddState();
  const int done = fsa.AddState();     // clause satisfied: skip its rest
  const int rewind = fsa.AddState();   // rewind z before the next clause
  const int accept = fsa.AddState();
  fsa.SetFinal(accept);

  const std::vector<Sym> kXChars = {s.one, s.t,     s.f,   s.pos,
                                    s.neg, s.comma, s.semi};
  const std::vector<Sym> kZValues = {s.t, s.f};

  // Header: z must be exactly {T,F}^n for the declared n.
  STRDB_RETURN_IF_ERROR(Add(&fsa, start, header, kLeftEnd, kLeftEnd, +1, +1));
  for (Sym z : kZValues) {
    STRDB_RETURN_IF_ERROR(Add(&fsa, header, header, s.one, z, +1, +1));
  }
  STRDB_RETURN_IF_ERROR(Add(&fsa, header, rewind0, s.semi, kRightEnd, +1, 0));
  // Rewind z to ⊢ (x waits on the first clause character or ⊣).  The
  // first backward step leaves z's right endmarker.
  std::vector<Sym> x_or_end = kXChars;
  x_or_end.push_back(kRightEnd);
  for (Sym x : x_or_end) {
    for (Sym z : {s.t, s.f, static_cast<Sym>(kRightEnd)}) {
      STRDB_RETURN_IF_ERROR(Add(&fsa, rewind0, rewind0, x, z, 0, -1));
    }
    STRDB_RETURN_IF_ERROR(Add(&fsa, rewind0, literal, x, kLeftEnd, 0, 0));
  }

  // Literal choice point: verify this literal or skip it.
  STRDB_RETURN_IF_ERROR(Add(&fsa, literal, verify_pos, s.pos, kLeftEnd, +1, 0));
  STRDB_RETURN_IF_ERROR(Add(&fsa, literal, verify_neg, s.neg, kLeftEnd, +1, 0));
  STRDB_RETURN_IF_ERROR(Add(&fsa, literal, skip, s.pos, kLeftEnd, +1, 0));
  STRDB_RETURN_IF_ERROR(Add(&fsa, literal, skip, s.neg, kLeftEnd, +1, 0));
  // An instance with no clauses at all accepts immediately.
  STRDB_RETURN_IF_ERROR(
      Add(&fsa, literal, accept, kRightEnd, kLeftEnd, 0, 0));

  // Skip a literal: consume its '1's; a ',' returns to the choice point.
  // (Skipping into ';' or ⊣ would leave the clause unverified: no
  // transition, the branch dies.)
  STRDB_RETURN_IF_ERROR(Add(&fsa, skip, skip, s.one, kLeftEnd, +1, 0));
  STRDB_RETURN_IF_ERROR(Add(&fsa, skip, literal, s.comma, kLeftEnd, +1, 0));

  // Verify: advance z one step per index '1', then the literal ends and
  // z's window holds the variable's value.
  for (int polarity = 0; polarity < 2; ++polarity) {
    const int verify = polarity == 0 ? verify_pos : verify_neg;
    const Sym want = polarity == 0 ? s.t : s.f;
    for (Sym z : {static_cast<Sym>(kLeftEnd), s.t, s.f}) {
      STRDB_RETURN_IF_ERROR(Add(&fsa, verify, verify, s.one, z, +1, +1));
    }
    // Literal ends at ',' (more literals), ';' (next clause) or ⊣.
    STRDB_RETURN_IF_ERROR(Add(&fsa, verify, done, s.comma, want, +1, 0));
    STRDB_RETURN_IF_ERROR(Add(&fsa, verify, rewind, s.semi, want, +1, 0));
    STRDB_RETURN_IF_ERROR(Add(&fsa, verify, rewind, kRightEnd, want, 0, 0));
  }

  // Clause satisfied: blindly consume the rest of the clause.
  for (Sym x : {s.one, s.pos, s.neg, s.comma}) {
    for (Sym z : kZValues) {
      STRDB_RETURN_IF_ERROR(Add(&fsa, done, done, x, z, +1, 0));
    }
    STRDB_RETURN_IF_ERROR(Add(&fsa, done, done, x, kRightEnd, +1, 0));
  }
  for (Sym z :
       {s.t, s.f, static_cast<Sym>(kRightEnd)}) {
    STRDB_RETURN_IF_ERROR(Add(&fsa, done, rewind, s.semi, z, +1, 0));
    STRDB_RETURN_IF_ERROR(Add(&fsa, done, rewind, kRightEnd, z, 0, 0));
  }

  // Rewind z for the next clause (x already sits on its first char, or
  // on ⊣ when every clause is done).
  for (Sym x : {s.pos, s.neg, static_cast<Sym>(kRightEnd)}) {
    for (Sym z : kZValues) {
      STRDB_RETURN_IF_ERROR(Add(&fsa, rewind, rewind, x, z, 0, -1));
    }
    STRDB_RETURN_IF_ERROR(Add(&fsa, rewind, literal, x, kLeftEnd, 0, 0));
  }
  return fsa;
}

Result<std::string> EncodeQbfPi2(const QbfPi2Instance& qbf) {
  if (qbf.num_forall <= 0 || qbf.num_exists <= 0) {
    return Status::InvalidArgument("both quantifier blocks must be nonempty");
  }
  std::string out(static_cast<size_t>(qbf.num_forall), '1');
  out += ';';
  out.append(static_cast<size_t>(qbf.num_exists), '1');
  out += ';';
  const int total = qbf.num_forall + qbf.num_exists;
  for (size_t ci = 0; ci < qbf.clauses.size(); ++ci) {
    const std::vector<int>& clause = qbf.clauses[ci];
    if (clause.empty()) {
      return Status::InvalidArgument("empty clause");
    }
    if (ci > 0) out += ';';
    for (size_t li = 0; li < clause.size(); ++li) {
      int literal = clause[li];
      int var = std::abs(literal);
      if (var < 1 || var > total) {
        return Status::OutOfRange("literal variable out of range");
      }
      if (li > 0) out += ',';
      out += (literal > 0) ? 'p' : 'n';
      out.append(static_cast<size_t>(var), '1');
    }
  }
  return out;
}

namespace {

Status Add3(Fsa* fsa, int from, int to, Sym x, Sym z1, Sym z2, Move dx,
            Move dz1, Move dz2) {
  Transition t;
  t.from = from;
  t.to = to;
  t.read = {x, z1, z2};
  t.move = {dx, dz1, dz2};
  return fsa->AddTransition(std::move(t));
}

}  // namespace

Result<Fsa> BuildQbf2CheckMachine(const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(SatSyms s, LookupSyms(alphabet));
  Fsa fsa(alphabet, 3);
  const int start = fsa.start();
  const int header1 = fsa.AddState();   // z1 lockstep with the ∀ block
  const int header2 = fsa.AddState();   // z2 lockstep with the ∃ block
  const int rewind0 = fsa.AddState();   // rewind both, x on first clause
  const int literal = fsa.AddState();
  const int skip = fsa.AddState();
  // Verification: polarity × which assignment tape the index is in.
  const int vpa = fsa.AddState();  // positive, walking z1
  const int vpb = fsa.AddState();  // positive, walking z2
  const int vna = fsa.AddState();
  const int vnb = fsa.AddState();
  const int done = fsa.AddState();
  const int rewind = fsa.AddState();
  const int accept = fsa.AddState();
  fsa.SetFinal(accept);

  const std::vector<Sym> kXChars = {s.one, s.t,     s.f,   s.pos,
                                    s.neg, s.comma, s.semi};
  const std::vector<Sym> kVal = {s.t, s.f};
  const std::vector<Sym> kValOrLeft = {s.t, s.f,
                                       static_cast<Sym>(kLeftEnd)};
  const std::vector<Sym> kValOrRight = {s.t, s.f,
                                        static_cast<Sym>(kRightEnd)};

  // Headers: z1 spans the first '1'-block, z2 the second.
  STRDB_RETURN_IF_ERROR(
      Add3(&fsa, start, header1, kLeftEnd, kLeftEnd, kLeftEnd, +1, +1, 0));
  for (Sym z : kVal) {
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, header1, header1, s.one, z, kLeftEnd, +1, +1, 0));
  }
  STRDB_RETURN_IF_ERROR(
      Add3(&fsa, header1, header2, s.semi, kRightEnd, kLeftEnd, +1, 0, +1));
  for (Sym z : kVal) {
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, header2, header2, s.one, kRightEnd, z, +1, 0, +1));
  }
  STRDB_RETURN_IF_ERROR(Add3(&fsa, header2, rewind0, s.semi, kRightEnd,
                             kRightEnd, +1, 0, 0));
  // Rewind both assignment tapes (x parked on the first clause or ⊣).
  std::vector<Sym> x_or_end = kXChars;
  x_or_end.push_back(kRightEnd);
  for (Sym x : x_or_end) {
    for (Sym z1 : kValOrRight) {
      for (Sym z2 : kValOrRight) {
        STRDB_RETURN_IF_ERROR(
            Add3(&fsa, rewind0, rewind0, x, z1, z2, 0, -1, -1));
      }
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, rewind0, rewind0, x, z1, kLeftEnd, 0, -1, 0));
    }
    for (Sym z2 : kValOrRight) {
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, rewind0, rewind0, x, kLeftEnd, z2, 0, 0, -1));
    }
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, rewind0, literal, x, kLeftEnd, kLeftEnd, 0, 0, 0));
  }

  // Literal choice point (both assignment heads at ⊢).
  for (Sym pol : {s.pos, s.neg}) {
    int verify = (pol == s.pos) ? vpa : vna;
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, literal, verify, pol, kLeftEnd, kLeftEnd, +1, 0, 0));
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, literal, skip, pol, kLeftEnd, kLeftEnd, +1, 0, 0));
  }
  STRDB_RETURN_IF_ERROR(
      Add3(&fsa, literal, accept, kRightEnd, kLeftEnd, kLeftEnd, 0, 0, 0));

  // Skip a literal (dies on ';'/⊣: some literal must be verified).
  STRDB_RETURN_IF_ERROR(
      Add3(&fsa, skip, skip, s.one, kLeftEnd, kLeftEnd, +1, 0, 0));
  STRDB_RETURN_IF_ERROR(
      Add3(&fsa, skip, literal, s.comma, kLeftEnd, kLeftEnd, +1, 0, 0));

  // Verify: walk z1 per index '1'; once z1 is exhausted the remaining
  // '1's walk z2 (variables of the existential block).
  for (int pol = 0; pol < 2; ++pol) {
    const int va = pol == 0 ? vpa : vna;
    const int vb = pol == 0 ? vpb : vnb;
    const Sym want = pol == 0 ? s.t : s.f;
    for (Sym z1 : kValOrLeft) {
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, va, va, s.one, z1, kLeftEnd, +1, +1, 0));
      // Nondeterministic block switch: the boundary '1' advances both
      // heads at once; the guess is verified by every subsequent read
      // seeing z1 on its right endmarker.
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, va, vb, s.one, z1, kLeftEnd, +1, +1, +1));
    }
    for (Sym z2 : kVal) {
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, vb, vb, s.one, kRightEnd, z2, +1, 0, +1));
    }
    // Literal end in the ∀ block: test z1's window.
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, va, done, s.comma, want, kLeftEnd, +1, 0, 0));
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, va, rewind, s.semi, want, kLeftEnd, +1, 0, 0));
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, va, rewind, kRightEnd, want, kLeftEnd, 0, 0, 0));
    // Literal end in the ∃ block: test z2's window.
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, vb, done, s.comma, kRightEnd, want, +1, 0, 0));
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, vb, rewind, s.semi, kRightEnd, want, +1, 0, 0));
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, vb, rewind, kRightEnd, kRightEnd, want, 0, 0, 0));
  }

  // Clause satisfied: consume its remainder blindly (the assignment
  // heads can sit anywhere after verification).
  const std::vector<Sym> kAnyZ = {static_cast<Sym>(kLeftEnd), s.t, s.f,
                                  static_cast<Sym>(kRightEnd)};
  for (Sym z1 : kAnyZ) {
    for (Sym z2 : kAnyZ) {
      for (Sym x : {s.one, s.pos, s.neg, s.comma}) {
        STRDB_RETURN_IF_ERROR(Add3(&fsa, done, done, x, z1, z2, +1, 0, 0));
      }
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, done, rewind, s.semi, z1, z2, +1, 0, 0));
      STRDB_RETURN_IF_ERROR(
          Add3(&fsa, done, rewind, kRightEnd, z1, z2, 0, 0, 0));
    }
  }

  // Rewind both tapes before the next clause (each head steps back
  // until it rests on ⊢).
  for (Sym x : {s.pos, s.neg, static_cast<Sym>(kRightEnd)}) {
    for (Sym z1 : kAnyZ) {
      for (Sym z2 : kAnyZ) {
        Move d1 = (z1 == kLeftEnd) ? 0 : -1;
        Move d2 = (z2 == kLeftEnd) ? 0 : -1;
        if (d1 == 0 && d2 == 0) continue;  // handled by the exit below
        STRDB_RETURN_IF_ERROR(
            Add3(&fsa, rewind, rewind, x, z1, z2, 0, d1, d2));
      }
    }
    STRDB_RETURN_IF_ERROR(
        Add3(&fsa, rewind, literal, x, kLeftEnd, kLeftEnd, 0, 0, 0));
  }
  return fsa;
}

bool SolvePi2BruteForce(const QbfPi2Instance& qbf) {
  CnfInstance cnf;
  cnf.num_vars = qbf.num_forall + qbf.num_exists;
  cnf.clauses = qbf.clauses;
  std::vector<bool> assignment(static_cast<size_t>(cnf.num_vars), false);
  const uint64_t outer = 1ull << qbf.num_forall;
  const uint64_t inner = 1ull << qbf.num_exists;
  for (uint64_t u = 0; u < outer; ++u) {
    for (int v = 0; v < qbf.num_forall; ++v) {
      assignment[static_cast<size_t>(v)] = ((u >> v) & 1) != 0;
    }
    bool exists = false;
    for (uint64_t e = 0; e < inner && !exists; ++e) {
      for (int v = 0; v < qbf.num_exists; ++v) {
        assignment[static_cast<size_t>(qbf.num_forall + v)] =
            ((e >> v) & 1) != 0;
      }
      exists = EvaluateCnf(cnf, assignment);
    }
    if (!exists) return false;
  }
  return true;
}

Result<bool> SolvePi2ViaAlignment(const QbfPi2Instance& qbf,
                                  const GenerateOptions& options) {
  STRDB_ASSIGN_OR_RETURN(std::string encoded, EncodeQbfPi2(qbf));
  Alphabet alphabet = SatAlphabet();
  STRDB_ASSIGN_OR_RETURN(Fsa check, BuildQbf2CheckMachine(alphabet));
  // The ∀ block: every z1 of the shape {T,F}^{num_forall}.
  std::vector<std::string> universals = {""};
  for (int i = 0; i < qbf.num_forall; ++i) {
    std::vector<std::string> next;
    for (const std::string& u : universals) {
      next.push_back(u + 'T');
      next.push_back(u + 'F');
    }
    universals = std::move(next);
  }
  for (const std::string& z1 : universals) {
    GenerateOptions opts = options;
    opts.max_len = qbf.num_exists;
    STRDB_ASSIGN_OR_RETURN(
        std::set<std::vector<std::string>> witnesses,
        GenerateAccepted(check, {encoded, z1, std::nullopt}, opts));
    if (witnesses.empty()) return false;
  }
  return true;
}

Result<std::optional<std::vector<bool>>> SolveSatViaAlignment(
    const CnfInstance& cnf, const GenerateOptions& options) {
  STRDB_ASSIGN_OR_RETURN(std::string encoded, EncodeCnf(cnf));
  Alphabet alphabet = SatAlphabet();
  STRDB_ASSIGN_OR_RETURN(Fsa check, BuildSatCheckMachine(alphabet));
  GenerateOptions opts = options;
  opts.max_len = cnf.num_vars;
  STRDB_ASSIGN_OR_RETURN(
      std::set<std::vector<std::string>> answers,
      GenerateAccepted(check, {encoded, std::nullopt}, opts));
  if (answers.empty()) return std::optional<std::vector<bool>>(std::nullopt);
  const std::string& z = (*answers.begin())[0];
  std::vector<bool> assignment;
  assignment.reserve(z.size());
  for (char c : z) assignment.push_back(c == 'T');
  return std::optional<std::vector<bool>>(std::move(assignment));
}

}  // namespace strdb
