#ifndef STRDB_QUERIES_SEQUENCE_PREDICATE_H_
#define STRDB_QUERIES_SEQUENCE_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "baseline/regex.h"
#include "core/result.h"
#include "strform/string_formula.h"

namespace strdb {

// Theorem 6.4: the sequence predicates of Ginsburg and Wang,
// x_{n+1} ∈ A^n(x_1, ..., x_n), as unidirectional string formulae.
// `pattern` is a regular expression over the channel digits '1'..'n'
// (α_i written as the digit i); operationally it prescribes the order
// in which items are copied from the input channels into the target,
// and the predicate holds when every channel is exhausted exactly when
// the pattern completes.
//
// Two granularities:
//  * separator == nullopt — every single character is an "atom", the
//    e = identity embedding (enough when U ⊆ Σ);
//  * separator == c — channels hold '>'-style c-terminated segments
//    (the paper's e([a1..am]) = e(a1) c ... c e(am) c encoding), and a
//    pattern step copies one whole segment including its terminator.
//
// vars[0..n-1] name the channels, vars[n] the target.
Result<StringFormula> SequencePredicateFormula(
    const Regex& pattern, const std::vector<std::string>& vars,
    std::optional<char> separator);

// Convenience: "x3 ∈ (1*2*)(x1, x2)"-style, parsing the pattern over
// the digit alphabet.
Result<StringFormula> SequencePredicateFormula(
    const std::string& pattern, const std::vector<std::string>& vars,
    std::optional<char> separator);

}  // namespace strdb

#endif  // STRDB_QUERIES_SEQUENCE_PREDICATE_H_
