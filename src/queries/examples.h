#ifndef STRDB_QUERIES_EXAMPLES_H_
#define STRDB_QUERIES_EXAMPLES_H_

#include <string>

#include "calculus/formula.h"
#include "core/alphabet.h"
#include "core/result.h"
#include "strform/string_formula.h"

namespace strdb {

// Builders for the twelve example queries of §2, written exactly as the
// paper gives them (variable names are parameters so the formulae can be
// embedded in larger queries without clashes).

// Example 1 (constant test): `var` spells out `word` and nothing more.
Result<StringFormula> SpellsConstant(const std::string& var,
                                     const std::string& word,
                                     const Alphabet& alphabet);

// Example 2: x =s y (string equality).
StringFormula StringEqualityFormula(const std::string& x,
                                    const std::string& y);

// Example 3: x is the concatenation y·z.
StringFormula ConcatenationFormula(const std::string& x, const std::string& y,
                                   const std::string& z);

// Example 4: x ∈*s y (x is a manifold of y: x = y^m, m >= 1, or both ε).
StringFormula ManifoldFormula(const std::string& x, const std::string& y);

// Example 5: x is a shuffle of y and z.
StringFormula ShuffleFormula(const std::string& x, const std::string& y,
                             const std::string& z);

// Example 7: x occurs in y as a contiguous substring.
StringFormula OccursInFormula(const std::string& x, const std::string& y);

// Example 8: the edit distance between x and y is at most k.
StringFormula EditDistanceAtMostFormula(const std::string& x,
                                        const std::string& y, int k);

// Example 8, second variant: lists (x, y, z) where z = a^j witnesses at
// most j edit operations (the "strings as counters" device; `mark` is
// the character written on z per edit).
StringFormula EditDistanceCounterFormula(const std::string& x,
                                         const std::string& y,
                                         const std::string& z, char mark);

// The counter device turned into a measurement: the smallest j with
// (x, y, mark^j) in the Example-8-variant relation *is* the edit
// distance, computed here by probing the compiled automaton with
// growing counters.  `cap` bounds the search; kNotFound when the
// distance exceeds it.
Result<int> EditDistanceViaAlignment(const std::string& x,
                                     const std::string& y,
                                     const Alphabet& alphabet, int cap);

// Example 9: x is of the form aXbXa — built as ∃y,z: y =s z ∧ shape,
// with the shape spelling x = a·y·b·z·a.  Characters a and b are the
// first two of the alphabet.
Result<CalcFormula> AXbXaQuery(const std::string& x, const std::string& y,
                               const std::string& z,
                               const Alphabet& alphabet);

// Example 10: x has equally many a's and b's and nothing else
// (∃ counter strings y, z of equal length).
Result<CalcFormula> EqualAsAndBsQuery(const std::string& x,
                                      const std::string& y,
                                      const std::string& z,
                                      const Alphabet& alphabet);

// Example 11: x ∈ {aⁿbⁿcⁿ} (∃ counter string y; the alphabet must
// contain at least a, b, c as its first three characters).
Result<CalcFormula> AnBnCnQuery(const std::string& x, const std::string& y,
                                const Alphabet& alphabet);

// Example 12: x ∈ (a+b)* and its second half is the a↔b translation of
// the first (∃ halves y, z).  Note: the paper's printed formula does not
// re-check that x is exhausted after the two halves; we add the check
// (without it any extension of such a string would qualify).
Result<CalcFormula> TranslationHalvesQuery(const std::string& x,
                                           const std::string& y,
                                           const std::string& z,
                                           const Alphabet& alphabet);

}  // namespace strdb

#endif  // STRDB_QUERIES_EXAMPLES_H_
