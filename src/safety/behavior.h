#ifndef STRDB_SAFETY_BEHAVIOR_H_
#define STRDB_SAFETY_BEHAVIOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/result.h"
#include "safety/crossing.h"

namespace strdb {

// A Shepherdson/Birget-style *two-way behaviour* of a word w on the
// normalised b-machine: four n×n matrices describing how a head that
// enters w from either side can leave it, with per-path label evidence.
//
// Entry layout (uint32): bit 0 = some path exists; bit 1+i = some path
// exists that uses a transition whose BTransition::mask has bit i set.
//
// Behaviours compose associatively (Compose iterates the head's bounces
// across the seam), and the set of behaviours of all words is a finite
// monoid — the canonical, permutation-free counterpart of the paper's
// crossing-sequence automaton A''.  The limitation analysis saturates
// this monoid instead of materialising A'' (whose explicit state space
// is factorial in practice; see crossing.h for the faithful reference
// construction, which remains available for small machines).
struct TwoWayBehavior {
  int n = 0;
  std::vector<uint32_t> ll, lr, rl, rr;  // n*n each

  bool operator<(const TwoWayBehavior& o) const;
  bool operator==(const TwoWayBehavior& o) const;
};

// Keep transitions for which the filter returns true (null = keep all).
using TransitionFilter = std::function<bool(const BTransition&)>;

class BehaviorEngine {
 public:
  BehaviorEngine(const BMachine& machine, const Alphabet& alphabet)
      : machine_(machine), alphabet_(alphabet) {}

  // Behaviour of the one-square word holding `c`.
  TwoWayBehavior CharBehavior(Sym c, const TransitionFilter& filter) const;

  TwoWayBehavior Compose(const TwoWayBehavior& a,
                         const TwoWayBehavior& b) const;

  // Behaviours of all nonempty interior (Σ-only) words under `filter`,
  // saturated left to right.  kResourceExhausted past `max_behaviors`.
  Result<std::vector<TwoWayBehavior>> SaturateInterior(
      const TransitionFilter& filter, int64_t max_behaviors) const;

  // True iff the behaviour of the complete word ⊢w⊣ accepts: a path
  // enters at the start state on ⊢ and leaves past ⊣ in the exit state.
  // `interior` is the behaviour of w (nullptr for w = ε), and
  // `required_mask_bits` restricts to paths whose label evidence covers
  // all the given BTransition-mask bits.
  bool Accepts(const TwoWayBehavior* interior, uint32_t required_mask_bits,
               const TransitionFilter& filter) const;

  // ∃ w: ⊢w⊣ accepted through a path covering `required_mask_bits`,
  // with transitions restricted by `filter`.
  Result<bool> NonemptyWith(uint32_t required_mask_bits,
                            const TransitionFilter& filter,
                            int64_t max_behaviors) const;

  // The horizontal ("hard") pumping check for a bidirectional *output*:
  // ∃ u, v, w with v nonempty and read-free (no unidirectional input
  // moves while the head is inside v) such that ⊢ u v^j w ⊣ is accepted
  // for infinitely many j.  Detected through the eventual cycle of
  // E-powers for every read-free interior behaviour E, composed with
  // arbitrary full-machine prefixes and suffixes.
  Result<bool> HasGrowingPump(int64_t max_behaviors) const;

 private:
  const BMachine& machine_;
  const Alphabet& alphabet_;
};

}  // namespace strdb

#endif  // STRDB_SAFETY_BEHAVIOR_H_
