#ifndef STRDB_SAFETY_LIMITATION_H_
#define STRDB_SAFETY_LIMITATION_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"
#include "strform/string_formula.h"

namespace strdb {

// The limitation problem (Definition 3.1): given a k-FSA viewed as a
// generalized Mealy machine with the tapes partitioned into inputs and
// outputs, do the input lengths bound the output lengths?
// [inputs] ↝ [outputs].

// Why an analysis concluded what it did.
enum class LimitationVerdict : uint8_t {
  kLimited,           // a limit function exists (bound below)
  kUnlimitedEasy,     // accepts with an output tail unread ("easy" way)
  kUnlimitedHard,     // output-producing loop without input consumption
  kEmptyLanguage,     // L(A) = ∅: vacuously limited with W ≡ 0
};

// The shape of the limit function W (Theorem 5.2): with
// ρ(n) = 1 + Σ_i (n_i + 1) over the input tapes,
//   W(n) <= scale · ρ(n)^degree,
// degree 1 for unidirectional automata and 2 for right-restricted ones
// (the paper's (n_b+2)-factor and the κ(n)-composition both majorise to
// an extra ρ(n) factor).
struct LimitBound {
  int64_t scale = 0;
  int degree = 1;

  // Evaluates the bound for the given input-tape lengths (tape order).
  int64_t Eval(const std::vector<int>& input_lens) const;
};

struct LimitationReport {
  LimitationVerdict verdict = LimitationVerdict::kLimited;
  bool limited() const {
    return verdict == LimitationVerdict::kLimited ||
           verdict == LimitationVerdict::kEmptyLanguage;
  }
  // Human-readable explanation of the verdict (which check fired, or
  // how the bound was obtained).
  std::string explanation;
  // Valid when limited(): an upper bound on every output length.
  LimitBound bound;
};

struct LimitationOptions {
  // Budget for the crossing-sequence automaton A'' (its state count is
  // worst-case exponential in the analysed automaton's size).
  int64_t max_crossing_states = 200'000;
  // Budget on the per-state match-enumeration search of the reference
  // A'' construction.
  int64_t max_match_steps = 2'000'000;
  // Budget on the behaviour-monoid saturations that answer the
  // right-restricted questions in production (see safety/behavior.h);
  // exceeding it yields kResourceExhausted rather than an unsound
  // answer.
  int64_t max_behaviors = 4'000;
};

// Decides [inputs] ↝ [outputs] for `fsa`, where is_input[i] says tape i
// is an input.  Supported classes, as in the paper:
//  * unidirectional automata (no tape moved backwards): always decided;
//  * right-restricted automata (exactly one bidirectional tape): decided
//    via the crossing-sequence construction of Theorem 5.2, within the
//    stated budgets;
//  * two or more bidirectional tapes: kUnimplemented — the problem is
//    undecidable in general (Theorem 5.1).
//
// Requires final states without outgoing transitions (all automata from
// CompileStringFormula qualify).
Result<LimitationReport> AnalyzeLimitation(
    const Fsa& fsa, const std::vector<bool>& is_input,
    const LimitationOptions& options = {});

// Convenience wrapper for string formulae: compiles φ over its variables
// (ascending) and asks whether the variables named in `inputs` limit all
// the others.
Result<LimitationReport> AnalyzeStringFormulaLimitation(
    const StringFormula& formula, const Alphabet& alphabet,
    const std::vector<std::string>& inputs,
    const LimitationOptions& options = {});

// Decides L(A) ≠ ∅ exactly for automata with at most one bidirectional
// tape: plain reachability on the consistified machine when every tape
// is one-way, the behaviour-monoid nonemptiness otherwise.  This is the
// decision procedure behind the Theorem 6.6 (expression complexity)
// experiments.  kUnimplemented with two or more bidirectional tapes.
Result<bool> LanguageNonempty(const Fsa& fsa,
                              const LimitationOptions& options = {});

}  // namespace strdb

#endif  // STRDB_SAFETY_LIMITATION_H_
