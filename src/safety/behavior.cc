#include "safety/behavior.h"

#include <deque>
#include <map>
#include <set>

namespace strdb {

namespace {

// Entry helpers: bit 0 = reach, bits 1.. = mask-bit evidence.
constexpr uint32_t kReachBit = 1u;

inline uint32_t EntryFromMask(uint32_t mask) {
  return kReachBit | (mask << 1);
}

// Combines two path segments: reachable iff both are; evidence unions.
inline uint32_t CombineEntries(uint32_t a, uint32_t b) {
  if ((a & kReachBit) == 0 || (b & kReachBit) == 0) return 0;
  return kReachBit | ((a | b) & ~kReachBit);
}

}  // namespace

bool TwoWayBehavior::operator<(const TwoWayBehavior& o) const {
  if (ll != o.ll) return ll < o.ll;
  if (lr != o.lr) return lr < o.lr;
  if (rl != o.rl) return rl < o.rl;
  return rr < o.rr;
}

bool TwoWayBehavior::operator==(const TwoWayBehavior& o) const {
  return ll == o.ll && lr == o.lr && rl == o.rl && rr == o.rr;
}

TwoWayBehavior BehaviorEngine::CharBehavior(
    Sym c, const TransitionFilter& filter) const {
  TwoWayBehavior b;
  b.n = machine_.num_states;
  size_t nn = static_cast<size_t>(b.n) * b.n;
  b.ll.assign(nn, 0);
  b.lr.assign(nn, 0);
  for (const BTransition& t : machine_.transitions) {
    if (t.read_b != c) continue;
    if (filter && !filter(t)) continue;
    uint32_t entry = EntryFromMask(t.mask);
    size_t idx = static_cast<size_t>(t.from) * b.n + t.to;
    if (t.b_move == kBack) {
      b.ll[idx] |= entry;
    } else {
      b.lr[idx] |= entry;
    }
  }
  // A single square behaves identically from either side.
  b.rl = b.ll;
  b.rr = b.lr;
  return b;
}

TwoWayBehavior BehaviorEngine::Compose(const TwoWayBehavior& u,
                                       const TwoWayBehavior& v) const {
  const int n = u.n;
  const int N = 2 * n;  // bounce nodes: A_q = 0..n-1, B_q = n..2n-1
  // Transitive bounce closure across the seam.
  std::vector<uint32_t> closure(static_cast<size_t>(N) * N, 0);
  for (int x = 0; x < N; ++x) {
    closure[static_cast<size_t>(x) * N + x] = kReachBit;
  }
  auto edge = [&](int x, int y) -> uint32_t {
    if (x < n && y >= n) return u.rr[static_cast<size_t>(x) * n + (y - n)];
    if (x >= n && y < n) return v.ll[static_cast<size_t>(x - n) * n + y];
    return 0;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int x = 0; x < N; ++x) {
      for (int y = 0; y < N; ++y) {
        uint32_t xy = closure[static_cast<size_t>(x) * N + y];
        if ((xy & kReachBit) == 0) continue;
        for (int z = 0; z < N; ++z) {
          uint32_t yz = edge(y, z);
          if ((yz & kReachBit) == 0) continue;
          uint32_t bits = CombineEntries(xy, yz);
          uint32_t& cell = closure[static_cast<size_t>(x) * N + z];
          if ((cell | bits) != cell) {
            cell |= bits;
            changed = true;
          }
        }
      }
    }
  }

  TwoWayBehavior w;
  w.n = n;
  size_t nn = static_cast<size_t>(n) * n;
  w.ll.assign(nn, 0);
  w.lr.assign(nn, 0);
  w.rl.assign(nn, 0);
  w.rr.assign(nn, 0);

  auto bounce_exits = [&](int start_node, uint32_t entry_bits,
                          std::vector<uint32_t>* out_left,
                          std::vector<uint32_t>* out_right, int q) {
    for (int z = 0; z < N; ++z) {
      uint32_t path = closure[static_cast<size_t>(start_node) * N + z];
      uint32_t acc = CombineEntries(entry_bits, path);
      if (acc == 0) continue;
      if (z < n) {
        // A_z: may exit left of w.
        for (int q2 = 0; q2 < n; ++q2) {
          uint32_t leg = u.rl[static_cast<size_t>(z) * n + q2];
          uint32_t bits = CombineEntries(acc, leg);
          if (bits) (*out_left)[static_cast<size_t>(q) * n + q2] |= bits;
        }
      } else {
        // B_z: may exit right of w.
        for (int q2 = 0; q2 < n; ++q2) {
          uint32_t leg = v.lr[static_cast<size_t>(z - n) * n + q2];
          uint32_t bits = CombineEntries(acc, leg);
          if (bits) (*out_right)[static_cast<size_t>(q) * n + q2] |= bits;
        }
      }
    }
  };

  for (int q = 0; q < n; ++q) {
    for (int q2 = 0; q2 < n; ++q2) {
      w.ll[static_cast<size_t>(q) * n + q2] |=
          u.ll[static_cast<size_t>(q) * n + q2];
      w.rr[static_cast<size_t>(q) * n + q2] |=
          v.rr[static_cast<size_t>(q) * n + q2];
    }
    for (int p = 0; p < n; ++p) {
      uint32_t first = u.lr[static_cast<size_t>(q) * n + p];
      if (first & kReachBit) bounce_exits(n + p, first, &w.ll, &w.lr, q);
      uint32_t rfirst = v.rl[static_cast<size_t>(q) * n + p];
      if (rfirst & kReachBit) bounce_exits(p, rfirst, &w.rl, &w.rr, q);
    }
  }
  return w;
}

Result<std::vector<TwoWayBehavior>> BehaviorEngine::SaturateInterior(
    const TransitionFilter& filter, int64_t max_behaviors) const {
  std::vector<TwoWayBehavior> generators;
  for (Sym c = 0; c < alphabet_.size(); ++c) {
    generators.push_back(CharBehavior(c, filter));
  }
  std::set<TwoWayBehavior> seen;
  std::deque<const TwoWayBehavior*> frontier;
  auto visit = [&](TwoWayBehavior b) -> Status {
    if (static_cast<int64_t>(seen.size()) >= max_behaviors) {
      return Status::ResourceExhausted(
          "behaviour saturation exceeded max_behaviors");
    }
    auto [it, inserted] = seen.insert(std::move(b));
    if (inserted) frontier.push_back(&*it);
    return Status::OK();
  };
  for (const TwoWayBehavior& g : generators) {
    STRDB_RETURN_IF_ERROR(visit(g));
  }
  while (!frontier.empty()) {
    const TwoWayBehavior* b = frontier.front();
    frontier.pop_front();
    for (const TwoWayBehavior& g : generators) {
      STRDB_RETURN_IF_ERROR(visit(Compose(*b, g)));
    }
  }
  return std::vector<TwoWayBehavior>(seen.begin(), seen.end());
}

namespace {

// Acceptance over a chain of segment behaviours: the head starts on the
// leftmost square of segment 0 in the machine's start state and must
// eventually step off the right end of the last segment in the exit
// state.  Nodes are (segment, state, entering-side, evidence-satisfied);
// evidence tracks whether the path so far covers `required` (all bits).
// `required` with more than one bit asks for a single path covering all
// of them, which the per-flag evidence entries cannot certify exactly —
// callers pass at most one bit.
bool AcceptsChainImpl(const std::vector<const TwoWayBehavior*>& segments,
                      int start_state, int exit_state, uint32_t required) {
  if (segments.empty()) return false;
  const int n = segments[0]->n;
  const int k = static_cast<int>(segments.size());
  const uint32_t need = required << 1;  // entry-space evidence bits
  // node id: ((seg * n + state) * 2 + side) * 2 + satisfied
  auto node = [&](int seg, int q, int side, int sat) {
    return ((seg * n + q) * 2 + side) * 2 + sat;
  };
  std::vector<bool> visited(static_cast<size_t>(k) * n * 4, false);
  std::deque<int> queue;
  auto push = [&](int seg, int q, int side, int sat) {
    int id = node(seg, q, side, sat);
    if (!visited[static_cast<size_t>(id)]) {
      visited[static_cast<size_t>(id)] = true;
      queue.push_back(id);
    }
  };
  bool accepted = false;
  push(0, start_state, /*side=left*/ 0, need == 0 ? 1 : 0);
  while (!queue.empty() && !accepted) {
    int id = queue.front();
    queue.pop_front();
    int sat = id & 1;
    int side = (id >> 1) & 1;
    int q = (id >> 2) % n;
    int seg = (id >> 2) / n;
    const TwoWayBehavior& b = *segments[static_cast<size_t>(seg)];
    const std::vector<uint32_t>& to_left = (side == 0) ? b.ll : b.rl;
    const std::vector<uint32_t>& to_right = (side == 0) ? b.lr : b.rr;
    for (int q2 = 0; q2 < n; ++q2) {
      uint32_t left = to_left[static_cast<size_t>(q) * n + q2];
      if (left & kReachBit) {
        int sat2 = sat;
        if (need != 0 && (left & need) == need) sat2 = 1;
        // Exiting left of the whole word is impossible past ⊢; such a
        // run simply drops.
        if (seg > 0) push(seg - 1, q2, /*side=right*/ 1, sat2);
      }
      uint32_t right = to_right[static_cast<size_t>(q) * n + q2];
      if (right & kReachBit) {
        int sat2 = sat;
        if (need != 0 && (right & need) == need) sat2 = 1;
        if (seg + 1 < k) {
          push(seg + 1, q2, /*side=left*/ 0, sat2);
        } else if (q2 == exit_state && sat2 == 1) {
          accepted = true;
          break;
        }
      }
    }
  }
  return accepted;
}

}  // namespace

bool BehaviorEngine::Accepts(const TwoWayBehavior* interior,
                             uint32_t required_mask_bits,
                             const TransitionFilter& filter) const {
  TwoWayBehavior left = CharBehavior(kLeftEnd, filter);
  TwoWayBehavior right = CharBehavior(kRightEnd, filter);
  std::vector<const TwoWayBehavior*> chain;
  chain.push_back(&left);
  if (interior != nullptr) chain.push_back(interior);
  chain.push_back(&right);
  return AcceptsChainImpl(chain, machine_.start, machine_.exit_state,
                          required_mask_bits);
}

Result<bool> BehaviorEngine::NonemptyWith(uint32_t required_mask_bits,
                                          const TransitionFilter& filter,
                                          int64_t max_behaviors) const {
  if (Accepts(nullptr, required_mask_bits, filter)) return true;
  STRDB_ASSIGN_OR_RETURN(std::vector<TwoWayBehavior> interior,
                         SaturateInterior(filter, max_behaviors));
  for (const TwoWayBehavior& b : interior) {
    if (Accepts(&b, required_mask_bits, filter)) return true;
  }
  return false;
}

Result<bool> BehaviorEngine::HasGrowingPump(int64_t max_behaviors) const {
  auto read_free = [](const BTransition& t) {
    return (t.mask & kMaskReads) == 0;
  };
  STRDB_ASSIGN_OR_RETURN(std::vector<TwoWayBehavior> full,
                         SaturateInterior(nullptr, max_behaviors));
  STRDB_ASSIGN_OR_RETURN(std::vector<TwoWayBehavior> free,
                         SaturateInterior(read_free, max_behaviors));
  TwoWayBehavior left = CharBehavior(kLeftEnd, nullptr);
  TwoWayBehavior right = CharBehavior(kRightEnd, nullptr);

  for (const TwoWayBehavior& e : free) {
    // Powers of e until the sequence cycles: acceptance with any power
    // in the cycle happens for infinitely many exponents.
    std::vector<TwoWayBehavior> powers = {e};
    std::map<TwoWayBehavior, size_t> index = {{e, 0}};
    size_t cycle_start = 0;
    for (;;) {
      TwoWayBehavior next = Compose(powers.back(), e);
      auto it = index.find(next);
      if (it != index.end()) {
        cycle_start = it->second;
        break;
      }
      index[next] = powers.size();
      powers.push_back(std::move(next));
      if (static_cast<int64_t>(powers.size()) > max_behaviors) {
        return Status::ResourceExhausted("pump power iteration exceeded "
                                         "max_behaviors");
      }
    }
    for (size_t pi = cycle_start; pi < powers.size(); ++pi) {
      const TwoWayBehavior& q = powers[pi];
      // ∃ prefix u, suffix w (possibly empty) with ⊢ u q w ⊣ accepted.
      auto try_chain = [&](const TwoWayBehavior* m1,
                           const TwoWayBehavior* m2) {
        std::vector<const TwoWayBehavior*> chain;
        chain.push_back(&left);
        if (m1 != nullptr) chain.push_back(m1);
        chain.push_back(&q);
        if (m2 != nullptr) chain.push_back(m2);
        chain.push_back(&right);
        return AcceptsChainImpl(chain, machine_.start, machine_.exit_state,
                                0);
      };
      if (try_chain(nullptr, nullptr)) return true;
      for (const TwoWayBehavior& m1 : full) {
        if (try_chain(&m1, nullptr)) return true;
      }
      for (const TwoWayBehavior& m2 : full) {
        if (try_chain(nullptr, &m2)) return true;
      }
      for (const TwoWayBehavior& m1 : full) {
        for (const TwoWayBehavior& m2 : full) {
          if (try_chain(&m1, &m2)) return true;
        }
      }
    }
  }
  return false;
}

}  // namespace strdb
