#ifndef STRDB_SAFETY_CROSSING_H_
#define STRDB_SAFETY_CROSSING_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// Internal machinery for the right-restricted limitation analysis
// (Theorem 5.2): the bidirectional tape b is singled out, the automaton
// is normalised so that *every* transition moves b by one square
// (cleanup winding + dancing, as in the paper), and the behaviour on b
// is abstracted into the crossing-sequence automaton A''.
//
// Unidirectional tapes are "disregarded" as in the paper: property 5
// (guaranteed by ConsistifyReads) makes any path realisable on them, so
// transitions only keep aggregate labels — whether they advance a
// unidirectional input (reading) or output (writing).

// Bits of the aggregate label mask carried by crossing-automaton edges.
inline constexpr uint32_t kMaskReads = 1u << 0;   // advances a uni input
inline constexpr uint32_t kMaskWrites = 1u << 1;  // advances a uni output
inline constexpr uint32_t kMaskReal = 1u << 2;    // not cleanup/dancing
// Bits 3.. flag, per unidirectional output tape (in output order), an
// accepting transition that fired before that output's ⊣ was read.
inline constexpr int kMaskEasyShift = 3;

// One transition of the normalised single-bidirectional-tape view.
struct BTransition {
  int from = 0;
  int to = 0;
  Sym read_b = kLeftEnd;  // symbol under b's head
  int b_move = +1;        // ±1 (+1 "past ⊣" only into the exit state)
  uint32_t mask = 0;      // label bits as above
};

struct BMachine {
  int num_states = 0;
  int start = 0;
  int exit_state = 0;  // the unique accepting sink after cleanup
  std::vector<BTransition> transitions;
  std::vector<std::vector<int>> out;  // transition indices by from-state
  int num_uni_outputs = 0;            // easy-flag width
};

// Builds the normalised b-machine from a *trimmed, read-consistified*
// automaton whose final states have no outgoing transitions.  `b` is
// the bidirectional tape; `is_input[i]` classifies the tapes.
Result<BMachine> BuildBMachine(const Fsa& fsa, int b,
                               const std::vector<bool>& is_input);

// The crossing-sequence automaton A'': a one-way NFA over Σ ∪ {⊢, ⊣}
// whose states are valid almost-direct crossing sequences of the
// b-machine and whose edges carry the match's aggregate label mask.
struct CrossingEdge {
  int from = 0;
  int to = 0;
  Sym ch = kLeftEnd;
  uint32_t mask = 0;
};

struct CrossingAutomaton {
  // sequences[i] is state i: (b-machine state, direction ±1) pairs.
  std::vector<std::vector<std::pair<int, int>>> sequences;
  int start = 0;
  int accept = -1;  // index of ⟨(exit,+1)⟩, or -1 if never reached
  std::vector<CrossingEdge> edges;
  std::vector<std::vector<int>> out;  // edge indices by from-state

  int64_t num_states() const {
    return static_cast<int64_t>(sequences.size());
  }
};

// Builds A'' breadth-first from ⟨(start,+1)⟩.  Fails with
// kResourceExhausted when more than `max_states` sequences appear or a
// single match enumeration exceeds `max_match_steps`.
Result<CrossingAutomaton> BuildCrossingAutomaton(const BMachine& machine,
                                                 const Alphabet& alphabet,
                                                 int64_t max_states,
                                                 int64_t max_match_steps);

// Answers on A'' (all phase-aware: a run is ⊢ · Σ* · ⊣):

// States reachable from the start (after the initial ⊢ edge ... interior
// phase) and states from which the accept state is reachable; both over
// the interior (Σ) phase.  Exposed for the query helpers below.
struct CrossingReachability {
  std::vector<bool> forward;   // reachable in the interior phase
  std::vector<bool> backward;  // can still reach accept
};
CrossingReachability ComputeReachability(const CrossingAutomaton& aut);

// Is there an accepting run at all?
bool CrossingNonempty(const CrossingAutomaton& aut);

// Is there an accepting run through an edge whose mask has all bits of
// `required` set?
bool CrossingHasAcceptingEdgeWith(const CrossingAutomaton& aut,
                                  uint32_t required);

// Is there an accepting run whose final (⊣) edge lacks all bits of
// `forbidden`?
bool CrossingHasAcceptingLastEdgeWithout(const CrossingAutomaton& aut,
                                         uint32_t forbidden);

// Is there a cycle, inside the live interior phase, using only edges
// without any bit of `forbidden`?
bool CrossingHasLiveCycleWithout(const CrossingAutomaton& aut,
                                 uint32_t forbidden);

// The "computation pump" check (paper Figs. 9-12): does the b-machine
// admit a cyclic computation fragment over *some* fixed content of tape
// b that moves no unidirectional input but advances a unidirectional
// output?  Such a pump makes outputs unbounded for fixed inputs.
//
// Decided exactly (up to the behaviour budget) by saturating the
// two-way behaviour monoid of the machine restricted to non-reading
// transitions: the behaviour of a window word w records, as
// reach/reach-with-write matrices, how a head entering w from either
// side can leave it, plus whether a write-carrying internal cycle
// exists; composition of behaviours iterates the head's bounces across
// the seam.  The search enumerates the finitely many reachable
// behaviours of ⊢?Σ*⊣? windows.
Result<bool> FindOutputPump(const BMachine& machine, const Alphabet& alphabet,
                            int64_t max_behaviors);

}  // namespace strdb

#endif  // STRDB_SAFETY_CROSSING_H_
