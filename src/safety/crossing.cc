#include "safety/crossing.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace strdb {

namespace {

// Adds a transition to the machine under construction.
void AddB(BMachine* m, int from, int to, Sym read_b, int b_move,
          uint32_t mask) {
  int idx = static_cast<int>(m->transitions.size());
  m->transitions.push_back(BTransition{from, to, read_b, b_move, mask});
  m->out[static_cast<size_t>(from)].push_back(idx);
}

}  // namespace

Result<BMachine> BuildBMachine(const Fsa& fsa, int b,
                               const std::vector<bool>& is_input) {
  if (static_cast<int>(is_input.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument("is_input must have one entry per tape");
  }
  if (!fsa.FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "crossing analysis requires final states without outgoing "
        "transitions");
  }
  // Unidirectional output tape numbering (for the easy-flag bits).
  std::vector<int> output_index(static_cast<size_t>(fsa.num_tapes()), -1);
  int num_outputs = 0;
  for (int i = 0; i < fsa.num_tapes(); ++i) {
    if (i != b && !is_input[static_cast<size_t>(i)]) {
      output_index[static_cast<size_t>(i)] = num_outputs++;
    }
  }
  if (num_outputs > 24) {
    return Status::InvalidArgument("too many output tapes for the mask");
  }

  BMachine m;
  m.num_uni_outputs = num_outputs;
  const int wind = fsa.num_states();
  const int exit = wind + 1;
  m.num_states = exit + 1;
  m.start = fsa.start();
  m.exit_state = exit;
  m.out.resize(static_cast<size_t>(m.num_states));

  // The cleanup winding loop: sweep b rightwards to ⊣ and step off it
  // (the paper's pseudo-move past the endmarker; it exists only here).
  for (Sym c = 0; c < fsa.alphabet().size(); ++c) {
    AddB(&m, wind, wind, c, +1, 0);
  }
  AddB(&m, wind, exit, kRightEnd, +1, 0);

  auto uni_labels = [&](const Transition& t) {
    uint32_t mask = 0;
    for (int i = 0; i < fsa.num_tapes(); ++i) {
      if (i == b || t.move[static_cast<size_t>(i)] == 0) continue;
      mask |= is_input[static_cast<size_t>(i)] ? kMaskReads : kMaskWrites;
    }
    return mask;
  };

  for (const Transition& t : fsa.transitions()) {
    const Sym cb = t.read[static_cast<size_t>(b)];
    const uint32_t lbl = uni_labels(t) | kMaskReal;
    if (fsa.IsFinal(t.to)) {
      // Cleanup: the accepting transition becomes an entry into the
      // winding loop (or straight off ⊣ when it already scans it).  It
      // keeps its labels and records which outputs still had unread
      // tails — the "easy way" evidence.
      uint32_t easy = 0;
      for (int i = 0; i < fsa.num_tapes(); ++i) {
        if (output_index[static_cast<size_t>(i)] < 0) continue;
        if (t.read[static_cast<size_t>(i)] != kRightEnd) {
          easy |= 1u << (kMaskEasyShift +
                         output_index[static_cast<size_t>(i)]);
        }
      }
      if (cb == kRightEnd) {
        AddB(&m, t.from, exit, kRightEnd, +1, lbl | easy);
      } else {
        AddB(&m, t.from, wind, cb, +1, lbl | easy);
      }
      continue;
    }
    if (t.move[static_cast<size_t>(b)] != 0) {
      AddB(&m, t.from, t.to, cb, t.move[static_cast<size_t>(b)], lbl);
      continue;
    }
    // Dancing: a transition that does not move b gets split into a
    // fake step away and back.  The first edge genuinely tests the
    // square (kMaskReal); the second carries the unidirectional labels
    // but reads the neighbouring square blindly.
    int d = m.num_states++;
    m.out.emplace_back();
    if (cb != kLeftEnd) {
      AddB(&m, t.from, d, cb, -1, kMaskReal);
      for (Sym c = 0; c < fsa.alphabet().size(); ++c) {
        AddB(&m, d, t.to, c, +1, uni_labels(t));
      }
      AddB(&m, d, t.to, kLeftEnd, +1, uni_labels(t));
    } else {
      AddB(&m, t.from, d, kLeftEnd, +1, kMaskReal);
      for (Sym c = 0; c < fsa.alphabet().size(); ++c) {
        AddB(&m, d, t.to, c, -1, uni_labels(t));
      }
      AddB(&m, d, t.to, kRightEnd, -1, uni_labels(t));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Crossing-sequence automaton

namespace {

using Pair = std::pair<int, int>;        // (state, direction)
using Sequence = std::vector<Pair>;

// Enumerates the matches m(L; R; c; T) with L given, generating every
// consistent right-border sequence R together with the aggregated label
// mask of the match.  The head-visit simulation follows the inductive
// definition in the paper: a visit enters the square from the left
// (consuming an L element of direction +1) or from the right (guessing
// a fresh R element of direction -1), takes one transition reading the
// square's character, and exits left (consuming the next L element) or
// right (appending to R).
class MatchEnumerator {
 public:
  MatchEnumerator(const BMachine& machine, Sym c, const Sequence& left,
                  int64_t max_steps)
      : machine_(machine), c_(c), left_(left), max_steps_(max_steps) {
    // States with at least one transition on c, as re-entry guesses.
    for (int s = 0; s < machine.num_states; ++s) {
      for (int ti : machine.out[static_cast<size_t>(s)]) {
        if (machine.transitions[static_cast<size_t>(ti)].read_b == c_) {
          reentry_states_.push_back(s);
          break;
        }
      }
    }
  }

  Status Run(std::set<std::pair<Sequence, uint32_t>>* results) {
    results_ = results;
    Sequence right;
    std::map<Pair, int> occurrences;
    return Between(0, /*side_right=*/false, &right, 0u, &occurrences);
  }

 private:
  Status Tick() {
    if (++steps_ > max_steps_) {
      return Status::ResourceExhausted(
          "match enumeration exceeded its step budget");
    }
    return Status::OK();
  }

  // The head is outside the square; `i` indexes the next unconsumed
  // element of L; `side_right` tells which side it is on.
  Status Between(size_t i, bool side_right, Sequence* right, uint32_t mask,
                 std::map<Pair, int>* occurrences) {
    STRDB_RETURN_IF_ERROR(Tick());
    if (side_right) {
      if (i == left_.size()) {
        // The whole computation ends to the right of every border:
        // this is a completed match.  (Other continuations below may
        // re-enter and produce longer right sequences; matches with the
        // same right sequence but different label masks are all kept.)
        results_->insert({*right, mask});
      }
      // Guess a re-entry from the right.  Sequences are kept *direct*
      // (every pair at most once): the paper's cutting argument shows
      // direct computations suffice for the nonemptiness, easy and
      // hard questions answered on A'' (the indirect behaviour needed
      // for the Fig. 9-12 pump question is handled separately by the
      // behaviour-monoid search).
      for (int p : reentry_states_) {
        Pair pr{p, -1};
        int& occ = (*occurrences)[pr];
        if (occ >= 1) continue;  // direct
        ++occ;
        right->push_back(pr);
        Status status = Visit(p, i, right, mask, occurrences);
        right->pop_back();
        --occ;
        STRDB_RETURN_IF_ERROR(status);
      }
      return Status::OK();
    }
    // Head to the left: the next event must be the next L element,
    // which (by alternation of valid sequences) has direction +1.
    if (i < left_.size() && left_[i].second == +1) {
      return Visit(left_[i].first, i + 1, right, mask, occurrences);
    }
    return Status::OK();
  }

  // The head is on the square in state `p`; `i` indexes L's next
  // unconsumed element.
  Status Visit(int p, size_t i, Sequence* right, uint32_t mask,
               std::map<Pair, int>* occurrences) {
    STRDB_RETURN_IF_ERROR(Tick());
    for (int ti : machine_.out[static_cast<size_t>(p)]) {
      const BTransition& t = machine_.transitions[static_cast<size_t>(ti)];
      if (t.read_b != c_) continue;
      if (t.b_move == +1) {
        Pair pr{t.to, +1};
        int& occ = (*occurrences)[pr];
        if (occ >= 1) continue;  // direct
        ++occ;
        right->push_back(pr);
        Status status =
            Between(i, /*side_right=*/true, right, mask | t.mask, occurrences);
        right->pop_back();
        --occ;
        STRDB_RETURN_IF_ERROR(status);
      } else {
        // Exit left: consume the matching L element.
        if (i < left_.size() && left_[i] == Pair{t.to, -1}) {
          STRDB_RETURN_IF_ERROR(Between(i + 1, /*side_right=*/false, right,
                                        mask | t.mask, occurrences));
        }
      }
    }
    return Status::OK();
  }

  const BMachine& machine_;
  Sym c_;
  const Sequence& left_;
  int64_t max_steps_;
  int64_t steps_ = 0;
  std::vector<int> reentry_states_;
  std::set<std::pair<Sequence, uint32_t>>* results_ = nullptr;
};

}  // namespace

Result<CrossingAutomaton> BuildCrossingAutomaton(const BMachine& machine,
                                                 const Alphabet& alphabet,
                                                 int64_t max_states,
                                                 int64_t max_match_steps) {
  CrossingAutomaton aut;
  std::map<Sequence, int> ids;
  std::deque<int> worklist;

  auto intern = [&](const Sequence& seq) {
    auto [it, inserted] = ids.try_emplace(seq, -1);
    if (inserted) {
      it->second = static_cast<int>(aut.sequences.size());
      aut.sequences.push_back(seq);
      aut.out.emplace_back();
      worklist.push_back(it->second);
    }
    return it->second;
  };

  Sequence start_seq = {{machine.start, +1}};
  aut.start = intern(start_seq);
  Sequence accept_seq = {{machine.exit_state, +1}};

  std::vector<Sym> chars = alphabet.TapeSymbols();  // Σ then ⊢, ⊣
  while (!worklist.empty()) {
    int id = worklist.front();
    worklist.pop_front();
    if (aut.sequences[static_cast<size_t>(id)] == accept_seq) {
      aut.accept = id;
      continue;  // the exit sequence needs no outgoing edges
    }
    for (Sym c : chars) {
      MatchEnumerator enumerator(machine, c,
                                 aut.sequences[static_cast<size_t>(id)],
                                 max_match_steps);
      std::set<std::pair<Sequence, uint32_t>> results;
      STRDB_RETURN_IF_ERROR(enumerator.Run(&results));
      auto add_edge = [&](const Sequence& seq, uint32_t mask) -> Status {
        if (static_cast<int64_t>(aut.sequences.size()) > max_states) {
          return Status::ResourceExhausted(
              "crossing automaton exceeded max_states");
        }
        int to = intern(seq);
        int eidx = static_cast<int>(aut.edges.size());
        aut.edges.push_back(CrossingEdge{id, to, c, mask});
        aut.out[static_cast<size_t>(id)].push_back(eidx);
        return Status::OK();
      };
      for (const auto& [seq, mask] : results) {
        STRDB_RETURN_IF_ERROR(add_edge(seq, mask));
      }
    }
  }
  if (aut.accept < 0) {
    auto it = ids.find(accept_seq);
    if (it != ids.end()) aut.accept = it->second;
  }
  return aut;
}

// ---------------------------------------------------------------------------
// Queries

CrossingReachability ComputeReachability(const CrossingAutomaton& aut) {
  CrossingReachability r;
  size_t n = aut.sequences.size();
  r.forward.assign(n, false);
  r.backward.assign(n, false);
  // Forward: after the initial ⊢ edge, close over interior (Σ) edges.
  std::deque<int> queue;
  for (int ei : aut.out[static_cast<size_t>(aut.start)]) {
    const CrossingEdge& e = aut.edges[static_cast<size_t>(ei)];
    if (e.ch == kLeftEnd && !r.forward[static_cast<size_t>(e.to)]) {
      r.forward[static_cast<size_t>(e.to)] = true;
      queue.push_back(e.to);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int ei : aut.out[static_cast<size_t>(s)]) {
      const CrossingEdge& e = aut.edges[static_cast<size_t>(ei)];
      if (IsEndmarker(e.ch)) continue;
      if (!r.forward[static_cast<size_t>(e.to)]) {
        r.forward[static_cast<size_t>(e.to)] = true;
        queue.push_back(e.to);
      }
    }
  }
  // Backward: states with a ⊣ edge into accept, closed over reversed
  // interior edges.
  if (aut.accept < 0) return r;
  std::vector<std::vector<int>> rev(n);
  for (size_t ei = 0; ei < aut.edges.size(); ++ei) {
    const CrossingEdge& e = aut.edges[ei];
    if (!IsEndmarker(e.ch)) rev[static_cast<size_t>(e.to)].push_back(e.from);
    if (e.ch == kRightEnd && e.to == aut.accept &&
        !r.backward[static_cast<size_t>(e.from)]) {
      r.backward[static_cast<size_t>(e.from)] = true;
      queue.push_back(e.from);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int from : rev[static_cast<size_t>(s)]) {
      if (!r.backward[static_cast<size_t>(from)]) {
        r.backward[static_cast<size_t>(from)] = true;
        queue.push_back(from);
      }
    }
  }
  return r;
}

bool CrossingNonempty(const CrossingAutomaton& aut) {
  if (aut.accept < 0) return false;
  CrossingReachability r = ComputeReachability(aut);
  for (const CrossingEdge& e : aut.edges) {
    if (e.ch == kRightEnd && e.to == aut.accept &&
        r.forward[static_cast<size_t>(e.from)]) {
      return true;
    }
  }
  return false;
}

bool CrossingHasAcceptingEdgeWith(const CrossingAutomaton& aut,
                                  uint32_t required) {
  if (aut.accept < 0) return false;
  CrossingReachability r = ComputeReachability(aut);
  for (const CrossingEdge& e : aut.edges) {
    if ((e.mask & required) != required) continue;
    if (e.ch == kLeftEnd) {
      if (e.from == aut.start && r.backward[static_cast<size_t>(e.to)]) {
        return true;
      }
    } else if (e.ch == kRightEnd) {
      if (e.to == aut.accept && r.forward[static_cast<size_t>(e.from)]) {
        return true;
      }
    } else {
      if (r.forward[static_cast<size_t>(e.from)] &&
          r.backward[static_cast<size_t>(e.to)]) {
        return true;
      }
    }
  }
  return false;
}

bool CrossingHasAcceptingLastEdgeWithout(const CrossingAutomaton& aut,
                                         uint32_t forbidden) {
  if (aut.accept < 0) return false;
  CrossingReachability r = ComputeReachability(aut);
  for (const CrossingEdge& e : aut.edges) {
    if (e.ch == kRightEnd && e.to == aut.accept &&
        r.forward[static_cast<size_t>(e.from)] && (e.mask & forbidden) == 0) {
      return true;
    }
  }
  return false;
}

bool CrossingHasLiveCycleWithout(const CrossingAutomaton& aut,
                                 uint32_t forbidden) {
  if (aut.accept < 0) return false;
  CrossingReachability r = ComputeReachability(aut);
  size_t n = aut.sequences.size();
  // Iterative Tarjan-free cycle detection: repeated DFS with colors on
  // the live subgraph of interior edges lacking the forbidden bits.
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<int, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    if (!r.forward[root] || !r.backward[root]) continue;
    stack.push_back({static_cast<int>(root), 0});
    color[root] = 1;
    while (!stack.empty()) {
      int s = stack.back().first;
      size_t& next = stack.back().second;
      bool descended = false;
      while (next < aut.out[static_cast<size_t>(s)].size()) {
        int ei = aut.out[static_cast<size_t>(s)][next++];
        const CrossingEdge& e = aut.edges[static_cast<size_t>(ei)];
        if (IsEndmarker(e.ch) || (e.mask & forbidden) != 0) continue;
        if (!r.forward[static_cast<size_t>(e.to)] ||
            !r.backward[static_cast<size_t>(e.to)]) {
          continue;
        }
        if (color[static_cast<size_t>(e.to)] == 1) return true;  // back edge
        if (color[static_cast<size_t>(e.to)] == 0) {
          color[static_cast<size_t>(e.to)] = 1;
          stack.push_back({e.to, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[static_cast<size_t>(s)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Computation-pump detection by behaviour-monoid saturation

namespace {

// 2-bit reachability entries: bit 0 = reachable, bit 1 = reachable with
// at least one write on the way.
using Mat = std::vector<uint8_t>;  // n*n entries

struct Behavior {
  // LL: enter left / exit left; LR: enter left / exit right;
  // RL: enter right / exit left; RR: enter right / exit right.
  Mat ll, lr, rl, rr;
  bool write_cycle = false;

  bool operator<(const Behavior& o) const {
    if (write_cycle != o.write_cycle) return write_cycle < o.write_cycle;
    if (ll != o.ll) return ll < o.ll;
    if (lr != o.lr) return lr < o.lr;
    if (rl != o.rl) return rl < o.rl;
    return rr < o.rr;
  }
};

class PumpSearch {
 public:
  PumpSearch(const BMachine& machine, const Alphabet& alphabet)
      : m_(machine), n_(machine.num_states), alphabet_(alphabet) {}

  // The behaviour of the one-square word holding symbol c, over the
  // non-reading transitions.
  Behavior CharBehavior(Sym c) const {
    Behavior b;
    b.ll.assign(static_cast<size_t>(n_) * n_, 0);
    b.lr.assign(static_cast<size_t>(n_) * n_, 0);
    for (const BTransition& t : m_.transitions) {
      if (t.read_b != c) continue;
      if ((t.mask & kMaskReads) != 0) continue;  // pump may not read input
      uint8_t bits = 1;
      if ((t.mask & kMaskWrites) != 0) bits |= 2;
      size_t idx = static_cast<size_t>(t.from) * n_ + t.to;
      Mat& mat = (t.b_move == kBack) ? b.ll : b.lr;
      mat[idx] |= bits;
    }
    // One square: behaviour does not depend on the entry side.
    b.rl = b.ll;
    b.rr = b.lr;
    return b;
  }

  // Sequential composition w = u · v, iterating head bounces across the
  // seam.
  Behavior Compose(const Behavior& u, const Behavior& v) const {
    // Bounce graph over 2n nodes: A_q = entering u from its right in
    // state q; B_q = entering v from its left in state q.
    // Edges: A_q -> B_{q'} via u.rr; B_q -> A_{q'} via v.ll.
    const int N = 2 * n_;
    auto node_a = [&](int q) { return q; };
    auto node_b = [&](int q) { return n_ + q; };
    // Closure with write bits: closure[x*N+y] in {0,1,3}.
    Mat closure(static_cast<size_t>(N) * N, 0);
    for (int x = 0; x < N; ++x) {
      closure[static_cast<size_t>(x) * N + x] = 1;  // empty path
    }
    auto edge_bits = [&](int x, int y) -> uint8_t {
      if (x < n_ && y >= n_) {
        return u.rr[static_cast<size_t>(x) * n_ + (y - n_)];
      }
      if (x >= n_ && y < n_) {
        return v.ll[static_cast<size_t>(x - n_) * n_ + y];
      }
      return 0;
    };
    // Saturate (small graphs: simple fixpoint).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int x = 0; x < N; ++x) {
        for (int y = 0; y < N; ++y) {
          uint8_t xy = closure[static_cast<size_t>(x) * N + y];
          if (!(xy & 1)) continue;
          for (int z = 0; z < N; ++z) {
            uint8_t yz = edge_bits(y, z);
            if (!(yz & 1)) continue;
            uint8_t bits =
                static_cast<uint8_t>(1 | ((xy | yz) & 2));
            uint8_t& cell = closure[static_cast<size_t>(x) * N + z];
            if ((cell | bits) != cell) {
              cell |= bits;
              changed = true;
            }
          }
        }
      }
    }

    Behavior w;
    w.ll.assign(static_cast<size_t>(n_) * n_, 0);
    w.lr.assign(static_cast<size_t>(n_) * n_, 0);
    w.rl.assign(static_cast<size_t>(n_) * n_, 0);
    w.rr.assign(static_cast<size_t>(n_) * n_, 0);
    w.write_cycle = u.write_cycle || v.write_cycle;
    // A write-carrying cycle in the bounce graph is a pump.
    for (int x = 0; x < N && !w.write_cycle; ++x) {
      for (int y = 0; y < N; ++y) {
        uint8_t e = edge_bits(x, y);
        if ((e & 3) == 3 &&
            (closure[static_cast<size_t>(y) * N + x] & 1) != 0) {
          w.write_cycle = true;
          break;
        }
        // A plain edge on a cycle that carries a write elsewhere.
        if ((e & 1) != 0 &&
            (closure[static_cast<size_t>(y) * N + x] & 2) != 0) {
          w.write_cycle = true;
          break;
        }
      }
    }

    // Entering w from the LEFT in state q = entering u from the left.
    //  * exit left directly: u.ll
    //  * reach B via u.lr, bounce, then exit:
    //      - exit left: ... A_p with u.rl[p][q']
    //      - exit right: ... B_p with v.lr[p][q']
    auto bounce_exit = [&](int start_node, uint8_t entry_bits, Mat* out_l,
                           Mat* out_r, int q) {
      for (int z = 0; z < N; ++z) {
        uint8_t path = closure[static_cast<size_t>(start_node) * N + z];
        if (!(path & 1)) continue;
        uint8_t acc = static_cast<uint8_t>(1 | ((entry_bits | path) & 2));
        if (z < n_) {
          // A_z: may exit left of w via u.rl.
          for (int q2 = 0; q2 < n_; ++q2) {
            uint8_t leg = u.rl[static_cast<size_t>(z) * n_ + q2];
            if (!(leg & 1)) continue;
            uint8_t bits = static_cast<uint8_t>(1 | ((acc | leg) & 2));
            (*out_l)[static_cast<size_t>(q) * n_ + q2] |= bits;
          }
        } else {
          // B_z: may exit right of w via v.lr.
          for (int q2 = 0; q2 < n_; ++q2) {
            uint8_t leg = v.lr[static_cast<size_t>(z - n_) * n_ + q2];
            if (!(leg & 1)) continue;
            uint8_t bits = static_cast<uint8_t>(1 | ((acc | leg) & 2));
            (*out_r)[static_cast<size_t>(q) * n_ + q2] |= bits;
          }
        }
      }
    };

    for (int q = 0; q < n_; ++q) {
      // Direct passes.
      for (int q2 = 0; q2 < n_; ++q2) {
        w.ll[static_cast<size_t>(q) * n_ + q2] |=
            u.ll[static_cast<size_t>(q) * n_ + q2];
        w.rr[static_cast<size_t>(q) * n_ + q2] |=
            v.rr[static_cast<size_t>(q) * n_ + q2];
      }
      // Left entry reaching the seam: u.lr lands in B.
      for (int p = 0; p < n_; ++p) {
        uint8_t first = u.lr[static_cast<size_t>(q) * n_ + p];
        if (first & 1) bounce_exit(node_b(p), first, &w.ll, &w.lr, q);
      }
      // Right entry reaching the seam: v.rl lands in A.
      for (int p = 0; p < n_; ++p) {
        uint8_t first = v.rl[static_cast<size_t>(q) * n_ + p];
        if (first & 1) bounce_exit(node_a(p), first, &w.rl, &w.rr, q);
      }
    }
    return w;
  }

  Result<bool> Run(int64_t max_behaviors) {
    // Generators.
    std::vector<Behavior> sigma_gens;
    for (Sym c = 0; c < alphabet_.size(); ++c) {
      sigma_gens.push_back(CharBehavior(c));
    }
    Behavior left_end = CharBehavior(kLeftEnd);
    Behavior right_end = CharBehavior(kRightEnd);

    // BFS over reachable word behaviours.  Key: (behaviour, has ⊢, has ⊣).
    std::set<std::pair<Behavior, std::pair<bool, bool>>> seen;
    std::deque<std::pair<Behavior, std::pair<bool, bool>>> frontier;
    auto visit = [&](Behavior b, bool l, bool r) -> Result<bool> {
      if (b.write_cycle) return true;
      if (static_cast<int64_t>(seen.size()) >
          max_behaviors) {
        return Status::ResourceExhausted(
            "pump search exceeded max_pump_behaviors");
      }
      auto key = std::make_pair(std::move(b), std::make_pair(l, r));
      if (seen.insert(key).second) frontier.push_back(*seen.find(key));
      return false;
    };
    STRDB_ASSIGN_OR_RETURN(bool found, visit(left_end, true, false));
    if (found) return true;
    for (const Behavior& g : sigma_gens) {
      STRDB_ASSIGN_OR_RETURN(found, visit(g, false, false));
      if (found) return true;
    }
    while (!frontier.empty()) {
      auto [b, flags] = frontier.front();
      frontier.pop_front();
      auto [has_left, has_right] = flags;
      if (has_right) continue;  // cannot extend past ⊣
      for (const Behavior& g : sigma_gens) {
        STRDB_ASSIGN_OR_RETURN(found, visit(Compose(b, g), has_left, false));
        if (found) return true;
      }
      STRDB_ASSIGN_OR_RETURN(found,
                             visit(Compose(b, right_end), has_left, true));
      if (found) return true;
    }
    return false;
  }

 private:
  const BMachine& m_;
  int n_;
  const Alphabet& alphabet_;
};

}  // namespace

Result<bool> FindOutputPump(const BMachine& machine, const Alphabet& alphabet,
                            int64_t max_behaviors) {
  PumpSearch search(machine, alphabet);
  return search.Run(max_behaviors);
}

}  // namespace strdb
