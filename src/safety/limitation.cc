#include "safety/limitation.h"

#include <algorithm>

#include "fsa/compile.h"
#include "fsa/normalize.h"
#include "safety/behavior.h"
#include "safety/crossing.h"

namespace strdb {

int64_t LimitBound::Eval(const std::vector<int>& input_lens) const {
  int64_t rho = 1;
  for (int n : input_lens) rho += n + 1;
  int64_t out = scale;
  for (int d = 0; d < degree; ++d) out *= rho;
  return out;
}

namespace {

// The easy/hard checks for automata with no bidirectional tape
// (Theorem 5.2, the simpler half).  `fsa` must be trimmed, consistified
// and have final states without exits.
LimitationReport AnalyzeUnidirectional(const Fsa& fsa,
                                       const std::vector<bool>& is_input) {
  LimitationReport report;
  // The easy way: an accepting transition fires while some output tape
  // has not yet scanned its right endmarker — the unread tail is then
  // arbitrary, so infinitely many outputs are accepted.
  for (const Transition& t : fsa.transitions()) {
    if (!fsa.IsFinal(t.to)) continue;
    for (int o = 0; o < fsa.num_tapes(); ++o) {
      if (is_input[static_cast<size_t>(o)]) continue;
      if (t.read[static_cast<size_t>(o)] != kRightEnd) {
        report.verdict = LimitationVerdict::kUnlimitedEasy;
        report.explanation =
            "accepts while output tape " + std::to_string(o) +
            " still has an unread tail (transition " +
            std::to_string(t.from) + "->" + std::to_string(t.to) + ")";
        return report;
      }
    }
  }
  // The hard way: a cycle of non-reading transitions that includes a
  // writing transition keeps producing output without consuming input.
  // Detect with a colour DFS over the non-reading subgraph.
  auto is_reading = [&](const Transition& t) {
    for (int i = 0; i < fsa.num_tapes(); ++i) {
      if (is_input[static_cast<size_t>(i)] &&
          t.move[static_cast<size_t>(i)] != 0) {
        return true;
      }
    }
    return false;
  };
  auto is_writing = [&](const Transition& t) {
    for (int i = 0; i < fsa.num_tapes(); ++i) {
      if (!is_input[static_cast<size_t>(i)] &&
          t.move[static_cast<size_t>(i)] != 0) {
        return true;
      }
    }
    return false;
  };
  // Tarjan-style SCC via iterative Kosaraju: simpler — compute SCC ids
  // with two DFS passes over the non-reading subgraph.
  int n = fsa.num_states();
  std::vector<std::vector<int>> fwd(static_cast<size_t>(n));
  std::vector<std::vector<int>> bwd(static_cast<size_t>(n));
  for (const Transition& t : fsa.transitions()) {
    if (is_reading(t)) continue;
    fwd[static_cast<size_t>(t.from)].push_back(t.to);
    bwd[static_cast<size_t>(t.to)].push_back(t.from);
  }
  std::vector<int> order;
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int root = 0; root < n; ++root) {
    if (seen[static_cast<size_t>(root)]) continue;
    // Iterative post-order.
    std::vector<std::pair<int, size_t>> stack = {{root, 0}};
    seen[static_cast<size_t>(root)] = true;
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      if (idx < fwd[static_cast<size_t>(s)].size()) {
        int to = fwd[static_cast<size_t>(s)][idx++];
        if (!seen[static_cast<size_t>(to)]) {
          seen[static_cast<size_t>(to)] = true;
          stack.push_back({to, 0});
        }
      } else {
        order.push_back(s);
        stack.pop_back();
      }
    }
  }
  std::vector<int> scc(static_cast<size_t>(n), -1);
  int num_scc = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (scc[static_cast<size_t>(*it)] >= 0) continue;
    std::vector<int> stack = {*it};
    scc[static_cast<size_t>(*it)] = num_scc;
    while (!stack.empty()) {
      int s = stack.back();
      stack.pop_back();
      for (int from : bwd[static_cast<size_t>(s)]) {
        if (scc[static_cast<size_t>(from)] < 0) {
          scc[static_cast<size_t>(from)] = num_scc;
          stack.push_back(from);
        }
      }
    }
    ++num_scc;
  }
  for (const Transition& t : fsa.transitions()) {
    if (is_reading(t) || !is_writing(t)) continue;
    if (scc[static_cast<size_t>(t.from)] == scc[static_cast<size_t>(t.to)]) {
      report.verdict = LimitationVerdict::kUnlimitedHard;
      report.explanation =
          "output-producing loop through states " + std::to_string(t.from) +
          " and " + std::to_string(t.to) + " consumes no input";
      return report;
    }
  }
  report.verdict = LimitationVerdict::kLimited;
  report.bound.scale = std::max(1, fsa.num_transitions());
  report.bound.degree = 1;
  report.explanation =
      "no easy acceptance and no input-free writing loop: outputs are "
      "bounded by |A| * rho(inputs) (Theorem 5.2, linear case)";
  return report;
}

}  // namespace

Result<LimitationReport> AnalyzeLimitation(const Fsa& fsa,
                                           const std::vector<bool>& is_input,
                                           const LimitationOptions& options) {
  if (static_cast<int>(is_input.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument("is_input must have one entry per tape");
  }
  if (!fsa.FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "limitation analysis requires final states without outgoing "
        "transitions (CompileStringFormula automata qualify)");
  }
  bool has_output = false;
  for (bool b : is_input) has_output |= !b;
  if (!has_output) {
    LimitationReport report;
    report.verdict = LimitationVerdict::kLimited;
    report.bound = LimitBound{0, 1};
    report.explanation = "no output tapes: trivially limited";
    return report;
  }

  // Normalise: read-advice consistification makes every surviving path
  // realisable on the unidirectional tapes (property 5), and trimming
  // removes states that cannot take part in an accepting computation.
  STRDB_ASSIGN_OR_RETURN(ReadAdvisedFsa advised, ConsistifyReads(fsa));
  Fsa machine = std::move(advised.fsa);
  machine.PruneToTrim();

  LimitationReport report;
  if (machine.FinalStates().empty()) {
    report.verdict = LimitationVerdict::kEmptyLanguage;
    report.bound = LimitBound{0, 1};
    report.explanation = "L(A) is empty: vacuously limited";
    return report;
  }
  if (machine.IsFinal(machine.start())) {
    // Accepts by the empty computation: nothing constrains any tape.
    report.verdict = LimitationVerdict::kUnlimitedEasy;
    report.explanation = "the start state is final: outputs unconstrained";
    return report;
  }

  // Classify tapes on the trimmed machine (dead transitions must not
  // count towards bidirectionality).
  std::vector<int> bidi_tapes;
  for (int i = 0; i < machine.num_tapes(); ++i) {
    if (machine.IsTapeBidirectional(i)) bidi_tapes.push_back(i);
  }
  if (bidi_tapes.empty()) {
    return AnalyzeUnidirectional(machine, is_input);
  }
  if (bidi_tapes.size() > 1) {
    return Status::Unimplemented(
        "limitation with two or more bidirectional tapes is undecidable "
        "in general (Theorem 5.1); this analyser handles the "
        "right-restricted class");
  }

  const int b = bidi_tapes[0];
  const bool b_is_output = !is_input[static_cast<size_t>(b)];
  STRDB_ASSIGN_OR_RETURN(BMachine bmachine,
                         BuildBMachine(machine, b, is_input));
  // The questions of Theorem 5.2 are answered on the two-way behaviour
  // monoid of the normalised machine — the canonical counterpart of the
  // paper's crossing-sequence automaton A'' (see safety/behavior.h).
  BehaviorEngine engine(bmachine, machine.alphabet());
  const int64_t budget = options.max_behaviors;
  STRDB_ASSIGN_OR_RETURN(bool nonempty,
                         engine.NonemptyWith(0, nullptr, budget));
  if (!nonempty) {
    report.verdict = LimitationVerdict::kEmptyLanguage;
    report.bound = LimitBound{0, 1};
    report.explanation = "L(A) is empty (no accepting crossing picture)";
    return report;
  }

  // Easy way on each unidirectional output.
  for (int o = 0; o < bmachine.num_uni_outputs; ++o) {
    uint32_t bit = 1u << (kMaskEasyShift + o);
    STRDB_ASSIGN_OR_RETURN(bool easy,
                           engine.NonemptyWith(bit, nullptr, budget));
    if (easy) {
      report.verdict = LimitationVerdict::kUnlimitedEasy;
      report.explanation =
          "accepts while unidirectional output #" + std::to_string(o) +
          " still has an unread tail";
      return report;
    }
  }
  if (b_is_output) {
    // Easy way on b itself: some accepting run never genuinely reads
    // b's right endmarker (only cleanup winding and dancing touch ⊣),
    // so b's tail is unconstrained.
    auto no_real_end = [](const BTransition& t) {
      return !((t.mask & kMaskReal) != 0 && t.read_b == kRightEnd);
    };
    STRDB_ASSIGN_OR_RETURN(bool easy_b,
                           engine.NonemptyWith(0, no_real_end, budget));
    if (easy_b) {
      report.verdict = LimitationVerdict::kUnlimitedEasy;
      report.explanation =
          "accepts without ever genuinely reading the bidirectional "
          "output's right endmarker";
      return report;
    }
    // Hard way on b: a read-free pumpable mid-section grows b without
    // consuming input (the A''-cycle of the paper).
    STRDB_ASSIGN_OR_RETURN(bool hard_b, engine.HasGrowingPump(budget));
    if (hard_b) {
      report.verdict = LimitationVerdict::kUnlimitedHard;
      report.explanation =
          "an input-free pumpable section grows the bidirectional "
          "output square by square";
      return report;
    }
  }
  // Hard way on unidirectional outputs: a computation pump that leaves
  // every input head (and b's window) in place while writing output.
  if (bmachine.num_uni_outputs > 0) {
    STRDB_ASSIGN_OR_RETURN(bool pump,
                           FindOutputPump(bmachine, machine.alphabet(),
                                          budget));
    if (pump) {
      report.verdict = LimitationVerdict::kUnlimitedHard;
      report.explanation =
          "a two-way computation pump writes unidirectional output "
          "without consuming input (Figs. 9-12)";
      return report;
    }
  }

  report.verdict = LimitationVerdict::kLimited;
  report.bound.scale =
      std::max<int64_t>(1, static_cast<int64_t>(bmachine.transitions.size()));
  report.bound.degree = 2;
  report.explanation =
      "right-restricted and free of easy/hard violations: outputs are "
      "bounded by scale * rho(inputs)^2 (Theorem 5.2, quadratic case)";
  return report;
}

Result<bool> LanguageNonempty(const Fsa& fsa,
                              const LimitationOptions& options) {
  if (!fsa.FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "nonemptiness requires final states without outgoing transitions");
  }
  STRDB_ASSIGN_OR_RETURN(ReadAdvisedFsa advised, ConsistifyReads(fsa));
  Fsa machine = std::move(advised.fsa);
  machine.PruneToTrim();
  if (machine.FinalStates().empty()) return false;
  std::vector<int> bidi_tapes;
  for (int i = 0; i < machine.num_tapes(); ++i) {
    if (machine.IsTapeBidirectional(i)) bidi_tapes.push_back(i);
  }
  if (bidi_tapes.empty()) {
    // Property 5 (read consistency) makes every surviving start-to-final
    // path realisable: graph reachability decides.
    return true;
  }
  if (bidi_tapes.size() > 1) {
    return Status::Unimplemented(
        "nonemptiness beyond one bidirectional tape (use the bounded "
        "generator instead)");
  }
  std::vector<bool> all_inputs(static_cast<size_t>(machine.num_tapes()),
                               true);
  STRDB_ASSIGN_OR_RETURN(BMachine bmachine,
                         BuildBMachine(machine, bidi_tapes[0], all_inputs));
  BehaviorEngine engine(bmachine, machine.alphabet());
  return engine.NonemptyWith(0, nullptr, options.max_behaviors);
}

Result<LimitationReport> AnalyzeStringFormulaLimitation(
    const StringFormula& formula, const Alphabet& alphabet,
    const std::vector<std::string>& inputs,
    const LimitationOptions& options) {
  std::vector<std::string> vars = formula.Vars();
  STRDB_ASSIGN_OR_RETURN(Fsa fsa, CompileStringFormula(formula, alphabet));
  std::vector<bool> is_input(vars.size(), false);
  for (const std::string& name : inputs) {
    auto it = std::find(vars.begin(), vars.end(), name);
    if (it == vars.end()) {
      return Status::NotFound("input variable '" + name +
                              "' does not occur in the formula");
    }
    is_input[static_cast<size_t>(it - vars.begin())] = true;
  }
  return AnalyzeLimitation(fsa, is_input, options);
}

}  // namespace strdb
