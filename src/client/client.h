#ifndef STRDB_CLIENT_CLIENT_H_
#define STRDB_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/io/env.h"
#include "core/result.h"
#include "core/rng.h"
#include "server/transport.h"

namespace strdb {

// One server command's verdict as the client sees it.  A typed server
// error ("err <code> <msg>") is a *successful* call with ok == false —
// the protocol worked; the command failed.  Only transport-level
// exhaustion (could not get an answer within the retry budget) comes
// back as a non-OK Result from StrdbClient::Call.
struct ServerResponse {
  bool ok = false;
  std::string body;           // lines before the terminator (may be empty)
  std::string error_code;     // "deadline-exceeded", ... ("" when ok)
  std::string error_message;  // rest of the err line ("" when ok)
};

struct ClientOptions {
  // Idempotent-request identity: when non-empty, every mutation
  // (rel/insert/drop) is sent as "req <client_id>:<seq> <command>" with
  // a per-client monotonically increasing seq, and a retry re-sends the
  // SAME tag — the server's applied window then guarantees exactly-once
  // application across lost acks, reconnects and server restarts.
  std::string client_id;
  // Attempts per Call (connect + send + read-response counts as one).
  int max_attempts = 8;
  // Capped exponential backoff with equal jitter between attempts,
  // deterministic under jitter_seed (same discipline as RetryPolicy in
  // storage/retry.h).
  int64_t backoff_initial_ms = 10;
  int64_t backoff_cap_ms = 2000;
  double jitter = 0.25;
  uint64_t jitter_seed = 0x5eedfULL;
  // Sleeps route through this seam (nullptr = Env::Posix()), so tests
  // can observe the backoff schedule without waiting it out.
  Env* env = nullptr;
  std::string host = "127.0.0.1";
};

// The resilient client: newline-framed commands over a ClientTransport,
// with reconnect-on-drop, capped jittered backoff and idempotent
// request IDs for durable mutations.  Call() retries until it has a
// complete framed response or the attempt budget is spent; because a
// mutation retry carries the same request tag, "retry until acked" is
// safe even when the ack — not the request — was what got lost.
//
// Not thread-safe: one StrdbClient per session/thread (the per-client
// seq window the server keeps assumes requests are serial per client,
// which this client enforces by construction).
class StrdbClient {
 public:
  // Asks for the server's current port before every (re)connect — the
  // seam that lets a chaos harness restart the server on a new
  // ephemeral port mid-session.  Returning a non-OK Result means "no
  // endpoint right now"; the client backs off and asks again.
  using EndpointProvider = std::function<Result<int>()>;

  // `transport` may be nullptr for the real TCP transport; tests pass a
  // FaultyTransport.
  StrdbClient(EndpointProvider provider, ClientOptions options = {},
              std::unique_ptr<ClientTransport> transport = nullptr);
  // Fixed-port convenience.
  StrdbClient(int port, ClientOptions options = {},
              std::unique_ptr<ClientTransport> transport = nullptr);

  ~StrdbClient();
  StrdbClient(const StrdbClient&) = delete;
  StrdbClient& operator=(const StrdbClient&) = delete;

  // Executes one command line (no trailing newline) and returns the
  // framed response.  Mutations are tagged (see ClientOptions) and any
  // command is retried across reconnects — safe because mutations dedup
  // server-side and everything else is read-only.
  Result<ServerResponse> Call(const std::string& line);

  // Drops the connection (the next Call reconnects).
  void Disconnect();

  // Observability for tests: reconnect attempts made and total backoff
  // milliseconds requested so far.
  int64_t reconnects() const { return reconnects_; }
  int64_t backoff_ms_total() const { return backoff_ms_total_; }
  // The seq the next tagged mutation will use.
  uint64_t next_seq() const { return next_seq_; }

 private:
  // True when `line` is a durable mutation that must carry a tag.
  static bool IsMutation(const std::string& line);
  // One attempt: ensure connected, send, read a full framed response.
  Result<ServerResponse> Attempt(const std::string& wire);
  Result<ServerResponse> ReadResponse();
  void Backoff(int attempt);

  EndpointProvider provider_;
  ClientOptions options_;
  std::unique_ptr<ClientTransport> transport_;
  Env* env_;
  Rng rng_;
  std::string buffer_;  // bytes received past the last complete response
  uint64_t next_seq_ = 1;
  int64_t reconnects_ = 0;
  int64_t backoff_ms_total_ = 0;
};

}  // namespace strdb

#endif  // STRDB_CLIENT_CLIENT_H_
