#include "client/client.h"

#include <algorithm>
#include <utility>

namespace strdb {

namespace {

// First whitespace-delimited word of `line`.
std::string FirstWord(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) return std::string();
  size_t end = line.find_first_of(" \t", begin);
  return line.substr(begin, end == std::string::npos ? std::string::npos
                                                     : end - begin);
}

}  // namespace

StrdbClient::StrdbClient(EndpointProvider provider, ClientOptions options,
                         std::unique_ptr<ClientTransport> transport)
    : provider_(std::move(provider)),
      options_(std::move(options)),
      transport_(std::move(transport)),
      env_(options_.env != nullptr ? options_.env : Env::Posix()),
      rng_(options_.jitter_seed) {
  if (transport_ == nullptr) {
    transport_ = std::make_unique<TcpClientTransport>();
  }
}

StrdbClient::StrdbClient(int port, ClientOptions options,
                         std::unique_ptr<ClientTransport> transport)
    : StrdbClient([port]() -> Result<int> { return port; },
                  std::move(options), std::move(transport)) {}

StrdbClient::~StrdbClient() { Disconnect(); }

void StrdbClient::Disconnect() {
  transport_->Close();
  buffer_.clear();  // half-received frames die with the connection
}

bool StrdbClient::IsMutation(const std::string& line) {
  std::string word = FirstWord(line);
  return word == "rel" || word == "insert" || word == "drop";
}

void StrdbClient::Backoff(int attempt) {
  // Capped doubling with equal jitter, same discipline as RetryPolicy
  // (storage/retry.h): deterministic under jitter_seed.
  int64_t base = options_.backoff_initial_ms;
  for (int i = 0; i < attempt && base < options_.backoff_cap_ms; ++i) {
    base *= 2;
  }
  base = std::min(base, options_.backoff_cap_ms);
  int64_t sleep = base;
  if (options_.jitter > 0 && base > 0) {
    int64_t spread = static_cast<int64_t>(base * options_.jitter);
    if (spread > 0) {
      sleep = base - spread +
              static_cast<int64_t>(
                  rng_.Below(static_cast<uint64_t>(2 * spread + 1)));
    }
  }
  if (sleep > 0) {
    backoff_ms_total_ += sleep;
    env_->SleepMs(sleep);
  }
}

Result<ServerResponse> StrdbClient::ReadResponse() {
  // A response frame is body lines followed by a terminator line that
  // starts with "ok" or "err".  Scan whole lines as they accumulate;
  // keep any bytes past the terminator for the next call (the server
  // never pipelines, but a faulty transport can glue frames together).
  size_t scanned = 0;
  for (;;) {
    size_t newline;
    while ((newline = buffer_.find('\n', scanned)) != std::string::npos) {
      std::string line = buffer_.substr(scanned, newline - scanned);
      scanned = newline + 1;
      std::string word = FirstWord(line);
      if (word == "ok" || word == "err") {
        ServerResponse response;
        response.ok = (word == "ok");
        // Everything before this line is body.
        response.body = buffer_.substr(0, scanned - line.size() - 1);
        if (!response.ok) {
          size_t code_begin = line.find_first_not_of(" \t", 3);
          if (code_begin != std::string::npos) {
            size_t code_end = line.find_first_of(" \t", code_begin);
            response.error_code =
                line.substr(code_begin, code_end == std::string::npos
                                            ? std::string::npos
                                            : code_end - code_begin);
            if (code_end != std::string::npos) {
              size_t msg_begin = line.find_first_not_of(" \t", code_end);
              if (msg_begin != std::string::npos) {
                response.error_message = line.substr(msg_begin);
              }
            }
          }
        }
        buffer_.erase(0, scanned);
        return response;
      }
    }
    Result<std::string> got = transport_->Recv();
    if (!got.ok()) return got.status();
    if (got->empty()) {
      // Clean EOF mid-frame: the connection died before the terminator
      // arrived.  Transient — the caller reconnects and retries.
      return Status::Unavailable("connection closed mid-response");
    }
    buffer_ += *got;
  }
}

Result<ServerResponse> StrdbClient::Attempt(const std::string& wire) {
  if (!transport_->connected()) {
    Result<int> port = provider_();
    if (!port.ok()) return port.status();
    Status connected = transport_->Connect(options_.host, *port);
    if (!connected.ok()) return connected;
    ++reconnects_;
    buffer_.clear();
  }
  Status sent = transport_->Send(wire);
  if (!sent.ok()) return sent;
  return ReadResponse();
}

Result<ServerResponse> StrdbClient::Call(const std::string& line) {
  std::string wire = line;
  if (!options_.client_id.empty() && IsMutation(line)) {
    // One seq per logical request; every retry below re-sends the SAME
    // tag, which is what lets the server dedup a retry whose original
    // ack got lost.
    wire = "req " + options_.client_id + ":" +
           std::to_string(next_seq_++) + " " + line;
  }
  wire += '\n';

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) Backoff(attempt - 1);
    Result<ServerResponse> got = Attempt(wire);
    if (got.ok()) return got;
    last = got.status();
    if (last.code() != StatusCode::kUnavailable) return last;
    // The connection is suspect; force a clean reconnect next attempt.
    Disconnect();
  }
  return Status::Unavailable("retries exhausted after " +
                             std::to_string(options_.max_attempts) +
                             " attempts: " + std::string(last.message()));
}

}  // namespace strdb
