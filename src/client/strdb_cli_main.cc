// strdb_cli: a resilient line-mode client for strdb_server.
//
//   $ ./strdb_cli [flags] < commands.txt
//
//   --port N            server port on 127.0.0.1 (default 7411)
//   --host H            server address (default 127.0.0.1)
//   --client-id ID      tag durable mutations (rel/insert/drop) with
//                       idempotent request IDs "req ID:SEQ ..." so a
//                       retry after a lost ack applies exactly once
//                       (default: none — mutations are untagged)
//   --max-attempts N    attempts per command before giving up (default 8)
//   --backoff-ms N      initial reconnect backoff, doubles per retry
//                       capped at --backoff-cap-ms (defaults 10/2000)
//   --backoff-cap-ms N
//
// Reads one command per line from stdin, prints each response's body
// followed by its "ok" / "err <code> <msg>" terminator, and keeps going
// through server restarts: a dropped connection is retried with capped
// jittered backoff, and tagged mutations survive retry without double
// application.  Exits 0 when stdin ends, 1 if any command exhausted its
// retry budget.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/client.h"

namespace {

int64_t ParseInt(const char* flag, const char* text) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace strdb;

  int port = 7411;
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<int>(ParseInt("--port", next("--port")));
    } else if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--client-id") {
      options.client_id = next("--client-id");
    } else if (arg == "--max-attempts") {
      options.max_attempts = static_cast<int>(
          ParseInt("--max-attempts", next("--max-attempts")));
    } else if (arg == "--backoff-ms") {
      options.backoff_initial_ms =
          ParseInt("--backoff-ms", next("--backoff-ms"));
    } else if (arg == "--backoff-cap-ms") {
      options.backoff_cap_ms =
          ParseInt("--backoff-cap-ms", next("--backoff-cap-ms"));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  StrdbClient client(port, options);
  bool any_failed = false;
  std::string line;
  for (int c = std::getchar(); c != EOF; c = std::getchar()) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!line.empty()) {
      Result<ServerResponse> got = client.Call(line);
      if (!got.ok()) {
        std::fprintf(stderr, "transport: %s\n",
                     got.status().ToString().c_str());
        any_failed = true;
      } else {
        std::fputs(got->body.c_str(), stdout);
        if (got->ok) {
          std::puts("ok");
        } else {
          std::printf("err %s %s\n", got->error_code.c_str(),
                      got->error_message.c_str());
        }
        std::fflush(stdout);
      }
    }
    line.clear();
  }
  return any_failed ? 1 : 0;
}
