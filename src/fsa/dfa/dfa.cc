#include "fsa/dfa/dfa.h"

#include <algorithm>
#include <map>
#include <utility>

namespace strdb {

namespace {

// Rank of a tape symbol in the packed read-key alphabet, matching the
// kernel's packing: character ids first, then ⊢, then ⊣.
inline int32_t RankOf(Sym s, int sigma) {
  if (s == kLeftEnd) return sigma;
  if (s == kRightEnd) return sigma + 1;
  return s;
}

constexpr int32_t kAcceptTmp = -1;
constexpr int32_t kDeadTmp = -2;
constexpr int64_t kMaxKeys = int64_t{1} << 20;
constexpr int kMaxNextStates = (1 << 24) - 1;  // next fits 24 bits

}  // namespace

Result<Dfa> BuildDfa(const Fsa& fsa, const DfaBuildOptions& options) {
  if (fsa.NumBidirectionalTapes() > 0) {
    return Status::Unimplemented(
        "two-way automaton has no synchronized-chain DFA form");
  }
  const int k = fsa.num_tapes();
  if (k > 8) {
    return Status::Unimplemented("DFA move mask supports at most 8 tapes");
  }
  Dfa dfa;
  dfa.alphabet = fsa.alphabet();
  const int sigma = dfa.alphabet.size();
  dfa.num_tapes = k;
  dfa.radix = sigma + 2;
  dfa.source_states = fsa.num_states();
  dfa.pow.resize(static_cast<size_t>(k));
  int64_t keys = 1;
  for (int i = 0; i < k; ++i) {
    dfa.pow[static_cast<size_t>(i)] = static_cast<int32_t>(keys);
    keys *= dfa.radix;
    if (keys > kMaxKeys) {
      return Status::ResourceExhausted(
          "read-key space (|Sigma|+2)^k exceeds the DFA table cap");
    }
  }
  if (keys * 4 * 2 > options.max_table_bytes) {
    return Status::ResourceExhausted("DFA row table exceeds the byte cap");
  }
  const int32_t num_keys = static_cast<int32_t>(keys);
  dfa.num_keys = num_keys;
  std::fill(dfa.char_rank, dfa.char_rank + 256, int16_t{-1});
  for (Sym s = 0; s < sigma; ++s) {
    dfa.char_rank[static_cast<unsigned char>(dfa.alphabet.CharOf(s))] = s;
  }

  // Per-transition read key and move mask (bit i = head i advances).
  const std::vector<Transition>& trs = fsa.transitions();
  std::vector<int32_t> tkey(trs.size());
  std::vector<uint8_t> tmask(trs.size());
  for (size_t t = 0; t < trs.size(); ++t) {
    int32_t key = 0;
    uint8_t mask = 0;
    for (int i = 0; i < k; ++i) {
      key += RankOf(trs[t].read[static_cast<size_t>(i)], sigma) *
             dfa.pow[static_cast<size_t>(i)];
      if (trs[t].move[static_cast<size_t>(i)] == kFwd) {
        mask |= static_cast<uint8_t>(1u << i);
      }
    }
    tkey[t] = key;
    tmask[t] = mask;
  }

  // --- subset construction over (subset, key) rows --------------------------
  std::map<std::vector<int32_t>, int32_t> subset_id;
  std::vector<std::vector<int32_t>> subsets;
  std::vector<int32_t> tmp_next;  // subset-major rows; ids or kAcceptTmp/kDeadTmp
  std::vector<uint8_t> tmp_mask;
  auto intern = [&](std::vector<int32_t> states) -> Result<int32_t> {
    auto it = subset_id.find(states);
    if (it != subset_id.end()) return it->second;
    if (static_cast<int>(subsets.size()) >= options.max_states ||
        static_cast<int>(subsets.size()) >= kMaxNextStates - 2) {
      return Status::ResourceExhausted(
          "subset construction exceeds " +
          std::to_string(options.max_states) + " DFA states");
    }
    if ((static_cast<int64_t>(subsets.size()) + 3) * keys * 4 >
        options.max_table_bytes) {
      return Status::ResourceExhausted("DFA row table exceeds the byte cap");
    }
    int32_t id = static_cast<int32_t>(subsets.size());
    subset_id.emplace(states, id);
    subsets.push_back(std::move(states));
    tmp_next.insert(tmp_next.end(), static_cast<size_t>(num_keys), kDeadTmp);
    tmp_mask.insert(tmp_mask.end(), static_cast<size_t>(num_keys), 0);
    return id;
  };
  STRDB_ASSIGN_OR_RETURN(int32_t start_id,
                         intern({static_cast<int32_t>(fsa.start())}));

  std::vector<uint8_t> mark(static_cast<size_t>(fsa.num_states()), 0);
  std::vector<int32_t> closure;
  std::vector<int32_t> moved;
  for (int32_t sid = 0; sid < static_cast<int32_t>(subsets.size()); ++sid) {
    for (int32_t key = 0; key < num_keys; ++key) {
      // Key-dependent ε-closure: chase the stationary transitions
      // applicable on this key to a fixpoint.
      closure.clear();
      for (int32_t q : subsets[static_cast<size_t>(sid)]) {
        if (!mark[static_cast<size_t>(q)]) {
          mark[static_cast<size_t>(q)] = 1;
          closure.push_back(q);
        }
      }
      for (size_t head = 0; head < closure.size(); ++head) {
        for (int t : fsa.TransitionsFrom(closure[head])) {
          if (tkey[static_cast<size_t>(t)] != key ||
              tmask[static_cast<size_t>(t)] != 0) {
            continue;
          }
          int32_t to = trs[static_cast<size_t>(t)].to;
          if (!mark[static_cast<size_t>(to)]) {
            mark[static_cast<size_t>(to)] = 1;
            closure.push_back(to);
          }
        }
      }
      // Stuck acceptance, then the (unique) move step.
      bool accepts = false;
      int move_mask = -1;
      bool conflict = false;
      moved.clear();
      for (int32_t q : closure) {
        bool any_here = false;
        for (int t : fsa.TransitionsFrom(q)) {
          if (tkey[static_cast<size_t>(t)] != key) continue;
          any_here = true;
          uint8_t m = tmask[static_cast<size_t>(t)];
          if (m == 0) continue;  // stationary: already folded into closure
          if (move_mask < 0) {
            move_mask = m;
          } else if (move_mask != m) {
            conflict = true;
          }
          moved.push_back(trs[static_cast<size_t>(t)].to);
        }
        if (!any_here && fsa.IsFinal(q)) accepts = true;
      }
      for (int32_t q : closure) mark[static_cast<size_t>(q)] = 0;
      size_t row = static_cast<size_t>(sid) * static_cast<size_t>(num_keys) +
                   static_cast<size_t>(key);
      if (accepts) {
        tmp_next[row] = kAcceptTmp;
        continue;
      }
      if (moved.empty()) continue;  // stays kDeadTmp
      if (conflict) {
        return Status::Unimplemented(
            "nondeterministic head schedule: a reachable (subset, key) row "
            "mixes distinct move vectors");
      }
      std::sort(moved.begin(), moved.end());
      moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
      STRDB_ASSIGN_OR_RETURN(int32_t next, intern(moved));
      tmp_next[row] = next;
      tmp_mask[row] = static_cast<uint8_t>(move_mask);
    }
  }

  // Resolve the temporary ids: subsets first, then accept, then dead.
  const int32_t n_sub = static_cast<int32_t>(subsets.size());
  const int32_t pre_accept = n_sub;
  const int32_t pre_dead = n_sub + 1;
  const int32_t pre_n = n_sub + 2;
  std::vector<int32_t> next(static_cast<size_t>(pre_n) *
                            static_cast<size_t>(num_keys));
  std::vector<uint8_t> mask(next.size(), 0);
  for (size_t r = 0; r < tmp_next.size(); ++r) {
    next[r] = tmp_next[r] == kAcceptTmp  ? pre_accept
              : tmp_next[r] == kDeadTmp  ? pre_dead
                                         : tmp_next[r];
    mask[r] = tmp_mask[r];
  }
  for (int32_t s = pre_accept; s <= pre_dead; ++s) {
    for (int32_t key = 0; key < num_keys; ++key) {
      next[static_cast<size_t>(s) * static_cast<size_t>(num_keys) +
           static_cast<size_t>(key)] = s;
    }
  }
  dfa.stats.states_before_min = pre_n;
  dfa.stats.num_keys = num_keys;

  // --- minimisation ---------------------------------------------------------
  // Pre-collapse: a state from which the accept state is unreachable is
  // behaviourally the dead state.  Reverse BFS over the row edges.
  std::vector<uint8_t> reaches(static_cast<size_t>(pre_n), 0);
  {
    std::vector<int32_t> pred_cnt(static_cast<size_t>(pre_n) + 1, 0);
    for (size_t r = 0; r < next.size(); ++r) {
      ++pred_cnt[static_cast<size_t>(next[r]) + 1];
    }
    for (int32_t s = 0; s < pre_n; ++s) {
      pred_cnt[static_cast<size_t>(s) + 1] += pred_cnt[static_cast<size_t>(s)];
    }
    std::vector<int32_t> preds(next.size());
    std::vector<int32_t> fill(pred_cnt.begin(), pred_cnt.end() - 1);
    for (size_t r = 0; r < next.size(); ++r) {
      preds[static_cast<size_t>(fill[static_cast<size_t>(next[r])]++)] =
          static_cast<int32_t>(r / static_cast<size_t>(num_keys));
    }
    std::vector<int32_t> queue;
    reaches[static_cast<size_t>(pre_accept)] = 1;
    queue.push_back(pre_accept);
    for (size_t head = 0; head < queue.size(); ++head) {
      int32_t s = queue[head];
      for (int32_t p = pred_cnt[static_cast<size_t>(s)];
           p < pred_cnt[static_cast<size_t>(s) + 1]; ++p) {
        int32_t from = preds[static_cast<size_t>(p)];
        if (!reaches[static_cast<size_t>(from)]) {
          reaches[static_cast<size_t>(from)] = 1;
          queue.push_back(from);
        }
      }
    }
  }

  // Partition refinement over (move, class(next)) row signatures, to a
  // fixpoint.  Initial classes: accept | dead (every non-accept-reaching
  // state) | live.  Same fixpoint Hopcroft's splitter queue reaches.
  std::vector<int32_t> cls(static_cast<size_t>(pre_n));
  for (int32_t s = 0; s < pre_n; ++s) {
    cls[static_cast<size_t>(s)] = s == pre_accept                   ? 0
                                  : !reaches[static_cast<size_t>(s)] ? 1
                                                                     : 2;
  }
  int32_t num_classes = 3;
  std::vector<int32_t> sig;
  for (;;) {
    std::map<std::vector<int32_t>, int32_t> sig_id;
    std::vector<int32_t> new_cls(static_cast<size_t>(pre_n));
    for (int32_t s = 0; s < pre_n; ++s) {
      sig.clear();
      sig.push_back(cls[static_cast<size_t>(s)]);
      if (s != pre_accept && reaches[static_cast<size_t>(s)]) {
        size_t base =
            static_cast<size_t>(s) * static_cast<size_t>(num_keys);
        for (int32_t key = 0; key < num_keys; ++key) {
          int32_t nx = next[base + static_cast<size_t>(key)];
          sig.push_back((static_cast<int32_t>(mask[base +
                                                   static_cast<size_t>(key)])
                         << 24) |
                        cls[static_cast<size_t>(nx)]);
        }
      }
      auto it = sig_id.find(sig);
      if (it == sig_id.end()) {
        it = sig_id.emplace(sig, static_cast<int32_t>(sig_id.size())).first;
      }
      new_cls[static_cast<size_t>(s)] = it->second;
    }
    int32_t count = static_cast<int32_t>(sig_id.size());
    cls.swap(new_cls);
    if (count == num_classes) break;
    num_classes = count;
  }

  // Rebuild over class representatives.  New ids by first occurrence;
  // the absorbing pair keeps genuine self-loop rows whatever its
  // members' original rows looked like.
  std::vector<int32_t> new_id(static_cast<size_t>(num_classes), -1);
  std::vector<int32_t> rep;
  for (int32_t s = 0; s < pre_n; ++s) {
    int32_t c = cls[static_cast<size_t>(s)];
    if (new_id[static_cast<size_t>(c)] < 0) {
      new_id[static_cast<size_t>(c)] = static_cast<int32_t>(rep.size());
      rep.push_back(s);
    }
  }
  dfa.num_states = num_classes;
  dfa.start = new_id[static_cast<size_t>(cls[static_cast<size_t>(start_id)])];
  dfa.accept_state =
      new_id[static_cast<size_t>(cls[static_cast<size_t>(pre_accept)])];
  dfa.dead_state =
      new_id[static_cast<size_t>(cls[static_cast<size_t>(pre_dead)])];
  dfa.rows.assign(static_cast<size_t>(num_classes) *
                      static_cast<size_t>(num_keys),
                  0);
  for (int32_t c = 0; c < num_classes; ++c) {
    int32_t nid = new_id[static_cast<size_t>(c)];
    size_t out = static_cast<size_t>(nid) * static_cast<size_t>(num_keys);
    if (nid == dfa.accept_state || nid == dfa.dead_state) {
      for (int32_t key = 0; key < num_keys; ++key) {
        dfa.rows[out + static_cast<size_t>(key)] =
            static_cast<uint32_t>(nid);
      }
      continue;
    }
    size_t in = static_cast<size_t>(rep[static_cast<size_t>(nid)]) *
                static_cast<size_t>(num_keys);
    for (int32_t key = 0; key < num_keys; ++key) {
      int32_t nx = new_id[static_cast<size_t>(
          cls[static_cast<size_t>(next[in + static_cast<size_t>(key)])])];
      dfa.rows[out + static_cast<size_t>(key)] =
          (static_cast<uint32_t>(mask[in + static_cast<size_t>(key)]) << 24) |
          static_cast<uint32_t>(nx);
    }
  }
  dfa.stats.states_after_min = num_classes;
  return dfa;
}

namespace {

// Head phases of the density walk.  kAtStart reads ⊢ surely; kInString
// reads ⊣ with the geometric stop probability and a character
// otherwise; kAtEnd reads ⊣ surely.  The phase is committed the moment
// a digit is *chosen*, so a head parked on ⊣ keeps reading ⊣ instead of
// re-rolling the string length.
enum Phase : int { kAtStart = 0, kInString = 1, kAtEnd = 2 };

struct DigitChoice {
  int32_t rank = 0;
  double prob = 0;
  int next_phase = kInString;
};

}  // namespace

Result<double> AcceptanceDensity(const Dfa& dfa,
                                 const DensityOptions& options) {
  const int k = dfa.num_tapes;
  const int sigma = dfa.radix - 2;
  if (k <= 0 || k > 8 || sigma <= 0 || dfa.num_states <= 0) {
    return Status::InvalidArgument("density: degenerate automaton");
  }
  // Per-tape digit menus by phase.  kAtStart and kAtEnd are singletons;
  // kInString lists ⊣ plus every character with positive weight.
  std::vector<std::vector<DigitChoice>> in_string(static_cast<size_t>(k));
  for (int t = 0; t < k; ++t) {
    double len = t < static_cast<int>(options.expected_len.size())
                     ? options.expected_len[static_cast<size_t>(t)]
                     : 2.0;
    if (!(len >= 0) || len > 1e6) len = 2.0;
    const double p_end = 1.0 / (1.0 + len);
    // Character weights folded through char_rank: several bytes can
    // share a rank; outside-Σ bytes are dropped.
    std::vector<double> by_rank(static_cast<size_t>(sigma), 0.0);
    double total = 0;
    if (t < static_cast<int>(options.char_weight.size())) {
      const std::vector<double>& w = options.char_weight[static_cast<size_t>(t)];
      for (size_t b = 0; b < w.size() && b < 256; ++b) {
        int16_t rank = dfa.char_rank[b];
        if (rank < 0 || w[b] <= 0) continue;
        by_rank[static_cast<size_t>(rank)] += w[b];
        total += w[b];
      }
    }
    if (total <= 0) {
      std::fill(by_rank.begin(), by_rank.end(), 1.0);
      total = static_cast<double>(sigma);
    }
    std::vector<DigitChoice>& menu = in_string[static_cast<size_t>(t)];
    menu.push_back({static_cast<int32_t>(sigma + 1), p_end, kAtEnd});
    for (int r = 0; r < sigma; ++r) {
      if (by_rank[static_cast<size_t>(r)] <= 0) continue;
      menu.push_back({static_cast<int32_t>(r),
                      (1.0 - p_end) * by_rank[static_cast<size_t>(r)] / total,
                      kInString});
    }
  }

  // Sparse distribution over state·3^k + phase-code.
  int64_t pow3 = 1;
  for (int t = 0; t < k; ++t) pow3 *= 3;
  std::map<int64_t, double> dist;
  dist[static_cast<int64_t>(dfa.start) * pow3] = 1.0;  // all heads at ⊢
  double accepted = 0, dead = 0;
  int64_t work = 0;

  std::vector<DigitChoice> single(1);
  for (int step = 0; step < options.max_steps && !dist.empty(); ++step) {
    std::map<int64_t, double> next_dist;
    for (const auto& [code, mass] : dist) {
      const int32_t state = static_cast<int32_t>(code / pow3);
      int64_t phase_code = code % pow3;
      int phases[8];
      for (int t = 0; t < k; ++t) {
        phases[t] = static_cast<int>(phase_code % 3);
        phase_code /= 3;
      }
      // Enumerate digit combinations tape by tape.
      struct Frame {
        int32_t key;
        int64_t phases;  // packed base-3, little-endian by tape
        double prob;
      };
      std::vector<Frame> combos = {{0, 0, 1.0}};
      for (int t = 0; t < k; ++t) {
        const std::vector<DigitChoice>* menu;
        if (phases[t] == kAtStart) {
          single[0] = {static_cast<int32_t>(sigma), 1.0, kAtStart};
          menu = &single;
        } else if (phases[t] == kAtEnd) {
          single[0] = {static_cast<int32_t>(sigma + 1), 1.0, kAtEnd};
          menu = &single;
        } else {
          menu = &in_string[static_cast<size_t>(t)];
        }
        std::vector<Frame> grown;
        grown.reserve(combos.size() * menu->size());
        int64_t tape_pow = 1;
        for (int i = 0; i < t; ++i) tape_pow *= 3;
        for (const Frame& f : combos) {
          for (const DigitChoice& d : *menu) {
            grown.push_back(
                {f.key + d.rank * dfa.pow[static_cast<size_t>(t)],
                 f.phases + static_cast<int64_t>(d.next_phase) * tape_pow,
                 f.prob * d.prob});
          }
        }
        combos = std::move(grown);
        work += static_cast<int64_t>(combos.size());
        if (work > options.max_work) {
          return Status::ResourceExhausted("density: work guard exceeded");
        }
      }
      for (const Frame& f : combos) {
        const uint32_t row =
            dfa.rows[static_cast<size_t>(state) *
                         static_cast<size_t>(dfa.num_keys) +
                     static_cast<size_t>(f.key)];
        const int32_t next_state = static_cast<int32_t>(row & 0xFFFFFF);
        const uint32_t move_mask = row >> 24;
        const double p = mass * f.prob;
        if (p <= 0) continue;
        if (next_state == dfa.accept_state) {
          accepted += p;
          continue;
        }
        if (next_state == dfa.dead_state) {
          dead += p;
          continue;
        }
        // Advancing off ⊢ enters the string; every other advance is
        // already reflected in the committed phase (geometric lengths
        // are memoryless, so "still inside w" needs no position).
        int64_t new_phases = 0;
        int64_t packed = f.phases;
        int64_t tape_pow = 1;
        for (int t = 0; t < k; ++t) {
          int phase = static_cast<int>(packed % 3);
          packed /= 3;
          if (phase == kAtStart && ((move_mask >> t) & 1u) != 0) {
            phase = kInString;
          }
          new_phases += static_cast<int64_t>(phase) * tape_pow;
          tape_pow *= 3;
        }
        next_dist[static_cast<int64_t>(next_state) * pow3 + new_phases] += p;
      }
    }
    dist = std::move(next_dist);
    double residual = 0;
    for (const auto& [code, mass] : dist) residual += mass;
    if (residual < 1e-6) {
      dist.clear();
    }
  }
  double residual = 0;
  for (const auto& [code, mass] : dist) residual += mass;
  (void)dead;
  return std::clamp(accepted + 0.5 * residual, 0.0, 1.0);
}

}  // namespace strdb
