#ifndef STRDB_FSA_DFA_DFA_H_
#define STRDB_FSA_DFA_DFA_H_

#include <cstdint>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// Resource caps for the subset construction.  Both trip a typed
// kResourceExhausted so the caller (the codegen tier, then the engine)
// can fall back to the CSR kernel silently: the DFA tier must never be
// slower-or-wronger than the tier below it.
struct DfaBuildOptions {
  // Subsets the construction may intern before giving up.  The classic
  // (a|b)*a(a|b)^n family shows a genuine 2^n lower bound, so a cap —
  // not cleverness — is the only defence.
  int max_states = 4096;
  // Byte bound on the dense row table (num_states × num_keys × 4).
  int64_t max_table_bytes = int64_t{4} << 20;  // 4 MiB
};

struct DfaBuildStats {
  int states_before_min = 0;  // subsets interned + accept + dead
  int states_after_min = 0;
  int32_t num_keys = 0;       // (|Σ|+2)^k
};

// A determinised one-way product automaton with synchronized head
// schedules.  This is *not* a classic textbook DFA over one tape: a
// state is a subset of NFA states that are simultaneously reachable at
// one k-tape position vector, and every row carries the (unique) head
// advance its transitions perform, so one deterministic chain
//
//     (S_0, pos=0..0) → (S_1, pos_1) → … → accept | dead
//
// replays every nondeterministic run of the source machine at once.
//
// Applicability: the source must be one-way (no -1 moves) and *move
// deterministic* — for every reachable (subset, read key) row, all
// non-stationary transitions applicable from the key-closed subset must
// share one move vector.  Machines with genuinely nondeterministic head
// schedules (the concatenation tester guesses the x = y·z split point,
// so its heads fan out over distinct position vectors) are refused with
// kUnimplemented; the engine keeps them on the CSR kernel, which tracks
// one state set per reached position vector and handles the fan-out.
//
// Stationary transitions are key-dependent ε-moves: each row's subset is
// closed under the stationary transitions applicable on that row's key
// before the stuck check and the move step.  Acceptance is the paper's
// stuck acceptance, folded into the rows: a row whose closed subset
// contains a final state with no applicable transition on the key jumps
// to the absorbing accept state.  An empty successor set jumps to the
// absorbing dead state.  Every other row advances at least one head, so
// a chain ends within Σ(|w_i|+1) + 1 steps.
struct Dfa {
  Alphabet alphabet = Alphabet::Binary();
  int num_tapes = 0;
  int radix = 0;          // |Σ| + 2 (characters, then ⊢, then ⊣)
  int32_t num_keys = 0;   // radix^k
  std::vector<int32_t> pow;  // radix^i per tape
  int16_t char_rank[256];    // byte → rank, -1 = outside Σ

  // |Q| of the source NFA: the per-tuple Π(|w_i|+2)·|Q| overflow guard
  // mirrors the kernel's so error codes stay in parity.
  int source_states = 0;

  int num_states = 0;  // includes the two absorbing states below
  int32_t start = 0;
  int32_t accept_state = 0;
  int32_t dead_state = 0;

  // Dense row table: rows[s·num_keys + key] = (move_mask << 24) | next.
  // move_mask bit i set = head i advances (+1); one-way moves are
  // {0,+1}^k so a k-bit mask is exact (k ≤ 8 enforced at build).  The
  // absorbing states carry real self-loop rows (mask 0) so batch
  // execution stays branchless.
  std::vector<uint32_t> rows;

  DfaBuildStats stats;

  int64_t table_bytes() const {
    return static_cast<int64_t>(rows.size()) * 4;
  }
};

// Determinises `fsa` by subset construction over the packed read-key
// index, then minimises by partition refinement (signatures over
// (move, next-class) rows, iterated to fixpoint — same result as
// Hopcroft's algorithm, with an unreachable-accept pre-collapse into the
// dead class).  Failure codes:
//   kUnimplemented      — two-way machine, > 8 tapes, or a reachable row
//                         with conflicting head schedules;
//   kResourceExhausted  — subset or table-byte cap exceeded (the
//                         blowup defence), or the key space overflows.
Result<Dfa> BuildDfa(const Fsa& fsa, const DfaBuildOptions& options = {});

// Inputs to the acceptance-density estimate: a per-tape model of random
// strings — independent characters drawn from `char_weight` (indexed by
// byte value; weights are normalised internally, an empty or all-zero
// vector means uniform over Σ) with geometric lengths of the given
// mean.  Both vectors may be shorter than num_tapes; missing tapes use
// the defaults.
struct DensityOptions {
  std::vector<std::vector<double>> char_weight;  // [tape][byte]
  std::vector<double> expected_len;              // per tape; default 2.0
  // Chain steps to propagate mass before declaring the walk converged.
  int max_steps = 512;
  // Guard on (distribution entries × digit combinations) summed over
  // steps; past it the walk aborts with kResourceExhausted and the
  // caller falls back to a flat selectivity guess.
  int64_t max_work = int64_t{1} << 22;
};

// Estimates the probability that the DFA accepts a random tuple under
// the model above — the planner's σ_A selectivity.  Propagates a sparse
// distribution over (state, per-tape head phase) through the chain,
// where a head's phase ∈ {at ⊢, inside w (char or ⊣ next, geometric),
// at ⊣}; character-frequency statistics weight each row choice.  Mass
// reaching accept_state/dead_state is absorbed; residual mass after
// max_steps counts half.  Always in [0, 1]; kResourceExhausted when the
// work guard trips.
Result<double> AcceptanceDensity(const Dfa& dfa,
                                 const DensityOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_DFA_DFA_H_
