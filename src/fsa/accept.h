#ifndef STRDB_FSA_ACCEPT_H_
#define STRDB_FSA_ACCEPT_H_

#include <string>
#include <vector>

#include "core/budget.h"
#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

struct AcceptOptions {
  // Optional query-wide account; every configuration visited by the BFS
  // is charged as one search step.
  ResourceBudget* budget = nullptr;
};

// Decides whether `fsa` accepts the input tuple `strings` (one string per
// tape), by breadth-first search over the configuration graph — the
// algorithm of Theorem 3.3, polynomial in Π(|w_i|+2) for a fixed
// automaton.  Acceptance is the paper's: some reachable configuration is
// in a final state and has no successor.
//
// Fails if the tuple arity mismatches, a string leaves the alphabet, or
// the attached budget runs out mid-search.
Result<bool> Accepts(const Fsa& fsa, const std::vector<std::string>& strings,
                     const AcceptOptions& options = {});

// Statistics-reporting variant used by the engine, benches and tests.
struct AcceptStats {
  bool accepted = false;
  int64_t configurations_visited = 0;
  int64_t transitions_tried = 0;
};
Result<AcceptStats> AcceptsWithStats(const Fsa& fsa,
                                     const std::vector<std::string>& strings,
                                     const AcceptOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_ACCEPT_H_
