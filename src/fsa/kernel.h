#ifndef STRDB_FSA_KERNEL_H_
#define STRDB_FSA_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/budget.h"
#include "core/result.h"
#include "fsa/accept.h"
#include "fsa/fsa.h"

namespace strdb {

class AcceptScratch;

// A per-automaton acceptance kernel, compiled once (and cached by the
// engine) and then run against many input tuples.  Compilation flattens
// the Fsa into a CSR layout — transitions grouped per state, sorted by a
// packed *read key* so the configuration step is a binary-search lookup
// instead of a try-every-transition scan — and classifies the automaton:
//
//   * one-way   — every move vector is in {0,+1}^k.  Acceptance runs as a
//                 bitset NFA state-set simulation over the synchronized
//                 scan: reached position vectors each carry a |Q|-bit
//                 state set, and no Π(|w_i|+2)·|Q| configuration space is
//                 ever materialised.  This is the Hopcroft/Ullman one-way
//                 correspondence turned into a fast path: most compiled
//                 window formulas never move a head left.
//   * two-way   — the general Theorem 3.3 BFS, but over a word-packed
//                 visited bitmap with lazy epoch clearing and a vector
//                 frontier, so a warm batch run allocates nothing per
//                 tuple.
//
// The kernel itself is immutable after Compile and safe to share across
// threads; all per-tuple mutable state lives in an AcceptScratch that the
// caller owns (one per thread).  Results agree with AcceptsWithStats —
// the reference oracle — on accept/reject and on error *codes*; step
// statistics may differ because the search order differs.
class AcceptKernel {
 public:
  // Compiles `fsa`.  Fails with kResourceExhausted only when the packed
  // read-key space (|Σ|+2)^k overflows int64 — automata with that many
  // tapes are far beyond anything the BFS could run either.
  static Result<AcceptKernel> Compile(const Fsa& fsa);

  bool one_way() const { return one_way_; }
  int num_tapes() const { return num_tapes_; }
  int num_states() const { return num_states_; }
  int num_transitions() const { return static_cast<int>(tr_to_.size()); }
  const Alphabet& alphabet() const { return alphabet_; }

  // Estimated resident bytes, for ArtifactCache accounting.
  int64_t MemoryCost() const;

 private:
  // The CSR run of transitions leaving `state` on read key `key`,
  // as [*t0, *t1).  Hot path of both acceptance loops: a dense-table
  // lookup when compiled, otherwise a search of the sorted row (linear
  // for short rows, binary beyond).
  void MatchRange(int32_t state, int64_t key, int32_t* t0,
                  int32_t* t1) const {
    if (key_space_ != 0) {
      size_t base = static_cast<size_t>(state) *
                        static_cast<size_t>(key_space_) +
                    static_cast<size_t>(key);
      *t0 = lookup_begin_[base];
      *t1 = *t0 + lookup_cnt_[base];
      return;
    }
    const int64_t* kb = tr_key_.data() + row_begin_[static_cast<size_t>(state)];
    const int64_t* ke =
        tr_key_.data() + row_begin_[static_cast<size_t>(state) + 1];
    const int64_t* lo;
    if (ke - kb > 16) {
      lo = std::lower_bound(kb, ke, key);
    } else {
      lo = kb;
      while (lo != ke && *lo < key) ++lo;
    }
    const int64_t* hi = lo;
    while (hi != ke && *hi == key) ++hi;
    *t0 = static_cast<int32_t>(lo - tr_key_.data());
    *t1 = static_cast<int32_t>(hi - tr_key_.data());
  }

  AcceptKernel(Alphabet alphabet, int num_tapes)
      : alphabet_(std::move(alphabet)), num_tapes_(num_tapes) {}

  friend class AcceptScratch;

  Alphabet alphabet_;
  int num_tapes_ = 0;
  int num_states_ = 0;
  int start_ = 0;
  bool one_way_ = true;
  // Read-key packing: symbol ranks are char ids in [0,|Σ|), then
  // ⊢ = |Σ|, ⊣ = |Σ|+1; a configuration's key is Σ rank_i · radix^i.
  int radix_ = 0;
  std::vector<int64_t> pow_;          // radix^i, one per tape
  int16_t char_rank_[256];            // byte -> rank, -1 = not in Σ
  std::vector<uint8_t> is_final_;     // per state
  // CSR: transitions() regrouped per `from` state and sorted by read
  // key; row_begin_[s]..row_begin_[s+1] index the flat arrays below.
  std::vector<int32_t> row_begin_;
  std::vector<int64_t> tr_key_;
  std::vector<int32_t> tr_to_;
  std::vector<int8_t> tr_move_;       // flat, num_tapes entries per transition
  // Dense (state, key) → CSR run, materialised when |Q|·radix^k is
  // small (the usual case: few states, tiny alphabet): the hot loop
  // replaces the key search with two array loads.  Empty (key_space_
  // == 0) when the product would be large; the search is the fallback.
  int64_t key_space_ = 0;             // radix^k, 0 = table not built
  std::vector<int32_t> lookup_begin_;
  std::vector<uint16_t> lookup_cnt_;
  // One-way bitset stepping (|Q| ≤ 64 with the dense table built):
  // transitions are regrouped by (read key, move vector) into per-state
  // successor masks, so one slot expansion ORs whole state sets instead
  // of matching transitions state by state.  Each key's groups sit
  // contiguously at key_group_begin_[key] .. key_group_begin_[key+1);
  // group entry e carries its move id (group_m_), the states with any
  // row (group_mask_), and per-state successor sets/counts at
  // succ_mask_/succ_cnt_[e·|Q| + state].  Only (key, move) pairs that
  // occur get an entry, so the tables stay small and cache resident.
  bool bitset_mode_ = false;
  int num_moves_ = 0;                 // distinct move vectors
  int zero_move_ = -1;                // id of the all-zero move, -1 if none
  std::vector<int8_t> move_vec_;      // flat, num_tapes per move id
  std::vector<int32_t> key_group_begin_;
  std::vector<int32_t> group_m_;
  std::vector<uint64_t> group_mask_;
  std::vector<uint64_t> succ_mask_;
  std::vector<uint16_t> succ_cnt_;
  std::vector<uint64_t> key_nonempty_;  // per key: states with any transition
  uint64_t final_mask_ = 0;
};

// Reusable per-thread scratch for kernel runs.  All buffers grow on
// demand and are retained across tuples, kernels and queries; dedup
// state is invalidated by epoch stamping (two-way path) or cheap
// truncation (one-way path), so a warm batch evaluation performs no
// per-tuple allocation.  Not thread safe: use one instance per thread.
class AcceptScratch {
 public:
  AcceptScratch() = default;
  AcceptScratch(const AcceptScratch&) = delete;
  AcceptScratch& operator=(const AcceptScratch&) = delete;

  // Decides acceptance of one tuple.  Same contract as AcceptsWithStats:
  // kInvalidArgument on arity/alphabet errors, kResourceExhausted when
  // the budget runs out or the configuration space exceeds the int64
  // index range, otherwise the accept/reject verdict with search stats.
  Result<AcceptStats> Accept(const AcceptKernel& kernel,
                             const std::vector<std::string>& strings,
                             const AcceptOptions& options = {});

 private:
  Status Prepare(const AcceptKernel& kernel,
                 const std::vector<std::string>& strings);
  Result<AcceptStats> RunOneWay(const AcceptKernel& kernel,
                                const AcceptOptions& options);
  Result<AcceptStats> RunOneWayBitset(const AcceptKernel& kernel,
                                      const AcceptOptions& options);
  Result<AcceptStats> RunTwoWay(const AcceptKernel& kernel,
                                const AcceptOptions& options);

  // --- per-tuple input layout (both paths) ---
  // Tape i occupies ranks_[rank_off_[i] .. rank_off_[i+1]): the rank of
  // ⊢, each input character, then ⊣ — so position p scans
  // ranks_[rank_off_[i] + p] with no bounds dispatch in the inner loop.
  std::vector<int32_t> ranks_;
  std::vector<int32_t> rank_off_;
  std::vector<int64_t> stride_;    // mixed-radix position strides
  int64_t per_state_ = 0;          // Π(|w_i|+2)
  int64_t total_ = 0;              // per_state_ · |Q|
  std::vector<int64_t> tr_delta_;  // per transition: Σ stride_i · move_i
  std::vector<int64_t> move_delta_;  // per move vector (bitset mode)
  std::vector<int32_t> cur_pos_;   // the configuration being expanded

  // --- two-way path: epoch-stamped visited bitmap + flat frontier ---
  std::vector<uint64_t> visited_words_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<int32_t> frontier_state_;
  std::vector<int32_t> frontier_pos_;  // flat, num_tapes per entry

  // --- one-way path: position-vector slots with |Q|-bit state sets ---
  // slot s covers one reached position vector: its positions at
  // slot_pos_[s·k ..], its pending/done state sets at
  // {pending_,done_}bits_[s·words_per_set ..].  Position vector → slot
  // id resolves through an epoch-stamped direct array indexed by the
  // encoded position when Π(|w_i|+2) is small (one load, no probing),
  // and through an epoch-stamped open-addressing table sized to the
  // number of *reached* slots beyond that, so lookups never allocate
  // per node and a new tuple resets by bumping the epoch, not clearing.
  struct SlotEntry {
    int64_t key = 0;
    uint32_t epoch = 0;
    int32_t slot = 0;
  };
  // Finds or creates the slot for encoded position `poskey`; on create,
  // positions are base_pos (+ moves, when non-null) and the state sets
  // are set_words fresh zero words.
  int32_t SlotOf(int64_t poskey, int k, const int32_t* base_pos,
                 const int8_t* moves, size_t set_words);
  // Starts a new tuple: picks the lookup structure for `per_state`
  // encoded positions, bumps the epoch and truncates the slot arrays.
  void ResetSlots(int64_t per_state);
  void GrowSlotTable();
  bool slot_direct_ = false;
  // Direct map: poskey -> (epoch << 32 | slot), packed so one lookup
  // touches one cache line even when the array spills out of L2.
  std::vector<uint64_t> slot_lookup_;
  std::vector<SlotEntry> slot_table_;  // probing: power-of-two capacity
  size_t slot_count_ = 0;              // live probe entries this epoch
  uint32_t slot_epoch_ = 0;
  std::vector<int32_t> slot_pos_;
  std::vector<int64_t> slot_key_;
  std::vector<uint64_t> pending_bits_;
  std::vector<uint64_t> done_bits_;
  std::vector<uint8_t> slot_queued_;
  std::vector<int32_t> worklist_;
};

// Batch acceptance: one verdict (or typed error) per input tuple, plus
// batch-aggregated search stats.  `scratch` is reused across the whole
// batch; tuple i's verdict lands in accepted[i] iff statuses[i] is OK.
struct KernelBatchResult {
  std::vector<Status> statuses;
  std::vector<char> accepted;
  int64_t configurations_visited = 0;
  int64_t transitions_tried = 0;
};
KernelBatchResult AcceptBatch(
    const AcceptKernel& kernel,
    const std::vector<const std::vector<std::string>*>& tuples,
    AcceptScratch* scratch, const AcceptOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_KERNEL_H_
