#include "fsa/normalize.h"

#include <deque>
#include <map>

namespace strdb {

Result<ZonedFsa> NormalizeZones(const Fsa& fsa) {
  // Zone advice branches per moved tape on the landing zone: a forward
  // move lands on Σ or ⊣, a backward move on ⊢ or Σ; wrong guesses die
  // at the next read because transitions are filtered for compatibility.
  if (!fsa.FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "NormalizeZones requires final states without outgoing transitions");
  }
  using Key = std::pair<int, std::vector<Zone>>;
  ZonedFsa out{Fsa(fsa.alphabet(), fsa.num_tapes()), {}, {}};
  std::map<Key, int> ids;
  std::deque<Key> worklist;

  Key init{fsa.start(),
           std::vector<Zone>(static_cast<size_t>(fsa.num_tapes()),
                             Zone::kLeft)};
  ids[init] = out.fsa.start();
  out.fsa.SetFinal(out.fsa.start(), fsa.IsFinal(fsa.start()));
  out.original_state.push_back(fsa.start());
  out.zones.push_back(init.second);
  worklist.push_back(std::move(init));

  while (!worklist.empty()) {
    Key key = std::move(worklist.front());
    worklist.pop_front();
    int from_id = ids[key];
    const int p = key.first;
    const std::vector<Zone> adv = key.second;
    for (int ti : fsa.TransitionsFrom(p)) {
      const Transition& t = fsa.transitions()[static_cast<size_t>(ti)];
      bool ok = true;
      for (size_t i = 0; i < adv.size(); ++i) {
        if (ZoneOf(t.read[i]) != adv[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // Enumerate landing-zone choices per moved tape.
      std::vector<std::vector<Zone>> choices(adv.size());
      for (size_t i = 0; i < adv.size(); ++i) {
        if (t.move[i] == kStay) {
          choices[i] = {ZoneOf(t.read[i])};
        } else if (t.move[i] == kFwd) {
          choices[i] = {Zone::kInterior, Zone::kRight};
        } else {
          choices[i] = {Zone::kLeft, Zone::kInterior};
        }
      }
      std::vector<size_t> idx(adv.size(), 0);
      for (;;) {
        std::vector<Zone> next_adv(adv.size());
        for (size_t i = 0; i < adv.size(); ++i) {
          next_adv[i] = choices[i][idx[i]];
        }
        Key next{t.to, std::move(next_adv)};
        auto [it, inserted] = ids.try_emplace(next, -1);
        if (inserted) {
          it->second = out.fsa.AddState();
          out.fsa.SetFinal(it->second, fsa.IsFinal(t.to));
          out.original_state.push_back(t.to);
          out.zones.push_back(it->first.second);
          worklist.push_back(it->first);
        }
        Transition nt = t;
        nt.from = from_id;
        nt.to = it->second;
        STRDB_RETURN_IF_ERROR(out.fsa.AddTransition(std::move(nt)));
        size_t d = 0;
        while (d < idx.size() && ++idx[d] == choices[d].size()) idx[d++] = 0;
        if (d == idx.size()) break;
      }
    }
  }
  return out;
}

Result<ReadAdvisedFsa> ConsistifyReads(const Fsa& fsa) {
  if (!fsa.FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "ConsistifyReads requires final states without outgoing transitions");
  }
  // Advice values: an exact symbol, or one of the two "just moved"
  // markers constraining only the zone.
  constexpr Sym kAfterFwd = -3;   // symbol ∈ Σ ∪ {⊣}
  constexpr Sym kAfterBack = -4;  // symbol ∈ Σ ∪ {⊢}
  auto compatible = [](Sym advice, Sym c) {
    if (advice == kAfterFwd) return c != kLeftEnd;
    if (advice == kAfterBack) return c != kRightEnd;
    return advice == c;
  };

  using Key = std::pair<int, std::vector<Sym>>;
  ReadAdvisedFsa out{Fsa(fsa.alphabet(), fsa.num_tapes()), {}, {}};
  std::map<Key, int> ids;
  std::deque<Key> worklist;

  Key init{fsa.start(),
           std::vector<Sym>(static_cast<size_t>(fsa.num_tapes()), kLeftEnd)};
  ids[init] = out.fsa.start();
  out.fsa.SetFinal(out.fsa.start(), fsa.IsFinal(fsa.start()));
  out.original_state.push_back(fsa.start());
  out.known_read.push_back(init.second);
  worklist.push_back(std::move(init));

  while (!worklist.empty()) {
    Key key = std::move(worklist.front());
    worklist.pop_front();
    int from_id = ids[key];
    const auto& [p, adv] = key;
    for (int ti : fsa.TransitionsFrom(p)) {
      const Transition& t = fsa.transitions()[static_cast<size_t>(ti)];
      bool ok = true;
      for (size_t i = 0; i < adv.size(); ++i) {
        if (!compatible(adv[i], t.read[i])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<Sym> next_adv(adv.size());
      for (size_t i = 0; i < adv.size(); ++i) {
        next_adv[i] = (t.move[i] == kStay) ? t.read[i]
                      : (t.move[i] == kFwd) ? kAfterFwd
                                            : kAfterBack;
      }
      Key next{t.to, std::move(next_adv)};
      auto [it, inserted] = ids.try_emplace(next, -1);
      if (inserted) {
        it->second = out.fsa.AddState();
        out.fsa.SetFinal(it->second, fsa.IsFinal(t.to));
        out.original_state.push_back(t.to);
        out.known_read.push_back(it->first.second);
        worklist.push_back(it->first);
      }
      Transition nt = t;
      nt.from = from_id;
      nt.to = it->second;
      STRDB_RETURN_IF_ERROR(out.fsa.AddTransition(std::move(nt)));
    }
  }
  // Replace the internal marker values with kUnknownSym for the caller.
  for (std::vector<Sym>& row : out.known_read) {
    for (Sym& s : row) {
      if (s == kAfterFwd || s == kAfterBack) s = kUnknownSym;
    }
  }
  return out;
}

}  // namespace strdb
