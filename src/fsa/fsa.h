#ifndef STRDB_FSA_FSA_H_
#define STRDB_FSA_FSA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"
#include "core/status.h"

namespace strdb {

// Head movement of one tape in one transition.
using Move = int8_t;
inline constexpr Move kStay = 0;
inline constexpr Move kFwd = +1;   // towards the right endmarker
inline constexpr Move kBack = -1;  // towards the left endmarker

// One transition ((p, c1..ck), (q, d1..dk)) of a k-FSA (paper §3).
struct Transition {
  int from = 0;
  int to = 0;
  std::vector<Sym> read;    // one symbol per tape, in Σ ∪ {⊢, ⊣}
  std::vector<Move> move;   // one direction per tape

  // True iff no tape moves (the FSA counterpart of an ε-transition).
  bool IsStationary() const;

  bool operator==(const Transition& other) const;
  bool operator<(const Transition& other) const;
};

// A k-tape two-way nondeterministic finite state acceptor with endmarkers
// (paper §3).  The endmarker restriction — never step left off ⊢ nor
// right off ⊣ — is enforced at AddTransition time.
//
// A configuration on input (w1..wk) is (state, n1..nk) with
// 0 <= ni <= |wi|+1; position 0 scans ⊢ and |wi|+1 scans ⊣.  A
// computation *accepts* iff it starts in (start, 0..0), is finite, ends
// in a final state, and the final configuration has no successor (the
// paper's definition; for automata whose final states have no outgoing
// transitions this is plain final-state acceptance).
class Fsa {
 public:
  // An automaton with `num_tapes` tapes and a single (start) state 0,
  // initially non-final: the "single rejecting start state" of Thm 3.1.
  Fsa(Alphabet alphabet, int num_tapes);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_tapes() const { return num_tapes_; }
  int num_states() const { return static_cast<int>(is_final_.size()); }
  // |A|: the paper measures automaton size by its number of transitions.
  int num_transitions() const { return static_cast<int>(transitions_.size()); }

  int start() const { return start_; }
  bool IsFinal(int state) const { return is_final_[static_cast<size_t>(state)]; }

  // Adds a fresh non-final state, returning its id.
  int AddState();
  void SetFinal(int state, bool is_final = true);
  void SetStart(int state);

  // Adds a transition after validating tape counts, symbol ranges and the
  // endmarker restriction (read ⊢ ⇒ move ≠ -1, read ⊣ ⇒ move ≠ +1).
  // Duplicate transitions are silently ignored.
  Status AddTransition(Transition t);

  // Convenience for tests/hand-built machines: reads and moves given as
  // strings, e.g. reads "<a>" = (⊢, 'a', ⊣) and moves "+0-" per tape.
  Status AddTransitionSpec(int from, int to, const std::string& reads,
                           const std::string& moves);

  const std::vector<Transition>& transitions() const { return transitions_; }
  // Indices into transitions() of those leaving `state`.
  const std::vector<int>& TransitionsFrom(int state) const;

  std::vector<int> FinalStates() const;

  // Paper §3: tape i is *bidirectional* iff some transition moves it -1.
  bool IsTapeBidirectional(int tape) const;
  // Number of bidirectional tapes (0 = unidirectional automaton,
  // <= 1 = right-restricted).
  int NumBidirectionalTapes() const;

  // True iff no final state has outgoing transitions, in which case the
  // paper's stuck-acceptance equals ordinary final-state acceptance.
  bool FinalStatesHaveNoExits() const;

  // Removes states not on a path start →* final, compacting ids.  The
  // start state is always kept (possibly as a lone rejecting state).
  void PruneToTrim();

  // Merges states that are forward-bisimilar (same finality and, after
  // the merge closure, identical outgoing transition sets).  This is
  // language-preserving — also under the paper's stuck-acceptance,
  // since merged states admit exactly the same computations — and
  // typically shrinks Theorem 3.1's output considerably (the
  // q_(b1..bk) intermediates are highly redundant).  Returns the number
  // of states removed.
  int ReduceByBisimulation();

  // A k-FSA can be modified to disregard tape l (paper §3): the tape is
  // retained but every transition pins it to ⊢ and never moves it.
  Fsa DisregardTape(int tape) const;

  // Multi-line debug listing of states and transitions.
  std::string ToString() const;
  // Graphviz rendering, in the spirit of the paper's Fig. 6.
  std::string ToDot() const;

 private:
  Alphabet alphabet_;
  int num_tapes_;
  int start_ = 0;
  std::vector<bool> is_final_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<int>> out_;  // per-state transition indices
};

}  // namespace strdb

#endif  // STRDB_FSA_FSA_H_
