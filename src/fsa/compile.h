#ifndef STRDB_FSA_COMPILE_H_
#define STRDB_FSA_COMPILE_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"
#include "strform/string_formula.h"

namespace strdb {

struct CompileOptions {
  // Abort with kResourceExhausted when an intermediate automaton exceeds
  // this many transitions; the construction is worst-case exponential in
  // the number of tapes ((|Σ|+2)^k combinations per atomic formula).
  int max_transitions = 2'000'000;
  // Merge forward-bisimilar states after construction (the Fig. 4
  // intermediates are highly redundant); preserves the language and the
  // theorem's structural properties.
  bool reduce_states = true;
};

// Theorem 3.1: builds a k-FSA A_φ with L(A_φ) = ⟦φ⟧, where tape i holds
// the string assigned to vars[i].  `vars` fixes the tape order and must
// contain every variable of `formula` (it may name extra variables,
// which become unconstrained tapes).  The construction follows the
// paper's proof:
//
//  * an atomic string formula becomes the two-edge paths of Fig. 4
//    (s → q_(b1..bk) → f), with stationary first steps bypassed as in
//    Fig. 5;
//  * concatenation merges the final state of the first automaton with
//    the start state of the second, bypassing the resulting stationary
//    transition pairs;
//  * Kleene closure adds a fresh final state reachable by stationary
//    transitions on every character combination and folds the loop back
//    into the start state;
//  * union merges start states and final states;
//  * finally the automaton is prefixed (by concatenation) with the
//    single-transition FSA testing the all-⊢ initial configuration.
//
// The resulting automaton enjoys the theorem's properties 1-5: tape i is
// bidirectional only if vars[i] is, the start state has no incoming
// transitions, there is at most one final state, that state has no
// outgoing transitions and its incoming transitions are exactly the
// stationary ones, and (disregarding bidirectional tapes) every
// start-to-final path is traced by some computation.
//
// Deviation from the paper's text: for φ* where L(A_φ) = ∅ the paper
// says the rejecting automaton "suffices unmodified", but λ ∈ L(φ*)
// must be accepted; we return the λ automaton instead.
Result<Fsa> CompileStringFormula(const StringFormula& formula,
                                 const Alphabet& alphabet,
                                 const std::vector<std::string>& vars,
                                 const CompileOptions& options = {});

// As above with the tape order taken from formula.Vars() (variable names
// in ascending order, matching the paper's convention for queries).
Result<Fsa> CompileStringFormula(const StringFormula& formula,
                                 const Alphabet& alphabet,
                                 const CompileOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_COMPILE_H_
