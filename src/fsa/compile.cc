#include "fsa/compile.h"

#include <map>
#include <optional>

namespace strdb {

namespace {

// A fragment under construction: an Fsa whose start is fsa.start() and
// which has at most one final state.
struct Frag {
  Fsa fsa;
  int final = -1;  // -1: rejecting fragment (single nonfinal start state)

  explicit Frag(Fsa f) : fsa(std::move(f)) {}

  // Re-derives `final` after pruning (fragments hold <= 1 final state).
  void Refresh() {
    fsa.PruneToTrim();
    std::vector<int> finals = fsa.FinalStates();
    final = finals.empty() ? -1 : finals[0];
  }
};

class Compiler {
 public:
  Compiler(const Alphabet& alphabet, std::vector<std::string> vars,
           const CompileOptions& options)
      : alphabet_(alphabet), vars_(std::move(vars)), options_(options) {
    for (size_t i = 0; i < vars_.size(); ++i) {
      tape_of_[vars_[i]] = static_cast<int>(i);
    }
    symbols_ = alphabet_.TapeSymbols();
  }

  Result<Fsa> Compile(const StringFormula& formula) {
    STRDB_ASSIGN_OR_RETURN(Frag body, Build(formula));
    // Prefix with the initial-configuration test ((s,⊢..⊢),(f,0..0)).
    Fsa init(alphabet_, k());
    int f0 = init.AddState();
    init.SetFinal(f0);
    Transition t;
    t.from = init.start();
    t.to = f0;
    t.read.assign(static_cast<size_t>(k()), kLeftEnd);
    t.move.assign(static_cast<size_t>(k()), kStay);
    STRDB_RETURN_IF_ERROR(init.AddTransition(std::move(t)));
    Frag init_frag(std::move(init));
    init_frag.final = f0;
    STRDB_ASSIGN_OR_RETURN(Frag out, Concat(init_frag, body));
    if (options_.reduce_states) {
      out.fsa.ReduceByBisimulation();
      out.fsa.PruneToTrim();
    }
    return std::move(out.fsa);
  }

 private:
  int k() const { return static_cast<int>(vars_.size()); }

  Status CheckBudget(const Fsa& fsa) const {
    if (fsa.num_transitions() > options_.max_transitions) {
      return Status::ResourceExhausted(
          "compiled automaton exceeds max_transitions = " +
          std::to_string(options_.max_transitions));
    }
    return Status::OK();
  }

  Frag Rejecting() const { return Frag(Fsa(alphabet_, k())); }

  // The λ automaton: s → f by a stationary transition on every character
  // combination (vacuously true in every alignment).
  Result<Frag> LambdaFrag() const {
    Frag frag(Fsa(alphabet_, k()));
    int f = frag.fsa.AddState();
    frag.fsa.SetFinal(f);
    frag.final = f;
    std::vector<Sym> combo(static_cast<size_t>(k()), 0);
    STRDB_RETURN_IF_ERROR(ForEachCombo(
        std::vector<int>(), &combo, [&](const std::vector<Sym>& c) {
          Transition t;
          t.from = frag.fsa.start();
          t.to = f;
          t.read = c;
          t.move.assign(static_cast<size_t>(k()), kStay);
          return frag.fsa.AddTransition(std::move(t));
        }));
    return frag;
  }

  // Calls `fn` for every combination assigning each tape in `free_tapes`
  // a value from Σ∪{⊢,⊣}; other entries of *combo are left as-is.  When
  // `free_tapes` covers no tape, `fn` is called once on *combo.  The
  // overload with an empty free list iterates over *all* tapes.
  template <typename Fn>
  Status ForEachCombo(std::vector<int> free_tapes, std::vector<Sym>* combo,
                      Fn&& fn) const {
    if (free_tapes.empty()) {
      free_tapes.resize(static_cast<size_t>(k()));
      for (int i = 0; i < k(); ++i) free_tapes[static_cast<size_t>(i)] = i;
    }
    return ForEachComboOn(free_tapes, 0, combo, fn);
  }

  template <typename Fn>
  Status ForEachComboOn(const std::vector<int>& tapes, size_t depth,
                        std::vector<Sym>* combo, Fn&& fn) const {
    if (depth == tapes.size()) return fn(*combo);
    for (Sym s : symbols_) {
      (*combo)[static_cast<size_t>(tapes[depth])] = s;
      STRDB_RETURN_IF_ERROR(ForEachComboOn(tapes, depth + 1, combo, fn));
    }
    return Status::OK();
  }

  // Evaluates the window formula on a character combination, mapping
  // endmarkers to "undefined".
  bool WindowTrue(const WindowFormula& window,
                  const std::vector<Sym>& combo) const {
    return window.EvalWith(
        [&](const std::string& var) -> std::optional<char> {
          auto it = tape_of_.find(var);
          if (it == tape_of_.end()) return std::nullopt;  // unreachable
          Sym s = combo[static_cast<size_t>(it->second)];
          if (IsEndmarker(s)) return std::nullopt;
          return alphabet_.CharOf(s);
        });
  }

  Result<Frag> Build(const StringFormula& f) {
    switch (f.kind()) {
      case StringFormula::Kind::kLambda:
        return LambdaFrag();
      case StringFormula::Kind::kAtomic:
        return BuildAtomic(f.atom());
      case StringFormula::Kind::kConcat: {
        STRDB_ASSIGN_OR_RETURN(Frag left, Build(f.Left()));
        if (left.final < 0) return Rejecting();
        STRDB_ASSIGN_OR_RETURN(Frag right, Build(f.Right()));
        if (right.final < 0) return Rejecting();
        return Concat(left, right);
      }
      case StringFormula::Kind::kUnion: {
        STRDB_ASSIGN_OR_RETURN(Frag left, Build(f.Left()));
        STRDB_ASSIGN_OR_RETURN(Frag right, Build(f.Right()));
        return Union(left, right);
      }
      case StringFormula::Kind::kStar: {
        STRDB_ASSIGN_OR_RETURN(Frag body, Build(f.Left()));
        return Star(body);
      }
    }
    return Status::Internal("unknown string formula kind");
  }

  // Fig. 4 / Fig. 5: the two-edge paths s → q_(b1..bk) → f, with
  // stationary first edges bypassed into direct s → f edges.
  Result<Frag> BuildAtomic(const AtomicStringFormula& atom) {
    Frag frag(Fsa(alphabet_, k()));
    int s = frag.fsa.start();
    int f = frag.fsa.AddState();
    frag.fsa.SetFinal(f);
    frag.final = f;

    // Which tapes does the transpose mention?
    std::vector<bool> transposed(static_cast<size_t>(k()), false);
    for (const std::string& var : atom.transposed) {
      auto it = tape_of_.find(var);
      if (it == tape_of_.end()) {
        return Status::InvalidArgument("variable '" + var +
                                       "' not in the tape order");
      }
      transposed[static_cast<size_t>(it->second)] = true;
    }
    const Sym saturating_end =
        (atom.dir == Dir::kLeft) ? kRightEnd : kLeftEnd;
    const Move step = (atom.dir == Dir::kLeft) ? kFwd : kBack;

    // Intermediate states q_(b1..bk), one per window-satisfying target
    // combination (with its stationary edge into f).
    std::map<std::vector<Sym>, int> q_of;
    auto intermediate = [&](const std::vector<Sym>& b) -> Result<int> {
      auto it = q_of.find(b);
      if (it != q_of.end()) return it->second;
      int q = frag.fsa.AddState();
      q_of[b] = q;
      Transition into_f;
      into_f.from = q;
      into_f.to = f;
      into_f.read = b;
      into_f.move.assign(static_cast<size_t>(k()), kStay);
      STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(into_f)));
      return q;
    };

    std::vector<Sym> a(static_cast<size_t>(k()), 0);
    Status status = ForEachCombo(
        {}, &a, [&](const std::vector<Sym>& a_combo) -> Status {
          // Decide per-tape movement: transposed tapes step unless
          // already on the saturating endmarker.
          std::vector<Move> move(static_cast<size_t>(k()), kStay);
          std::vector<int> moving;
          for (int i = 0; i < k(); ++i) {
            if (transposed[static_cast<size_t>(i)] &&
                a_combo[static_cast<size_t>(i)] != saturating_end) {
              move[static_cast<size_t>(i)] = step;
              moving.push_back(i);
            }
          }
          if (moving.empty()) {
            // Fig. 5 bypass: a stationary first edge collapses into a
            // direct stationary s → f edge (kept only when ψ holds).
            if (WindowTrue(atom.window, a_combo)) {
              Transition t;
              t.from = s;
              t.to = f;
              t.read = a_combo;
              t.move.assign(static_cast<size_t>(k()), kStay);
              STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(t)));
            }
            return CheckBudget(frag.fsa);
          }
          // Enumerate the symbols appearing under the moved heads after
          // the step: anything except the endmarker being stepped away
          // from (a head moving forward can see Σ or ⊣, never ⊢).
          std::vector<Sym> b = a_combo;
          const Sym forbidden =
              (atom.dir == Dir::kLeft) ? kLeftEnd : kRightEnd;
          return ForEachCombo(
              moving, &b, [&](const std::vector<Sym>& b_combo) -> Status {
                for (int i : moving) {
                  if (b_combo[static_cast<size_t>(i)] == forbidden) {
                    return Status::OK();
                  }
                }
                if (!WindowTrue(atom.window, b_combo)) return Status::OK();
                STRDB_ASSIGN_OR_RETURN(int q, intermediate(b_combo));
                Transition t;
                t.from = s;
                t.to = q;
                t.read = a_combo;
                t.move = move;
                STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(t)));
                return CheckBudget(frag.fsa);
              });
        });
    STRDB_RETURN_IF_ERROR(status);
    frag.Refresh();
    return frag;
  }

  // Merges `right`'s start into `left`'s final state, bypassing the
  // stationary-transition pairs as in the proof of Thm 3.1.
  Result<Frag> Concat(const Frag& left, const Frag& right) {
    if (left.final < 0 || right.final < 0) return Rejecting();
    Frag frag(Fsa(alphabet_, k()));
    // State mapping: left states keep ids (left.final becomes a hole we
    // simply never target); right states (except its start) get offsets.
    while (frag.fsa.num_states() < left.fsa.num_states()) frag.fsa.AddState();
    std::vector<int> right_map(static_cast<size_t>(right.fsa.num_states()),
                               -1);
    for (int st = 0; st < right.fsa.num_states(); ++st) {
      if (st == right.fsa.start()) continue;
      right_map[static_cast<size_t>(st)] = frag.fsa.AddState();
    }
    frag.fsa.SetStart(left.fsa.start());
    frag.final = right_map[static_cast<size_t>(right.final)];
    frag.fsa.SetFinal(frag.final);

    // Left transitions not entering left.final survive unchanged.
    for (const Transition& t : left.fsa.transitions()) {
      if (t.to == left.final) continue;
      STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(t));
    }
    // Right transitions not leaving right's start survive (remapped).
    for (const Transition& t : right.fsa.transitions()) {
      if (t.from == right.fsa.start()) continue;
      Transition nt = t;
      nt.from = right_map[static_cast<size_t>(t.from)];
      nt.to = right_map[static_cast<size_t>(t.to)];
      STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(nt)));
    }
    // Bypass: (p,c) → (left.final, 0) composed with (s2,c) → (q,d)
    // becomes (p,c) → (q,d).  Group the right start transitions by read
    // combo for the matching.
    std::map<std::vector<Sym>, std::vector<const Transition*>> by_read;
    for (int idx : right.fsa.TransitionsFrom(right.fsa.start())) {
      const Transition& t =
          right.fsa.transitions()[static_cast<size_t>(idx)];
      by_read[t.read].push_back(&t);
    }
    for (const Transition& t_in : left.fsa.transitions()) {
      if (t_in.to != left.final) continue;
      auto it = by_read.find(t_in.read);
      if (it == by_read.end()) continue;
      for (const Transition* t_out : it->second) {
        Transition nt;
        nt.from = t_in.from;
        nt.to = right_map[static_cast<size_t>(t_out->to)];
        nt.read = t_in.read;
        nt.move = t_out->move;
        STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(nt)));
        STRDB_RETURN_IF_ERROR(CheckBudget(frag.fsa));
      }
    }
    frag.Refresh();
    return frag;
  }

  // Merges the two start states and the two final states.
  Result<Frag> Union(const Frag& left, const Frag& right) {
    if (left.final < 0 && right.final < 0) return Rejecting();
    Frag frag(Fsa(alphabet_, k()));
    int s = frag.fsa.start();
    int f = frag.fsa.AddState();
    frag.fsa.SetFinal(f);
    frag.final = f;
    auto splice = [&](const Frag& part) -> Status {
      std::vector<int> map(static_cast<size_t>(part.fsa.num_states()), -1);
      map[static_cast<size_t>(part.fsa.start())] = s;
      if (part.final >= 0) map[static_cast<size_t>(part.final)] = f;
      for (int st = 0; st < part.fsa.num_states(); ++st) {
        if (map[static_cast<size_t>(st)] < 0) {
          map[static_cast<size_t>(st)] = frag.fsa.AddState();
        }
      }
      for (const Transition& t : part.fsa.transitions()) {
        Transition nt = t;
        nt.from = map[static_cast<size_t>(t.from)];
        nt.to = map[static_cast<size_t>(t.to)];
        STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(nt)));
      }
      return CheckBudget(frag.fsa);
    };
    STRDB_RETURN_IF_ERROR(splice(left));
    STRDB_RETURN_IF_ERROR(splice(right));
    frag.Refresh();
    return frag;
  }

  // Kleene closure: new final f' reachable from s by stationary
  // transitions on every combination; the body's final state is folded
  // back into s with bypassing.
  Result<Frag> Star(const Frag& body) {
    // Deviation from the paper's text (documented in compile.h): when the
    // body automaton rejects everything, φ* still contains λ.
    if (body.final < 0) return LambdaFrag();

    Frag frag(Fsa(alphabet_, k()));
    // Copy the body (its start stays the start; its final f becomes a
    // hole after bypassing).
    while (frag.fsa.num_states() < body.fsa.num_states()) frag.fsa.AddState();
    frag.fsa.SetStart(body.fsa.start());
    int fprime = frag.fsa.AddState();
    frag.fsa.SetFinal(fprime);
    frag.final = fprime;
    const int s = frag.fsa.start();
    const int f = body.final;

    // New stationary s → f' transitions on every character combination
    // ("not entering the loop at all").
    std::vector<Sym> combo(static_cast<size_t>(k()), 0);
    STRDB_RETURN_IF_ERROR(ForEachCombo(
        {}, &combo, [&](const std::vector<Sym>& c) {
          Transition t;
          t.from = s;
          t.to = fprime;
          t.read = c;
          t.move.assign(static_cast<size_t>(k()), kStay);
          return frag.fsa.AddTransition(std::move(t));
        }));

    // Body transitions survive except (a) stationary s → f ones (already
    // represented by the new s → f' edges) and (b) edges into f, which
    // get bypassed below.
    for (const Transition& t : body.fsa.transitions()) {
      if (t.to == f) continue;
      STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(t));
    }
    // Bypass (p,c) → (f,0) with every (s,c) → (q,d) of the *new*
    // automaton (which includes the fresh s → f' stationary edges, so a
    // completed loop iteration can exit).
    std::map<std::vector<Sym>, std::vector<std::pair<int, std::vector<Move>>>>
        from_start;
    for (int idx : body.fsa.TransitionsFrom(s)) {
      const Transition& t = body.fsa.transitions()[static_cast<size_t>(idx)];
      if (t.to == f && t.IsStationary()) continue;  // removed above
      from_start[t.read].push_back({t.to, t.move});
    }
    // The fresh exits: (s,c) → (f',0) for every c.
    {
      std::vector<Sym> c(static_cast<size_t>(k()), 0);
      STRDB_RETURN_IF_ERROR(ForEachCombo(
          {}, &c, [&](const std::vector<Sym>& cc) {
            from_start[cc].push_back(
                {fprime,
                 std::vector<Move>(static_cast<size_t>(k()), kStay)});
            return Status::OK();
          }));
    }
    for (const Transition& t_in : body.fsa.transitions()) {
      if (t_in.to != f) continue;
      if (t_in.from == s && t_in.IsStationary()) continue;  // removed
      auto it = from_start.find(t_in.read);
      if (it == from_start.end()) continue;
      for (const auto& [to, move] : it->second) {
        Transition nt;
        nt.from = t_in.from;
        nt.to = to;
        nt.read = t_in.read;
        nt.move = move;
        STRDB_RETURN_IF_ERROR(frag.fsa.AddTransition(std::move(nt)));
        STRDB_RETURN_IF_ERROR(CheckBudget(frag.fsa));
      }
    }
    frag.Refresh();
    return frag;
  }

  const Alphabet& alphabet_;
  std::vector<std::string> vars_;
  CompileOptions options_;
  std::map<std::string, int> tape_of_;
  std::vector<Sym> symbols_;
};

}  // namespace

Result<Fsa> CompileStringFormula(const StringFormula& formula,
                                 const Alphabet& alphabet,
                                 const std::vector<std::string>& vars,
                                 const CompileOptions& options) {
  // Every formula variable must have a tape.
  std::map<std::string, bool> known;
  for (const std::string& v : vars) known[v] = true;
  for (const std::string& v : formula.Vars()) {
    if (!known.count(v)) {
      return Status::InvalidArgument("formula variable '" + v +
                                     "' missing from tape order");
    }
  }
  if (vars.empty()) {
    return Status::InvalidArgument("need at least one tape");
  }
  Compiler compiler(alphabet, vars, options);
  return compiler.Compile(formula);
}

Result<Fsa> CompileStringFormula(const StringFormula& formula,
                                 const Alphabet& alphabet,
                                 const CompileOptions& options) {
  return CompileStringFormula(formula, alphabet, formula.Vars(), options);
}

}  // namespace strdb
