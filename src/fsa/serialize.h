#ifndef STRDB_FSA_SERIALIZE_H_
#define STRDB_FSA_SERIALIZE_H_

#include <string>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// The current version of the text format below.  Bump on any change to
// the line grammar; DeserializeFsa rejects other versions with
// kUnimplemented so a newer (or older) build never misreads a persisted
// automaton.
inline constexpr int kFsaFormatVersion = 2;

// A stable, human-readable text format for persisting compiled
// automata (compilation is the expensive step; a cached automaton can
// be reloaded and used for selection immediately):
//
//   strdbfsa 2
//   fsa tapes=2 states=5 start=0 finals=4
//   t 0 1 <places> +000+
//   ...
//   crc32 1c291ca3
//
// The first line is the format version; the last line is the CRC-32 of
// every preceding byte, so torn or bit-flipped input is detected before
// a corrupt machine can enter the artifact cache.  Reads use the
// AddTransitionSpec syntax ('<' = ⊢, '>' = ⊣), moves use '+', '-', '0'.
// The alphabet is not embedded: the caller supplies it on load and it
// must cover every symbol in the text.
//
// Serialize → Deserialize → Serialize is byte-identical (the engine's
// artifact cache keys automata by this text).
std::string SerializeFsa(const Fsa& fsa);

// Rejections are typed: kInvalidArgument for a malformed header or
// body, kUnimplemented for a version this build does not speak,
// kDataLoss for truncation or checksum mismatch.
Result<Fsa> DeserializeFsa(const Alphabet& alphabet, const std::string& text);

}  // namespace strdb

#endif  // STRDB_FSA_SERIALIZE_H_
