#ifndef STRDB_FSA_SERIALIZE_H_
#define STRDB_FSA_SERIALIZE_H_

#include <string>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// A stable, human-readable text format for persisting compiled
// automata (compilation is the expensive step; a cached automaton can
// be reloaded and used for selection immediately):
//
//   fsa tapes=2 states=5 start=0 finals=4
//   t 0 1 <places> +000+
//   ...
//
// Reads use the AddTransitionSpec syntax ('<' = ⊢, '>' = ⊣), moves use
// '+', '-', '0'.  The alphabet is not embedded: the caller supplies it
// on load and it must cover every symbol in the text.
std::string SerializeFsa(const Fsa& fsa);

Result<Fsa> DeserializeFsa(const Alphabet& alphabet, const std::string& text);

}  // namespace strdb

#endif  // STRDB_FSA_SERIALIZE_H_
