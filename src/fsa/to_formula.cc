#include "fsa/to_formula.h"

#include <map>
#include <optional>

#include "fsa/normalize.h"

namespace strdb {

namespace {

// A formula together with its cached node count (state elimination can
// blow up; Size() itself is linear, so we track sizes incrementally).
struct Elem {
  StringFormula formula = StringFormula::Lambda();
  int64_t size = 1;
};

using Entry = std::optional<Elem>;  // nullopt = no path (∅)

Entry UnionE(const Entry& a, const Entry& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return Elem{StringFormula::Union(a->formula, b->formula),
              a->size + b->size + 1};
}

Entry CatE(const Entry& a, const Entry& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return Elem{StringFormula::Concat(a->formula, b->formula),
              a->size + b->size + 1};
}

// E* with ∅* = λ.
Entry StarE(const Entry& a) {
  if (!a.has_value()) return Elem{StringFormula::Lambda(), 1};
  return Elem{StringFormula::Star(a->formula), a->size + 1};
}

}  // namespace

Result<StringFormula> FsaToStringFormula(const Fsa& fsa,
                                         const std::vector<std::string>& vars,
                                         const ToFormulaOptions& options) {
  if (static_cast<int>(vars.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument("need one variable per tape");
  }
  if (fsa.IsFinal(fsa.start())) {
    return Status::Unimplemented(
        "translation of automata whose start state is final");
  }
  const StringFormula unsatisfiable = StringFormula::Atomic(
      Dir::kLeft, {}, WindowFormula::Not(WindowFormula::True()));
  if (fsa.FinalStates().empty()) return unsatisfiable;

  STRDB_ASSIGN_OR_RETURN(ZonedFsa zoned, NormalizeZones(fsa));
  const Fsa& a = zoned.fsa;
  if (a.FinalStates().empty()) return unsatisfiable;

  // Describe one normalised transition as a formula word (paper: the
  // test [ ]l(⋀ x_i = c'_i), then the forward slides, then the backward
  // slides).
  auto transition_formula = [&](const Transition& t) -> StringFormula {
    WindowFormula test = WindowFormula::True();
    bool first = true;
    for (int i = 0; i < a.num_tapes(); ++i) {
      Sym c = t.read[static_cast<size_t>(i)];
      WindowFormula atom =
          IsEndmarker(c)
              ? WindowFormula::Undef(vars[static_cast<size_t>(i)])
              : WindowFormula::CharEq(vars[static_cast<size_t>(i)],
                                      a.alphabet().CharOf(c));
      test = first ? atom : WindowFormula::And(std::move(test), std::move(atom));
      first = false;
    }
    std::vector<StringFormula> parts;
    parts.push_back(StringFormula::Atomic(Dir::kLeft, {}, std::move(test)));
    std::vector<std::string> fwd;
    std::vector<std::string> back;
    for (int i = 0; i < a.num_tapes(); ++i) {
      if (t.move[static_cast<size_t>(i)] == kFwd) {
        fwd.push_back(vars[static_cast<size_t>(i)]);
      } else if (t.move[static_cast<size_t>(i)] == kBack) {
        back.push_back(vars[static_cast<size_t>(i)]);
      }
    }
    if (!fwd.empty()) {
      parts.push_back(StringFormula::Atomic(Dir::kLeft, std::move(fwd),
                                            WindowFormula::True()));
    }
    if (!back.empty()) {
      parts.push_back(StringFormula::Atomic(Dir::kRight, std::move(back),
                                            WindowFormula::True()));
    }
    return StringFormula::ConcatAll(std::move(parts));
  };

  // Node set: the normalised states plus a fresh final sink F that all
  // final states are merged into (they have no outgoing transitions).
  const int n = a.num_states();
  const int sink = n;
  const int start = a.start();
  std::vector<std::vector<Entry>> e(
      static_cast<size_t>(n + 1),
      std::vector<Entry>(static_cast<size_t>(n + 1), std::nullopt));
  int64_t total_size = 0;
  for (const Transition& t : a.transitions()) {
    int to = a.IsFinal(t.to) ? sink : t.to;
    StringFormula f = transition_formula(t);
    int64_t size = f.Size();
    total_size += size;
    e[static_cast<size_t>(t.from)][static_cast<size_t>(to)] = UnionE(
        e[static_cast<size_t>(t.from)][static_cast<size_t>(to)],
        Elem{std::move(f), size});
  }

  // Eliminate every node except start and sink, cheapest (in-degree ×
  // out-degree) first.
  std::vector<bool> alive(static_cast<size_t>(n + 1), true);
  auto degree_cost = [&](int q) {
    int64_t in = 0, out = 0;
    for (int i = 0; i <= n; ++i) {
      if (!alive[static_cast<size_t>(i)] || i == q) continue;
      if (e[static_cast<size_t>(i)][static_cast<size_t>(q)]) ++in;
      if (e[static_cast<size_t>(q)][static_cast<size_t>(i)]) ++out;
    }
    return in * out;
  };
  for (int round = 0; round < n - 1; ++round) {
    int q = -1;
    int64_t best = -1;
    for (int cand = 0; cand < n; ++cand) {
      if (!alive[static_cast<size_t>(cand)] || cand == start) continue;
      int64_t cost = degree_cost(cand);
      if (q < 0 || cost < best) {
        q = cand;
        best = cost;
      }
    }
    if (q < 0) break;
    alive[static_cast<size_t>(q)] = false;
    Entry loop = StarE(e[static_cast<size_t>(q)][static_cast<size_t>(q)]);
    for (int i = 0; i <= n; ++i) {
      if (!alive[static_cast<size_t>(i)]) continue;
      const Entry& in = e[static_cast<size_t>(i)][static_cast<size_t>(q)];
      if (!in.has_value()) continue;
      for (int j = 0; j <= n; ++j) {
        if (!alive[static_cast<size_t>(j)]) continue;
        const Entry& out = e[static_cast<size_t>(q)][static_cast<size_t>(j)];
        if (!out.has_value()) continue;
        Entry path = CatE(CatE(in, loop), out);
        Entry& cell = e[static_cast<size_t>(i)][static_cast<size_t>(j)];
        total_size += path->size;
        cell = UnionE(cell, path);
        if (total_size > options.max_formula_size) {
          return Status::ResourceExhausted(
              "state elimination exceeded max_formula_size");
        }
      }
    }
    for (int i = 0; i <= n; ++i) {
      e[static_cast<size_t>(q)][static_cast<size_t>(i)] = std::nullopt;
      e[static_cast<size_t>(i)][static_cast<size_t>(q)] = std::nullopt;
    }
  }

  Entry self = e[static_cast<size_t>(start)][static_cast<size_t>(start)];
  Entry to_sink = e[static_cast<size_t>(start)][static_cast<size_t>(sink)];
  if (!to_sink.has_value()) return unsatisfiable;
  if (self.has_value()) to_sink = CatE(StarE(self), to_sink);
  return to_sink->formula;
}

}  // namespace strdb
