#include "fsa/kernel.h"

#include <algorithm>
#include <numeric>

namespace strdb {

namespace {

// Rank of a tape symbol in the packed read-key alphabet: character ids
// first, then ⊢, then ⊣.
inline int64_t RankOf(Sym s, int sigma) {
  if (s == kLeftEnd) return sigma;
  if (s == kRightEnd) return sigma + 1;
  return s;
}

inline Status SpaceExhausted() {
  return Status::ResourceExhausted(
      "configuration space exceeds int64 index range");
}

}  // namespace

Result<AcceptKernel> AcceptKernel::Compile(const Fsa& fsa) {
  AcceptKernel kernel(fsa.alphabet(), fsa.num_tapes());
  const int sigma = kernel.alphabet_.size();
  const int k = kernel.num_tapes_;
  kernel.num_states_ = fsa.num_states();
  kernel.start_ = fsa.start();
  kernel.radix_ = sigma + 2;
  kernel.pow_.resize(static_cast<size_t>(k));
  int64_t p = 1;
  for (int i = 0; i < k; ++i) {
    kernel.pow_[static_cast<size_t>(i)] = p;
    if (i + 1 < k &&
        __builtin_mul_overflow(p, static_cast<int64_t>(kernel.radix_), &p)) {
      return Status::ResourceExhausted(
          "read-key space (|Sigma|+2)^k exceeds int64 range");
    }
  }
  std::fill(kernel.char_rank_, kernel.char_rank_ + 256, int16_t{-1});
  for (Sym s = 0; s < sigma; ++s) {
    kernel.char_rank_[static_cast<unsigned char>(kernel.alphabet_.CharOf(s))] =
        s;
  }
  kernel.is_final_.resize(static_cast<size_t>(kernel.num_states_));
  for (int s = 0; s < kernel.num_states_; ++s) {
    kernel.is_final_[static_cast<size_t>(s)] = fsa.IsFinal(s) ? 1 : 0;
  }

  const std::vector<Transition>& trs = fsa.transitions();
  std::vector<int64_t> keys(trs.size());
  for (size_t t = 0; t < trs.size(); ++t) {
    int64_t key = 0;
    for (int i = 0; i < k; ++i) {
      key += RankOf(trs[t].read[static_cast<size_t>(i)], sigma) *
             kernel.pow_[static_cast<size_t>(i)];
      if (trs[t].move[static_cast<size_t>(i)] == kBack) {
        kernel.one_way_ = false;
      }
    }
    keys[t] = key;
  }
  std::vector<int32_t> order(trs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    if (trs[static_cast<size_t>(a)].from != trs[static_cast<size_t>(b)].from) {
      return trs[static_cast<size_t>(a)].from < trs[static_cast<size_t>(b)].from;
    }
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  kernel.row_begin_.assign(static_cast<size_t>(kernel.num_states_) + 1, 0);
  kernel.tr_key_.resize(trs.size());
  kernel.tr_to_.resize(trs.size());
  kernel.tr_move_.resize(trs.size() * static_cast<size_t>(k));
  for (size_t slot = 0; slot < order.size(); ++slot) {
    const Transition& tr = trs[static_cast<size_t>(order[slot])];
    kernel.tr_key_[slot] = keys[static_cast<size_t>(order[slot])];
    kernel.tr_to_[slot] = tr.to;
    for (int i = 0; i < k; ++i) {
      kernel.tr_move_[slot * static_cast<size_t>(k) + static_cast<size_t>(i)] =
          tr.move[static_cast<size_t>(i)];
    }
    ++kernel.row_begin_[static_cast<size_t>(tr.from) + 1];
  }
  for (int s = 0; s < kernel.num_states_; ++s) {
    kernel.row_begin_[static_cast<size_t>(s) + 1] +=
        kernel.row_begin_[static_cast<size_t>(s)];
  }

  // Dense (state, key) lookup table, when it fits.
  constexpr int64_t kMaxLookupEntries = int64_t{1} << 18;
  int64_t key_space = 0;
  if (k > 0 && static_cast<int64_t>(trs.size()) <= UINT16_MAX &&
      !__builtin_mul_overflow(kernel.pow_[static_cast<size_t>(k) - 1],
                              static_cast<int64_t>(kernel.radix_),
                              &key_space)) {
    int64_t entries;
    if (!__builtin_mul_overflow(key_space,
                                static_cast<int64_t>(kernel.num_states_),
                                &entries) &&
        entries <= kMaxLookupEntries) {
      kernel.key_space_ = key_space;
      kernel.lookup_begin_.assign(static_cast<size_t>(entries), 0);
      kernel.lookup_cnt_.assign(static_cast<size_t>(entries), 0);
      for (int s = 0; s < kernel.num_states_; ++s) {
        int32_t t = kernel.row_begin_[static_cast<size_t>(s)];
        const int32_t end = kernel.row_begin_[static_cast<size_t>(s) + 1];
        while (t < end) {
          int32_t run = t + 1;
          while (run < end && kernel.tr_key_[static_cast<size_t>(run)] ==
                                  kernel.tr_key_[static_cast<size_t>(t)]) {
            ++run;
          }
          size_t base = static_cast<size_t>(s) * static_cast<size_t>(key_space) +
                        static_cast<size_t>(kernel.tr_key_[static_cast<size_t>(t)]);
          kernel.lookup_begin_[base] = t;
          kernel.lookup_cnt_[base] = static_cast<uint16_t>(run - t);
          t = run;
        }
      }
    }
  }

  // One-way bitset stepping tables.  Only worth building when whole
  // state sets fit one word and the per-(key, move) mask array stays
  // small; the per-state CSR walk remains as the fallback.
  constexpr int64_t kMaxMaskEntries = int64_t{1} << 20;
  if (kernel.one_way_ && kernel.num_states_ <= 64 && kernel.key_space_ != 0) {
    for (size_t t = 0; t < trs.size(); ++t) {
      const int8_t* mv = kernel.tr_move_.data() + t * static_cast<size_t>(k);
      int m = -1;
      for (int j = 0; j < kernel.num_moves_; ++j) {
        if (std::equal(mv, mv + k, kernel.move_vec_.data() +
                                       static_cast<size_t>(j) *
                                           static_cast<size_t>(k))) {
          m = j;
          break;
        }
      }
      if (m < 0) {
        kernel.move_vec_.insert(kernel.move_vec_.end(), mv, mv + k);
        ++kernel.num_moves_;
      }
    }
    for (int m = 0; m < kernel.num_moves_; ++m) {
      const int8_t* mv =
          kernel.move_vec_.data() + static_cast<size_t>(m) *
                                        static_cast<size_t>(k);
      if (std::all_of(mv, mv + k, [](int8_t d) { return d == 0; })) {
        kernel.zero_move_ = m;
        break;
      }
    }
    // Group CSR slots by (key, move id).  Only (key, move) pairs that
    // actually occur get an entry, so the hot loop walks 2-3 contiguous
    // groups per key instead of probing every move vector, and the
    // successor tables stay dense enough to live in L1.
    const size_t S = static_cast<size_t>(kernel.num_states_);
    std::vector<int64_t> gkey(trs.size());
    for (size_t t = 0; t < trs.size(); ++t) {
      const int8_t* mv = kernel.tr_move_.data() + t * static_cast<size_t>(k);
      int m = 0;
      while (!std::equal(mv, mv + k,
                         kernel.move_vec_.data() +
                             static_cast<size_t>(m) *
                                 static_cast<size_t>(k))) {
        ++m;
      }
      gkey[t] = kernel.tr_key_[t] * kernel.num_moves_ + m;
    }
    std::vector<int32_t> gorder(trs.size());
    std::iota(gorder.begin(), gorder.end(), 0);
    std::sort(gorder.begin(), gorder.end(), [&](int32_t a, int32_t b) {
      return gkey[static_cast<size_t>(a)] < gkey[static_cast<size_t>(b)];
    });
    int64_t distinct = 0;
    for (size_t i = 0; i < gorder.size(); ++i) {
      if (i == 0 || gkey[static_cast<size_t>(gorder[i])] !=
                        gkey[static_cast<size_t>(gorder[i - 1])]) {
        ++distinct;
      }
    }
    if (distinct * static_cast<int64_t>(S) <= kMaxMaskEntries) {
      kernel.bitset_mode_ = true;
      kernel.key_group_begin_.assign(static_cast<size_t>(kernel.key_space_) + 1,
                                     0);
      kernel.group_m_.reserve(static_cast<size_t>(distinct));
      kernel.group_mask_.reserve(static_cast<size_t>(distinct));
      kernel.succ_mask_.reserve(static_cast<size_t>(distinct) * S);
      kernel.succ_cnt_.reserve(static_cast<size_t>(distinct) * S);
      kernel.key_nonempty_.assign(static_cast<size_t>(kernel.key_space_), 0);
      for (size_t i = 0; i < gorder.size(); ++i) {
        const size_t t = static_cast<size_t>(gorder[i]);
        const Transition& tr = trs[static_cast<size_t>(order[t])];
        if (i == 0 || gkey[t] != gkey[static_cast<size_t>(gorder[i - 1])]) {
          kernel.group_m_.push_back(
              static_cast<int32_t>(gkey[t] % kernel.num_moves_));
          kernel.group_mask_.push_back(0);
          kernel.succ_mask_.insert(kernel.succ_mask_.end(), S, 0);
          kernel.succ_cnt_.insert(kernel.succ_cnt_.end(), S, 0);
          ++kernel.key_group_begin_[static_cast<size_t>(
              gkey[t] / kernel.num_moves_ + 1)];
        }
        const size_t e = kernel.group_mask_.size() - 1;
        kernel.group_mask_[e] |= uint64_t{1} << tr.from;
        kernel.succ_mask_[e * S + static_cast<size_t>(tr.from)] |=
            uint64_t{1} << tr.to;
        ++kernel.succ_cnt_[e * S + static_cast<size_t>(tr.from)];
        kernel.key_nonempty_[static_cast<size_t>(kernel.tr_key_[t])] |=
            uint64_t{1} << tr.from;
      }
      for (size_t key = 0; key < static_cast<size_t>(kernel.key_space_);
           ++key) {
        kernel.key_group_begin_[key + 1] += kernel.key_group_begin_[key];
      }
      for (int s = 0; s < kernel.num_states_; ++s) {
        if (kernel.is_final_[static_cast<size_t>(s)]) {
          kernel.final_mask_ |= uint64_t{1} << s;
        }
      }
    } else {
      kernel.move_vec_.clear();
      kernel.num_moves_ = 0;
      kernel.zero_move_ = -1;
    }
  }
  return kernel;
}

int64_t AcceptKernel::MemoryCost() const {
  return static_cast<int64_t>(sizeof(AcceptKernel)) +
         static_cast<int64_t>(pow_.size() * sizeof(int64_t)) +
         static_cast<int64_t>(is_final_.size()) +
         static_cast<int64_t>(row_begin_.size() * sizeof(int32_t)) +
         static_cast<int64_t>(tr_key_.size() * sizeof(int64_t)) +
         static_cast<int64_t>(tr_to_.size() * sizeof(int32_t)) +
         static_cast<int64_t>(tr_move_.size()) +
         static_cast<int64_t>(lookup_begin_.size() * sizeof(int32_t)) +
         static_cast<int64_t>(lookup_cnt_.size() * sizeof(uint16_t)) +
         static_cast<int64_t>(move_vec_.size()) +
         static_cast<int64_t>(key_group_begin_.size() * sizeof(int32_t)) +
         static_cast<int64_t>(group_m_.size() * sizeof(int32_t)) +
         static_cast<int64_t>(group_mask_.size() * sizeof(uint64_t)) +
         static_cast<int64_t>(succ_mask_.size() * sizeof(uint64_t)) +
         static_cast<int64_t>(succ_cnt_.size() * sizeof(uint16_t)) +
         static_cast<int64_t>(key_nonempty_.size() * sizeof(uint64_t));
}

Status AcceptScratch::Prepare(const AcceptKernel& kernel,
                              const std::vector<std::string>& strings) {
  const int k = kernel.num_tapes_;
  if (static_cast<int>(strings.size()) != k) {
    return Status::InvalidArgument("input arity differs from tape count");
  }
  const int sigma = kernel.alphabet_.size();
  rank_off_.assign(static_cast<size_t>(k) + 1, 0);
  size_t total_ranks = 0;
  for (int i = 0; i < k; ++i) {
    total_ranks += strings[static_cast<size_t>(i)].size() + 2;
    rank_off_[static_cast<size_t>(i) + 1] = static_cast<int32_t>(total_ranks);
  }
  ranks_.resize(total_ranks);
  for (int i = 0; i < k; ++i) {
    int32_t* row = ranks_.data() + rank_off_[static_cast<size_t>(i)];
    const std::string& w = strings[static_cast<size_t>(i)];
    row[0] = sigma;  // ⊢
    for (size_t j = 0; j < w.size(); ++j) {
      int16_t rank = kernel.char_rank_[static_cast<unsigned char>(w[j])];
      if (rank < 0) {
        return Status::InvalidArgument(
            std::string("string contains character '") + w[j] +
            "' outside the alphabet");
      }
      row[j + 1] = rank;
    }
    row[w.size() + 1] = sigma + 1;  // ⊣
  }

  stride_.resize(static_cast<size_t>(k));
  int64_t stride = 1;
  for (int i = 0; i < k; ++i) {
    stride_[static_cast<size_t>(i)] = stride;
    int64_t radix =
        static_cast<int64_t>(strings[static_cast<size_t>(i)].size()) + 2;
    if (__builtin_mul_overflow(stride, radix, &stride)) {
      return SpaceExhausted();
    }
  }
  per_state_ = stride;
  if (__builtin_mul_overflow(per_state_,
                             static_cast<int64_t>(kernel.num_states_),
                             &total_)) {
    return SpaceExhausted();
  }

  if (!kernel.bitset_mode_) {
    // Per-transition deltas feed the per-state walks; the bitset path
    // only needs one delta per distinct move vector (below).
    const size_t trans = static_cast<size_t>(kernel.num_transitions());
    tr_delta_.resize(trans);
    for (size_t t = 0; t < trans; ++t) {
      int64_t delta = 0;
      for (int i = 0; i < k; ++i) {
        delta += stride_[static_cast<size_t>(i)] *
                 kernel.tr_move_[t * static_cast<size_t>(k) +
                                 static_cast<size_t>(i)];
      }
      tr_delta_[t] = delta;
    }
  } else {
    move_delta_.resize(static_cast<size_t>(kernel.num_moves_));
    for (int m = 0; m < kernel.num_moves_; ++m) {
      int64_t delta = 0;
      for (int i = 0; i < k; ++i) {
        delta += stride_[static_cast<size_t>(i)] *
                 kernel.move_vec_[static_cast<size_t>(m) *
                                      static_cast<size_t>(k) +
                                  static_cast<size_t>(i)];
      }
      move_delta_[static_cast<size_t>(m)] = delta;
    }
  }
  return Status::OK();
}

void AcceptScratch::ResetSlots(int64_t per_state) {
  slot_pos_.clear();
  slot_key_.clear();
  pending_bits_.clear();
  done_bits_.clear();
  slot_queued_.clear();
  worklist_.clear();
  slot_count_ = 0;
  constexpr int64_t kMaxDirectSlots = int64_t{1} << 20;
  slot_direct_ = per_state <= kMaxDirectSlots;
  if (slot_direct_) {
    if (slot_lookup_.size() < static_cast<size_t>(per_state)) {
      slot_lookup_.resize(static_cast<size_t>(per_state));
    }
  } else if (slot_table_.empty()) {
    slot_table_.resize(1024);
  }
  if (++slot_epoch_ == 0) {
    // The 32-bit epoch wrapped: all stamps are stale lies now, so reset
    // them once and restart from epoch 1.
    std::fill(slot_lookup_.begin(), slot_lookup_.end(), uint64_t{0});
    for (SlotEntry& e : slot_table_) e.epoch = 0;
    slot_epoch_ = 1;
  }
}

void AcceptScratch::GrowSlotTable() {
  std::vector<SlotEntry> old = std::move(slot_table_);
  slot_table_.assign(old.size() * 2, SlotEntry{});
  const size_t mask = slot_table_.size() - 1;
  for (const SlotEntry& e : old) {
    if (e.epoch != slot_epoch_) continue;
    uint64_t h = static_cast<uint64_t>(e.key) * 0x9e3779b97f4a7c15ULL;
    size_t idx = static_cast<size_t>(h ^ (h >> 32)) & mask;
    while (slot_table_[idx].epoch == slot_epoch_) idx = (idx + 1) & mask;
    slot_table_[idx] = e;
  }
}

int32_t AcceptScratch::SlotOf(int64_t poskey, int k, const int32_t* base_pos,
                              const int8_t* moves, size_t set_words) {
  int32_t id = static_cast<int32_t>(slot_key_.size());
  if (slot_direct_) {
    size_t di = static_cast<size_t>(poskey);
    const uint64_t entry = slot_lookup_[di];
    if ((entry >> 32) == slot_epoch_) {
      return static_cast<int32_t>(entry & 0xffffffffu);
    }
    slot_lookup_[di] = (static_cast<uint64_t>(slot_epoch_) << 32) |
                       static_cast<uint32_t>(id);
  } else {
    if ((slot_count_ + 1) * 2 > slot_table_.size()) GrowSlotTable();
    const size_t mask = slot_table_.size() - 1;
    uint64_t h = static_cast<uint64_t>(poskey) * 0x9e3779b97f4a7c15ULL;
    size_t idx = static_cast<size_t>(h ^ (h >> 32)) & mask;
    while (slot_table_[idx].epoch == slot_epoch_) {
      if (slot_table_[idx].key == poskey) return slot_table_[idx].slot;
      idx = (idx + 1) & mask;
    }
    SlotEntry& e = slot_table_[idx];
    e.key = poskey;
    e.epoch = slot_epoch_;
    e.slot = id;
    ++slot_count_;
  }
  slot_key_.push_back(poskey);
  for (int i = 0; i < k; ++i) {
    slot_pos_.push_back(base_pos[i] + (moves != nullptr ? moves[i] : 0));
  }
  pending_bits_.insert(pending_bits_.end(), set_words, 0);
  done_bits_.insert(done_bits_.end(), set_words, 0);
  slot_queued_.push_back(0);
  return id;
}

Result<AcceptStats> AcceptScratch::Accept(
    const AcceptKernel& kernel, const std::vector<std::string>& strings,
    const AcceptOptions& options) {
  STRDB_RETURN_IF_ERROR(Prepare(kernel, strings));
  if (!kernel.one_way_) return RunTwoWay(kernel, options);
  return kernel.bitset_mode_ ? RunOneWayBitset(kernel, options)
                             : RunOneWay(kernel, options);
}

Result<AcceptStats> AcceptScratch::RunTwoWay(const AcceptKernel& kernel,
                                             const AcceptOptions& options) {
  const int k = kernel.num_tapes_;
  const size_t words = static_cast<size_t>((total_ + 63) / 64);
  if (visited_words_.size() < words) {
    visited_words_.resize(words);
    visited_epoch_.resize(words);
  }
  if (++epoch_ == 0) {
    // The 32-bit epoch wrapped: all stamps are stale lies now, so reset
    // them once and restart from epoch 1.
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0u);
    epoch_ = 1;
  }
  auto test_and_set = [&](int64_t idx) {
    size_t w = static_cast<size_t>(idx >> 6);
    uint64_t bit = uint64_t{1} << (idx & 63);
    if (visited_epoch_[w] != epoch_) {
      visited_epoch_[w] = epoch_;
      visited_words_[w] = 0;
    }
    if ((visited_words_[w] & bit) != 0) return true;
    visited_words_[w] |= bit;
    return false;
  };

  frontier_state_.clear();
  frontier_pos_.clear();
  frontier_state_.reserve(64);
  frontier_state_.push_back(kernel.start_);
  frontier_pos_.insert(frontier_pos_.end(), static_cast<size_t>(k), 0);
  test_and_set(static_cast<int64_t>(kernel.start_) * per_state_);

  cur_pos_.resize(static_cast<size_t>(k));
  AcceptStats stats;
  for (size_t head = 0; head < frontier_state_.size(); ++head) {
    if (options.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options.budget->ChargeSteps(1));
    }
    ++stats.configurations_visited;
    const int32_t state = frontier_state_[head];
    // Copy the positions out: pushes below may reallocate frontier_pos_.
    std::copy_n(frontier_pos_.data() + head * static_cast<size_t>(k),
                static_cast<size_t>(k), cur_pos_.data());
    int64_t posk = 0;
    int64_t key = 0;
    for (int i = 0; i < k; ++i) {
      int32_t p = cur_pos_[static_cast<size_t>(i)];
      posk += stride_[static_cast<size_t>(i)] * p;
      key += static_cast<int64_t>(
                 ranks_[static_cast<size_t>(
                     rank_off_[static_cast<size_t>(i)] + p)]) *
             kernel.pow_[static_cast<size_t>(i)];
    }
    int32_t t0, t1;
    kernel.MatchRange(state, key, &t0, &t1);
    stats.transitions_tried += t1 - t0;
    for (int32_t ti = t0; ti < t1; ++ti) {
      size_t t = static_cast<size_t>(ti);
      int64_t next = static_cast<int64_t>(kernel.tr_to_[t]) * per_state_ +
                     posk + tr_delta_[t];
      if (test_and_set(next)) continue;
      frontier_state_.push_back(kernel.tr_to_[t]);
      const int8_t* moves =
          kernel.tr_move_.data() + t * static_cast<size_t>(k);
      for (int i = 0; i < k; ++i) {
        frontier_pos_.push_back(cur_pos_[static_cast<size_t>(i)] +
                                moves[i]);
      }
    }
    if (t0 == t1 && kernel.is_final_[static_cast<size_t>(state)]) {
      stats.accepted = true;
      return stats;
    }
  }
  stats.accepted = false;
  return stats;
}

Result<AcceptStats> AcceptScratch::RunOneWay(const AcceptKernel& kernel,
                                             const AcceptOptions& options) {
  const int k = kernel.num_tapes_;
  const size_t set_words = static_cast<size_t>((kernel.num_states_ + 63) / 64);
  ResetSlots(per_state_);

  cur_pos_.assign(static_cast<size_t>(k), 0);
  int32_t start_slot = SlotOf(0, k, cur_pos_.data(), nullptr, set_words);
  pending_bits_[static_cast<size_t>(start_slot) * set_words +
                static_cast<size_t>(kernel.start_) / 64] |=
      uint64_t{1} << (kernel.start_ % 64);
  slot_queued_[static_cast<size_t>(start_slot)] = 1;
  worklist_.push_back(start_slot);

  AcceptStats stats;
  for (size_t head = 0; head < worklist_.size(); ++head) {
    const int32_t slot = worklist_[head];
    slot_queued_[static_cast<size_t>(slot)] = 0;
    const int64_t slot_poskey = slot_key_[static_cast<size_t>(slot)];
    // The read key is a function of the position vector alone, so every
    // state sharing this slot shares one key computation.
    std::copy_n(slot_pos_.data() + static_cast<size_t>(slot) * k,
                static_cast<size_t>(k), cur_pos_.data());
    int64_t key = 0;
    for (int i = 0; i < k; ++i) {
      key += static_cast<int64_t>(
                 ranks_[static_cast<size_t>(
                     rank_off_[static_cast<size_t>(i)] +
                     cur_pos_[static_cast<size_t>(i)])]) *
             kernel.pow_[static_cast<size_t>(i)];
    }
    for (size_t w = 0; w < set_words; ++w) {
      uint64_t fresh =
          pending_bits_[static_cast<size_t>(slot) * set_words + w] &
          ~done_bits_[static_cast<size_t>(slot) * set_words + w];
      if (fresh == 0) continue;
      done_bits_[static_cast<size_t>(slot) * set_words + w] |= fresh;
      while (fresh != 0) {
        int bit = __builtin_ctzll(fresh);
        fresh &= fresh - 1;
        int32_t state = static_cast<int32_t>(w * 64 + static_cast<size_t>(bit));
        if (options.budget != nullptr) {
          STRDB_RETURN_IF_ERROR(options.budget->ChargeSteps(1));
        }
        ++stats.configurations_visited;
        int32_t t0, t1;
        kernel.MatchRange(state, key, &t0, &t1);
        stats.transitions_tried += t1 - t0;
        for (int32_t ti = t0; ti < t1; ++ti) {
          size_t t = static_cast<size_t>(ti);
          int64_t npos_key = slot_poskey + tr_delta_[t];
          // cur_pos_ (not a pointer into slot_pos_, which SlotOf may
          // reallocate) supplies the base positions.
          int32_t target =
              SlotOf(npos_key, k, cur_pos_.data(),
                     kernel.tr_move_.data() + t * static_cast<size_t>(k),
                     set_words);
          size_t tw = static_cast<size_t>(target) * set_words +
                      static_cast<size_t>(kernel.tr_to_[t]) / 64;
          uint64_t tbit = uint64_t{1} << (kernel.tr_to_[t] % 64);
          if ((done_bits_[tw] & tbit) != 0 ||
              (pending_bits_[tw] & tbit) != 0) {
            continue;
          }
          pending_bits_[tw] |= tbit;
          if (!slot_queued_[static_cast<size_t>(target)]) {
            slot_queued_[static_cast<size_t>(target)] = 1;
            worklist_.push_back(target);
          }
        }
        if (t0 == t1 && kernel.is_final_[static_cast<size_t>(state)]) {
          stats.accepted = true;
          return stats;
        }
      }
    }
  }
  stats.accepted = false;
  return stats;
}

Result<AcceptStats> AcceptScratch::RunOneWayBitset(
    const AcceptKernel& kernel, const AcceptOptions& options) {
  const int k = kernel.num_tapes_;
  const size_t num_states = static_cast<size_t>(kernel.num_states_);
  ResetSlots(per_state_);

  // |Q| ≤ 64 here, so every state set is exactly one word per slot.
  cur_pos_.assign(static_cast<size_t>(k), 0);
  int32_t start_slot = SlotOf(0, k, cur_pos_.data(), nullptr, 1);
  pending_bits_[static_cast<size_t>(start_slot)] = uint64_t{1}
                                                   << kernel.start_;
  slot_queued_[static_cast<size_t>(start_slot)] = 1;
  worklist_.push_back(start_slot);

  // Hoisted table pointers: all of these stay put while the loop runs
  // (only the slot arrays grow), which spares the compiler re-loading
  // them around every push_back.
  const int64_t* pow = kernel.pow_.data();
  const int32_t* ranks = ranks_.data();
  const int32_t* roff = rank_off_.data();
  const int32_t* kgb = kernel.key_group_begin_.data();
  const int32_t* gm = kernel.group_m_.data();
  const uint64_t* gmask = kernel.group_mask_.data();
  const uint64_t* succ = kernel.succ_mask_.data();
  const uint16_t* scnt = kernel.succ_cnt_.data();
  const uint64_t* nonempty = kernel.key_nonempty_.data();
  const int8_t* mvec = kernel.move_vec_.data();
  const int64_t* mdelta = move_delta_.data();
  const uint64_t final_mask = kernel.final_mask_;
  const int zero_move = kernel.zero_move_;

  AcceptStats stats;
  for (size_t head = 0; head < worklist_.size(); ++head) {
    const int32_t slot = worklist_[head];
    slot_queued_[static_cast<size_t>(slot)] = 0;
    uint64_t fresh = pending_bits_[static_cast<size_t>(slot)] &
                     ~done_bits_[static_cast<size_t>(slot)];
    if (fresh == 0) continue;
    const int64_t slot_poskey = slot_key_[static_cast<size_t>(slot)];
    // cur_pos_ (not a pointer into slot_pos_, which SlotOf may
    // reallocate) supplies the base positions.
    std::copy_n(slot_pos_.data() + static_cast<size_t>(slot) * k,
                static_cast<size_t>(k), cur_pos_.data());
    int64_t key = 0;
    for (int i = 0; i < k; ++i) {
      key += static_cast<int64_t>(
                 ranks[static_cast<size_t>(
                     roff[static_cast<size_t>(i)] +
                     cur_pos_[static_cast<size_t>(i)])]) *
             pow[static_cast<size_t>(i)];
    }
    const int32_t gb = kgb[static_cast<size_t>(key)];
    const int32_t ge = kgb[static_cast<size_t>(key) + 1];
    // Stationary closure first: the all-zero move vector (the only one
    // with Σ stride_i·move_i = 0, since strides are positive) keeps both
    // the position vector and the read key, so chase it to a fixpoint
    // here.  Without this, every state-only chain step would re-queue
    // the slot and pay the whole expansion preamble again.
    if (zero_move >= 0) {
      for (int32_t gi = gb; gi < ge; ++gi) {
        if (gm[static_cast<size_t>(gi)] != zero_move) continue;
        const uint64_t* rows =
            succ + static_cast<size_t>(gi) * num_states;
        const uint16_t* cnts =
            scnt + static_cast<size_t>(gi) * num_states;
        uint64_t frontier = fresh;
        while (true) {
          uint64_t f = frontier & gmask[static_cast<size_t>(gi)];
          if (f == 0) break;
          uint64_t next = 0;
          int64_t tried = 0;
          do {
            int s = __builtin_ctzll(f);
            f &= f - 1;
            next |= rows[s];
            tried += cnts[s];
          } while (f != 0);
          stats.transitions_tried += tried;
          const uint64_t add =
              next & ~(done_bits_[static_cast<size_t>(slot)] | fresh);
          if (add == 0) break;
          fresh |= add;
          frontier = add;
        }
        pending_bits_[static_cast<size_t>(slot)] |= fresh;
        break;
      }
    }
    done_bits_[static_cast<size_t>(slot)] |= fresh;
    const int visits = __builtin_popcountll(fresh);
    if (options.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options.budget->ChargeSteps(visits));
    }
    stats.configurations_visited += visits;
    // Stuck acceptance in one AND chain: a freshly visited final state
    // with no transition on this read key accepts immediately.
    if ((fresh & final_mask & ~nonempty[static_cast<size_t>(key)]) != 0) {
      stats.accepted = true;
      return stats;
    }
    for (int32_t gi = gb; gi < ge; ++gi) {
      const int m = gm[static_cast<size_t>(gi)];
      if (m == zero_move) continue;
      // Restrict to states with a transition in this group; groups
      // nobody in the set can take cost one AND.
      uint64_t f = fresh & gmask[static_cast<size_t>(gi)];
      if (f == 0) continue;
      const uint64_t* rows = succ + static_cast<size_t>(gi) * num_states;
      const uint16_t* cnts = scnt + static_cast<size_t>(gi) * num_states;
      uint64_t next = 0;
      int64_t tried = 0;
      do {
        int s = __builtin_ctzll(f);
        f &= f - 1;
        next |= rows[s];
        tried += cnts[s];
      } while (f != 0);
      stats.transitions_tried += tried;
      int32_t target =
          SlotOf(slot_poskey + mdelta[static_cast<size_t>(m)], k,
                 cur_pos_.data(),
                 mvec + static_cast<size_t>(m) * static_cast<size_t>(k), 1);
      const uint64_t fresh_target =
          next & ~done_bits_[static_cast<size_t>(target)] &
          ~pending_bits_[static_cast<size_t>(target)];
      pending_bits_[static_cast<size_t>(target)] |= next;
      if (fresh_target != 0 && !slot_queued_[static_cast<size_t>(target)]) {
        slot_queued_[static_cast<size_t>(target)] = 1;
        worklist_.push_back(target);
      }
    }
  }
  stats.accepted = false;
  return stats;
}

KernelBatchResult AcceptBatch(
    const AcceptKernel& kernel,
    const std::vector<const std::vector<std::string>*>& tuples,
    AcceptScratch* scratch, const AcceptOptions& options) {
  KernelBatchResult out;
  out.statuses.resize(tuples.size());
  out.accepted.assign(tuples.size(), 0);
  for (size_t i = 0; i < tuples.size(); ++i) {
    Result<AcceptStats> r = scratch->Accept(kernel, *tuples[i], options);
    if (!r.ok()) {
      out.statuses[i] = r.status();
      continue;
    }
    out.accepted[i] = r->accepted ? 1 : 0;
    out.configurations_visited += r->configurations_visited;
    out.transitions_tried += r->transitions_tried;
  }
  return out;
}

}  // namespace strdb
