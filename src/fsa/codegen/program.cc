#include "fsa/codegen/program.h"

#include <algorithm>
#include <cstring>

#include "core/metrics.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace strdb {

namespace {

// Lanes per dispatch round of the batch path.  64 keeps the SoA arrays
// within one page and gives the AVX2 path eight full 8-lane rounds.
constexpr int kLanes = 64;

// Rank-arena offsets are int32 so the batch path can gather with 32-bit
// indices; tuples past this many encoded symbols take the scalar path.
constexpr int64_t kMaxArenaRanks = int64_t{1} << 30;

inline Status SpaceExhausted() {
  return Status::ResourceExhausted(
      "configuration space exceeds int64 index range");
}

struct DfaMetrics {
  Counter* compiles;
  Counter* compile_failures;
  Counter* batch_rows;
  Histogram* states_before;
  Histogram* states_after;
  static const DfaMetrics& Get() {
    static const DfaMetrics m = {
        MetricsRegistry::Global().GetCounter("fsa.dfa.compiles"),
        MetricsRegistry::Global().GetCounter("fsa.dfa.compile_failures"),
        MetricsRegistry::Global().GetCounter("fsa.dfa.batch_rows"),
        MetricsRegistry::Global().GetHistogram("fsa.dfa.states_before_min"),
        MetricsRegistry::Global().GetHistogram("fsa.dfa.states_after_min"),
    };
    return m;
  }
};

}  // namespace

// Friend of DfaProgram/DfaScratch: hosts the interpreter loops so the
// hot code can touch the packed fields directly.
struct DfaBatchRunner {
  // Advances one chain until it halts or `step_cap` steps elapse.
  // Returns steps taken; the caller distinguishes "halted" from
  // "paused for budget accounting" by op_[*state_io].
  template <int KT>
  static int64_t RunChain(const DfaProgram& p, const int32_t* ranks,
                          const int32_t* roff, int32_t* state_io,
                          int32_t* pos, int64_t step_cap) {
    const int k = KT > 0 ? KT : p.k_;
    const uint32_t* rows = p.rows_.data();
    const uint8_t* ops = p.op_.data();
    const int32_t* pow = p.pow_.data();
    const int32_t num_keys = p.num_keys_;
    int32_t state = *state_io;
    int64_t steps = 0;
#if defined(__GNUC__)
    // Threaded dispatch: the state's opcode indexes a label table, so
    // the loop is key fold → row load → mask update → indirect jump.
    static const void* const kJump[2] = {&&op_row, &&op_halt};
    goto* kJump[ops[state]];
  op_row: {
    if (steps >= step_cap) goto op_halt;
    int32_t key = 0;
    for (int i = 0; i < k; ++i) {
      key += ranks[roff[i] + pos[i]] * pow[i];
    }
    const uint32_t e = rows[static_cast<size_t>(state) *
                                static_cast<size_t>(num_keys) +
                            static_cast<size_t>(key)];
    const uint32_t m = e >> 24;
    state = static_cast<int32_t>(e & 0xFFFFFFu);
    for (int i = 0; i < k; ++i) {
      pos[i] += static_cast<int32_t>((m >> i) & 1u);
    }
    ++steps;
    goto* kJump[ops[state]];
  }
  op_halt:;
#else
    while (ops[state] == 0 && steps < step_cap) {
      int32_t key = 0;
      for (int i = 0; i < k; ++i) {
        key += ranks[roff[i] + pos[i]] * pow[i];
      }
      const uint32_t e = rows[static_cast<size_t>(state) *
                                  static_cast<size_t>(num_keys) +
                              static_cast<size_t>(key)];
      const uint32_t m = e >> 24;
      state = static_cast<int32_t>(e & 0xFFFFFFu);
      for (int i = 0; i < k; ++i) {
        pos[i] += static_cast<int32_t>((m >> i) & 1u);
      }
      ++steps;
    }
#endif
    *state_io = state;
    return steps;
  }

  static int64_t RunChainK(const DfaProgram& p, const int32_t* ranks,
                           const int32_t* roff, int32_t* state_io,
                           int32_t* pos, int64_t step_cap) {
    switch (p.k_) {
      case 1:
        return RunChain<1>(p, ranks, roff, state_io, pos, step_cap);
      case 2:
        return RunChain<2>(p, ranks, roff, state_io, pos, step_cap);
      case 3:
        return RunChain<3>(p, ranks, roff, state_io, pos, step_cap);
      default:
        return RunChain<0>(p, ranks, roff, state_io, pos, step_cap);
    }
  }

  // One dispatch round over `active` lanes: gather each lane's read key
  // from its rank rows, gather the (state, key) row, apply the packed
  // move mask to every head.  Lanes already in a halt state execute
  // their absorbing self-loop harmlessly; the caller retires them
  // between rounds.
  static void Round(const DfaProgram& p, const int32_t* ranks,
                    int32_t* state, int32_t* pos, const int32_t* base,
                    int active) {
    const int k = p.k_;
    const uint32_t* rows = p.rows_.data();
    const int32_t* pow = p.pow_.data();
    const int32_t num_keys = p.num_keys_;
    int l = 0;
#if defined(__AVX2__)
    for (; l + 8 <= active; l += 8) {
      __m256i key = _mm256_setzero_si256();
      for (int i = 0; i < k; ++i) {
        const __m256i idx = _mm256_add_epi32(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(base + i * kLanes + l)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(pos + i * kLanes + l)));
        const __m256i r = _mm256_i32gather_epi32(ranks, idx, 4);
        key = _mm256_add_epi32(
            key, _mm256_mullo_epi32(r, _mm256_set1_epi32(pow[i])));
      }
      __m256i st = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(state + l));
      const __m256i ridx = _mm256_add_epi32(
          _mm256_mullo_epi32(st, _mm256_set1_epi32(num_keys)), key);
      const __m256i e = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(rows), ridx, 4);
      st = _mm256_and_si256(e, _mm256_set1_epi32(0xFFFFFF));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + l), st);
      const __m256i m = _mm256_srli_epi32(e, 24);
      for (int i = 0; i < k; ++i) {
        const __m256i bit =
            _mm256_and_si256(_mm256_srli_epi32(m, i), _mm256_set1_epi32(1));
        __m256i* pp = reinterpret_cast<__m256i*>(pos + i * kLanes + l);
        _mm256_storeu_si256(
            pp, _mm256_add_epi32(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        pos + i * kLanes + l)),
                    bit));
      }
    }
#endif
    // Portable lane loop (and the AVX2 scalar tail): contiguous SoA
    // arrays, no cross-lane dependencies, so the compiler may vectorise.
    for (; l < active; ++l) {
      int32_t key = 0;
      for (int i = 0; i < k; ++i) {
        key += ranks[base[i * kLanes + l] + pos[i * kLanes + l]] * pow[i];
      }
      const uint32_t e = rows[static_cast<size_t>(state[l]) *
                                  static_cast<size_t>(num_keys) +
                              static_cast<size_t>(key)];
      state[l] = static_cast<int32_t>(e & 0xFFFFFFu);
      const uint32_t m = e >> 24;
      for (int i = 0; i < k; ++i) {
        pos[i * kLanes + l] += static_cast<int32_t>((m >> i) & 1u);
      }
    }
  }

  static DfaBatchResult RunBatch(
      const DfaProgram& p,
      const std::vector<const std::vector<std::string>*>& tuples,
      DfaScratch* scratch, const AcceptOptions& options);
};

Result<DfaProgram> DfaProgram::Compile(const Fsa& fsa,
                                       const DfaBuildOptions& options) {
  const DfaMetrics& metrics = DfaMetrics::Get();
  Result<Dfa> built = BuildDfa(fsa, options);
  if (!built.ok()) {
    metrics.compile_failures->Increment();
    return built.status();
  }
  Dfa& dfa = *built;
  // The batch path indexes the row table with 32-bit lane arithmetic.
  if (static_cast<int64_t>(dfa.rows.size()) > (int64_t{1} << 30)) {
    metrics.compile_failures->Increment();
    return Status::ResourceExhausted("DFA row table exceeds the byte cap");
  }
  DfaProgram p;
  p.alphabet_ = dfa.alphabet;
  p.k_ = dfa.num_tapes;
  p.radix_ = dfa.radix;
  p.num_keys_ = dfa.num_keys;
  p.pow_ = std::move(dfa.pow);
  std::memcpy(p.char_rank_, dfa.char_rank, sizeof(p.char_rank_));
  p.source_states_ = dfa.source_states;
  p.num_states_ = dfa.num_states;
  p.start_ = dfa.start;
  p.accept_ = dfa.accept_state;
  p.dead_ = dfa.dead_state;
  p.rows_ = std::move(dfa.rows);
  p.stats_ = dfa.stats;
  p.op_.assign(static_cast<size_t>(p.num_states_), 0);
  p.op_[static_cast<size_t>(p.accept_)] = 1;
  p.op_[static_cast<size_t>(p.dead_)] = 1;
  // Termination invariant the interpreters rely on: a row that does not
  // advance any head must jump to a halt state, so every chain ends
  // within Σ(|w_i|+1) + 1 steps.
  for (int32_t s = 0; s < p.num_states_; ++s) {
    if (p.op_[static_cast<size_t>(s)] != 0) continue;
    const size_t row = static_cast<size_t>(s) *
                       static_cast<size_t>(p.num_keys_);
    for (int32_t key = 0; key < p.num_keys_; ++key) {
      const uint32_t e = p.rows_[row + static_cast<size_t>(key)];
      const int32_t nx = static_cast<int32_t>(e & 0xFFFFFFu);
      if ((e >> 24) == 0 && p.op_[static_cast<size_t>(nx)] == 0) {
        return Status::Internal(
            "DFA row neither advances a head nor halts");
      }
    }
  }
  metrics.compiles->Increment();
  metrics.states_before->Record(p.stats_.states_before_min);
  metrics.states_after->Record(p.stats_.states_after_min);
  return p;
}

int64_t DfaProgram::MemoryCost() const {
  return static_cast<int64_t>(sizeof(DfaProgram)) +
         static_cast<int64_t>(rows_.size()) * 4 +
         static_cast<int64_t>(op_.size()) +
         static_cast<int64_t>(pow_.size()) * 4;
}

Status DfaScratch::Prepare(const DfaProgram& program,
                           const std::vector<std::string>& strings) {
  const int k = program.k_;
  if (static_cast<int>(strings.size()) != k) {
    return Status::InvalidArgument("input arity differs from tape count");
  }
  const int sigma = program.alphabet_.size();
  rank_off_.assign(static_cast<size_t>(k) + 1, 0);
  size_t total_ranks = 0;
  for (int i = 0; i < k; ++i) {
    total_ranks += strings[static_cast<size_t>(i)].size() + 2;
  }
  ranks_.resize(total_ranks);
  int32_t off = 0;
  for (int i = 0; i < k; ++i) {
    const std::string& w = strings[static_cast<size_t>(i)];
    rank_off_[static_cast<size_t>(i)] = off;
    int32_t* row = ranks_.data() + off;
    row[0] = sigma;  // ⊢
    for (size_t j = 0; j < w.size(); ++j) {
      const int16_t rank =
          program.char_rank_[static_cast<unsigned char>(w[j])];
      if (rank < 0) {
        return Status::InvalidArgument(
            std::string("string contains character '") + w[j] +
            "' outside the alphabet");
      }
      row[j + 1] = rank;
    }
    row[w.size() + 1] = sigma + 1;  // ⊣
    off += static_cast<int32_t>(w.size()) + 2;
  }
  rank_off_[static_cast<size_t>(k)] = off;
  // The chain never materialises the configuration space, but the other
  // tiers refuse tuples whose space overflows int64 — keep the codes in
  // parity so the differential sweeps stay three-way comparable.
  int64_t space = 1;
  for (int i = 0; i < k; ++i) {
    const int64_t radix =
        static_cast<int64_t>(strings[static_cast<size_t>(i)].size()) + 2;
    if (__builtin_mul_overflow(space, radix, &space)) {
      return SpaceExhausted();
    }
  }
  if (__builtin_mul_overflow(space,
                             static_cast<int64_t>(program.source_states_),
                             &space)) {
    return SpaceExhausted();
  }
  return Status::OK();
}

Result<AcceptStats> DfaProgram::Accept(const std::vector<std::string>& strings,
                                       DfaScratch* scratch,
                                       const AcceptOptions& options) const {
  STRDB_RETURN_IF_ERROR(scratch->Prepare(*this, strings));
  int32_t pos[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int32_t state = start_;
  int64_t total_steps = 0;
  const int32_t* ranks = scratch->ranks_.data();
  const int32_t* roff = scratch->rank_off_.data();
  // Budgeted runs pause every chunk to charge actual steps, like the
  // kernel charges actual configurations; unbudgeted runs take one
  // uninterrupted pass.
  const int64_t chunk = options.budget ? 4096 : INT64_MAX;
  for (;;) {
    const int64_t steps =
        DfaBatchRunner::RunChainK(*this, ranks, roff, &state, pos, chunk);
    total_steps += steps;
    if (options.budget != nullptr && steps > 0) {
      STRDB_RETURN_IF_ERROR(options.budget->ChargeSteps(steps));
    }
    if (op_[static_cast<size_t>(state)] != 0) break;
    if (steps == 0) {
      return Status::Internal("DFA chain paused without running");
    }
  }
  AcceptStats stats;
  stats.accepted = state == accept_;
  stats.configurations_visited = total_steps;
  stats.transitions_tried = total_steps;
  return stats;
}

DfaBatchResult DfaBatchRunner::RunBatch(
    const DfaProgram& p,
    const std::vector<const std::vector<std::string>*>& tuples,
    DfaScratch* scratch, const AcceptOptions& options) {
  const size_t n = tuples.size();
  const int k = p.k_;
  DfaBatchResult result;
  result.statuses.assign(n, Status::OK());
  result.accepted.assign(n, 0);

  // Encode every tuple into one shared rank arena up front; a tuple that
  // fails validation is marked and never admitted to a lane.  Tuples
  // past the 32-bit arena bound are deferred to the scalar path.
  std::vector<int32_t>& arena = scratch->ranks_;
  arena.clear();
  scratch->tuple_roff_.assign(n * static_cast<size_t>(k), 0);
  std::vector<size_t> deferred;
  const int sigma = p.alphabet_.size();
  for (size_t t = 0; t < n; ++t) {
    const std::vector<std::string>& strings = *tuples[t];
    if (static_cast<int>(strings.size()) != k) {
      result.statuses[t] =
          Status::InvalidArgument("input arity differs from tape count");
      continue;
    }
    int64_t space = 1;
    bool overflow = false;
    size_t need = 0;
    for (int i = 0; i < k; ++i) {
      const int64_t radix =
          static_cast<int64_t>(strings[static_cast<size_t>(i)].size()) + 2;
      need += static_cast<size_t>(radix);
      if (__builtin_mul_overflow(space, radix, &space)) overflow = true;
    }
    if (overflow ||
        __builtin_mul_overflow(space,
                               static_cast<int64_t>(p.source_states_),
                               &space)) {
      result.statuses[t] = SpaceExhausted();
      continue;
    }
    if (static_cast<int64_t>(arena.size() + need) > kMaxArenaRanks) {
      deferred.push_back(t);
      continue;
    }
    const size_t mark = arena.size();
    bool bad_char = false;
    for (int i = 0; i < k && !bad_char; ++i) {
      const std::string& w = strings[static_cast<size_t>(i)];
      scratch->tuple_roff_[t * static_cast<size_t>(k) +
                           static_cast<size_t>(i)] =
          static_cast<int32_t>(arena.size());
      arena.push_back(sigma);  // ⊢
      for (size_t j = 0; j < w.size(); ++j) {
        const int16_t rank = p.char_rank_[static_cast<unsigned char>(w[j])];
        if (rank < 0) {
          result.statuses[t] = Status::InvalidArgument(
              std::string("string contains character '") + w[j] +
              "' outside the alphabet");
          bad_char = true;
          break;
        }
        arena.push_back(rank);
      }
      arena.push_back(sigma + 1);  // ⊣
    }
    if (bad_char) arena.resize(mark);
  }

  scratch->lane_state_.assign(kLanes, 0);
  scratch->lane_tuple_.assign(kLanes, 0);
  scratch->lane_pos_.assign(static_cast<size_t>(k) * kLanes, 0);
  scratch->lane_base_.assign(static_cast<size_t>(k) * kLanes, 0);
  int32_t* state = scratch->lane_state_.data();
  int32_t* tuple_of = scratch->lane_tuple_.data();
  int32_t* pos = scratch->lane_pos_.data();
  int32_t* base = scratch->lane_base_.data();
  const int32_t* ranks = arena.data();

  size_t cursor = 0;
  Status budget_failure;
  // Pulls the next runnable tuple into `lane`.  A start state that is
  // already absorbing (empty or universal-complement machines minimise
  // to start == dead) is decided without occupying a lane, matching the
  // scalar path's zero-step verdict.
  auto admit = [&](int lane) -> bool {
    while (cursor < n) {
      const size_t t = cursor++;
      if (!result.statuses[t].ok()) continue;
      if (!deferred.empty() &&
          std::find(deferred.begin(), deferred.end(), t) != deferred.end()) {
        continue;
      }
      if (p.op_[static_cast<size_t>(p.start_)] != 0) {
        result.accepted[t] = p.start_ == p.accept_;
        continue;
      }
      state[lane] = p.start_;
      tuple_of[lane] = static_cast<int32_t>(t);
      for (int i = 0; i < k; ++i) {
        pos[i * kLanes + lane] = 0;
        base[i * kLanes + lane] =
            scratch->tuple_roff_[t * static_cast<size_t>(k) +
                                 static_cast<size_t>(i)];
      }
      return true;
    }
    return false;
  };

  int active = 0;
  while (active < kLanes && admit(active)) ++active;
  while (active > 0) {
    Round(p, ranks, state, pos, base, active);
    result.configurations_visited += active;
    result.transitions_tried += active;
    if (options.budget != nullptr) {
      budget_failure = options.budget->ChargeSteps(active);
      if (!budget_failure.ok()) break;
    }
    for (int l = 0; l < active;) {
      if (p.op_[static_cast<size_t>(state[l])] == 0) {
        ++l;
        continue;
      }
      result.accepted[static_cast<size_t>(tuple_of[l])] =
          state[l] == p.accept_;
      --active;
      if (l != active) {
        state[l] = state[active];
        tuple_of[l] = tuple_of[active];
        for (int i = 0; i < k; ++i) {
          pos[i * kLanes + l] = pos[i * kLanes + active];
          base[i * kLanes + l] = base[i * kLanes + active];
        }
      }
    }
    while (active < kLanes && admit(active)) ++active;
  }
  if (!budget_failure.ok()) {
    // In-flight lanes and everything still pending fail the same way a
    // per-tuple loop would: each remaining charge attempt is refused.
    for (int l = 0; l < active; ++l) {
      result.statuses[static_cast<size_t>(tuple_of[l])] = budget_failure;
    }
    while (cursor < n) {
      const size_t t = cursor++;
      if (result.statuses[t].ok()) result.statuses[t] = budget_failure;
    }
    for (size_t t : deferred) {
      if (result.statuses[t].ok()) result.statuses[t] = budget_failure;
    }
    deferred.clear();
  }

  // Oversized tuples run through the scalar interpreter, which re-uses
  // (and overwrites) the arena the lanes are done with.
  for (size_t t : deferred) {
    Result<AcceptStats> one = p.Accept(*tuples[t], scratch, options);
    if (!one.ok()) {
      result.statuses[t] = one.status();
      continue;
    }
    result.accepted[t] = one->accepted ? 1 : 0;
    result.configurations_visited += one->configurations_visited;
    result.transitions_tried += one->transitions_tried;
  }
  return result;
}

DfaBatchResult AcceptBatch(
    const DfaProgram& program,
    const std::vector<const std::vector<std::string>*>& tuples,
    DfaScratch* scratch, const AcceptOptions& options) {
  DfaMetrics::Get().batch_rows->Increment(
      static_cast<int64_t>(tuples.size()));
  return DfaBatchRunner::RunBatch(program, tuples, scratch, options);
}

}  // namespace strdb
