#ifndef STRDB_FSA_CODEGEN_PROGRAM_H_
#define STRDB_FSA_CODEGEN_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/budget.h"
#include "core/result.h"
#include "fsa/accept.h"
#include "fsa/dfa/dfa.h"
#include "fsa/fsa.h"

namespace strdb {

class DfaScratch;

// The compiled form of a determinised one-way product automaton
// (fsa/dfa): the DFA's dense rows lowered to a threaded-code program the
// acceptance loops execute instead of interpreting transitions.
//
//   * bytecode  — one instruction per DFA state: OP_ROW (advance through
//     the state's dense row over the read-key alphabet) or OP_HALT (the
//     absorbing accept/dead states).  The scalar interpreter dispatches
//     with computed gotos on GCC/Clang (a switch elsewhere), so each
//     step is a key fold, one row load, a move-mask position update and
//     an indirect jump — no per-transition matching at all.
//   * batch     — AcceptBatch advances up to 64 tuples per dispatch
//     round against the same row table, structure-of-arrays: per round
//     it gathers each lane's read key from per-tape rank rows, gathers
//     the (state, key) row, and applies the packed move mask to every
//     head.  Finished lanes retire and refill from the pending tuples;
//     an AVX2 build runs the round 8 lanes per instruction with
//     hardware gathers, with a scalar tail for the remainder.
//
// Error contract matches the kernel and the reference BFS:
// kInvalidArgument on arity/alphabet mismatch, kResourceExhausted when
// the budget runs out or the Π(|w_i|+2)·|Q| guard overflows int64 (the
// chain never materialises that space, but parity with the other tiers
// keeps differential sweeps three-way comparable).  Step statistics
// count chain steps, which differ from BFS statistics by design.
//
// Immutable after Compile; safe to share across threads.  Per-tuple
// mutable state lives in a caller-owned DfaScratch (one per thread).
class DfaProgram {
 public:
  // Determinise + minimise + lower.  Refusals are typed (see BuildDfa):
  // kUnimplemented for two-way machines or nondeterministic head
  // schedules, kResourceExhausted past the subset/byte caps.
  static Result<DfaProgram> Compile(const Fsa& fsa,
                                    const DfaBuildOptions& options = {});

  int num_tapes() const { return k_; }
  int num_states() const { return num_states_; }
  int32_t num_keys() const { return num_keys_; }
  const Alphabet& alphabet() const { return alphabet_; }
  const DfaBuildStats& build_stats() const { return stats_; }

  // Estimated resident bytes, for ArtifactCache accounting.
  int64_t MemoryCost() const;

  // Decides acceptance of one tuple via the scalar threaded interpreter.
  Result<AcceptStats> Accept(const std::vector<std::string>& strings,
                             DfaScratch* scratch,
                             const AcceptOptions& options = {}) const;

 private:
  DfaProgram() : alphabet_(Alphabet::Binary()) {}

  friend class DfaScratch;
  friend struct DfaBatchRunner;

  Alphabet alphabet_;
  int k_ = 0;
  int radix_ = 0;
  int32_t num_keys_ = 0;
  std::vector<int32_t> pow_;
  int16_t char_rank_[256];
  int source_states_ = 0;

  int num_states_ = 0;
  int32_t start_ = 0;
  int32_t accept_ = 0;
  int32_t dead_ = 0;
  std::vector<uint32_t> rows_;  // (move_mask << 24) | next, state-major
  std::vector<uint8_t> op_;     // per state: 0 = OP_ROW, 1 = OP_HALT
  DfaBuildStats stats_;
};

// The outcome of a compile attempt, cacheable either way: the engine
// caches refusals too, so an automaton that cannot determinise is
// classified once and every later query goes straight to the kernel.
struct DfaCompilation {
  std::shared_ptr<const DfaProgram> program;  // null on refusal
  Status failure;                             // why, when program is null
};

// Reusable per-thread scratch: rank rows for the scalar path plus the
// lane arrays of the batch path.  Buffers grow on demand and are
// retained across tuples and batches.  Not thread safe.
class DfaScratch {
 public:
  DfaScratch() = default;
  DfaScratch(const DfaScratch&) = delete;
  DfaScratch& operator=(const DfaScratch&) = delete;

 private:
  friend class DfaProgram;
  friend struct DfaBatchRunner;

  // Encodes one tuple's tapes as rank rows (⊢, chars, ⊣) at
  // ranks_[rank_off_[i]..], mirroring AcceptScratch's layout, and runs
  // the arity/alphabet/overflow checks shared with the kernel.
  Status Prepare(const DfaProgram& program,
                 const std::vector<std::string>& strings);

  std::vector<int32_t> ranks_;
  std::vector<int32_t> rank_off_;

  // Batch state (structure-of-arrays, lane-major within each tape).
  std::vector<int32_t> lane_state_;
  std::vector<int32_t> lane_pos_;    // k × lanes
  std::vector<int32_t> lane_base_;   // k × lanes: rank-row offsets
  std::vector<int32_t> lane_tuple_;
  std::vector<int32_t> tuple_roff_;  // per (tuple, tape) rank offsets
};

// Batch acceptance: one verdict (or typed error) per tuple plus
// aggregated chain statistics, same shape as the kernel's AcceptBatch.
struct DfaBatchResult {
  std::vector<Status> statuses;
  std::vector<char> accepted;
  int64_t configurations_visited = 0;
  int64_t transitions_tried = 0;
};
DfaBatchResult AcceptBatch(
    const DfaProgram& program,
    const std::vector<const std::vector<std::string>*>& tuples,
    DfaScratch* scratch, const AcceptOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_CODEGEN_PROGRAM_H_
