#ifndef STRDB_FSA_GENERATE_H_
#define STRDB_FSA_GENERATE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

struct GenerateOptions {
  // Maximum length of any generated string (the Σ^l truncation of §2/§4).
  int max_len = 6;
  // Per-call search-step budget; exceeded ⇒ kResourceExhausted.  The
  // generation problem is inherently exponential for bidirectional free
  // tapes.
  int64_t max_steps = 50'000'000;
  // Per-call result-count budget (answers themselves can be exponential
  // in l).
  int64_t max_results = 2'000'000;
  // Optional query-wide account: every search step is charged here too,
  // so a query whose σ_A factors each stay under max_steps still
  // degrades to kResourceExhausted once their *sum* busts the budget.
  ResourceBudget* budget = nullptr;
  // Once every free tape's content is fully decided, switch from the
  // path-enumerating DFS to memoised configuration-graph acceptance
  // (exponentially cheaper on machines with many interchangeable
  // accepting paths).  Disable only for ablation studies.
  bool decided_acceptance_shortcut = true;
};

// Runs `fsa` as the "generalized Mealy machine" of Definition 3.1:
// tapes with a string in `fixed` are inputs, the others are outputs whose
// contents are guessed lazily during the configuration search.  Returns
// every tuple of output strings (lengths <= max_len, in tape order) for
// which some accepting computation exists.
//
// Requires the final states to have no outgoing transitions (true for
// every automaton built by CompileStringFormula), because acceptance of
// a partially-guessed configuration must not depend on unguessed tape
// content.  When a computation accepts while an output tape's tail is
// still unread, every completion of the guessed prefix (up to max_len)
// is in the answer, exactly as the logic prescribes.
Result<std::set<std::vector<std::string>>> GenerateAccepted(
    const Fsa& fsa, const std::vector<std::optional<std::string>>& fixed,
    const GenerateOptions& options = {});

// Convenience: all tuples of L(A) with every component length <= max_len
// (every tape free).
Result<std::set<std::vector<std::string>>> EnumerateLanguage(
    const Fsa& fsa, const GenerateOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_GENERATE_H_
