#ifndef STRDB_FSA_NORMALIZE_H_
#define STRDB_FSA_NORMALIZE_H_

#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// Which region of its tape a head is known to scan.
enum class Zone : uint8_t { kLeft, kInterior, kRight };

// The zone a scanned symbol implies.
inline Zone ZoneOf(Sym s) {
  if (s == kLeftEnd) return Zone::kLeft;
  if (s == kRightEnd) return Zone::kRight;
  return Zone::kInterior;
}

struct ZonedFsa {
  Fsa fsa;
  // Per new state: the original state id and the per-tape zone advice.
  std::vector<int> original_state;
  std::vector<std::vector<Zone>> zones;
};

// The endmarker-advice normalisation used in the proof of Theorem 3.2:
// indexes each state with, per tape, whether the head rests on ⊢,
// strictly between the endmarkers, or on ⊣, and keeps only the
// locally-consistent transitions (a move +1 can never land on ⊢, a move
// -1 never on ⊣, a stationary tape keeps its zone).  This is what lets a
// string formula — which cannot tell the two ends of a string apart
// ("x = ε" holds at both) — faithfully describe the automaton.
//
// The start state gets advice ⊢^k (all heads start on the left
// endmarker).  Only the reachable part is built; states from which no
// final state is reachable are pruned.
//
// Requires final states without outgoing transitions: with exits, the
// paper's stuck-acceptance could differ between the automaton and its
// normalisation (a wrongly-guessed zone can make a final state look
// stuck).  Every automaton from CompileStringFormula qualifies.
Result<ZonedFsa> NormalizeZones(const Fsa& fsa);

// The finer *read-advice* normalisation: each state additionally
// remembers the exact symbol under every head that did not move on the
// way in (kUnknownSym for tapes that just moved).  On unidirectional
// tapes this enforces exactly the local read-consistency that property 5
// of Theorem 3.1 requires: every start-to-final path is traced by a
// computation on suitable tape contents.  Used by the safety analysis
// to admit hand-built automata.
inline constexpr Sym kUnknownSym = -3;

struct ReadAdvisedFsa {
  Fsa fsa;
  std::vector<int> original_state;
  // Per new state and tape: the known symbol under the head, or
  // kUnknownSym right after a move.
  std::vector<std::vector<Sym>> known_read;
};

Result<ReadAdvisedFsa> ConsistifyReads(const Fsa& fsa);

}  // namespace strdb

#endif  // STRDB_FSA_NORMALIZE_H_
