#include "fsa/accept.h"

namespace strdb {

namespace {

// Dense configuration indexing: state-major, then tape positions in
// mixed radix with radix |w_i|+2 per tape.  Many tapes × long strings
// can push Π(|w_i|+2)·|Q| past int64: the constructor detects the
// overflow instead of wrapping, and callers refuse the search.
class ConfigSpace {
 public:
  ConfigSpace(const Fsa& fsa, const std::vector<std::vector<Sym>>& tapes)
      : fsa_(fsa), tapes_(tapes) {
    radix_.reserve(tapes.size());
    stride_.reserve(tapes.size());
    int64_t stride = 1;
    for (const std::vector<Sym>& w : tapes) {
      radix_.push_back(static_cast<int64_t>(w.size()) + 2);
      stride_.push_back(stride);
      if (__builtin_mul_overflow(stride, radix_.back(), &stride)) {
        overflowed_ = true;
        return;
      }
    }
    per_state_ = stride;
    overflowed_ = __builtin_mul_overflow(
        per_state_, static_cast<int64_t>(fsa_.num_states()), &total_);
  }

  // False iff the configuration count exceeds the int64 index range.
  bool ok() const { return !overflowed_; }

  int64_t total() const { return total_; }

  int64_t Encode(int state, const std::vector<int>& pos) const {
    int64_t idx = static_cast<int64_t>(state) * per_state_;
    for (size_t i = 0; i < pos.size(); ++i) {
      idx += stride_[i] * pos[i];
    }
    return idx;
  }

  // `pos` must already have one slot per tape (sized once by the caller,
  // so the hot loop never reallocates).
  void Decode(int64_t idx, int* state, std::vector<int>* pos) const {
    *state = static_cast<int>(idx / per_state_);
    int64_t rest = idx % per_state_;
    for (size_t i = 0; i < tapes_.size(); ++i) {
      (*pos)[i] = static_cast<int>(rest % radix_[i]);
      rest /= radix_[i];
    }
  }

  // The symbol scanned by tape i at position p (0 = ⊢, len+1 = ⊣).
  Sym Scan(size_t tape, int p) const {
    if (p == 0) return kLeftEnd;
    if (p == static_cast<int>(tapes_[tape].size()) + 1) return kRightEnd;
    return tapes_[tape][static_cast<size_t>(p - 1)];
  }

 private:
  const Fsa& fsa_;
  const std::vector<std::vector<Sym>>& tapes_;
  std::vector<int64_t> radix_;
  std::vector<int64_t> stride_;
  int64_t per_state_ = 1;
  int64_t total_ = 0;
  bool overflowed_ = false;
};

}  // namespace

Result<AcceptStats> AcceptsWithStats(const Fsa& fsa,
                                     const std::vector<std::string>& strings,
                                     const AcceptOptions& options) {
  if (static_cast<int>(strings.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument("input arity differs from tape count");
  }
  std::vector<std::vector<Sym>> tapes;
  tapes.reserve(strings.size());
  for (const std::string& s : strings) {
    STRDB_ASSIGN_OR_RETURN(std::vector<Sym> enc, fsa.alphabet().Encode(s));
    tapes.push_back(std::move(enc));
  }

  ConfigSpace space(fsa, tapes);
  if (!space.ok()) {
    return Status::ResourceExhausted(
        "configuration space exceeds int64 index range");
  }
  std::vector<bool> visited(static_cast<size_t>(space.total()), false);
  // FIFO frontier as a growable vector with a head cursor: same visit
  // order as the old std::deque, minus its chunked allocation.
  std::vector<int64_t> frontier;
  frontier.reserve(64);
  size_t head = 0;

  std::vector<int> zero(static_cast<size_t>(fsa.num_tapes()), 0);
  int64_t init = space.Encode(fsa.start(), zero);
  visited[static_cast<size_t>(init)] = true;
  frontier.push_back(init);

  AcceptStats stats;
  std::vector<int> pos(static_cast<size_t>(fsa.num_tapes()));
  std::vector<int> next_pos(static_cast<size_t>(fsa.num_tapes()));
  while (head < frontier.size()) {
    if (options.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options.budget->ChargeSteps(1));
    }
    int64_t idx = frontier[head++];
    ++stats.configurations_visited;
    int state;
    space.Decode(idx, &state, &pos);

    bool has_successor = false;
    for (int ti : fsa.TransitionsFrom(state)) {
      const Transition& t = fsa.transitions()[static_cast<size_t>(ti)];
      ++stats.transitions_tried;
      bool applies = true;
      for (size_t i = 0; i < pos.size(); ++i) {
        if (space.Scan(i, pos[i]) != t.read[i]) {
          applies = false;
          break;
        }
      }
      if (!applies) continue;
      has_successor = true;
      next_pos = pos;
      for (size_t i = 0; i < pos.size(); ++i) next_pos[i] += t.move[i];
      int64_t next = space.Encode(t.to, next_pos);
      if (!visited[static_cast<size_t>(next)]) {
        visited[static_cast<size_t>(next)] = true;
        frontier.push_back(next);
      }
    }
    if (fsa.IsFinal(state) && !has_successor) {
      stats.accepted = true;
      return stats;
    }
  }
  stats.accepted = false;
  return stats;
}

Result<bool> Accepts(const Fsa& fsa, const std::vector<std::string>& strings,
                     const AcceptOptions& options) {
  STRDB_ASSIGN_OR_RETURN(AcceptStats stats,
                         AcceptsWithStats(fsa, strings, options));
  return stats.accepted;
}

}  // namespace strdb
