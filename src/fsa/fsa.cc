#include "fsa/fsa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>

namespace strdb {

bool Transition::IsStationary() const {
  return std::all_of(move.begin(), move.end(),
                     [](Move m) { return m == kStay; });
}

bool Transition::operator==(const Transition& other) const {
  return from == other.from && to == other.to && read == other.read &&
         move == other.move;
}

bool Transition::operator<(const Transition& other) const {
  if (from != other.from) return from < other.from;
  if (to != other.to) return to < other.to;
  if (read != other.read) return read < other.read;
  return move < other.move;
}

Fsa::Fsa(Alphabet alphabet, int num_tapes)
    : alphabet_(std::move(alphabet)), num_tapes_(num_tapes) {
  is_final_.push_back(false);
  out_.emplace_back();
}

int Fsa::AddState() {
  is_final_.push_back(false);
  out_.emplace_back();
  return num_states() - 1;
}

void Fsa::SetFinal(int state, bool is_final) {
  is_final_[static_cast<size_t>(state)] = is_final;
}

void Fsa::SetStart(int state) { start_ = state; }

Status Fsa::AddTransition(Transition t) {
  if (t.from < 0 || t.from >= num_states() || t.to < 0 ||
      t.to >= num_states()) {
    return Status::OutOfRange("transition references unknown state");
  }
  if (static_cast<int>(t.read.size()) != num_tapes_ ||
      static_cast<int>(t.move.size()) != num_tapes_) {
    return Status::InvalidArgument(
        "transition read/move vectors must have one entry per tape");
  }
  for (int i = 0; i < num_tapes_; ++i) {
    Sym c = t.read[static_cast<size_t>(i)];
    Move d = t.move[static_cast<size_t>(i)];
    if (c != kLeftEnd && c != kRightEnd && (c < 0 || c >= alphabet_.size())) {
      return Status::InvalidArgument("transition reads foreign symbol");
    }
    if (d < -1 || d > 1) {
      return Status::InvalidArgument("tape moves are in {-1, 0, +1}");
    }
    // The endmarker restriction of §3.
    if (c == kLeftEnd && d == kBack) {
      return Status::InvalidArgument("cannot move left off the left endmarker");
    }
    if (c == kRightEnd && d == kFwd) {
      return Status::InvalidArgument(
          "cannot move right off the right endmarker");
    }
  }
  // Ignore exact duplicates to keep constructions idempotent.
  for (int idx : out_[static_cast<size_t>(t.from)]) {
    if (transitions_[static_cast<size_t>(idx)] == t) return Status::OK();
  }
  out_[static_cast<size_t>(t.from)].push_back(num_transitions());
  transitions_.push_back(std::move(t));
  return Status::OK();
}

Status Fsa::AddTransitionSpec(int from, int to, const std::string& reads,
                              const std::string& moves) {
  if (static_cast<int>(reads.size()) != num_tapes_ ||
      static_cast<int>(moves.size()) != num_tapes_) {
    return Status::InvalidArgument("spec length must equal tape count");
  }
  Transition t;
  t.from = from;
  t.to = to;
  for (int i = 0; i < num_tapes_; ++i) {
    char rc = reads[static_cast<size_t>(i)];
    if (rc == '<') {
      t.read.push_back(kLeftEnd);
    } else if (rc == '>') {
      t.read.push_back(kRightEnd);
    } else {
      STRDB_ASSIGN_OR_RETURN(Sym s, alphabet_.SymOf(rc));
      t.read.push_back(s);
    }
    char mc = moves[static_cast<size_t>(i)];
    if (mc == '+') {
      t.move.push_back(kFwd);
    } else if (mc == '-') {
      t.move.push_back(kBack);
    } else if (mc == '0') {
      t.move.push_back(kStay);
    } else {
      return Status::InvalidArgument("moves must be '+', '-' or '0'");
    }
  }
  return AddTransition(std::move(t));
}

const std::vector<int>& Fsa::TransitionsFrom(int state) const {
  return out_[static_cast<size_t>(state)];
}

std::vector<int> Fsa::FinalStates() const {
  std::vector<int> out;
  for (int s = 0; s < num_states(); ++s) {
    if (IsFinal(s)) out.push_back(s);
  }
  return out;
}

bool Fsa::IsTapeBidirectional(int tape) const {
  return std::any_of(transitions_.begin(), transitions_.end(),
                     [tape](const Transition& t) {
                       return t.move[static_cast<size_t>(tape)] == kBack;
                     });
}

int Fsa::NumBidirectionalTapes() const {
  int n = 0;
  for (int i = 0; i < num_tapes_; ++i) {
    if (IsTapeBidirectional(i)) ++n;
  }
  return n;
}

bool Fsa::FinalStatesHaveNoExits() const {
  for (int s = 0; s < num_states(); ++s) {
    if (IsFinal(s) && !TransitionsFrom(s).empty()) return false;
  }
  return true;
}

void Fsa::PruneToTrim() {
  int n = num_states();
  // Forward reachability from the start state.
  std::vector<bool> fwd(static_cast<size_t>(n), false);
  std::deque<int> queue = {start_};
  fwd[static_cast<size_t>(start_)] = true;
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int idx : out_[static_cast<size_t>(s)]) {
      int to = transitions_[static_cast<size_t>(idx)].to;
      if (!fwd[static_cast<size_t>(to)]) {
        fwd[static_cast<size_t>(to)] = true;
        queue.push_back(to);
      }
    }
  }
  // Backward reachability from final states.
  std::vector<std::vector<int>> in(static_cast<size_t>(n));
  for (const Transition& t : transitions_) {
    in[static_cast<size_t>(t.to)].push_back(t.from);
  }
  std::vector<bool> bwd(static_cast<size_t>(n), false);
  for (int s = 0; s < n; ++s) {
    if (IsFinal(s)) {
      bwd[static_cast<size_t>(s)] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int from : in[static_cast<size_t>(s)]) {
      if (!bwd[static_cast<size_t>(from)]) {
        bwd[static_cast<size_t>(from)] = true;
        queue.push_back(from);
      }
    }
  }
  // Keep states that are live (or the start state).
  std::vector<int> remap(static_cast<size_t>(n), -1);
  int next = 0;
  for (int s = 0; s < n; ++s) {
    bool keep = (fwd[static_cast<size_t>(s)] && bwd[static_cast<size_t>(s)]) ||
                s == start_;
    if (keep) remap[static_cast<size_t>(s)] = next++;
  }
  std::vector<bool> new_final(static_cast<size_t>(next), false);
  for (int s = 0; s < n; ++s) {
    if (remap[static_cast<size_t>(s)] >= 0) {
      new_final[static_cast<size_t>(remap[static_cast<size_t>(s)])] =
          is_final_[static_cast<size_t>(s)];
    }
  }
  std::vector<Transition> new_transitions;
  std::vector<std::vector<int>> new_out(static_cast<size_t>(next));
  for (const Transition& t : transitions_) {
    int f = remap[static_cast<size_t>(t.from)];
    int to = remap[static_cast<size_t>(t.to)];
    if (f < 0 || to < 0) continue;
    Transition nt = t;
    nt.from = f;
    nt.to = to;
    new_out[static_cast<size_t>(f)].push_back(
        static_cast<int>(new_transitions.size()));
    new_transitions.push_back(std::move(nt));
  }
  start_ = remap[static_cast<size_t>(start_)];
  is_final_ = std::move(new_final);
  transitions_ = std::move(new_transitions);
  out_ = std::move(new_out);
}

int Fsa::ReduceByBisimulation() {
  const int n = num_states();
  if (n <= 1) return 0;
  // Partition refinement: start from finality, split by outgoing
  // signatures until stable.
  std::vector<int> cls(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) cls[static_cast<size_t>(s)] = IsFinal(s) ? 1 : 0;
  for (;;) {
    // Signature: (class, sorted set of (read, move, class(target))).
    std::map<std::pair<int, std::set<std::tuple<std::vector<Sym>,
                                                std::vector<Move>, int>>>,
             int>
        ids;
    std::vector<int> next(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::set<std::tuple<std::vector<Sym>, std::vector<Move>, int>> out;
      for (int ti : TransitionsFrom(s)) {
        const Transition& t = transitions_[static_cast<size_t>(ti)];
        out.insert({t.read, t.move, cls[static_cast<size_t>(t.to)]});
      }
      auto key = std::make_pair(cls[static_cast<size_t>(s)], std::move(out));
      auto [it, inserted] =
          ids.try_emplace(std::move(key), static_cast<int>(ids.size()));
      next[static_cast<size_t>(s)] = it->second;
    }
    if (next == cls) break;
    cls = std::move(next);
  }
  // Keep the start state un-merged: Theorem 3.1's property 2 (no
  // incoming transitions at the start) must survive the reduction.
  cls[static_cast<size_t>(start_)] = -1;
  // Rebuild on class representatives.
  std::map<int, int> rep;  // class -> new id
  std::vector<int> remap(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    auto [it, inserted] =
        rep.try_emplace(cls[static_cast<size_t>(s)],
                        static_cast<int>(rep.size()));
    remap[static_cast<size_t>(s)] = it->second;
  }
  const int merged = n - static_cast<int>(rep.size());
  if (merged == 0) return 0;
  std::vector<bool> new_final(rep.size(), false);
  for (int s = 0; s < n; ++s) {
    if (IsFinal(s)) new_final[static_cast<size_t>(remap[static_cast<size_t>(s)])] = true;
  }
  std::vector<Transition> old = std::move(transitions_);
  transitions_.clear();
  out_.assign(rep.size(), {});
  is_final_ = std::move(new_final);
  start_ = remap[static_cast<size_t>(start_)];
  for (Transition t : old) {
    t.from = remap[static_cast<size_t>(t.from)];
    t.to = remap[static_cast<size_t>(t.to)];
    Status s = AddTransition(std::move(t));  // dedupes merged duplicates
    (void)s;  // cannot fail: inputs were validated
  }
  return merged;
}

Fsa Fsa::DisregardTape(int tape) const {
  Fsa out(alphabet_, num_tapes_);
  while (out.num_states() < num_states()) out.AddState();
  out.SetStart(start_);
  for (int s = 0; s < num_states(); ++s) out.SetFinal(s, IsFinal(s));
  for (Transition t : transitions_) {
    t.read[static_cast<size_t>(tape)] = kLeftEnd;
    t.move[static_cast<size_t>(tape)] = kStay;
    Status st = out.AddTransition(std::move(t));
    (void)st;  // Cannot fail: the source transitions were validated.
  }
  return out;
}

std::string Fsa::ToString() const {
  std::string s = "FSA tapes=" + std::to_string(num_tapes_) +
                  " states=" + std::to_string(num_states()) +
                  " transitions=" + std::to_string(num_transitions()) +
                  " start=" + std::to_string(start_) + " finals={";
  bool first = true;
  for (int f : FinalStates()) {
    if (!first) s += ",";
    s += std::to_string(f);
    first = false;
  }
  s += "}\n";
  for (const Transition& t : transitions_) {
    s += "  " + std::to_string(t.from) + " -> " + std::to_string(t.to) + "  ";
    for (int i = 0; i < num_tapes_; ++i) {
      s += alphabet_.CharOf(t.read[static_cast<size_t>(i)]);
      Move m = t.move[static_cast<size_t>(i)];
      s += (m == kFwd) ? '+' : (m == kBack) ? '-' : '0';
      if (i + 1 < num_tapes_) s += ' ';
    }
    s += "\n";
  }
  return s;
}

std::string Fsa::ToDot() const {
  std::string s = "digraph fsa {\n  rankdir=LR;\n";
  for (int st = 0; st < num_states(); ++st) {
    s += "  q" + std::to_string(st) + " [shape=" +
         (IsFinal(st) ? "doublecircle" : "circle") + "];\n";
  }
  s += "  _start [shape=point];\n  _start -> q" + std::to_string(start_) +
       ";\n";
  for (const Transition& t : transitions_) {
    s += "  q" + std::to_string(t.from) + " -> q" + std::to_string(t.to) +
         " [label=\"";
    for (int i = 0; i < num_tapes_; ++i) {
      s += alphabet_.CharOf(t.read[static_cast<size_t>(i)]);
      Move m = t.move[static_cast<size_t>(i)];
      s += (m == kFwd) ? '+' : (m == kBack) ? '-' : '0';
      if (i + 1 < num_tapes_) s += ' ';
    }
    s += "\"];\n";
  }
  s += "}\n";
  return s;
}

}  // namespace strdb
