#include "fsa/generate.h"

#include "fsa/specialize.h"

namespace strdb {

namespace {

class Generator {
 public:
  Generator(const Fsa& fsa, const GenerateOptions& options)
      : fsa_(fsa), options_(options) {
    tapes_.resize(static_cast<size_t>(fsa.num_tapes()));
  }

  Result<std::set<std::vector<std::string>>> Run() {
    STRDB_RETURN_IF_ERROR(Dfs(fsa_.start()));
    return std::move(results_);
  }

 private:
  // Lazily-guessed content of one output tape.
  struct Tape {
    std::vector<Sym> known;  // guessed prefix
    bool decided = false;    // true once the length is fixed to |known|
    int pos = 0;             // head position (0 = ⊢)
  };

  // What applying a transition's requirement does to one tape.
  enum class Action : uint8_t { kFail, kNone, kExtend, kDecide };

  Action Classify(const Tape& tape, Sym required) const {
    int len = static_cast<int>(tape.known.size());
    if (tape.pos == 0) return required == kLeftEnd ? Action::kNone : Action::kFail;
    if (tape.pos <= len) {
      return tape.known[static_cast<size_t>(tape.pos - 1)] == required
                 ? Action::kNone
                 : Action::kFail;
    }
    // pos == len + 1: either the decided right endmarker or open frontier.
    if (tape.decided) {
      return required == kRightEnd ? Action::kNone : Action::kFail;
    }
    if (required == kRightEnd) return Action::kDecide;
    if (required == kLeftEnd) return Action::kFail;
    if (len >= options_.max_len) return Action::kFail;  // Σ^l truncation
    return Action::kExtend;
  }

  // The no-progress key of the current configuration.  It must identify
  // the guessed tape *content*, not just its length: keying on
  // (state, pos, |known|, decided) alone lets two distinct equal-length
  // prefixes alias, and an aliased on_path_ hit falsely prunes a live
  // branch as a loop.  The content is included verbatim (Sym widens to
  // int losslessly), so keys collide exactly when the configurations are
  // identical.
  std::vector<int> PathKey(int state) const {
    size_t content = 0;
    for (const Tape& t : tapes_) content += t.known.size();
    std::vector<int> key;
    key.reserve(1 + tapes_.size() * 3 + content);
    key.push_back(state);
    for (const Tape& t : tapes_) {
      key.push_back(t.pos);
      key.push_back(static_cast<int>(t.known.size()));
      key.push_back(t.decided ? 1 : 0);
      for (Sym s : t.known) key.push_back(s);
    }
    return key;
  }

  Status Record() {
    const Alphabet& alphabet = fsa_.alphabet();
    std::vector<std::vector<std::string>> candidates;
    candidates.reserve(tapes_.size());
    for (const Tape& t : tapes_) {
      STRDB_ASSIGN_OR_RETURN(std::string prefix, alphabet.Decode(t.known));
      std::vector<std::string> c;
      if (t.decided) {
        c.push_back(std::move(prefix));
      } else {
        // The computation accepted without constraining the tail: every
        // completion up to the length budget is accepted.
        for (const std::string& suffix : alphabet.StringsUpTo(
                 options_.max_len - static_cast<int>(prefix.size()))) {
          c.push_back(prefix + suffix);
        }
      }
      candidates.push_back(std::move(c));
    }
    // Cartesian product of per-tape candidates.
    std::vector<size_t> idx(candidates.size(), 0);
    for (;;) {
      std::vector<std::string> tuple;
      tuple.reserve(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        tuple.push_back(candidates[i][idx[i]]);
      }
      // The budget check precedes the insert: the old order grew the
      // result set to max_results + 1 before erroring, busting the very
      // bound it was enforcing.  A duplicate of an already-recorded
      // tuple is still fine at the limit — only growth is charged.
      if (static_cast<int64_t>(results_.size()) >= options_.max_results &&
          results_.find(tuple) == results_.end()) {
        return Status::ResourceExhausted(
            "generation exceeded max_results = " +
            std::to_string(options_.max_results));
      }
      results_.insert(std::move(tuple));
      size_t d = 0;
      while (d < idx.size() && ++idx[d] == candidates[d].size()) idx[d++] = 0;
      if (d == idx.size()) break;
    }
    return Status::OK();
  }

  // Once every tape's content is fully decided the remaining question is
  // plain (memoisable) acceptance from the current configuration — the
  // path-enumerating DFS would otherwise revisit the same decided
  // configurations once per accepting path, which is exponential for
  // machines with many interchangeable choices.
  Result<bool> AcceptsFromHere(int state) {
    std::vector<int64_t> radix;
    std::vector<int64_t> stride;
    int64_t per_state = 1;
    for (const Tape& t : tapes_) {
      radix.push_back(static_cast<int64_t>(t.known.size()) + 2);
      stride.push_back(per_state);
      per_state *= radix.back();
    }
    auto encode = [&](int st, const std::vector<int>& pos) {
      int64_t idx = static_cast<int64_t>(st) * per_state;
      for (size_t i = 0; i < pos.size(); ++i) idx += stride[i] * pos[i];
      return idx;
    };
    auto scan = [&](size_t tape, int p) -> Sym {
      if (p == 0) return kLeftEnd;
      if (p == static_cast<int>(tapes_[tape].known.size()) + 1) {
        return kRightEnd;
      }
      return tapes_[tape].known[static_cast<size_t>(p - 1)];
    };
    std::vector<bool> visited(
        static_cast<size_t>(per_state * fsa_.num_states()), false);
    std::vector<int64_t> frontier;
    std::vector<int> pos;
    for (const Tape& t : tapes_) pos.push_back(t.pos);
    int64_t init = encode(state, pos);
    visited[static_cast<size_t>(init)] = true;
    frontier.push_back(init);
    while (!frontier.empty()) {
      STRDB_RETURN_IF_ERROR(ChargeStep());
      int64_t idx = frontier.back();
      frontier.pop_back();
      int st = static_cast<int>(idx / per_state);
      if (fsa_.IsFinal(st)) return true;
      int64_t rest = idx % per_state;
      for (size_t i = 0; i < tapes_.size(); ++i) {
        pos[i] = static_cast<int>(rest % radix[i]);
        rest /= radix[i];
      }
      for (int ti : fsa_.TransitionsFrom(st)) {
        const Transition& t = fsa_.transitions()[static_cast<size_t>(ti)];
        bool applies = true;
        for (size_t i = 0; i < pos.size(); ++i) {
          if (scan(i, pos[i]) != t.read[i]) {
            applies = false;
            break;
          }
        }
        if (!applies) continue;
        int64_t next = encode(t.to, pos);
        for (size_t i = 0; i < pos.size(); ++i) {
          next += stride[i] * t.move[i];
        }
        if (!visited[static_cast<size_t>(next)]) {
          visited[static_cast<size_t>(next)] = true;
          frontier.push_back(next);
        }
      }
    }
    return false;
  }

  // Bumps the per-call step counter and, when a query-wide budget is
  // attached, charges the shared account too.
  Status ChargeStep() {
    if (++steps_ > options_.max_steps) {
      return Status::ResourceExhausted("generation exceeded max_steps = " +
                                       std::to_string(options_.max_steps));
    }
    if (options_.budget != nullptr) {
      return options_.budget->ChargeSteps(1);
    }
    return Status::OK();
  }

  Status Dfs(int state) {
    STRDB_RETURN_IF_ERROR(ChargeStep());
    if (fsa_.IsFinal(state)) {
      // Final states have no outgoing transitions (checked by the entry
      // point), so this configuration accepts.
      return Record();
    }
    bool all_decided = options_.decided_acceptance_shortcut;
    for (const Tape& t : tapes_) all_decided &= t.decided;
    if (all_decided) {
      STRDB_ASSIGN_OR_RETURN(bool accepted, AcceptsFromHere(state));
      if (accepted) {
        STRDB_RETURN_IF_ERROR(Record());
      }
      return Status::OK();
    }
    std::vector<int> key = PathKey(state);
    if (!on_path_.insert(key).second) return Status::OK();  // no-progress loop

    for (int ti : fsa_.TransitionsFrom(state)) {
      const Transition& t = fsa_.transitions()[static_cast<size_t>(ti)];
      // First classify all tapes; apply knowledge updates only if every
      // tape is consistent.
      bool feasible = true;
      std::vector<Action> actions(tapes_.size(), Action::kNone);
      for (size_t i = 0; i < tapes_.size(); ++i) {
        actions[i] = Classify(tapes_[i], t.read[i]);
        if (actions[i] == Action::kFail) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      for (size_t i = 0; i < tapes_.size(); ++i) {
        if (actions[i] == Action::kExtend) tapes_[i].known.push_back(t.read[i]);
        if (actions[i] == Action::kDecide) tapes_[i].decided = true;
        tapes_[i].pos += t.move[i];
      }
      Status status = Dfs(t.to);
      for (size_t i = 0; i < tapes_.size(); ++i) {
        tapes_[i].pos -= t.move[i];
        if (actions[i] == Action::kExtend) tapes_[i].known.pop_back();
        if (actions[i] == Action::kDecide) tapes_[i].decided = false;
      }
      STRDB_RETURN_IF_ERROR(status);
    }
    on_path_.erase(key);
    return Status::OK();
  }

  const Fsa& fsa_;
  GenerateOptions options_;
  std::vector<Tape> tapes_;
  std::set<std::vector<std::string>> results_;
  std::set<std::vector<int>> on_path_;
  int64_t steps_ = 0;
};

}  // namespace

Result<std::set<std::vector<std::string>>> GenerateAccepted(
    const Fsa& fsa, const std::vector<std::optional<std::string>>& fixed,
    const GenerateOptions& options) {
  if (static_cast<int>(fixed.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument(
        "fixed-content vector must have one entry per tape");
  }
  bool any_free = false;
  bool any_fixed = false;
  for (const auto& f : fixed) {
    (f.has_value() ? any_fixed : any_free) = true;
  }
  if (!any_free) {
    return Status::InvalidArgument(
        "no free tapes: use Accepts() for membership");
  }
  const Fsa* machine = &fsa;
  Fsa specialized(fsa.alphabet(), 1);
  if (any_fixed) {
    STRDB_ASSIGN_OR_RETURN(specialized, Specialize(fsa, fixed));
    machine = &specialized;
  }
  if (!machine->FinalStatesHaveNoExits()) {
    return Status::InvalidArgument(
        "generation requires final states without outgoing transitions "
        "(automata from CompileStringFormula qualify)");
  }
  Generator generator(*machine, options);
  return generator.Run();
}

Result<std::set<std::vector<std::string>>> EnumerateLanguage(
    const Fsa& fsa, const GenerateOptions& options) {
  std::vector<std::optional<std::string>> fixed(
      static_cast<size_t>(fsa.num_tapes()), std::nullopt);
  return GenerateAccepted(fsa, fixed, options);
}

}  // namespace strdb
