#ifndef STRDB_FSA_TO_FORMULA_H_
#define STRDB_FSA_TO_FORMULA_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"
#include "strform/string_formula.h"

namespace strdb {

struct ToFormulaOptions {
  // Abort with kResourceExhausted once the accumulated formula exceeds
  // this many AST nodes — state elimination is worst-case exponential in
  // the number of states.
  int64_t max_formula_size = 5'000'000;
};

// Theorem 3.2: builds a string formula φ_A on variables vars (one per
// tape, |vars| = k) with ⟦φ_A⟧ = L(A), and with vars[i] bidirectional
// only if tape i is.  The construction:
//
//  1. normalises the automaton with endmarker advice (NormalizeZones),
//     which string formulae need because "x = ε" cannot tell ⊢ from ⊣;
//  2. merges the final states into a single fresh sink;
//  3. describes each transition t by the formula word
//     [ ]l(⋀ x_i = c'_i) · τ_l⊤ · τ_r⊤ (test, then slide the moved
//     variables); and
//  4. eliminates states with the E_ijk recurrence of [Sippu &
//     Soisalon-Soininen, Thm 3.17], simplifying away unsatisfiable
//     branches.
//
// Requires final states without outgoing transitions and a non-final
// start state (automata from CompileStringFormula qualify; for a start
// state that is final — an automaton accepting by the empty computation
// — the translation is not defined here and kUnimplemented is returned).
Result<StringFormula> FsaToStringFormula(const Fsa& fsa,
                                         const std::vector<std::string>& vars,
                                         const ToFormulaOptions& options = {});

}  // namespace strdb

#endif  // STRDB_FSA_TO_FORMULA_H_
