#include "fsa/specialize.h"

#include <deque>
#include <map>

namespace strdb {

Result<Fsa> Specialize(const Fsa& fsa,
                       const std::vector<std::optional<std::string>>& fixed) {
  if (static_cast<int>(fixed.size()) != fsa.num_tapes()) {
    return Status::InvalidArgument(
        "fixed-content vector must have one entry per tape");
  }
  std::vector<int> fixed_tapes;
  std::vector<int> free_tapes;
  std::vector<std::vector<Sym>> contents;
  for (int i = 0; i < fsa.num_tapes(); ++i) {
    if (fixed[static_cast<size_t>(i)].has_value()) {
      STRDB_ASSIGN_OR_RETURN(
          std::vector<Sym> enc,
          fsa.alphabet().Encode(*fixed[static_cast<size_t>(i)]));
      fixed_tapes.push_back(i);
      contents.push_back(std::move(enc));
    } else {
      free_tapes.push_back(i);
    }
  }
  if (free_tapes.empty()) {
    return Status::InvalidArgument(
        "at least one tape must remain free (use Accepts() to decide "
        "fully-instantiated membership)");
  }

  auto scan = [&](size_t which_fixed, int pos) -> Sym {
    const std::vector<Sym>& w = contents[which_fixed];
    if (pos == 0) return kLeftEnd;
    if (pos == static_cast<int>(w.size()) + 1) return kRightEnd;
    return w[static_cast<size_t>(pos - 1)];
  };

  // Product states (p, n1..nk) discovered by worklist search.
  using Key = std::pair<int, std::vector<int>>;
  std::map<Key, int> ids;
  std::deque<Key> worklist;

  Fsa out(fsa.alphabet(), static_cast<int>(free_tapes.size()));
  Key init{fsa.start(), std::vector<int>(fixed_tapes.size(), 0)};
  ids[init] = out.start();
  out.SetFinal(out.start(), fsa.IsFinal(fsa.start()));
  worklist.push_back(init);

  while (!worklist.empty()) {
    Key key = std::move(worklist.front());
    worklist.pop_front();
    int from_id = ids[key];
    const auto& [p, pos] = key;
    for (int ti : fsa.TransitionsFrom(p)) {
      const Transition& t = fsa.transitions()[static_cast<size_t>(ti)];
      bool applies = true;
      for (size_t j = 0; j < fixed_tapes.size(); ++j) {
        if (t.read[static_cast<size_t>(fixed_tapes[j])] !=
            scan(j, pos[j])) {
          applies = false;
          break;
        }
      }
      if (!applies) continue;
      std::vector<int> next_pos = pos;
      for (size_t j = 0; j < fixed_tapes.size(); ++j) {
        next_pos[j] += t.move[static_cast<size_t>(fixed_tapes[j])];
      }
      Key next_key{t.to, std::move(next_pos)};
      auto [it, inserted] = ids.try_emplace(next_key, -1);
      if (inserted) {
        it->second = out.AddState();
        out.SetFinal(it->second, fsa.IsFinal(t.to));
        worklist.push_back(it->first);
      }
      Transition nt;
      nt.from = from_id;
      nt.to = it->second;
      for (int free : free_tapes) {
        nt.read.push_back(t.read[static_cast<size_t>(free)]);
        nt.move.push_back(t.move[static_cast<size_t>(free)]);
      }
      STRDB_RETURN_IF_ERROR(out.AddTransition(std::move(nt)));
    }
  }
  return out;
}

}  // namespace strdb
