#include "fsa/serialize.h"

#include <sstream>

#include "core/io/crc32.h"

namespace strdb {

std::string SerializeFsa(const Fsa& fsa) {
  std::ostringstream out;
  out << "strdbfsa " << kFsaFormatVersion << '\n';
  out << "fsa tapes=" << fsa.num_tapes() << " states=" << fsa.num_states()
      << " start=" << fsa.start() << " finals=";
  std::vector<int> finals = fsa.FinalStates();
  for (size_t i = 0; i < finals.size(); ++i) {
    if (i > 0) out << ',';
    out << finals[i];
  }
  out << '\n';
  for (const Transition& t : fsa.transitions()) {
    out << "t " << t.from << ' ' << t.to << ' ';
    for (Sym s : t.read) out << fsa.alphabet().CharOf(s);
    out << ' ';
    for (Move m : t.move) {
      out << (m == kFwd ? '+' : m == kBack ? '-' : '0');
    }
    out << '\n';
  }
  std::string payload = out.str();
  payload += "crc32 " + Crc32Hex(Crc32(payload)) + '\n';
  return payload;
}

namespace {

// Parses "key=value" returning the value or an error.
Result<std::string> Field(const std::string& token, const std::string& key) {
  std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("expected '" + key + "=...', got '" +
                                   token + "'");
  }
  return token.substr(prefix.size());
}

Result<int> ToInt(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  int value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number '" + s + "'");
    }
    value = value * 10 + (c - '0');
    if (value > 100'000'000) return Status::OutOfRange("number too large");
  }
  return value;
}

// Splits off and verifies the trailing "crc32 <hex>" line, returning the
// checksummed payload (everything before that line).
Result<std::string> CheckedPayload(const std::string& text) {
  size_t line_start;
  if (text.rfind("crc32 ", 0) == 0) {
    line_start = 0;
  } else {
    size_t pos = text.rfind("\ncrc32 ");
    if (pos == std::string::npos) {
      return Status::DataLoss("missing crc32 trailer (truncated input?)");
    }
    line_start = pos + 1;
  }
  std::string hex = text.substr(line_start + 6);
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(hex, &stated)) {
    return Status::DataLoss("malformed crc32 trailer '" + hex + "'");
  }
  std::string payload = text.substr(0, line_start);
  uint32_t actual = Crc32(payload);
  if (actual != stated) {
    return Status::DataLoss("fsa checksum mismatch: stated " + hex +
                            ", computed " + Crc32Hex(actual));
  }
  return payload;
}

}  // namespace

Result<Fsa> DeserializeFsa(const Alphabet& alphabet,
                           const std::string& text) {
  std::istringstream header_in(text);
  std::string word;
  if (!(header_in >> word) || word != "strdbfsa") {
    return Status::InvalidArgument("missing 'strdbfsa <version>' header");
  }
  std::string version_s;
  if (!(header_in >> version_s)) {
    return Status::InvalidArgument("missing fsa format version");
  }
  STRDB_ASSIGN_OR_RETURN(int version, ToInt(version_s));
  if (version != kFsaFormatVersion) {
    return Status::Unimplemented("unsupported fsa format version " +
                                 version_s + " (this build speaks " +
                                 std::to_string(kFsaFormatVersion) + ")");
  }
  STRDB_ASSIGN_OR_RETURN(std::string payload, CheckedPayload(text));

  std::istringstream in(payload);
  in >> word >> word;  // consume the verified "strdbfsa <version>"
  if (!(in >> word) || word != "fsa") {
    return Status::InvalidArgument("missing 'fsa' header");
  }
  std::string tapes_tok, states_tok, start_tok, finals_tok;
  if (!(in >> tapes_tok >> states_tok >> start_tok >> finals_tok)) {
    return Status::InvalidArgument("truncated header");
  }
  STRDB_ASSIGN_OR_RETURN(std::string tapes_s, Field(tapes_tok, "tapes"));
  STRDB_ASSIGN_OR_RETURN(int tapes, ToInt(tapes_s));
  STRDB_ASSIGN_OR_RETURN(std::string states_s, Field(states_tok, "states"));
  STRDB_ASSIGN_OR_RETURN(int states, ToInt(states_s));
  STRDB_ASSIGN_OR_RETURN(std::string start_s, Field(start_tok, "start"));
  STRDB_ASSIGN_OR_RETURN(int start, ToInt(start_s));
  STRDB_ASSIGN_OR_RETURN(std::string finals_s, Field(finals_tok, "finals"));
  if (tapes < 1 || states < 1 || start < 0 || start >= states) {
    return Status::InvalidArgument("inconsistent header");
  }

  Fsa fsa(alphabet, tapes);
  while (fsa.num_states() < states) fsa.AddState();
  fsa.SetStart(start);
  if (!finals_s.empty()) {
    std::istringstream fin(finals_s);
    std::string part;
    while (std::getline(fin, part, ',')) {
      STRDB_ASSIGN_OR_RETURN(int f, ToInt(part));
      if (f >= states) return Status::OutOfRange("final state out of range");
      fsa.SetFinal(f);
    }
  }
  while (in >> word) {
    if (word != "t") {
      return Status::InvalidArgument("expected transition line, got '" +
                                     word + "'");
    }
    std::string from_s, to_s, reads, moves;
    if (!(in >> from_s >> to_s >> reads >> moves)) {
      return Status::InvalidArgument("truncated transition line");
    }
    STRDB_ASSIGN_OR_RETURN(int from, ToInt(from_s));
    STRDB_ASSIGN_OR_RETURN(int to, ToInt(to_s));
    STRDB_RETURN_IF_ERROR(fsa.AddTransitionSpec(from, to, reads, moves));
  }
  return fsa;
}

}  // namespace strdb
