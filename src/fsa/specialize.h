#ifndef STRDB_FSA_SPECIALIZE_H_
#define STRDB_FSA_SPECIALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// Lemma 3.1: given a (k+l)-FSA and constant contents for some of its
// tapes, builds an l-FSA over the remaining tapes accepting
//   { (v1..vl) : (u1..uk, v1..vl) ∈ L(A) }.
//
// `fixed[i]` supplies the constant string for tape i, or nullopt to keep
// the tape.  The construction tracks the fixed-tape head positions in
// the state (p, n1..nk), as in the paper, but builds only the part
// reachable from the initial configuration.  Time and size are
// polynomial in |A|·Π(|u_i|+2).
//
// The free tapes keep their relative order in the result.
Result<Fsa> Specialize(const Fsa& fsa,
                       const std::vector<std::optional<std::string>>& fixed);

}  // namespace strdb

#endif  // STRDB_FSA_SPECIALIZE_H_
