#ifndef STRDB_ALIGN_ASSIGNMENT_H_
#define STRDB_ALIGN_ASSIGNMENT_H_

#include <map>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace strdb {

// An assignment θ: V -> N mapping variable names to alignment rows
// (paper §2).  Injective: no two variables may share a row, which is what
// lets distinct variables denote independently slidable strings.
class Assignment {
 public:
  Assignment() = default;

  // Builds an assignment from (variable, row) pairs; fails on duplicate
  // variables or rows.
  static Result<Assignment> Create(
      const std::vector<std::pair<std::string, int>>& bindings);

  // Binds `var` to `row`.  Fails if `var` is already bound or the row is
  // already in use by another variable.
  Status Bind(const std::string& var, int row);

  // θ(x); kNotFound if x is unbound.
  Result<int> RowOf(const std::string& var) const;

  bool Contains(const std::string& var) const {
    return row_of_.count(var) > 0;
  }

  // θ[x = row] (truth definition 13): a copy where `var` maps to `row`.
  // Any variable previously occupying `row` is evicted, preserving
  // injectivity.
  Assignment With(const std::string& var, int row) const;

  // The smallest row number not in the assignment's range; used when the
  // evaluator invents rows for quantified variables.
  int FirstFreeRow() const;

  const std::map<std::string, int>& bindings() const { return row_of_; }

 private:
  std::map<std::string, int> row_of_;
};

}  // namespace strdb

#endif  // STRDB_ALIGN_ASSIGNMENT_H_
