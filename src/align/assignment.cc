#include "align/assignment.h"

#include <set>

namespace strdb {

Result<Assignment> Assignment::Create(
    const std::vector<std::pair<std::string, int>>& bindings) {
  Assignment a;
  for (const auto& [var, row] : bindings) {
    STRDB_RETURN_IF_ERROR(a.Bind(var, row));
  }
  return a;
}

Status Assignment::Bind(const std::string& var, int row) {
  if (row < 0) return Status::OutOfRange("row numbers are natural numbers");
  if (row_of_.count(var) > 0) {
    return Status::AlreadyExists("variable '" + var + "' already bound");
  }
  for (const auto& [other, r] : row_of_) {
    if (r == row) {
      return Status::AlreadyExists("row " + std::to_string(row) +
                                   " already bound to variable '" + other +
                                   "' (assignments are injective)");
    }
  }
  row_of_[var] = row;
  return Status::OK();
}

Result<int> Assignment::RowOf(const std::string& var) const {
  auto it = row_of_.find(var);
  if (it == row_of_.end()) {
    return Status::NotFound("variable '" + var + "' is unbound");
  }
  return it->second;
}

Assignment Assignment::With(const std::string& var, int row) const {
  Assignment out = *this;
  for (auto it = out.row_of_.begin(); it != out.row_of_.end();) {
    if (it->second == row && it->first != var) {
      it = out.row_of_.erase(it);
    } else {
      ++it;
    }
  }
  out.row_of_[var] = row;
  return out;
}

int Assignment::FirstFreeRow() const {
  std::set<int> used;
  for (const auto& [var, row] : row_of_) used.insert(row);
  int candidate = 0;
  while (used.count(candidate) > 0) ++candidate;
  return candidate;
}

}  // namespace strdb
