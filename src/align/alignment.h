#ifndef STRDB_ALIGN_ALIGNMENT_H_
#define STRDB_ALIGN_ALIGNMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace strdb {

// Which way a transpose slides its rows (paper §2).  A *left* transpose
// shifts the mentioned rows one position to the left relative to the
// fixed window column ("forward" string processing); a *right* transpose
// shifts them to the right ("reverse").
enum class Dir : int8_t { kLeft = +1, kRight = -1 };

// A transpose [i1,...,ik]_l / [i1,...,ik]_r over concrete row numbers.
struct RowTranspose {
  Dir dir = Dir::kLeft;
  std::vector<int> rows;
};

// An alignment of strings (paper §2, Fig. 1): a partial function
// A: N x Z -> Σ where row i holds one finite string positioned relative
// to the window column 0.
//
// Internally row i is a pair (content, pos) with pos in [0, |content|+1]:
// pos is the 1-based index of the character currently in the window
// column, pos = 0 meaning the window is just left of the string (the
// initial alignment) and pos = |content|+1 meaning the string has been
// slid entirely past the window.  This range is exactly the paper's
// requirement that the window column touches the defined area
// (K_i ∩ [-1,1] ≠ ∅), and coincides with the head positions of the k-FSA
// correspondence in Theorem 3.1 (pos 0 ≙ scanning ⊢, pos |w|+1 ≙ ⊣).
//
// Rows not explicitly materialised hold the empty string ε, mirroring the
// paper's convention that an alignment assigns a string to every i ∈ N.
class Alignment {
 public:
  Alignment() = default;

  // The initial alignment A0: every string placed with its leftmost
  // symbol one position right of the window (pos = 0 for every row).
  static Alignment Initial(std::vector<std::string> rows);

  int num_rows() const { return static_cast<int>(rows_.size()); }

  // The string σ_A(i) represented by row i (ε for unmaterialised rows).
  const std::string& StringOf(int row) const;

  // Head position of row i in [0, |σ_A(i)|+1].
  int PosOf(int row) const;

  // A(i, col): the character at window-relative column `col` of row i,
  // or nullopt where A is undefined.
  std::optional<char> At(int row, int col) const;

  // A(i, 0): the character in the window column (nullopt = "x == ε").
  std::optional<char> WindowChar(int row) const { return At(row, 0); }

  // Sets row `row` to `content` at head position `pos`.
  // Fails if pos is outside [0, |content|+1].
  Status SetRow(int row, std::string content, int pos);

  // Applies a transpose in place.  Rows at the saturating end do not
  // move (paper: "unless the window column is already at the right end
  // of the row").  Row numbers outside the materialised area denote ε
  // rows and saturate immediately.
  void Apply(const RowTranspose& t);

  // Functional form: a copy with `t` applied.
  Alignment Transposed(const RowTranspose& t) const;

  // True iff every row sits at pos = 0 (an initial alignment).
  bool IsInitial() const;

  // Multi-line debug rendering in the style of the paper's Fig. 1: one
  // row per line with '|' marking the window column.
  std::string ToString() const;

  bool operator==(const Alignment& other) const;

 private:
  struct Row {
    std::string content;
    int pos = 0;
  };

  // Grows rows_ so that `row` is materialised (as ε if new).
  void EnsureRow(int row);

  std::vector<Row> rows_;
};

}  // namespace strdb

#endif  // STRDB_ALIGN_ALIGNMENT_H_
