#ifndef STRDB_ALIGN_WINDOW_FORMULA_H_
#define STRDB_ALIGN_WINDOW_FORMULA_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "align/alignment.h"
#include "align/assignment.h"
#include "core/result.h"

namespace strdb {

// A window formula (paper §2): a Boolean combination of the atomic
// propositions x = ε ("the window position of row θx is undefined"),
// x = a for a ∈ Σ, and x = y, evaluated on the window column (column 0)
// of an alignment.
//
// WindowFormula is an immutable value type sharing its AST; all factory
// functions are cheap.  The textual syntax (used by the parser and
// printer) is:
//
//   atom   := var "=" "~"            (x = ε)
//           | var "=" "'" char "'"   (x = a)
//           | var "=" var            (x = y)
//           | "true"
//   unary  := "!" formula
//   binary := formula "&" formula | formula "|" formula
//   sugar  := var "!=" ... (negated atom)
class WindowFormula {
 public:
  enum class Kind : uint8_t { kTrue, kUndef, kCharEq, kVarEq, kNot, kAnd, kOr };

  // The tautological window formula ⊤ (the paper writes it as e.g. x=x).
  static WindowFormula True();
  // x = ε.
  static WindowFormula Undef(std::string var);
  // x = a.
  static WindowFormula CharEq(std::string var, char c);
  // x = y: the partial values A(θx,0) and A(θy,0) coincide — both
  // defined and equal, or both undefined.  (The paper's chains
  // "x = y = ε" in Examples 2, 10 and 12 rely on two undefined window
  // positions comparing equal.)
  static WindowFormula VarEq(std::string x, std::string y);

  static WindowFormula Not(WindowFormula f);
  static WindowFormula And(WindowFormula a, WindowFormula b);
  static WindowFormula Or(WindowFormula a, WindowFormula b);

  // Shorthands from the paper: x ≠ y, x ≠ ε, x ≠ a, and the chained
  // x1 = x2 = ... = xm (conjunction of adjacent equalities).
  static WindowFormula NotVarEq(std::string x, std::string y);
  static WindowFormula NotUndef(std::string var);
  static WindowFormula NotCharEq(std::string var, char c);
  static WindowFormula AllEqual(const std::vector<std::string>& vars);
  // x1 = x2 = ... = xm = ε.
  static WindowFormula AllUndef(const std::vector<std::string>& vars);

  Kind kind() const { return node_->kind; }

  // Evaluates against a "window oracle" giving each variable's window
  // character (nullopt = undefined).  This is the primitive the other
  // two evaluators and the FSA compiler share.
  bool EvalWith(
      const std::function<std::optional<char>(const std::string&)>& window)
      const;

  // Truth definitions 1-5: A ⊨ φ θ.  Fails if a variable is unbound.
  Result<bool> Eval(const Alignment& alignment,
                    const Assignment& assignment) const;

  // The set of variables occurring in the formula.
  std::set<std::string> Vars() const;

  // A copy with every variable occurrence renamed through `renaming`
  // (variables absent from the map are kept).  Used by the
  // algebra-to-calculus translation (Theorem 4.1).
  WindowFormula RenameVars(
      const std::map<std::string, std::string>& renaming) const;

  // Parser-compatible rendering.
  std::string ToString() const;

  bool operator==(const WindowFormula& other) const;

 private:
  struct Node {
    Kind kind;
    std::string var_a;  // kUndef, kCharEq, kVarEq
    std::string var_b;  // kVarEq
    char ch = 0;        // kCharEq
    std::shared_ptr<const Node> left;   // kNot, kAnd, kOr
    std::shared_ptr<const Node> right;  // kAnd, kOr
  };

  explicit WindowFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  static bool EvalNode(
      const Node& node,
      const std::function<std::optional<char>(const std::string&)>& window);
  static void CollectVars(const Node& node, std::set<std::string>* out);
  static std::string NodeToString(const Node& node);
  static bool NodeEquals(const Node& a, const Node& b);

  std::shared_ptr<const Node> node_;
};

}  // namespace strdb

#endif  // STRDB_ALIGN_WINDOW_FORMULA_H_
