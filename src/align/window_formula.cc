#include "align/window_formula.h"

#include <cassert>

namespace strdb {

WindowFormula WindowFormula::True() {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kTrue;
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::Undef(std::string var) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kUndef;
  node->var_a = std::move(var);
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::CharEq(std::string var, char c) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kCharEq;
  node->var_a = std::move(var);
  node->ch = c;
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::VarEq(std::string x, std::string y) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kVarEq;
  node->var_a = std::move(x);
  node->var_b = std::move(y);
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::Not(WindowFormula f) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kNot;
  node->left = std::move(f.node_);
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::And(WindowFormula a, WindowFormula b) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::Or(WindowFormula a, WindowFormula b) {
  auto node = std::make_shared<WindowFormula::Node>();
  node->kind = Kind::kOr;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return WindowFormula(std::move(node));
}

WindowFormula WindowFormula::NotVarEq(std::string x, std::string y) {
  return Not(VarEq(std::move(x), std::move(y)));
}

WindowFormula WindowFormula::NotUndef(std::string var) {
  return Not(Undef(std::move(var)));
}

WindowFormula WindowFormula::NotCharEq(std::string var, char c) {
  return Not(CharEq(std::move(var), c));
}

WindowFormula WindowFormula::AllEqual(const std::vector<std::string>& vars) {
  assert(!vars.empty());
  if (vars.size() == 1) return True();
  WindowFormula out = VarEq(vars[0], vars[1]);
  for (size_t i = 2; i < vars.size(); ++i) {
    out = And(std::move(out), VarEq(vars[i - 1], vars[i]));
  }
  return out;
}

WindowFormula WindowFormula::AllUndef(const std::vector<std::string>& vars) {
  assert(!vars.empty());
  WindowFormula out = Undef(vars[0]);
  for (size_t i = 1; i < vars.size(); ++i) {
    out = And(std::move(out), Undef(vars[i]));
  }
  return out;
}

bool WindowFormula::EvalNode(
    const Node& node,
    const std::function<std::optional<char>(const std::string&)>& window) {
  switch (node.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kUndef:
      return !window(node.var_a).has_value();
    case Kind::kCharEq: {
      std::optional<char> c = window(node.var_a);
      return c.has_value() && *c == node.ch;
    }
    case Kind::kVarEq: {
      std::optional<char> a = window(node.var_a);
      std::optional<char> b = window(node.var_b);
      // Truth definition 3 compares the partial values A(θx,0) and
      // A(θy,0): two *undefined* positions are equal.  The paper's own
      // idiom "x = y = ε" (Examples 2, 10, 12) depends on this.
      return a == b;
    }
    case Kind::kNot:
      return !EvalNode(*node.left, window);
    case Kind::kAnd:
      return EvalNode(*node.left, window) && EvalNode(*node.right, window);
    case Kind::kOr:
      return EvalNode(*node.left, window) || EvalNode(*node.right, window);
  }
  return false;
}

bool WindowFormula::EvalWith(
    const std::function<std::optional<char>(const std::string&)>& window)
    const {
  return EvalNode(*node_, window);
}

Result<bool> WindowFormula::Eval(const Alignment& alignment,
                                 const Assignment& assignment) const {
  // Check that all variables are bound first so the lambda below cannot
  // silently misreport an unbound variable as undefined.
  for (const std::string& var : Vars()) {
    STRDB_RETURN_IF_ERROR(assignment.RowOf(var).status());
  }
  return EvalWith([&](const std::string& var) -> std::optional<char> {
    Result<int> row = assignment.RowOf(var);
    assert(row.ok());
    return alignment.WindowChar(*row);
  });
}

void WindowFormula::CollectVars(const Node& node, std::set<std::string>* out) {
  switch (node.kind) {
    case Kind::kTrue:
      break;
    case Kind::kUndef:
    case Kind::kCharEq:
      out->insert(node.var_a);
      break;
    case Kind::kVarEq:
      out->insert(node.var_a);
      out->insert(node.var_b);
      break;
    case Kind::kNot:
      CollectVars(*node.left, out);
      break;
    case Kind::kAnd:
    case Kind::kOr:
      CollectVars(*node.left, out);
      CollectVars(*node.right, out);
      break;
  }
}

std::set<std::string> WindowFormula::Vars() const {
  std::set<std::string> out;
  CollectVars(*node_, &out);
  return out;
}

namespace {
std::string Renamed(const std::map<std::string, std::string>& renaming,
                    const std::string& var) {
  auto it = renaming.find(var);
  return it == renaming.end() ? var : it->second;
}
}  // namespace

WindowFormula WindowFormula::RenameVars(
    const std::map<std::string, std::string>& renaming) const {
  switch (kind()) {
    case Kind::kTrue:
      return True();
    case Kind::kUndef:
      return Undef(Renamed(renaming, node_->var_a));
    case Kind::kCharEq:
      return CharEq(Renamed(renaming, node_->var_a), node_->ch);
    case Kind::kVarEq:
      return VarEq(Renamed(renaming, node_->var_a),
                   Renamed(renaming, node_->var_b));
    case Kind::kNot:
      return Not(WindowFormula(node_->left).RenameVars(renaming));
    case Kind::kAnd:
      return And(WindowFormula(node_->left).RenameVars(renaming),
                 WindowFormula(node_->right).RenameVars(renaming));
    case Kind::kOr:
      return Or(WindowFormula(node_->left).RenameVars(renaming),
                WindowFormula(node_->right).RenameVars(renaming));
  }
  return True();
}

std::string WindowFormula::NodeToString(const Node& node) {
  switch (node.kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kUndef:
      return node.var_a + " = ~";
    case Kind::kCharEq:
      return node.var_a + " = '" + node.ch + "'";
    case Kind::kVarEq:
      return node.var_a + " = " + node.var_b;
    case Kind::kNot:
      return "!(" + NodeToString(*node.left) + ")";
    case Kind::kAnd:
      return "(" + NodeToString(*node.left) + " & " +
             NodeToString(*node.right) + ")";
    case Kind::kOr:
      return "(" + NodeToString(*node.left) + " | " +
             NodeToString(*node.right) + ")";
  }
  return "?";
}

std::string WindowFormula::ToString() const { return NodeToString(*node_); }

bool WindowFormula::NodeEquals(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kUndef:
      return a.var_a == b.var_a;
    case Kind::kCharEq:
      return a.var_a == b.var_a && a.ch == b.ch;
    case Kind::kVarEq:
      return a.var_a == b.var_a && a.var_b == b.var_b;
    case Kind::kNot:
      return NodeEquals(*a.left, *b.left);
    case Kind::kAnd:
    case Kind::kOr:
      return NodeEquals(*a.left, *b.left) && NodeEquals(*a.right, *b.right);
  }
  return false;
}

bool WindowFormula::operator==(const WindowFormula& other) const {
  return NodeEquals(*node_, *other.node_);
}

}  // namespace strdb
