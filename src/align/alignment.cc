#include "align/alignment.h"

#include <algorithm>

namespace strdb {

namespace {
const std::string kEmptyString;
}  // namespace

Alignment Alignment::Initial(std::vector<std::string> rows) {
  Alignment a;
  a.rows_.reserve(rows.size());
  for (std::string& s : rows) {
    a.rows_.push_back(Row{std::move(s), 0});
  }
  return a;
}

const std::string& Alignment::StringOf(int row) const {
  if (row < 0 || row >= num_rows()) return kEmptyString;
  return rows_[static_cast<size_t>(row)].content;
}

int Alignment::PosOf(int row) const {
  if (row < 0 || row >= num_rows()) return 0;
  return rows_[static_cast<size_t>(row)].pos;
}

std::optional<char> Alignment::At(int row, int col) const {
  const std::string& s = StringOf(row);
  // Character index is 1-based: index pos+col sits in the window-relative
  // column `col`.
  int idx = PosOf(row) + col;
  if (idx >= 1 && idx <= static_cast<int>(s.size())) {
    return s[static_cast<size_t>(idx - 1)];
  }
  return std::nullopt;
}

Status Alignment::SetRow(int row, std::string content, int pos) {
  if (row < 0) return Status::OutOfRange("negative row number");
  if (pos < 0 || pos > static_cast<int>(content.size()) + 1) {
    return Status::OutOfRange(
        "row position must be within [0, |content|+1]: the window column "
        "must touch the string");
  }
  EnsureRow(row);
  rows_[static_cast<size_t>(row)] = Row{std::move(content), pos};
  return Status::OK();
}

void Alignment::EnsureRow(int row) {
  if (row >= num_rows()) rows_.resize(static_cast<size_t>(row) + 1);
}

void Alignment::Apply(const RowTranspose& t) {
  for (int row : t.rows) {
    if (row < 0) continue;
    EnsureRow(row);
    Row& r = rows_[static_cast<size_t>(row)];
    int len = static_cast<int>(r.content.size());
    if (t.dir == Dir::kLeft) {
      // Shift left relative to the window: head moves right, saturating
      // at the right endmarker position |w|+1.
      if (r.pos <= len) ++r.pos;
    } else {
      if (r.pos >= 1) --r.pos;
    }
  }
}

Alignment Alignment::Transposed(const RowTranspose& t) const {
  Alignment copy = *this;
  copy.Apply(t);
  return copy;
}

bool Alignment::IsInitial() const {
  return std::all_of(rows_.begin(), rows_.end(),
                     [](const Row& r) { return r.pos == 0; });
}

std::string Alignment::ToString() const {
  std::string out;
  for (const Row& r : rows_) {
    // Render "prefix|suffix" where '|' sits just left of the window
    // column, i.e. between characters pos-1 and pos ... we mark the
    // window character by brackets instead for readability.
    out += '[';
    for (int i = 1; i <= static_cast<int>(r.content.size()); ++i) {
      if (i == r.pos) out += '(';
      out += r.content[static_cast<size_t>(i - 1)];
      if (i == r.pos) out += ')';
    }
    if (r.pos == 0) out += " pos=<";
    if (r.pos == static_cast<int>(r.content.size()) + 1) out += " pos=>";
    out += "]\n";
  }
  return out;
}

bool Alignment::operator==(const Alignment& other) const {
  int n = std::max(num_rows(), other.num_rows());
  for (int i = 0; i < n; ++i) {
    if (StringOf(i) != other.StringOf(i) || PosOf(i) != other.PosOf(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace strdb
