#ifndef STRDB_STORAGE_HEAP_H_
#define STRDB_STORAGE_HEAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/io/env.h"
#include "core/result.h"
#include "relational/relation.h"
#include "relational/tuple_source.h"
#include "storage/pager.h"

namespace strdb {

// On-disk paged heap for one relation (DESIGN.md §10), after RDF-3X's
// buildrdfstore: strings live once in a dictionary, tuples are fixed-
// width rows of u32 dictionary ids in sorted runs, and a run directory
// carries per-run min/max first-component prefixes so a selective scan
// can skip whole runs without touching them.
//
// File layout (every page crc-framed by AppendPage):
//   page 0                     header
//   [dict index pages]         u64 byte offsets into the dict data region
//   [dict data pages]          logical byte stream of (u32 len + bytes)
//                              entries, in id order; entries may span
//                              page boundaries
//   [run directory pages]      fixed 24-byte entries: u32 row_count,
//                              u32 reserved, char min[8], char max[8]
//   [run pages]                one run per page: row_count rows of
//                              arity × u32 ids
//
// Dictionary ids are assigned in sorted string order, so comparing ids
// compares strings — id-row order is string-tuple order and the runs
// stream out in lexicographic order with no duplicates.

// Minimum tuples per Scan batch: consecutive runs are coalesced until
// a batch reaches this many rows, so downstream batch consumers (the
// engine's streamed σ_A via the CSR kernel or the DFA tier's 64-lane
// interpreter) see full batches even when individual runs are small.
inline constexpr int64_t kScanBatchMinRows = 256;

// Per-run directory entry, decoded at Open.
struct RunInfo {
  int64_t row_count = 0;
  // First-component min/max, truncated to 8 bytes and NUL-padded: a
  // sparse index good enough to skip runs for prefix-bounded σ_A.
  char min_prefix[8];
  char max_prefix[8];
};

// Serialises `rel` into the paged heap format and writes it through
// `env` as `path` (truncating).  The caller is responsible for the
// write-temp → fsync → rename commit dance; this writes and syncs only.
Status WritePagedHeap(Env* env, const std::string& path,
                      const StringRelation& rel);

// A read-only view of a heap file through a BufferPool.  All reads are
// page-at-a-time via the pool, so a scan's resident set is O(1) pages
// regardless of relation size.  Thread safe (the pool serialises).
class PagedHeap : public TupleSource {
 public:
  // Reads and validates the header + run directory (a handful of
  // pages); tuple pages are only touched by Scan.  The shared_ptr
  // overload makes the view co-own the pool: the pool stays alive for
  // as long as any heap (and the page pins its scans hold) does, so a
  // store tearing down cannot yank the pool from under a streaming
  // paged scan.  The raw overload borrows the pool (callers guarantee
  // it outlives the view — the tests' stack pools).
  static Result<std::shared_ptr<const PagedHeap>> Open(
      std::shared_ptr<BufferPool> pool, std::string path);
  static Result<std::shared_ptr<const PagedHeap>> Open(BufferPool* pool,
                                                       std::string path);

  int arity() const override { return arity_; }
  int64_t tuple_count() const override { return tuple_count_; }
  int max_string_length() const override { return max_string_length_; }

  // Streams runs in order, coalescing consecutive runs until each
  // on_batch call carries at least kScanBatchMinRows tuples (the final
  // batch flushes whatever remains).  Batch boundaries always align
  // with run boundaries.
  Status Scan(const std::function<Status(const std::vector<Tuple>&)>& on_batch)
      const override;

  const std::vector<RunInfo>& runs() const { return runs_; }
  const std::string& path() const { return path_; }
  int64_t file_pages() const { return total_pages_; }

  // Decodes run `index` into `out` (cleared first).
  Status ScanRun(int64_t index, std::vector<Tuple>* out) const;

 private:
  PagedHeap(std::shared_ptr<BufferPool> pool, std::string path)
      : pool_(std::move(pool)), path_(std::move(path)) {}

  // Looks up dictionary entry `id` through the pool.
  Status GetString(uint32_t id, std::string* out) const;
  // Copies [offset, offset+n) of the logical dict data region.
  Status ReadDictData(int64_t offset, int64_t n, std::string* out) const;

  std::shared_ptr<BufferPool> pool_;
  std::string path_;

  int arity_ = 0;
  int64_t tuple_count_ = 0;
  int max_string_length_ = 0;
  int64_t dict_count_ = 0;
  int64_t dict_index_first_page_ = 0;
  int64_t dict_index_page_count_ = 0;
  int64_t dict_data_first_page_ = 0;
  int64_t dict_data_page_count_ = 0;
  int64_t dict_data_bytes_ = 0;
  int64_t run_first_page_ = 0;
  int64_t total_pages_ = 0;
  std::vector<RunInfo> runs_;
};

}  // namespace strdb

#endif  // STRDB_STORAGE_HEAP_H_
