#ifndef STRDB_STORAGE_WAL_H_
#define STRDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/io/env.h"
#include "core/result.h"
#include "storage/retry.h"

namespace strdb {

// The append-only write-ahead log of catalog mutations.  A WAL file is a
// sequence of CRC-framed records:
//
//   rec <payload-len> <crc32-hex-of-payload>\n
//   <payload bytes>\n
//
// The frame makes every failure a real disk produces detectable: a torn
// append leaves a half-frame (bad header, short payload or missing
// terminator), a bit flip fails the CRC.  Recovery keeps the longest
// intact record prefix and reports the rest as a cut tail — it never
// propagates a partial record.
class WalWriter {
 public:
  // `sync` = fsync after every framed append (the commit point).  Turning
  // it off trades durability of the last few records for throughput.
  WalWriter(Env* env, std::string path, bool sync, RetryPolicy retry);

  // Opens (creating or truncating) the file.  `io_retries` (optional)
  // accumulates transient-fault retries across this writer's lifetime.
  Status Open(bool truncate, int64_t* io_retries = nullptr);

  // Frames `payload` and appends it; with `sync` on, the record is on
  // stable storage when this returns OK.
  Status Append(const std::string& payload);

  Status Close();

  const std::string& path() const { return path_; }

  // Bytes of intact frames known to be in the file: what Open saw (via
  // ResetCommittedBytes after recovery truncation) plus every frame
  // appended since.  The background scrubber compares a fresh salvage of
  // the file against this watermark — anything short of it means the log
  // lost committed bytes; anything past it is an in-flight append, not
  // corruption.
  int64_t committed_bytes() const { return committed_bytes_; }
  void ResetCommittedBytes(int64_t bytes) { committed_bytes_ = bytes; }

 private:
  Env* const env_;
  const std::string path_;
  const bool sync_;
  const RetryPolicy retry_;
  int64_t* io_retries_ = nullptr;
  int64_t committed_bytes_ = 0;
  std::unique_ptr<WritableFile> file_;
};

// One intact record recovered from a WAL file, with its byte extent.
struct WalRecord {
  std::string payload;
  int64_t offset = 0;      // frame start
  int64_t end_offset = 0;  // one past the frame's terminator
};

// What a WAL read salvaged.
struct WalSalvage {
  std::vector<WalRecord> records;
  int64_t file_bytes = 0;       // total bytes in the file
  int64_t valid_bytes = 0;      // longest intact prefix (truncate target)
  int64_t truncated_bytes = 0;  // file_bytes - valid_bytes
  std::string tail_error;       // why the tail was cut; empty when clean
};

// Reads and frames `path` (which must exist).  Never fails on a corrupt
// tail — that is the expected post-crash state — only on unreadable
// files.  The caller is responsible for truncating the file to
// `valid_bytes` before appending again.
Result<WalSalvage> ReadWal(Env* env, const std::string& path,
                           const RetryPolicy& retry,
                           int64_t* io_retries = nullptr);

}  // namespace strdb

#endif  // STRDB_STORAGE_WAL_H_
