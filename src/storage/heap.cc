#include "storage/heap.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <map>

namespace strdb {

namespace {

constexpr char kMagic[] = "strdbheap 1\n";       // 12 bytes + NUL
constexpr size_t kMagicLen = sizeof(kMagic) - 1;  // 12

constexpr int64_t kOffsetsPerPage = kPagePayload / 8;    // dict index
constexpr int64_t kRunDirEntryBytes = 24;
constexpr int64_t kRunDirPerPage = kPagePayload / kRunDirEntryBytes;

void PutU32(uint32_t v, std::string* out) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff),
               static_cast<char>((v >> 24) & 0xff)};
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

int64_t PagesFor(int64_t bytes) {
  return (bytes + kPagePayload - 1) / kPagePayload;
}

Status HeapCorrupt(const std::string& path, const std::string& what) {
  return Status::DataLoss("heap '" + path + "': " + what);
}

}  // namespace

Status WritePagedHeap(Env* env, const std::string& path,
                      const StringRelation& rel) {
  const int arity = rel.arity();
  if (arity < 0) return Status::InvalidArgument("negative arity");

  // Dictionary: distinct strings in sorted order; id order = lex order.
  std::map<std::string, uint32_t> dict;
  for (const Tuple& t : rel.tuples()) {
    for (const std::string& s : t) dict.emplace(s, 0);
  }
  if (dict.size() >= (1ull << 32)) {
    return Status::ResourceExhausted("heap dictionary exceeds 2^32 strings");
  }
  uint32_t next_id = 0;
  for (auto& entry : dict) entry.second = next_id++;

  // Dict data region + index offsets.
  std::string dict_data;
  std::vector<uint64_t> offsets;
  offsets.reserve(dict.size());
  for (const auto& entry : dict) {
    offsets.push_back(dict_data.size());
    PutU32(static_cast<uint32_t>(entry.first.size()), &dict_data);
    dict_data.append(entry.first);
  }

  // Runs: one page each.  std::set<Tuple> iterates in sorted order, and
  // sorted-order ids preserve it, so rows come out sorted for free.
  const int64_t row_bytes = static_cast<int64_t>(arity) * 4;
  const int64_t rows_per_page =
      arity == 0 ? 0 : std::max<int64_t>(1, kPagePayload / row_bytes);
  const int64_t run_count =
      arity == 0 ? 0 : (rel.size() + rows_per_page - 1) / rows_per_page;

  const int64_t dict_index_pages = PagesFor(8 * offsets.size());
  const int64_t dict_data_pages = PagesFor(dict_data.size());
  const int64_t rundir_pages = PagesFor(kRunDirEntryBytes * run_count);

  const int64_t dict_index_first = 1;
  const int64_t dict_data_first = dict_index_first + dict_index_pages;
  const int64_t rundir_first = dict_data_first + dict_data_pages;
  const int64_t run_first = rundir_first + rundir_pages;
  const int64_t total_pages = run_first + run_count;

  // Header.
  std::string header;
  header.append(kMagic, kMagicLen);
  PutU32(static_cast<uint32_t>(arity), &header);
  PutU64(static_cast<uint64_t>(rel.size()), &header);
  PutU32(static_cast<uint32_t>(rel.MaxStringLength()), &header);
  PutU64(offsets.size(), &header);
  PutU64(dict_index_first, &header);
  PutU64(dict_index_pages, &header);
  PutU64(dict_data_first, &header);
  PutU64(dict_data_pages, &header);
  PutU64(dict_data.size(), &header);
  PutU64(rundir_first, &header);
  PutU64(rundir_pages, &header);
  PutU64(run_first, &header);
  PutU64(run_count, &header);
  PutU64(total_pages, &header);

  std::string file;
  file.reserve(static_cast<size_t>(total_pages * kPageSize));
  AppendPage(header, &file);

  // Dict index pages.
  for (int64_t p = 0; p < dict_index_pages; ++p) {
    std::string payload;
    int64_t begin = p * kOffsetsPerPage;
    int64_t end = std::min<int64_t>(begin + kOffsetsPerPage,
                                    static_cast<int64_t>(offsets.size()));
    for (int64_t i = begin; i < end; ++i) PutU64(offsets[i], &payload);
    AppendPage(payload, &file);
  }

  // Dict data pages: the logical stream chopped into payload-size slabs.
  for (int64_t p = 0; p < dict_data_pages; ++p) {
    size_t begin = static_cast<size_t>(p * kPagePayload);
    size_t n = std::min<size_t>(static_cast<size_t>(kPagePayload),
                                dict_data.size() - begin);
    AppendPage(dict_data.substr(begin, n), &file);
  }

  // Encode rows (in set order = sorted order).
  std::vector<uint32_t> row_ids;
  row_ids.reserve(static_cast<size_t>(rel.size()) * arity);
  for (const Tuple& t : rel.tuples()) {
    for (const std::string& s : t) row_ids.push_back(dict.find(s)->second);
  }

  // Run directory.
  {
    std::string dir;
    auto it = rel.tuples().begin();
    for (int64_t run = 0; run < run_count; ++run) {
      int64_t begin_row = run * rows_per_page;
      int64_t rows = std::min<int64_t>(rows_per_page, rel.size() - begin_row);
      const std::string& min_s = (*it)[0];
      for (int64_t i = 1; i < rows; ++i) ++it;
      const std::string& max_s = (*it)[0];
      ++it;
      PutU32(static_cast<uint32_t>(rows), &dir);
      PutU32(0, &dir);
      char pfx[8];
      std::memset(pfx, 0, 8);
      std::memcpy(pfx, min_s.data(), std::min<size_t>(8, min_s.size()));
      dir.append(pfx, 8);
      std::memset(pfx, 0, 8);
      std::memcpy(pfx, max_s.data(), std::min<size_t>(8, max_s.size()));
      dir.append(pfx, 8);
      if (dir.size() >= static_cast<size_t>(kRunDirPerPage) *
                            kRunDirEntryBytes ||
          run + 1 == run_count) {
        AppendPage(dir, &file);
        dir.clear();
      }
    }
    if (run_count == 0 && rundir_pages > 0) AppendPage("", &file);
  }

  // Run pages.
  for (int64_t run = 0; run < run_count; ++run) {
    std::string payload;
    int64_t begin_row = run * rows_per_page;
    int64_t rows = std::min<int64_t>(rows_per_page, rel.size() - begin_row);
    for (int64_t r = 0; r < rows; ++r) {
      for (int a = 0; a < arity; ++a) {
        PutU32(row_ids[static_cast<size_t>((begin_row + r) * arity + a)],
               &payload);
      }
    }
    AppendPage(payload, &file);
  }

  STRDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                         env->NewWritableFile(path, /*truncate=*/true));
  STRDB_RETURN_IF_ERROR(out->Append(file));
  STRDB_RETURN_IF_ERROR(out->Sync());
  return out->Close();
}

Result<std::shared_ptr<const PagedHeap>> PagedHeap::Open(BufferPool* pool,
                                                         std::string path) {
  // Non-owning alias: the caller guarantees the pool outlives the view.
  return Open(std::shared_ptr<BufferPool>(pool, [](BufferPool*) {}),
              std::move(path));
}

Result<std::shared_ptr<const PagedHeap>> PagedHeap::Open(
    std::shared_ptr<BufferPool> pool, std::string path) {
  std::shared_ptr<PagedHeap> heap(
      new PagedHeap(std::move(pool), std::move(path)));
  STRDB_ASSIGN_OR_RETURN(PageRef header, heap->pool_->Pin(heap->path_, 0));
  const std::string& h = header.data();
  if (h.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return HeapCorrupt(heap->path_, "bad magic");
  }
  const char* p = h.data() + kMagicLen;
  heap->arity_ = static_cast<int>(GetU32(p));
  p += 4;
  heap->tuple_count_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->max_string_length_ = static_cast<int>(GetU32(p));
  p += 4;
  heap->dict_count_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->dict_index_first_page_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->dict_index_page_count_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->dict_data_first_page_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->dict_data_page_count_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->dict_data_bytes_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  int64_t rundir_first = static_cast<int64_t>(GetU64(p));
  p += 8;
  int64_t rundir_pages = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->run_first_page_ = static_cast<int64_t>(GetU64(p));
  p += 8;
  int64_t run_count = static_cast<int64_t>(GetU64(p));
  p += 8;
  heap->total_pages_ = static_cast<int64_t>(GetU64(p));

  // Sanity: regions must be in order and consistent, counts non-negative
  // and small enough that the directory fits its pages.  Anything else is
  // a damaged (or foreign) file, not a programming error.
  if (heap->arity_ < 0 || heap->arity_ > 1'000'000 ||
      heap->tuple_count_ < 0 || heap->dict_count_ < 0 || run_count < 0 ||
      heap->dict_data_bytes_ < 0 ||
      heap->dict_index_first_page_ != 1 ||
      heap->dict_index_page_count_ != PagesFor(8 * heap->dict_count_) ||
      heap->dict_data_first_page_ !=
          heap->dict_index_first_page_ + heap->dict_index_page_count_ ||
      heap->dict_data_page_count_ != PagesFor(heap->dict_data_bytes_) ||
      rundir_first !=
          heap->dict_data_first_page_ + heap->dict_data_page_count_ ||
      rundir_pages != PagesFor(kRunDirEntryBytes * run_count) ||
      heap->run_first_page_ != rundir_first + rundir_pages ||
      heap->total_pages_ != heap->run_first_page_ + run_count) {
    return HeapCorrupt(heap->path_, "inconsistent header");
  }
  if (heap->arity_ == 0 && run_count != 0) {
    return HeapCorrupt(heap->path_, "arity-0 heap with runs");
  }

  // Run directory.
  heap->runs_.reserve(static_cast<size_t>(run_count));
  int64_t seen_rows = 0;
  for (int64_t run = 0; run < run_count; ++run) {
    int64_t dir_page = rundir_first + run / kRunDirPerPage;
    int64_t slot = run % kRunDirPerPage;
    STRDB_ASSIGN_OR_RETURN(PageRef page,
                           heap->pool_->Pin(heap->path_, dir_page));
    const char* e = page.data().data() + slot * kRunDirEntryBytes;
    RunInfo info;
    info.row_count = static_cast<int64_t>(GetU32(e));
    std::memcpy(info.min_prefix, e + 8, 8);
    std::memcpy(info.max_prefix, e + 16, 8);
    const int64_t rows_per_page =
        std::max<int64_t>(1, kPagePayload / (static_cast<int64_t>(heap->arity_) * 4));
    if (info.row_count <= 0 || info.row_count > rows_per_page) {
      return HeapCorrupt(heap->path_, "run " + std::to_string(run) +
                                          ": bad row count");
    }
    seen_rows += info.row_count;
    heap->runs_.push_back(info);
  }
  if (heap->arity_ > 0 && seen_rows != heap->tuple_count_) {
    return HeapCorrupt(heap->path_, "run directory row total " +
                                        std::to_string(seen_rows) +
                                        " != tuple count " +
                                        std::to_string(heap->tuple_count_));
  }
  if (heap->arity_ == 0 && heap->tuple_count_ > 1) {
    return HeapCorrupt(heap->path_, "arity-0 heap with tuple count > 1");
  }
  return std::shared_ptr<const PagedHeap>(std::move(heap));
}

Status PagedHeap::ReadDictData(int64_t offset, int64_t n,
                               std::string* out) const {
  if (offset < 0 || n < 0 || offset + n > dict_data_bytes_) {
    return HeapCorrupt(path_, "dictionary offset out of range");
  }
  out->clear();
  while (n > 0) {
    int64_t page = dict_data_first_page_ + offset / kPagePayload;
    int64_t in_page = offset % kPagePayload;
    int64_t take = std::min<int64_t>(n, kPagePayload - in_page);
    STRDB_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(path_, page));
    out->append(ref.data(), static_cast<size_t>(in_page),
                static_cast<size_t>(take));
    offset += take;
    n -= take;
  }
  return Status::OK();
}

Status PagedHeap::GetString(uint32_t id, std::string* out) const {
  if (static_cast<int64_t>(id) >= dict_count_) {
    return HeapCorrupt(path_, "dictionary id " + std::to_string(id) +
                                  " >= count " + std::to_string(dict_count_));
  }
  int64_t index_page =
      dict_index_first_page_ + static_cast<int64_t>(id) / kOffsetsPerPage;
  int64_t slot = static_cast<int64_t>(id) % kOffsetsPerPage;
  int64_t offset;
  {
    STRDB_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(path_, index_page));
    offset = static_cast<int64_t>(GetU64(ref.data().data() + slot * 8));
  }
  std::string len_bytes;
  STRDB_RETURN_IF_ERROR(ReadDictData(offset, 4, &len_bytes));
  int64_t len = static_cast<int64_t>(GetU32(len_bytes.data()));
  if (len > dict_data_bytes_ - offset - 4) {
    return HeapCorrupt(path_, "dictionary entry overruns data region");
  }
  return ReadDictData(offset + 4, len, out);
}

Status PagedHeap::ScanRun(int64_t index, std::vector<Tuple>* out) const {
  out->clear();
  if (index < 0 || index >= static_cast<int64_t>(runs_.size())) {
    return Status::InvalidArgument("run index out of range");
  }
  const RunInfo& info = runs_[static_cast<size_t>(index)];
  STRDB_ASSIGN_OR_RETURN(PageRef page, pool_->Pin(path_, run_first_page_ + index));
  const char* rows = page.data().data();
  out->reserve(static_cast<size_t>(info.row_count));
  for (int64_t r = 0; r < info.row_count; ++r) {
    Tuple t;
    t.reserve(static_cast<size_t>(arity_));
    for (int a = 0; a < arity_; ++a) {
      uint32_t id = GetU32(rows + (r * arity_ + a) * 4);
      std::string s;
      STRDB_RETURN_IF_ERROR(GetString(id, &s));
      t.push_back(std::move(s));
    }
    out->push_back(std::move(t));
  }
  return Status::OK();
}

Status PagedHeap::Scan(
    const std::function<Status(const std::vector<Tuple>&)>& on_batch) const {
  if (arity_ == 0) {
    if (tuple_count_ == 1) {
      std::vector<Tuple> batch;
      batch.emplace_back();
      return on_batch(batch);
    }
    return Status::OK();
  }
  // Coalesce consecutive runs until a batch reaches kScanBatchMinRows:
  // run granularity is a storage artifact (whatever fit one page at
  // write time), but each on_batch call downstream is one shot of the
  // engine's batch acceptance tiers — the CSR kernel and the DFA's
  // 64-lane interpreter — which under-fill on page-sized crumbs.  At
  // most one coalesced batch is resident at a time, so the peak-memory
  // contract only grows from "one run" to "one batch".
  std::vector<Tuple> batch, run_rows;
  for (int64_t run = 0; run < static_cast<int64_t>(runs_.size()); ++run) {
    STRDB_RETURN_IF_ERROR(ScanRun(run, &run_rows));
    if (batch.empty()) {
      batch.swap(run_rows);
    } else {
      batch.insert(batch.end(), std::make_move_iterator(run_rows.begin()),
                   std::make_move_iterator(run_rows.end()));
    }
    if (static_cast<int64_t>(batch.size()) >= kScanBatchMinRows) {
      STRDB_RETURN_IF_ERROR(on_batch(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) STRDB_RETURN_IF_ERROR(on_batch(batch));
  return Status::OK();
}

}  // namespace strdb
