#include "storage/retry.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/rng.h"

namespace strdb {

Status RetryIo(Env* env, const RetryPolicy& policy, int64_t* retry_count,
               const std::function<Status()>& fn) {
  static Counter* retries =
      MetricsRegistry::Global().GetCounter("storage.io.retries");
  static Counter* giveups =
      MetricsRegistry::Global().GetCounter("storage.io.retry_giveups");
  Status status = fn();
  if (status.ok() || status.code() != StatusCode::kUnavailable) return status;
  Rng rng(policy.jitter_seed);
  int64_t backoff = std::max<int64_t>(policy.backoff_initial_ms, 1);
  int64_t slept_ms = 0;
  for (int attempt = 0;
       !status.ok() && status.code() == StatusCode::kUnavailable;
       ++attempt) {
    if (attempt >= policy.max_retries) {
      giveups->Increment();
      break;
    }
    int64_t sleep_ms = backoff;
    if (policy.jitter > 0) {
      // Equal jitter: keep the expected value at `backoff` but spread
      // each draw across [backoff*(1-j), backoff*(1+j)] so concurrent
      // retriers don't re-collide in lockstep.
      int64_t span = static_cast<int64_t>(
          static_cast<double>(backoff) * policy.jitter);
      if (span > 0) {
        sleep_ms = backoff - span +
                   static_cast<int64_t>(
                       rng.Below(static_cast<uint64_t>(2 * span + 1)));
      }
    }
    if (policy.backoff_cap_ms > 0) {
      sleep_ms = std::min(sleep_ms, policy.backoff_cap_ms);
    }
    if (policy.total_backoff_cap_ms > 0 &&
        slept_ms + sleep_ms > policy.total_backoff_cap_ms) {
      giveups->Increment();
      break;
    }
    env->SleepMs(sleep_ms);
    slept_ms += sleep_ms;
    if (backoff < (int64_t{1} << 30)) backoff *= 2;
    retries->Increment();
    if (retry_count != nullptr) ++*retry_count;
    status = fn();
  }
  return status;
}

}  // namespace strdb
