#include "storage/retry.h"

#include "core/metrics.h"

namespace strdb {

Status RetryIo(Env* env, const RetryPolicy& policy, int64_t* retry_count,
               const std::function<Status()>& fn) {
  static Counter* retries =
      MetricsRegistry::Global().GetCounter("storage.io.retries");
  Status status = fn();
  int64_t backoff = policy.backoff_initial_ms;
  for (int attempt = 0;
       !status.ok() && status.code() == StatusCode::kUnavailable &&
       attempt < policy.max_retries;
       ++attempt) {
    env->SleepMs(backoff);
    if (backoff < (int64_t{1} << 30)) backoff *= 2;
    retries->Increment();
    if (retry_count != nullptr) ++*retry_count;
    status = fn();
  }
  return status;
}

}  // namespace strdb
