#include "storage/snapshot.h"

#include <memory>

#include "core/io/crc32.h"
#include "storage/codec.h"

namespace strdb {

namespace {

void AppendLenPrefixed(std::string* out, const std::string& s) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

std::string RenderSnapshot(const Database& db,
                           const std::map<std::string, std::string>& automata,
                           const std::vector<CatalogOp>* spills) {
  std::string out = "strdbsnap ";
  out.append(std::to_string(kSnapshotFormatVersion));
  out.push_back('\n');
  out.append("alphabet ");
  std::string chars;
  for (Sym s = 0; s < db.alphabet().size(); ++s) {
    chars.push_back(db.alphabet().CharOf(s));
  }
  AppendLenPrefixed(&out, chars);
  out.push_back('\n');

  std::vector<std::string> ops;
  ops.reserve(db.relations().size() + automata.size());
  for (const auto& [name, rel] : db.relations()) {
    ops.push_back(EncodePut(name, rel));
  }
  if (spills != nullptr) {
    for (const CatalogOp& op : *spills) ops.push_back(EncodeOp(op));
  }
  for (const auto& [key, text] : automata) {
    ops.push_back(EncodeFsa(key, text));
  }
  out.append("ops ");
  out.append(std::to_string(ops.size()));
  out.push_back('\n');
  for (const std::string& op : ops) {
    out.append("op ");
    AppendLenPrefixed(&out, op);
    out.push_back('\n');
  }
  // The checksum covers everything before the trailer line itself.
  uint32_t crc = Crc32(out);
  out.append("crc32 ");
  out.append(Crc32Hex(crc));
  out.push_back('\n');
  return out;
}

}  // namespace

Status WriteSnapshot(Env* env, const std::string& dir,
                     const std::string& tmp_path, const std::string& path,
                     const Database& db,
                     const std::map<std::string, std::string>& automata,
                     const RetryPolicy& retry, int64_t* io_retries,
                     const std::vector<CatalogOp>* spills) {
  std::string content = RenderSnapshot(db, automata, spills);
  std::unique_ptr<WritableFile> file;
  STRDB_RETURN_IF_ERROR(RetryIo(env, retry, io_retries, [&] {
    auto opened = env->NewWritableFile(tmp_path, /*truncate=*/true);
    if (!opened.ok()) return opened.status();
    file = std::move(*opened);
    return Status::OK();
  }));
  STRDB_RETURN_IF_ERROR(
      RetryIo(env, retry, io_retries, [&] { return file->Append(content); }));
  STRDB_RETURN_IF_ERROR(
      RetryIo(env, retry, io_retries, [&] { return file->Sync(); }));
  STRDB_RETURN_IF_ERROR(
      RetryIo(env, retry, io_retries, [&] { return file->Close(); }));
  // The atomic commit of this snapshot file (CURRENT still decides
  // whether it is *live*).
  STRDB_RETURN_IF_ERROR(RetryIo(env, retry, io_retries,
                                [&] { return env->Rename(tmp_path, path); }));
  return RetryIo(env, retry, io_retries, [&] { return env->SyncDir(dir); });
}

Status ReadSnapshot(Env* env, const std::string& path, Database* db,
                    std::map<std::string, std::string>* automata,
                    const RetryPolicy& retry, int64_t* io_retries,
                    std::vector<CatalogOp>* spills) {
  std::string data;
  STRDB_RETURN_IF_ERROR(RetryIo(env, retry, io_retries, [&] {
    auto read = env->ReadFile(path);
    if (!read.ok()) return read.status();
    data = std::move(*read);
    return Status::OK();
  }));

  // Verify the trailer before believing a single byte.
  size_t crc_pos = data.rfind("\ncrc32 ");
  if (crc_pos == std::string::npos) {
    return Status::DataLoss("snapshot '" + path +
                            "': missing crc32 trailer (truncated?)");
  }
  std::string hex = data.substr(crc_pos + 7);
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(hex, &stated)) {
    return Status::DataLoss("snapshot '" + path + "': malformed crc32 trailer");
  }
  std::string body = data.substr(0, crc_pos + 1);
  if (Crc32(body) != stated) {
    return Status::DataLoss("snapshot '" + path + "': checksum mismatch");
  }

  // Header lines.  The body is trusted from here on (checksummed), so
  // parse failures are still reported as corruption, just with a precise
  // message.
  size_t pos = 0;
  auto read_line = [&](std::string* line) {
    size_t end = body.find('\n', pos);
    if (end == std::string::npos) return false;
    *line = body.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };
  std::string line;
  if (!read_line(&line) || line.rfind("strdbsnap ", 0) != 0) {
    return Status::DataLoss("snapshot '" + path + "': missing version header");
  }
  std::string version = line.substr(10);
  if (version != std::to_string(kSnapshotFormatVersion)) {
    return Status::Unimplemented(
        "snapshot '" + path + "': unsupported format version " + version +
        " (this build speaks " + std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (!read_line(&line) || line.rfind("alphabet ", 0) != 0) {
    return Status::DataLoss("snapshot '" + path + "': missing alphabet line");
  }
  size_t colon = line.find(':', 9);
  if (colon == std::string::npos) {
    return Status::DataLoss("snapshot '" + path + "': malformed alphabet line");
  }
  std::string stored_chars = line.substr(colon + 1);
  std::string db_chars;
  for (Sym s = 0; s < db->alphabet().size(); ++s) {
    db_chars.push_back(db->alphabet().CharOf(s));
  }
  if (stored_chars != db_chars) {
    return Status::InvalidArgument("snapshot '" + path + "' uses alphabet {" +
                                   stored_chars + "}, store opened with {" +
                                   db_chars + "}");
  }
  if (!read_line(&line) || line.rfind("ops ", 0) != 0) {
    return Status::DataLoss("snapshot '" + path + "': missing ops line");
  }
  int64_t declared = -1;
  {
    int64_t value = 0;
    bool ok = line.size() > 4;
    for (size_t i = 4; i < line.size() && ok; ++i) {
      char c = line[i];
      if (c < '0' || c > '9') ok = false;
      value = value * 10 + (c - '0');
      if (value > (int64_t{1} << 40)) ok = false;
    }
    if (!ok) {
      return Status::DataLoss("snapshot '" + path + "': malformed ops count");
    }
    declared = value;
  }

  int64_t seen = 0;
  while (pos < body.size()) {
    if (body.compare(pos, 3, "op ") != 0) {
      return Status::DataLoss("snapshot '" + path +
                              "': malformed op frame at offset " +
                              std::to_string(pos));
    }
    pos += 3;
    size_t colon2 = body.find(':', pos);
    if (colon2 == std::string::npos) {
      return Status::DataLoss("snapshot '" + path + "': malformed op length");
    }
    int64_t len = 0;
    for (size_t i = pos; i < colon2; ++i) {
      char c = body[i];
      if (c < '0' || c > '9') {
        return Status::DataLoss("snapshot '" + path + "': malformed op length");
      }
      len = len * 10 + (c - '0');
      if (len > (int64_t{1} << 40)) {
        return Status::DataLoss("snapshot '" + path + "': absurd op length");
      }
    }
    pos = colon2 + 1;
    if (pos + static_cast<size_t>(len) + 1 > body.size()) {
      return Status::DataLoss("snapshot '" + path + "': op overruns body");
    }
    std::string payload = body.substr(pos, static_cast<size_t>(len));
    pos += static_cast<size_t>(len);
    if (body[pos] != '\n') {
      return Status::DataLoss("snapshot '" + path + "': missing op terminator");
    }
    ++pos;
    STRDB_ASSIGN_OR_RETURN(CatalogOp op, DecodeOp(payload));
    if ((op.kind == CatalogOp::kSpill || op.kind == CatalogOp::kReqId ||
         op.kind == CatalogOp::kLost || op.kind == CatalogOp::kStats) &&
        spills != nullptr) {
      // kStats legitimately names an inline relation (its statistics);
      // only the relation-shaped side-ops are exclusive with inline.
      if (op.kind != CatalogOp::kReqId && op.kind != CatalogOp::kStats &&
          db->Has(op.name)) {
        return Status::DataLoss("snapshot '" + path + "': relation '" +
                                op.name + "' both inline and spilled");
      }
      spills->push_back(std::move(op));
    } else {
      STRDB_RETURN_IF_ERROR(ApplyOp(op, db->alphabet(), db, automata));
    }
    ++seen;
  }
  if (seen != declared) {
    return Status::DataLoss("snapshot '" + path + "': declared " +
                            std::to_string(declared) + " ops, found " +
                            std::to_string(seen));
  }
  return Status::OK();
}

}  // namespace strdb
