#ifndef STRDB_STORAGE_STORE_H_
#define STRDB_STORAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/io/env.h"
#include "core/result.h"
#include "fsa/fsa.h"
#include "relational/relation.h"
#include "relational/tuple_source.h"
#include "storage/codec.h"
#include "storage/heap.h"
#include "storage/pager.h"
#include "storage/retry.h"
#include "storage/wal.h"

namespace strdb {

struct StoreOptions {
  // All filesystem access goes through this seam; nullptr = Env::Posix().
  // Tests substitute a FaultInjectingEnv here.
  Env* env = nullptr;
  // fsync every WAL commit (the durability contract: an OK mutation is
  // on stable storage).  Off trades the tail of the log for throughput.
  bool sync = true;
  // Transient-fault retry budget, applied to every individual I/O call.
  RetryPolicy retry;
  // Relations whose approximate in-memory footprint reaches this many
  // bytes are spilled to the paged heap format at the next Checkpoint()
  // and stay out-of-core until mutated.  0 disables spilling.
  int64_t spill_threshold_bytes = 0;
  // Buffer-pool cap for reading spilled relations back (pinned + cached
  // page bytes).
  int64_t pager_capacity_bytes = 4 << 20;
};

// What Open() salvaged, for the shell's transcript and for tests.
struct RecoveryReport {
  bool opened_existing = false;   // any prior state found in the directory
  bool snapshot_loaded = false;
  int64_t generation = 0;         // live snapshot/WAL generation
  int64_t wal_records_replayed = 0;
  int64_t wal_bytes_truncated = 0;
  std::string wal_tail_error;     // why the tail was cut; empty when clean
  int64_t wal_records_dropped = 0;  // intact frames dropped after a bad apply
  int64_t relations = 0;
  int64_t tuples = 0;
  int64_t automata = 0;
  int64_t io_retries = 0;         // transient faults absorbed during open
  int64_t spilled_relations = 0;  // relations recovered as paged heaps
  int64_t spilled_tuples = 0;     // their tuple total (not rescanned)

  std::string ToString() const;
};

// Crash-safe persistence for the database catalog: relations and cached
// (serialized) automata.  On disk a store directory holds
//
//   CURRENT    — the live generation number g, installed atomically
//   snap-<g>   — checksummed snapshot of the whole catalog (storage/snapshot)
//   wal-<g>    — CRC-framed log of mutations since snap-<g> (storage/wal)
//
// Every mutation is committed write-ahead: the op is framed, appended
// and fsynced before it touches the in-memory catalog, so an OK return
// means durable.  Checkpoint() folds the log into a new snapshot with
// write-temp + fsync + atomic-rename, flips CURRENT, and starts a fresh
// log.  Open() replays whatever a crash left behind, truncating torn or
// corrupt WAL tails instead of failing — recovery always yields a state
// some committed prefix of mutations produced, never a partial tuple or
// an unverified automaton (the crash-point sweep in tests/storage_test.cc
// proves this for every injected fault point).
//
// Recovery and commit activity feed the process metrics registry
// ("storage.*": commits, checkpoints, recovery.replayed_records,
// recovery.truncated_bytes, io.retries).
//
// Thread safe: mutations serialize on an internal mutex.  db() returns a
// reference readers may use between mutations (the shell is
// single-threaded; concurrent readers must externally synchronize with
// writers).  Concurrent readers that must not synchronize with writers
// — the query server's sessions — use SnapshotDb() instead: every
// committed mutation publishes a fresh immutable copy-on-write snapshot
// under its own lock, so grabbing a snapshot never waits behind a WAL
// fsync and a query keeps one consistent catalog for its whole run no
// matter what writers commit meanwhile.
class CatalogStore {
 public:
  // Opens (creating if necessary) the store in `dir`.  `report`
  // (optional) receives what recovery found.  The alphabet must match
  // the one the store was created with.
  static Result<std::unique_ptr<CatalogStore>> Open(
      const std::string& dir, const Alphabet& alphabet,
      const StoreOptions& options = {}, RecoveryReport* report = nullptr);

  ~CatalogStore();

  const std::string& dir() const { return dir_; }
  int64_t generation() const;
  const Database& db() const { return db_; }
  // The current catalog as an immutable shared snapshot.  Cheap (one
  // shared_ptr copy under a short lock that writers only take *after*
  // commit I/O completes); the pointed-to Database never changes, so
  // readers evaluate against it lock-free for as long as they hold the
  // handle.  Never null.
  std::shared_ptr<const Database> SnapshotDb() const;
  // The spilled (out-of-core) relations as an immutable shared map,
  // published in lockstep with SnapshotDb(): a name is in exactly one of
  // the two.  Never null (empty map when nothing is spilled).
  std::shared_ptr<const PagedSet> PagedDb() const;
  // Both snapshots as one consistent pair: a checkpoint that spills a
  // relation moves it between the two atomically w.r.t. this call, so a
  // reader never sees a name in both maps or in neither.
  void SnapshotState(std::shared_ptr<const Database>* db,
                     std::shared_ptr<const PagedSet>* paged) const;
  // Buffer-pool counters for the shell/server `pager` verb.
  PagerStats pager_stats() const { return pool_->stats(); }
  int64_t pager_capacity_bytes() const { return pool_->capacity_bytes(); }
  // Persisted automata: artifact-cache key -> SerializeFsa text.
  const std::map<std::string, std::string>& automata() const {
    return automata_;
  }

  // Catalog mutations.  Each validates against the current state,
  // commits to the WAL (append + fsync), then applies in memory.
  Status PutRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples);
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples);
  Status DropRelation(const std::string& name);
  // Persists a compiled automaton under its artifact-cache key.  A key
  // already stored with identical text is a no-op (harvesting the cache
  // repeatedly does not grow the log).
  Status InstallAutomaton(const std::string& key, const Fsa& fsa);
  Status InstallAutomatonText(const std::string& key, std::string fsa_text);

  // Folds the catalog into a new snapshot generation and starts a fresh
  // WAL.  On failure the previous generation remains live.
  Status Checkpoint();

  // Flushes and closes the WAL.  Called by the destructor; exposed so
  // callers can observe the Status.
  Status Close();

 private:
  CatalogStore(std::string dir, const Alphabet& alphabet,
               const StoreOptions& options);

  Status OpenInternal(RecoveryReport* report);
  // Write-ahead commit of one encoded op (append + fsync).  The caller
  // applies the op in memory only after this returns OK.
  Status CommitPayload(const std::string& payload);
  // Copies db_ (and the paged map) into fresh immutable snapshots and
  // installs them as the ones SnapshotDb()/PagedDb() hand out.  Called
  // with mu_ held after every successful catalog mutation.
  void PublishSnapshotLocked();
  // Pulls a spilled relation back into db_ (its heap file becomes
  // garbage, reclaimed at the next checkpoint or open).  With mu_ held.
  Status MaterializePagedLocked(const std::string& name);
  // Forgets a spilled relation without materialising (drop/replace).
  void DiscardPagedLocked(const std::string& name);

  std::string SnapPath(int64_t gen) const;
  std::string WalPath(int64_t gen) const;

  const std::string dir_;
  const StoreOptions options_;
  Env* const env_;
  std::unique_ptr<BufferPool> pool_;

  mutable std::mutex mu_;
  int64_t generation_ = 0;
  Database db_;
  std::map<std::string, std::string> automata_;
  // Spilled relations: open heap views plus the kSpill ops that re-
  // describe them in the next snapshot.  Keys mirror each other and are
  // disjoint from db_'s relation names.
  PagedSet paged_;
  std::map<std::string, CatalogOp> spill_ops_;
  // Heap files whose relation was dropped/replaced/materialised since
  // the last checkpoint: still referenced by the live snapshot, deleted
  // only after the next generation flip stops referencing them.
  std::vector<std::string> garbage_heaps_;
  std::unique_ptr<WalWriter> wal_;
  int64_t io_retries_ = 0;

  // The published snapshot, behind its own mutex so readers never
  // contend with mu_ (which writers hold across commit fsyncs).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Database> snapshot_;
  std::shared_ptr<const PagedSet> paged_snapshot_;
};

}  // namespace strdb

#endif  // STRDB_STORAGE_STORE_H_
