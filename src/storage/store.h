#ifndef STRDB_STORAGE_STORE_H_
#define STRDB_STORAGE_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/alphabet.h"
#include "core/io/env.h"
#include "core/result.h"
#include "fsa/fsa.h"
#include "relational/relation.h"
#include "relational/stats.h"
#include "relational/tuple_source.h"
#include "storage/codec.h"
#include "storage/heap.h"
#include "storage/pager.h"
#include "storage/retry.h"
#include "storage/wal.h"

namespace strdb {

// Idempotent-request identity for durable mutations: a client-chosen id
// plus a per-client sequence number that only ever increases.  The store
// remembers the highest sequence it applied for each client (persisted
// through WAL tags and snapshot kReqId ops), so a client that retries a
// request after a lost ack gets it applied exactly once.  The window is
// one seq per client, which is only sound because a client retries the
// SAME request until acked before issuing the next — StrdbClient
// enforces that.
struct ReqId {
  std::string client;  // empty = untagged request (no dedup)
  uint64_t seq = 0;

  bool valid() const { return !client.empty(); }
};

struct StoreOptions {
  // All filesystem access goes through this seam; nullptr = Env::Posix().
  // Tests substitute a FaultInjectingEnv here.
  Env* env = nullptr;
  // fsync every WAL commit (the durability contract: an OK mutation is
  // on stable storage).  Off trades the tail of the log for throughput.
  bool sync = true;
  // Transient-fault retry budget, applied to every individual I/O call.
  RetryPolicy retry;
  // Relations whose approximate in-memory footprint reaches this many
  // bytes are spilled to the paged heap format at the next Checkpoint()
  // and stay out-of-core until mutated.  0 disables spilling.
  int64_t spill_threshold_bytes = 0;
  // Buffer-pool cap for reading spilled relations back (pinned + cached
  // page bytes).
  int64_t pager_capacity_bytes = 4 << 20;
  // Background scrub cadence: every this-many milliseconds a low-
  // priority thread walks the snapshot, the WAL and every spilled heap
  // verifying CRCs, quarantining what fails (see ScrubNow).  0 disables
  // the thread; ScrubNow() stays callable either way.
  int64_t scrub_interval_ms = 0;
};

// What Open() salvaged, for the shell's transcript and for tests.
struct RecoveryReport {
  bool opened_existing = false;   // any prior state found in the directory
  bool snapshot_loaded = false;
  int64_t generation = 0;         // live snapshot/WAL generation
  int64_t wal_records_replayed = 0;
  int64_t wal_bytes_truncated = 0;
  std::string wal_tail_error;     // why the tail was cut; empty when clean
  int64_t wal_records_dropped = 0;  // intact frames dropped after a bad apply
  int64_t relations = 0;
  int64_t tuples = 0;
  int64_t automata = 0;
  int64_t io_retries = 0;         // transient faults absorbed during open
  int64_t spilled_relations = 0;  // relations recovered as paged heaps
  int64_t spilled_tuples = 0;     // their tuple total (not rescanned)
  // Relations whose heap file was missing/corrupt at open: moved aside
  // and answered with kDataLoss instead of failing the whole catalog.
  int64_t quarantined_relations = 0;
  int64_t req_clients = 0;        // idempotent-request windows recovered

  std::string ToString() const;
};

// One background/foreground scrub pass over everything the live
// generation references.
struct ScrubReport {
  int64_t pages_verified = 0;   // 16 KiB heap pages + snapshot/WAL files
  int64_t crc_failures = 0;
  int64_t heaps_scanned = 0;
  bool snapshot_ok = true;
  bool wal_ok = true;
  std::vector<std::string> quarantined;  // relation names this pass
  std::vector<std::string> errors;       // human-readable findings

  std::string ToString() const;
};

// Crash-safe persistence for the database catalog: relations and cached
// (serialized) automata.  On disk a store directory holds
//
//   CURRENT    — the live generation number g, installed atomically
//   snap-<g>   — checksummed snapshot of the whole catalog (storage/snapshot)
//   wal-<g>    — CRC-framed log of mutations since snap-<g> (storage/wal)
//
// Every mutation is committed write-ahead: the op is framed, appended
// and fsynced before it touches the in-memory catalog, so an OK return
// means durable.  Checkpoint() folds the log into a new snapshot with
// write-temp + fsync + atomic-rename, flips CURRENT, and starts a fresh
// log.  Open() replays whatever a crash left behind, truncating torn or
// corrupt WAL tails instead of failing — recovery always yields a state
// some committed prefix of mutations produced, never a partial tuple or
// an unverified automaton (the crash-point sweep in tests/storage_test.cc
// proves this for every injected fault point).
//
// Recovery and commit activity feed the process metrics registry
// ("storage.*": commits, checkpoints, recovery.replayed_records,
// recovery.truncated_bytes, io.retries, scrub.*).
//
// Thread safe: mutations serialize on an internal mutex.  db() returns a
// reference readers may use between mutations (the shell is
// single-threaded; concurrent readers must externally synchronize with
// writers).  Concurrent readers that must not synchronize with writers
// — the query server's sessions — use SnapshotDb() instead: every
// committed mutation publishes a fresh immutable copy-on-write snapshot
// under its own lock, so grabbing a snapshot never waits behind a WAL
// fsync and a query keeps one consistent catalog for its whole run no
// matter what writers commit meanwhile.
class CatalogStore {
 public:
  // Opens (creating if necessary) the store in `dir`.  `report`
  // (optional) receives what recovery found.  The alphabet must match
  // the one the store was created with.
  static Result<std::unique_ptr<CatalogStore>> Open(
      const std::string& dir, const Alphabet& alphabet,
      const StoreOptions& options = {}, RecoveryReport* report = nullptr);

  ~CatalogStore();

  const std::string& dir() const { return dir_; }
  int64_t generation() const;
  const Database& db() const { return db_; }
  // The current catalog as an immutable shared snapshot.  Cheap (one
  // shared_ptr copy under a short lock that writers only take *after*
  // commit I/O completes); the pointed-to Database never changes, so
  // readers evaluate against it lock-free for as long as they hold the
  // handle.  Never null.
  std::shared_ptr<const Database> SnapshotDb() const;
  // The spilled (out-of-core) relations as an immutable shared map,
  // published in lockstep with SnapshotDb(): a name is in exactly one of
  // the two.  Never null (empty map when nothing is spilled).
  std::shared_ptr<const PagedSet> PagedDb() const;
  // Both snapshots as one consistent pair: a checkpoint that spills a
  // relation moves it between the two atomically w.r.t. this call, so a
  // reader never sees a name in both maps or in neither.  The three-way
  // overload additionally hands out the statistics snapshot published in
  // the same instant (pass nullptr to skip it).
  void SnapshotState(std::shared_ptr<const Database>* db,
                     std::shared_ptr<const PagedSet>* paged) const;
  void SnapshotState(std::shared_ptr<const Database>* db,
                     std::shared_ptr<const PagedSet>* paged,
                     std::shared_ptr<const StatsMap>* stats) const;
  // Per-relation statistics of the current catalog (inline and spilled
  // relations alike), maintained incrementally on every mutation and
  // persisted through snapshots as kStats side-ops.  Advisory: the cost
  // planner reads them, no query answer ever depends on them.  Never
  // null (empty map when nothing has stats).
  std::shared_ptr<const StatsMap> StatsSnapshot() const;
  // Buffer-pool counters for the shell/server `pager` verb.
  PagerStats pager_stats() const { return pool_->stats(); }
  int64_t pager_capacity_bytes() const { return pool_->capacity_bytes(); }
  // The pool itself, shared so a caller streaming a paged scan can keep
  // it alive past the store (ServerCore::Drain holds one).
  std::shared_ptr<BufferPool> pool() const { return pool_; }
  // Persisted automata: artifact-cache key -> SerializeFsa text.
  const std::map<std::string, std::string>& automata() const {
    return automata_;
  }

  // Catalog mutations.  Each validates against the current state,
  // commits to the WAL (append + fsync), then applies in memory.
  //
  // The `req` overloads implement idempotent retries: when `req` is
  // valid and its seq is not beyond the client's applied window, the
  // call is a no-op that reports success with `*deduped = true` — the
  // original application already committed.  Otherwise the op commits
  // with the req tag and advances the window atomically with it.
  Status PutRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples);
  Status PutRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples, const ReqId& req,
                     bool* deduped);
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples);
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples,
                      const ReqId& req, bool* deduped);
  Status DropRelation(const std::string& name);
  Status DropRelation(const std::string& name, const ReqId& req,
                      bool* deduped);
  // Persists a compiled automaton under its artifact-cache key.  A key
  // already stored with identical text is a no-op (harvesting the cache
  // repeatedly does not grow the log).
  Status InstallAutomaton(const std::string& key, const Fsa& fsa);
  Status InstallAutomatonText(const std::string& key, std::string fsa_text);

  // Folds the catalog into a new snapshot generation and starts a fresh
  // WAL.  On failure the previous generation remains live.
  Status Checkpoint();

  // One synchronous scrub pass: verifies the live snapshot's checksum,
  // re-frames the WAL against the writer's committed watermark, and
  // CRC-checks every page of every spilled heap.  A heap that fails is
  // quarantined: the file moves aside as quarantine-<file>, the relation
  // is re-materialized from whatever intact pages allow — and when that
  // is impossible it is marked lost, so queries touching it get a typed
  // kDataLoss while the rest of the catalog keeps answering.  Feeds
  // storage.scrub.{pages_verified,crc_failures,quarantines}.  Returns
  // non-OK only for infrastructure failures (store closed); corruption
  // findings live in the report.
  Status ScrubNow(ScrubReport* report = nullptr);

  // Relations currently marked lost (quarantined, unrescuable), with the
  // reason each one stopped answering.
  std::map<std::string, std::string> LostRelations() const;

  // Flushes and closes the WAL (stopping the scrub thread first).
  // Called by the destructor; exposed so callers can observe the Status.
  Status Close();

 private:
  CatalogStore(std::string dir, const Alphabet& alphabet,
               const StoreOptions& options);

  Status OpenInternal(RecoveryReport* report);
  // Write-ahead commit of one encoded op (append + fsync).  The caller
  // applies the op in memory only after this returns OK.
  Status CommitPayload(const std::string& payload);
  // Copies db_ (and the paged map) into fresh immutable snapshots and
  // installs them as the ones SnapshotDb()/PagedDb() hand out.  Called
  // with mu_ held after every successful catalog mutation.
  void PublishSnapshotLocked();
  // Pulls a spilled relation back into db_ (its heap file becomes
  // garbage, reclaimed at the next checkpoint or open).  With mu_ held.
  Status MaterializePagedLocked(const std::string& name);
  // Forgets a spilled relation without materialising (drop/replace).
  void DiscardPagedLocked(const std::string& name);
  // True (with the applied seq window advanced virtually) when `req`
  // was already applied; the caller must return success without
  // re-applying.  With mu_ held.
  bool AlreadyAppliedLocked(const ReqId& req) const;
  // Records `req` as applied.  With mu_ held, after the WAL commit.
  void RecordReqLocked(const ReqId& req);
  // Installs a lost marker for `name` (kDataLoss tuple source + lost
  // op), dropping any paged/spill state without queueing the heap file
  // as garbage (the caller already moved or lost the file).  With mu_
  // held.
  void MarkLostLocked(const std::string& name, int arity,
                      int64_t tuple_count, int max_string_length,
                      const std::string& reason);
  // Quarantines the spilled relation `name` whose heap file `file`
  // failed its CRC walk: moves the file aside, tries to rescue the
  // relation back into memory (durably, via a WAL put), else marks it
  // lost.  Returns what happened for the scrub report.
  enum class QuarantineOutcome { kStale, kRescued, kLost };
  QuarantineOutcome QuarantineHeap(const std::string& name,
                                   const std::string& file,
                                   const std::string& reason);
  void ScrubThreadMain();

  std::string SnapPath(int64_t gen) const;
  std::string WalPath(int64_t gen) const;

  const std::string dir_;
  const StoreOptions options_;
  Env* const env_;
  // Shared with every PagedHeap view handed out through snapshots, so
  // the pool cannot die while a streaming scan still holds page pins.
  std::shared_ptr<BufferPool> pool_;

  mutable std::mutex mu_;
  int64_t generation_ = 0;
  Database db_;
  std::map<std::string, std::string> automata_;
  // Spilled relations: open heap views plus the kSpill ops that re-
  // describe them in the next snapshot.  Keys mirror each other and are
  // disjoint from db_'s relation names.
  PagedSet paged_;
  std::map<std::string, CatalogOp> spill_ops_;
  // Quarantined-and-unrescued relations: their kLost ops ride every
  // snapshot until a put/drop supersedes them.  Keys are disjoint from
  // both db_ and spill_ops_; paged_ holds a kDataLoss source under the
  // same name so readers get a typed error instead of a vanished name.
  std::map<std::string, CatalogOp> lost_ops_;
  // Idempotent-request window: client id -> highest applied seq.
  std::map<std::string, uint64_t> applied_reqs_;
  // Per-relation statistics, covering inline (db_) and spilled (paged_)
  // relations.  Maintained incrementally by every mutation, rebuilt by
  // WAL replay, persisted as kStats snapshot side-ops; a relation with
  // no entry (old store, undecodable op) simply plans without stats.
  StatsMap stats_;
  // Heap files whose relation was dropped/replaced/materialised since
  // the last checkpoint: still referenced by the live snapshot, deleted
  // only after the next generation flip stops referencing them.
  std::vector<std::string> garbage_heaps_;
  std::unique_ptr<WalWriter> wal_;
  int64_t io_retries_ = 0;

  // The published snapshot, behind its own mutex so readers never
  // contend with mu_ (which writers hold across commit fsyncs).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Database> snapshot_;
  std::shared_ptr<const PagedSet> paged_snapshot_;
  std::shared_ptr<const StatsMap> stats_snapshot_;

  // Background scrubber plumbing.
  std::thread scrub_thread_;
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
};

}  // namespace strdb

#endif  // STRDB_STORAGE_STORE_H_
