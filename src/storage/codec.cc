#include "storage/codec.h"

#include "fsa/serialize.h"

namespace strdb {

namespace {

void AppendLenPrefixed(std::string* out, const std::string& s) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

void AppendTuple(std::string* out, const Tuple& tuple) {
  out->append("u ");
  out->append(std::to_string(tuple.size()));
  for (const std::string& s : tuple) {
    out->push_back(' ');
    AppendLenPrefixed(out, s);
  }
  out->push_back('\n');
}

// A bounds-checked cursor over an op payload.  Every reader returns
// kDataLoss on malformed input: by the time DecodeOp runs, the payload
// has already passed its frame checksum, so a parse failure means the
// writer and reader disagree — corruption as far as recovery is
// concerned.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool AtEnd() const { return pos_ == data_.size(); }

  // Bytes not yet consumed — the budget any claimed count must fit in.
  size_t Remaining() const { return data_.size() - pos_; }

  Status ExpectChar(char c) {
    if (pos_ >= data_.size() || data_[pos_] != c) {
      return Status::DataLoss("op payload: expected '" + std::string(1, c) +
                              "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  // Reads the next run of non-separator characters (a keyword or number).
  Result<std::string> ReadWord() {
    size_t start = pos_;
    while (pos_ < data_.size() && data_[pos_] != ' ' && data_[pos_] != '\n' &&
           data_[pos_] != ':') {
      ++pos_;
    }
    if (pos_ == start) return Status::DataLoss("op payload: empty token");
    return data_.substr(start, pos_ - start);
  }

  Result<int64_t> ReadNumber() {
    STRDB_ASSIGN_OR_RETURN(std::string word, ReadWord());
    int64_t value = 0;
    for (char c : word) {
      if (c < '0' || c > '9') {
        return Status::DataLoss("op payload: bad number '" + word + "'");
      }
      value = value * 10 + (c - '0');
      if (value > (int64_t{1} << 40)) {
        return Status::DataLoss("op payload: number out of range");
      }
    }
    return value;
  }

  // Reads "<len>:<bytes>".
  Result<std::string> ReadLenPrefixed() {
    STRDB_ASSIGN_OR_RETURN(int64_t len, ReadNumber());
    STRDB_RETURN_IF_ERROR(ExpectChar(':'));
    if (pos_ + static_cast<size_t>(len) > data_.size()) {
      return Status::DataLoss("op payload: length prefix overruns payload");
    }
    std::string out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return out;
  }

  Result<Tuple> ReadTuple() {
    STRDB_ASSIGN_OR_RETURN(std::string tag, ReadWord());
    if (tag.size() != 1 || tag[0] != 'u') {
      return Status::DataLoss("op payload: expected tuple line, got '" + tag +
                              "'");
    }
    STRDB_RETURN_IF_ERROR(ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t k, ReadNumber());
    if (k < 0 || k > 1'000'000) {
      return Status::DataLoss("op payload: absurd tuple arity");
    }
    // Each component costs at least " 0:" (3 bytes), so an arity the
    // remaining payload cannot possibly hold is corruption — reject it
    // before reserve() turns it into an allocation.
    if (static_cast<size_t>(k) > Remaining() / 3) {
      return Status::DataLoss("op payload: tuple arity exceeds payload size");
    }
    Tuple tuple;
    tuple.reserve(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      STRDB_RETURN_IF_ERROR(ExpectChar(' '));
      STRDB_ASSIGN_OR_RETURN(std::string s, ReadLenPrefixed());
      tuple.push_back(std::move(s));
    }
    STRDB_RETURN_IF_ERROR(ExpectChar('\n'));
    return tuple;
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodePut(const std::string& name,
                      const StringRelation& relation) {
  std::string out = "put ";
  AppendLenPrefixed(&out, name);
  out.push_back(' ');
  out.append(std::to_string(relation.arity()));
  out.push_back(' ');
  out.append(std::to_string(relation.size()));
  out.push_back('\n');
  for (const Tuple& t : relation.tuples()) AppendTuple(&out, t);
  return out;
}

std::string EncodeInsert(const std::string& name,
                         const std::vector<Tuple>& tuples) {
  std::string out = "ins ";
  AppendLenPrefixed(&out, name);
  out.push_back(' ');
  out.append(std::to_string(tuples.size()));
  out.push_back('\n');
  for (const Tuple& t : tuples) AppendTuple(&out, t);
  return out;
}

std::string EncodeDrop(const std::string& name) {
  std::string out = "drop ";
  AppendLenPrefixed(&out, name);
  out.push_back('\n');
  return out;
}

void AppendReqTagLine(std::string* payload, const std::string& client,
                      uint64_t seq) {
  if (client.empty()) return;
  payload->append("req ");
  AppendLenPrefixed(payload, client);
  payload->push_back(' ');
  payload->append(std::to_string(seq));
  payload->push_back('\n');
}

std::string EncodeFsa(const std::string& key, const std::string& fsa_text) {
  std::string out = "fsa ";
  AppendLenPrefixed(&out, key);
  out.push_back(' ');
  AppendLenPrefixed(&out, fsa_text);
  out.push_back('\n');
  return out;
}

namespace {

// Trailing idempotent-request tag, appended after a mutation's body.
void AppendReqTag(std::string* out, const CatalogOp& op) {
  AppendReqTagLine(out, op.req_client, op.req_seq);
}

std::string EncodeReqId(const CatalogOp& op) {
  std::string out = "rid ";
  AppendLenPrefixed(&out, op.req_client);
  out.push_back(' ');
  out.append(std::to_string(op.req_seq));
  out.push_back('\n');
  return out;
}

std::string EncodeLost(const CatalogOp& op) {
  std::string out = "lost ";
  AppendLenPrefixed(&out, op.name);
  out.push_back(' ');
  out.append(std::to_string(op.arity));
  out.push_back(' ');
  out.append(std::to_string(op.tuple_count));
  out.push_back(' ');
  out.append(std::to_string(op.max_string_length));
  out.push_back(' ');
  AppendLenPrefixed(&out, op.reason);
  out.push_back('\n');
  return out;
}

std::string EncodeStats(const CatalogOp& op) {
  std::string out = "stat ";
  AppendLenPrefixed(&out, op.name);
  out.push_back(' ');
  AppendLenPrefixed(&out, op.stats_text);
  out.push_back('\n');
  return out;
}

std::string EncodeSpill(const CatalogOp& op) {
  std::string out = "spl ";
  AppendLenPrefixed(&out, op.name);
  out.push_back(' ');
  out.append(std::to_string(op.arity));
  out.push_back(' ');
  out.append(std::to_string(op.max_string_length));
  out.push_back(' ');
  out.append(std::to_string(op.tuple_count));
  out.push_back(' ');
  AppendLenPrefixed(&out, op.file);
  out.push_back('\n');
  return out;
}

}  // namespace

std::string EncodeOp(const CatalogOp& op) {
  switch (op.kind) {
    case CatalogOp::kPut: {
      std::string out = "put ";
      AppendLenPrefixed(&out, op.name);
      out.push_back(' ');
      out.append(std::to_string(op.arity));
      out.push_back(' ');
      out.append(std::to_string(op.tuples.size()));
      out.push_back('\n');
      for (const Tuple& t : op.tuples) AppendTuple(&out, t);
      AppendReqTag(&out, op);
      return out;
    }
    case CatalogOp::kInsert: {
      std::string out = EncodeInsert(op.name, op.tuples);
      AppendReqTag(&out, op);
      return out;
    }
    case CatalogOp::kDrop: {
      std::string out = EncodeDrop(op.name);
      AppendReqTag(&out, op);
      return out;
    }
    case CatalogOp::kFsa:
      return EncodeFsa(op.key, op.fsa_text);
    case CatalogOp::kSpill:
      return EncodeSpill(op);
    case CatalogOp::kReqId:
      return EncodeReqId(op);
    case CatalogOp::kLost:
      return EncodeLost(op);
    case CatalogOp::kStats:
      return EncodeStats(op);
  }
  return "";
}

Result<CatalogOp> DecodeOp(const std::string& payload) {
  Cursor cur(payload);
  CatalogOp op;
  STRDB_ASSIGN_OR_RETURN(std::string kind, cur.ReadWord());
  if (kind == "put" || kind == "ins") {
    op.kind = kind == "put" ? CatalogOp::kPut : CatalogOp::kInsert;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.name, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    if (op.kind == CatalogOp::kPut) {
      STRDB_ASSIGN_OR_RETURN(int64_t arity, cur.ReadNumber());
      if (arity < 0 || arity > 1'000'000) {
        return Status::DataLoss("op payload: absurd relation arity");
      }
      op.arity = static_cast<int>(arity);
      STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    }
    STRDB_ASSIGN_OR_RETURN(int64_t count, cur.ReadNumber());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
    // ReadNumber admits anything up to 2^40; a corrupt-but-checksummed
    // count that large would make the reserve() below throw bad_alloc
    // and crash recovery.  Every tuple line costs at least "u 0\n"
    // (4 bytes), so a count the remaining payload cannot hold is
    // kDataLoss, same as any other malformed byte.
    if (static_cast<size_t>(count) > cur.Remaining() / 4) {
      return Status::DataLoss("op payload: tuple count exceeds payload size");
    }
    op.tuples.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      STRDB_ASSIGN_OR_RETURN(Tuple t, cur.ReadTuple());
      op.tuples.push_back(std::move(t));
    }
  } else if (kind == "drop") {
    op.kind = CatalogOp::kDrop;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.name, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else if (kind == "fsa") {
    op.kind = CatalogOp::kFsa;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.key, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.fsa_text, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else if (kind == "spl") {
    op.kind = CatalogOp::kSpill;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.name, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t arity, cur.ReadNumber());
    if (arity < 0 || arity > 1'000'000) {
      return Status::DataLoss("op payload: absurd relation arity");
    }
    op.arity = static_cast<int>(arity);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t maxlen, cur.ReadNumber());
    op.max_string_length = static_cast<int>(maxlen);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.tuple_count, cur.ReadNumber());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.file, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else if (kind == "rid") {
    op.kind = CatalogOp::kReqId;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.req_client, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t seq, cur.ReadNumber());
    op.req_seq = static_cast<uint64_t>(seq);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else if (kind == "lost") {
    op.kind = CatalogOp::kLost;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.name, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t arity, cur.ReadNumber());
    if (arity < 0 || arity > 1'000'000) {
      return Status::DataLoss("op payload: absurd relation arity");
    }
    op.arity = static_cast<int>(arity);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.tuple_count, cur.ReadNumber());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t maxlen, cur.ReadNumber());
    op.max_string_length = static_cast<int>(maxlen);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.reason, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else if (kind == "stat") {
    op.kind = CatalogOp::kStats;
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.name, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.stats_text, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  } else {
    return Status::DataLoss("op payload: unknown op kind '" + kind + "'");
  }
  // Mutations may carry one trailing idempotent-request tag.
  if (!cur.AtEnd() &&
      (op.kind == CatalogOp::kPut || op.kind == CatalogOp::kInsert ||
       op.kind == CatalogOp::kDrop)) {
    STRDB_ASSIGN_OR_RETURN(std::string tag, cur.ReadWord());
    if (tag != "req") {
      return Status::DataLoss("op payload: trailing bytes after op");
    }
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(op.req_client, cur.ReadLenPrefixed());
    STRDB_RETURN_IF_ERROR(cur.ExpectChar(' '));
    STRDB_ASSIGN_OR_RETURN(int64_t seq, cur.ReadNumber());
    op.req_seq = static_cast<uint64_t>(seq);
    STRDB_RETURN_IF_ERROR(cur.ExpectChar('\n'));
  }
  if (!cur.AtEnd()) {
    return Status::DataLoss("op payload: trailing bytes after op");
  }
  return op;
}

Status ApplyOp(const CatalogOp& op, const Alphabet& alphabet, Database* db,
               std::map<std::string, std::string>* automata) {
  switch (op.kind) {
    case CatalogOp::kPut:
      return db->Put(op.name, op.arity, op.tuples);
    case CatalogOp::kInsert:
      return db->InsertTuples(op.name, op.tuples);
    case CatalogOp::kDrop:
      return db->Remove(op.name);
    case CatalogOp::kFsa: {
      STRDB_RETURN_IF_ERROR(DeserializeFsa(alphabet, op.fsa_text).status());
      (*automata)[op.key] = op.fsa_text;
      return Status::OK();
    }
    case CatalogOp::kSpill:
      return Status::Internal(
          "spill op requires storage context (CatalogStore handles it)");
    case CatalogOp::kReqId:
      return Status::Internal(
          "reqid op requires storage context (CatalogStore handles it)");
    case CatalogOp::kLost:
      return Status::Internal(
          "lost op requires storage context (CatalogStore handles it)");
    case CatalogOp::kStats:
      return Status::Internal(
          "stats op requires storage context (CatalogStore handles it)");
  }
  return Status::Internal("unreachable op kind");
}

}  // namespace strdb
