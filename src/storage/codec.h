#ifndef STRDB_STORAGE_CODEC_H_
#define STRDB_STORAGE_CODEC_H_

#include <map>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"
#include "relational/relation.h"

namespace strdb {

// One catalog mutation, the unit both the WAL and the snapshot are made
// of (a snapshot is just the canonical op sequence that rebuilds the
// catalog: one kPut per relation, one kFsa per cached automaton).
struct CatalogOp {
  enum Kind {
    kPut,     // create/replace a relation with its tuples
    kInsert,  // add tuples to an existing relation
    kDrop,    // remove a relation
    kFsa,     // install a cached automaton (serialized text) under a key
    kSpill,   // snapshot-only: relation lives out-of-core in a heap file
    kReqId,   // snapshot-only: one client's highest applied request seq
    kLost,    // snapshot-only: relation quarantined after scrub/corruption
    kStats,   // snapshot-only: persisted statistics of one relation
  };

  Kind kind = kPut;
  std::string name;           // kPut / kInsert / kDrop / kSpill / kLost
  int arity = 0;              // kPut / kSpill / kLost
  std::vector<Tuple> tuples;  // kPut / kInsert
  std::string key;            // kFsa: artifact-cache key
  std::string fsa_text;       // kFsa: SerializeFsa output (self-checksummed)
  // kSpill: expected shape of the heap file (cross-checked against its
  // header at recovery) and its basename inside the store directory.
  int64_t tuple_count = 0;
  int max_string_length = 0;
  std::string file;
  // Idempotent-request tag.  A mutation op (kPut/kInsert/kDrop) may
  // carry the client id + sequence number of the request that produced
  // it; WAL replay rebuilds the per-client applied-seq window from
  // these, so a retried request after a lost ack is applied exactly
  // once across crashes.  kReqId side-ops persist the same window
  // through snapshots (one op per client).  Empty client = untagged.
  std::string req_client;     // any mutation (tag) / kReqId
  uint64_t req_seq = 0;       // any mutation (tag) / kReqId
  std::string reason;         // kLost: human-readable quarantine cause
  // kStats: EncodeRelationStats output for relation `name` (itself
  // length-prefixed on the wire, so its embedded newlines are safe).
  std::string stats_text;
};

// Text encoding, binary-safe via length prefixes: every caller-chosen
// string (relation names, tuple components, cache keys — which embed
// newlines) is written as "<len>:<bytes>", so no escaping is needed and
// a decoder can never over-read.
//
//   put <len>:<name> <arity> <ntuples>\n  then per tuple:  u <k> <len>:<s>...\n
//   ins <len>:<name> <ntuples>\n          then tuple lines as above
//   drop <len>:<name>\n
//   fsa <len>:<key> <len>:<serialized-text>\n
//   spl <len>:<name> <arity> <maxlen> <ntuples> <len>:<heap-file>\n
//   rid <len>:<client> <seq>\n
//   lost <len>:<name> <arity> <ntuples> <maxlen> <len>:<reason>\n
//   stat <len>:<name> <len>:<encoded-stats>\n
//
// A mutation op (put/ins/drop) may additionally end with one trailing
//   req <len>:<client> <seq>\n
// line carrying its idempotent-request tag.
std::string EncodePut(const std::string& name, const StringRelation& relation);
std::string EncodeInsert(const std::string& name,
                         const std::vector<Tuple>& tuples);
std::string EncodeDrop(const std::string& name);
std::string EncodeFsa(const std::string& key, const std::string& fsa_text);

// Appends the trailing idempotent-request tag line ("req <len>:<client>
// <seq>\n") to an already-encoded mutation payload.  No-op when
// `client` is empty.
void AppendReqTagLine(std::string* payload, const std::string& client,
                      uint64_t seq);

std::string EncodeOp(const CatalogOp& op);

// Decodes one op; kDataLoss on any malformed byte (the caller treats the
// enclosing record as corrupt).
Result<CatalogOp> DecodeOp(const std::string& payload);

// Applies `op` to the in-memory catalog.  kFsa ops verify the embedded
// automaton against `alphabet` (version + checksum + body) before
// installing, so a corrupt machine can never re-enter the system through
// recovery.  kSpill needs storage context (a buffer pool and the store
// directory) and is handled by CatalogStore itself; passing one here is
// kInternal.
Status ApplyOp(const CatalogOp& op, const Alphabet& alphabet, Database* db,
               std::map<std::string, std::string>* automata);

}  // namespace strdb

#endif  // STRDB_STORAGE_CODEC_H_
