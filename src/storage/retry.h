#ifndef STRDB_STORAGE_RETRY_H_
#define STRDB_STORAGE_RETRY_H_

#include <cstdint>
#include <functional>

#include "core/io/env.h"
#include "core/status.h"

namespace strdb {

// Bounded retry with exponential backoff for transient I/O faults.
struct RetryPolicy {
  int max_retries = 5;              // attempts beyond the first
  int64_t backoff_initial_ms = 1;   // doubles per retry: 1, 2, 4, ...
  int64_t backoff_cap_ms = 1000;    // per-sleep ceiling after jitter
  // Total sleep budget across all retries of one call; once the next
  // backoff would push past it the call gives up with the last
  // transient status instead of sleeping.  0 disables the cap.
  int64_t total_backoff_cap_ms = 0;
  // Equal-jitter fraction in [0, 1): each sleep is drawn uniformly from
  // [backoff*(1-jitter), backoff*(1+jitter)] so a thundering herd of
  // retriers decorrelates.  0 keeps the exact doubling sequence.
  double jitter = 0.25;
  // Seed for the jitter draw.  The sequence of sleeps is a pure
  // function of (policy, seed), which is what makes backoff testable:
  // same seed, same sleeps.
  uint64_t jitter_seed = 0x5eedfu;
};

// Runs `fn`; while it returns kUnavailable (the transient class — see
// Env's error taxonomy) and the budget allows, sleeps through
// `env->SleepMs` and retries.  Other codes return immediately.  Every
// retry increments the process-wide "storage.io.retries" counter and
// `*retry_count` (when non-null), so recovery reports and the shell's
// `metrics` command can show how hard the disk fought back.  Exhausting
// either budget (attempts or total backoff time) bumps
// "storage.io.retry_giveups" and returns the last transient status.
//
// The retried unit must be a SINGLE idempotent-or-framed Env call:
// retrying a composite sequence could duplicate a WAL append.
Status RetryIo(Env* env, const RetryPolicy& policy, int64_t* retry_count,
               const std::function<Status()>& fn);

}  // namespace strdb

#endif  // STRDB_STORAGE_RETRY_H_
