#ifndef STRDB_STORAGE_RETRY_H_
#define STRDB_STORAGE_RETRY_H_

#include <cstdint>
#include <functional>

#include "core/io/env.h"
#include "core/status.h"

namespace strdb {

// Bounded retry with exponential backoff for transient I/O faults.
struct RetryPolicy {
  int max_retries = 5;              // attempts beyond the first
  int64_t backoff_initial_ms = 1;   // doubles per retry: 1, 2, 4, ...
};

// Runs `fn`; while it returns kUnavailable (the transient class — see
// Env's error taxonomy) and the budget allows, sleeps through
// `env->SleepMs` and retries.  Other codes return immediately.  Every
// retry increments the process-wide "storage.io.retries" counter and
// `*retry_count` (when non-null), so recovery reports and the shell's
// `metrics` command can show how hard the disk fought back.
//
// The retried unit must be a SINGLE idempotent-or-framed Env call:
// retrying a composite sequence could duplicate a WAL append.
Status RetryIo(Env* env, const RetryPolicy& policy, int64_t* retry_count,
               const std::function<Status()>& fn);

}  // namespace strdb

#endif  // STRDB_STORAGE_RETRY_H_
