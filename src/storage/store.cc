#include "storage/store.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "core/io/crc32.h"
#include "core/metrics.h"
#include "fsa/serialize.h"
#include "storage/codec.h"
#include "storage/snapshot.h"

namespace strdb {

namespace {

struct StoreMetrics {
  Counter* commits;
  Counter* checkpoints;
  Counter* recoveries;
  Counter* replayed_records;
  Counter* truncated_bytes;
  Counter* scrub_passes;
  Counter* scrub_pages_verified;
  Counter* scrub_crc_failures;
  Counter* scrub_quarantines;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return StoreMetrics{
        reg.GetCounter("storage.commits"),
        reg.GetCounter("storage.checkpoints"),
        reg.GetCounter("storage.recoveries"),
        reg.GetCounter("storage.recovery.replayed_records"),
        reg.GetCounter("storage.recovery.truncated_bytes"),
        reg.GetCounter("storage.scrub.passes"),
        reg.GetCounter("storage.scrub.pages_verified"),
        reg.GetCounter("storage.scrub.crc_failures"),
        reg.GetCounter("storage.scrub.quarantines"),
    };
  }();
  return metrics;
}

// Parses the CURRENT file: a single decimal generation number.
Result<int64_t> ParseCurrent(const std::string& content) {
  int64_t value = 0;
  bool any = false;
  for (char c : content) {
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      return Status::DataLoss("CURRENT file is corrupt: '" + content + "'");
    }
    value = value * 10 + (c - '0');
    any = true;
    if (value > (int64_t{1} << 40)) {
      return Status::DataLoss("CURRENT file generation out of range");
    }
  }
  if (!any) return Status::DataLoss("CURRENT file is empty");
  return value;
}

int64_t CountTuples(const Database& db) {
  int64_t n = 0;
  for (const auto& [name, rel] : db.relations()) n += rel.size();
  return n;
}

// Rough in-memory footprint of a relation, the quantity the spill
// threshold compares against: string payloads plus container overhead.
int64_t ApproxBytes(const StringRelation& rel) {
  int64_t bytes = 0;
  for (const Tuple& t : rel.tuples()) {
    bytes += 32;
    for (const std::string& s : t) {
      bytes += 32 + static_cast<int64_t>(s.size());
    }
  }
  return bytes;
}

// Stand-in for a quarantined relation: keeps the name (and the shape
// the snapshot recorded) in the catalog, but every read is a typed
// kDataLoss — the failure stays scoped to this relation instead of
// taking the whole store down.
class LostTupleSource : public TupleSource {
 public:
  LostTupleSource(std::string name, int arity, int64_t tuple_count,
                  int max_string_length, std::string reason)
      : name_(std::move(name)),
        arity_(arity),
        tuple_count_(tuple_count),
        max_string_length_(max_string_length),
        reason_(std::move(reason)) {}

  int arity() const override { return arity_; }
  int64_t tuple_count() const override { return tuple_count_; }
  int max_string_length() const override { return max_string_length_; }

  Status Scan(const std::function<Status(const std::vector<Tuple>&)>&)
      const override {
    return Status::DataLoss("relation '" + name_ +
                            "' is quarantined: " + reason_);
  }

 private:
  std::string name_;
  int arity_;
  int64_t tuple_count_;
  int max_string_length_;
  std::string reason_;
};

// Verifies the crc32 trailer of a snapshot file's bytes (the same check
// ReadSnapshot performs before parsing anything).
bool SnapshotChecksumOk(const std::string& data, std::string* why) {
  size_t crc_pos = data.rfind("\ncrc32 ");
  if (crc_pos == std::string::npos) {
    *why = "missing crc32 trailer (truncated?)";
    return false;
  }
  std::string hex = data.substr(crc_pos + 7);
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(hex, &stated)) {
    *why = "malformed crc32 trailer";
    return false;
  }
  if (Crc32(data.substr(0, crc_pos + 1)) != stated) {
    *why = "checksum mismatch";
    return false;
  }
  return true;
}

// CRC-walks the raw bytes of a paged file.  Returns the number of pages
// verified before the first failure; `why` is set (and false returned)
// on any bad page or ragged size.
bool VerifyPagedBytes(const std::string& content, int64_t* pages_ok,
                      std::string* why) {
  *pages_ok = 0;
  if (content.size() % static_cast<size_t>(kPageSize) != 0) {
    *why = "file size " + std::to_string(content.size()) +
           " is not a whole number of pages";
    return false;
  }
  int64_t pages = static_cast<int64_t>(content.size()) / kPageSize;
  for (int64_t i = 0; i < pages; ++i) {
    const char* page = content.data() + i * kPageSize;
    const unsigned char* t =
        reinterpret_cast<const unsigned char*>(page + kPagePayload);
    uint32_t stated = static_cast<uint32_t>(t[0]) |
                      (static_cast<uint32_t>(t[1]) << 8) |
                      (static_cast<uint32_t>(t[2]) << 16) |
                      (static_cast<uint32_t>(t[3]) << 24);
    if (Crc32(std::string(page, static_cast<size_t>(kPagePayload))) !=
        stated) {
      *why = "page " + std::to_string(i) + " checksum mismatch";
      return false;
    }
    ++*pages_ok;
  }
  return true;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "recovered generation " << generation << ": " << relations
      << " relation(s), " << tuples << " tuple(s), " << automata
      << " cached automaton(a)";
  if (snapshot_loaded) out << "; snapshot loaded";
  out << "; wal: " << wal_records_replayed << " record(s) replayed";
  if (wal_bytes_truncated > 0) {
    out << ", " << wal_bytes_truncated << " torn byte(s) truncated ("
        << wal_tail_error << ")";
  }
  if (wal_records_dropped > 0) {
    out << ", " << wal_records_dropped << " intact record(s) dropped";
  }
  if (spilled_relations > 0) {
    out << "; " << spilled_relations << " spilled relation(s) ("
        << spilled_tuples << " tuple(s)) recovered as paged heaps";
  }
  if (quarantined_relations > 0) {
    out << "; " << quarantined_relations
        << " relation(s) quarantined (heap missing/corrupt)";
  }
  if (req_clients > 0) {
    out << "; " << req_clients << " request-id window(s)";
  }
  if (io_retries > 0) out << "; " << io_retries << " transient I/O retry(ies)";
  return out.str();
}

std::string ScrubReport::ToString() const {
  std::ostringstream out;
  out << "scrub: " << pages_verified << " page(s) verified across "
      << heaps_scanned << " heap(s)";
  if (!snapshot_ok) out << "; snapshot FAILED";
  if (!wal_ok) out << "; wal FAILED";
  if (crc_failures > 0) out << "; " << crc_failures << " crc failure(s)";
  for (const std::string& name : quarantined) {
    out << "; quarantined '" << name << "'";
  }
  for (const std::string& err : errors) out << "; " << err;
  return out.str();
}

CatalogStore::CatalogStore(std::string dir, const Alphabet& alphabet,
                           const StoreOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Posix()),
      db_(alphabet) {
  BufferPoolOptions pool_options;
  pool_options.env = env_;
  pool_options.capacity_bytes = options.pager_capacity_bytes;
  pool_ = std::make_shared<BufferPool>(pool_options);
}

CatalogStore::~CatalogStore() { Close(); }

std::string CatalogStore::SnapPath(int64_t gen) const {
  return dir_ + "/snap-" + std::to_string(gen);
}

std::string CatalogStore::WalPath(int64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen);
}

int64_t CatalogStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::shared_ptr<const Database> CatalogStore::SnapshotDb() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const PagedSet> CatalogStore::PagedDb() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return paged_snapshot_;
}

void CatalogStore::SnapshotState(std::shared_ptr<const Database>* db,
                                 std::shared_ptr<const PagedSet>* paged) const {
  SnapshotState(db, paged, nullptr);
}

void CatalogStore::SnapshotState(std::shared_ptr<const Database>* db,
                                 std::shared_ptr<const PagedSet>* paged,
                                 std::shared_ptr<const StatsMap>* stats) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  *db = snapshot_;
  *paged = paged_snapshot_;
  if (stats != nullptr) *stats = stats_snapshot_;
}

std::shared_ptr<const StatsMap> CatalogStore::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return stats_snapshot_;
}

void CatalogStore::PublishSnapshotLocked() {
  // Copy outside snapshot_mu_ so readers grabbing the previous snapshot
  // only ever wait behind a pointer swap, never behind the copy.
  auto fresh = std::make_shared<const Database>(db_);
  auto fresh_paged = std::make_shared<const PagedSet>(paged_);
  auto fresh_stats = std::make_shared<const StatsMap>(stats_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
  paged_snapshot_ = std::move(fresh_paged);
  stats_snapshot_ = std::move(fresh_stats);
}

Status CatalogStore::MaterializePagedLocked(const std::string& name) {
  auto it = paged_.find(name);
  if (it == paged_.end()) {
    return Status::Internal("relation '" + name + "' is not paged");
  }
  STRDB_ASSIGN_OR_RETURN(StringRelation rel, it->second->Materialize());
  STRDB_RETURN_IF_ERROR(db_.Put(name, std::move(rel)));
  DiscardPagedLocked(name);
  return Status::OK();
}

void CatalogStore::DiscardPagedLocked(const std::string& name) {
  auto it = spill_ops_.find(name);
  if (it != spill_ops_.end()) {
    // The live snapshot still references the file; it only becomes
    // removable once the next checkpoint's snapshot stops mentioning it.
    garbage_heaps_.push_back(it->second.file);
    spill_ops_.erase(it);
  }
  // A lost relation has no file to garbage-collect (it was moved aside
  // when quarantined); dropping or replacing it just clears the marker.
  lost_ops_.erase(name);
  paged_.erase(name);
}

bool CatalogStore::AlreadyAppliedLocked(const ReqId& req) const {
  if (!req.valid()) return false;
  auto it = applied_reqs_.find(req.client);
  return it != applied_reqs_.end() && it->second >= req.seq;
}

void CatalogStore::RecordReqLocked(const ReqId& req) {
  if (!req.valid()) return;
  uint64_t& cur = applied_reqs_[req.client];
  if (req.seq > cur) cur = req.seq;
}

void CatalogStore::MarkLostLocked(const std::string& name, int arity,
                                  int64_t tuple_count, int max_string_length,
                                  const std::string& reason) {
  auto it = spill_ops_.find(name);
  if (it != spill_ops_.end()) {
    if (tuple_count == 0) tuple_count = it->second.tuple_count;
    if (max_string_length == 0) max_string_length = it->second.max_string_length;
    if (arity == 0) arity = it->second.arity;
    spill_ops_.erase(it);
  }
  CatalogOp op;
  op.kind = CatalogOp::kLost;
  op.name = name;
  op.arity = arity;
  op.tuple_count = tuple_count;
  op.max_string_length = max_string_length;
  op.reason = reason;
  lost_ops_[name] = op;
  paged_[name] = std::make_shared<LostTupleSource>(
      name, arity, tuple_count, max_string_length, reason);
  // A quarantined relation answers nothing, so there is nothing its
  // statistics could usefully describe.
  stats_.erase(name);
}

std::map<std::string, std::string> CatalogStore::LostRelations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [name, op] : lost_ops_) out[name] = op.reason;
  return out;
}

Result<std::unique_ptr<CatalogStore>> CatalogStore::Open(
    const std::string& dir, const Alphabet& alphabet,
    const StoreOptions& options, RecoveryReport* report) {
  std::unique_ptr<CatalogStore> store(
      new CatalogStore(dir, alphabet, options));
  RecoveryReport local;
  STRDB_RETURN_IF_ERROR(store->OpenInternal(report ? report : &local));
  return store;
}

Status CatalogStore::OpenInternal(RecoveryReport* report) {
  *report = RecoveryReport{};
  Metrics().recoveries->Increment();
  STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                [&] { return env_->CreateDir(dir_); }));

  // Which generation is live?
  std::string current_path = dir_ + "/CURRENT";
  if (env_->FileExists(current_path)) {
    report->opened_existing = true;
    std::string content;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto read = env_->ReadFile(current_path);
      if (!read.ok()) return read.status();
      content = std::move(*read);
      return Status::OK();
    }));
    STRDB_ASSIGN_OR_RETURN(generation_, ParseCurrent(content));
  }
  report->generation = generation_;

  // Sweep leftovers from interrupted checkpoints: temp files and
  // snapshots/WALs of generations CURRENT never committed.  Best effort —
  // an orphan costs disk space, not correctness.  quarantine-* files are
  // deliberately spared: they are the forensic record of scrubbed-out
  // corruption.
  auto listed = env_->ListDir(dir_);
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      bool orphan = false;
      if (name.rfind("tmp-", 0) == 0) {
        orphan = true;
      } else if (name.rfind("snap-", 0) == 0) {
        orphan = name != "snap-" + std::to_string(generation_);
      } else if (name.rfind("wal-", 0) == 0) {
        orphan = name != "wal-" + std::to_string(generation_);
      }
      if (orphan) env_->Remove(dir_ + "/" + name);
    }
  }

  // Load the live snapshot, if any.  Side ops (kSpill/kReqId/kLost)
  // come back separately: only the store knows what to do with them.
  std::vector<CatalogOp> spills;
  if (generation_ > 0) {
    STRDB_RETURN_IF_ERROR(ReadSnapshot(env_, SnapPath(generation_), &db_,
                                       &automata_, options_.retry,
                                       &io_retries_, &spills));
    report->snapshot_loaded = true;
  }

  // Open every spilled relation and cross-check the heap header against
  // the snapshot's record of it.  A heap that is missing or corrupt is
  // quarantined — moved aside and answered with kDataLoss — instead of
  // failing the whole catalog: every other relation keeps its data.
  std::set<std::string> referenced_heaps;
  for (CatalogOp& op : spills) {
    if (op.kind == CatalogOp::kReqId) {
      uint64_t& cur = applied_reqs_[op.req_client];
      if (op.req_seq > cur) cur = op.req_seq;
      continue;
    }
    if (op.kind == CatalogOp::kStats) {
      // Statistics are advisory: an op that does not decode is dropped
      // (the relation just plans without stats, or gets them recomputed
      // below) instead of failing recovery.
      Result<RelationStats> decoded = DecodeRelationStats(op.stats_text);
      if (decoded.ok()) stats_[op.name] = std::move(*decoded);
      continue;
    }
    if (op.kind == CatalogOp::kLost) {
      if (db_.Has(op.name) || paged_.count(op.name) > 0) {
        return Status::DataLoss("snapshot lists relation '" + op.name +
                                "' twice");
      }
      MarkLostLocked(op.name, op.arity, op.tuple_count, op.max_string_length,
                     op.reason);
      continue;
    }
    referenced_heaps.insert(op.file);
    if (db_.Has(op.name) || paged_.count(op.name) > 0) {
      return Status::DataLoss("snapshot lists relation '" + op.name +
                              "' twice");
    }
    auto opened = PagedHeap::Open(pool_, dir_ + "/" + op.file);
    std::string bad;
    if (!opened.ok()) {
      if (opened.status().code() == StatusCode::kDataLoss ||
          opened.status().code() == StatusCode::kNotFound) {
        bad = opened.status().ToString();
      } else {
        return opened.status();  // infra failure (e.g. transient I/O)
      }
    } else {
      const PagedHeap& heap = **opened;
      if (heap.arity() != op.arity || heap.tuple_count() != op.tuple_count ||
          heap.max_string_length() != op.max_string_length) {
        bad = "heap file '" + op.file +
              "' does not match snapshot record for '" + op.name + "'";
      }
    }
    if (!bad.empty()) {
      env_->Rename(dir_ + "/" + op.file, dir_ + "/quarantine-" + op.file);
      MarkLostLocked(op.name, op.arity, op.tuple_count, op.max_string_length,
                     "quarantined at open: " + bad);
      report->quarantined_relations++;
      Metrics().scrub_quarantines->Increment();
      continue;
    }
    report->spilled_relations++;
    report->spilled_tuples += op.tuple_count;
    paged_[op.name] = *opened;
    spill_ops_[op.name] = std::move(op);
  }

  // Sweep heap files the live snapshot does not reference (a crashed
  // checkpoint's half-spilled output, or heaps whose relation was later
  // dropped).  Best effort, like the generation sweep above.
  auto heap_listing = env_->ListDir(dir_);
  if (heap_listing.ok()) {
    for (const std::string& name : *heap_listing) {
      if (name.rfind("heap-", 0) == 0 && referenced_heaps.count(name) == 0) {
        env_->Remove(dir_ + "/" + name);
      }
    }
  }

  // Replay the WAL, salvaging whatever prefix survived.
  std::string wal_path = WalPath(generation_);
  int64_t wal_committed_bytes = 0;
  if (env_->FileExists(wal_path)) {
    report->opened_existing = true;
    STRDB_ASSIGN_OR_RETURN(
        WalSalvage salvage,
        ReadWal(env_, wal_path, options_.retry, &io_retries_));
    int64_t cut_at = salvage.valid_bytes;
    std::string cut_why = salvage.tail_error;
    for (const WalRecord& record : salvage.records) {
      Result<CatalogOp> op = DecodeOp(record.payload);
      Status applied;
      // For kInsert: the subset of the batch not already present before
      // the op applies — the tuples the set-semantics insert will
      // actually add, which is what the stats update below must count.
      std::vector<Tuple> fresh_inserts;
      if (!op.ok()) {
        applied = op.status();
      } else if (op->kind == CatalogOp::kDrop && paged_.count(op->name) > 0) {
        DiscardPagedLocked(op->name);
        applied = Status::OK();
      } else if (op->kind == CatalogOp::kLost) {
        // A quarantine committed before the crash: the heap file was
        // already moved aside, so just (re)install the marker.
        if (paged_.count(op->name) > 0) {
          spill_ops_.erase(op->name);
          paged_.erase(op->name);
        }
        MarkLostLocked(op->name, op->arity, op->tuple_count,
                       op->max_string_length, op->reason);
        applied = Status::OK();
      } else {
        // A put replaces a spilled relation outright; an insert must
        // first pull it back in memory.  Heap I/O failing here is an
        // open failure (the snapshot itself is unusable), not a corrupt
        // WAL tail to trim.
        if (op->kind == CatalogOp::kPut && paged_.count(op->name) > 0) {
          DiscardPagedLocked(op->name);
        } else if (op->kind == CatalogOp::kInsert &&
                   paged_.count(op->name) > 0) {
          STRDB_RETURN_IF_ERROR(MaterializePagedLocked(op->name));
        }
        if (op->kind == CatalogOp::kInsert) {
          auto existing = db_.Get(op->name);
          if (existing.ok()) {
            std::set<Tuple> batch_seen;
            for (const Tuple& t : op->tuples) {
              if (!(*existing)->Contains(t) && batch_seen.insert(t).second) {
                fresh_inserts.push_back(t);
              }
            }
          }
        }
        applied = ApplyOp(*op, db_.alphabet(), &db_, &automata_);
      }
      if (!applied.ok()) {
        // A record that frames correctly but does not decode or apply
        // cannot have been produced by a healthy writer against the
        // state the log built: treat it — and everything after it — as
        // the corrupt tail.
        cut_at = record.offset;
        cut_why = "record replay failed: " + applied.ToString();
        report->wal_records_dropped =
            static_cast<int64_t>(salvage.records.size()) -
            report->wal_records_replayed;
        break;
      }
      // Rebuild the idempotent-request window from mutation tags, so a
      // retry that raced the crash still dedups after recovery.
      if (op.ok() && !op->req_client.empty()) {
        uint64_t& cur = applied_reqs_[op->req_client];
        if (op->req_seq > cur) cur = op->req_seq;
      }
      // Rebuild statistics alongside the catalog, the same incremental
      // way the live writer maintained them — so a reopened store's
      // stats equal the ones a non-crashing run would hold.
      if (op.ok()) {
        switch (op->kind) {
          case CatalogOp::kPut:
            stats_[op->name] = ComputeRelationStats(op->arity, op->tuples);
            break;
          case CatalogOp::kInsert: {
            auto sit = stats_.find(op->name);
            if (sit != stats_.end()) {
              AddTuplesToStats(&sit->second, fresh_inserts);
            }
            break;
          }
          case CatalogOp::kDrop:
            stats_.erase(op->name);
            break;
          default:
            break;  // kLost handled by MarkLostLocked; others carry none
        }
      }
      ++report->wal_records_replayed;
    }
    if (cut_at < salvage.file_bytes) {
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
        return env_->Truncate(wal_path, cut_at);
      }));
    }
    report->wal_bytes_truncated = salvage.file_bytes - cut_at;
    report->wal_tail_error = cut_why;
    wal_committed_bytes = cut_at;
  }

  // Reconcile statistics with the recovered catalog: inline relations
  // missing stats (a store from before stats existed, or a dropped
  // kStats op) are recomputed from their tuples; entries whose relation
  // no longer exists are pruned.  Spilled relations without stats stay
  // without — recomputing would mean scanning the whole heap, and the
  // planner degrades gracefully to the heap's tuple count.
  for (const auto& [name, rel] : db_.relations()) {
    if (stats_.count(name) == 0) stats_[name] = ComputeRelationStats(rel);
  }
  for (auto it = stats_.begin(); it != stats_.end();) {
    if (!db_.Has(it->first) && spill_ops_.count(it->first) == 0) {
      it = stats_.erase(it);
    } else {
      ++it;
    }
  }

  // Reopen the (repaired) log for appending.
  wal_ = std::make_unique<WalWriter>(env_, wal_path, options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/false, &io_retries_));
  wal_->ResetCommittedBytes(wal_committed_bytes);

  report->relations = static_cast<int64_t>(db_.relations().size());
  report->tuples = CountTuples(db_);
  report->automata = static_cast<int64_t>(automata_.size());
  report->req_clients = static_cast<int64_t>(applied_reqs_.size());
  report->io_retries = io_retries_;
  Metrics().replayed_records->Increment(report->wal_records_replayed);
  Metrics().truncated_bytes->Increment(report->wal_bytes_truncated);
  PublishSnapshotLocked();  // Open holds the store exclusively

  if (options_.scrub_interval_ms > 0) {
    scrub_thread_ = std::thread([this] { ScrubThreadMain(); });
  }
  return Status::OK();
}

Status CatalogStore::CommitPayload(const std::string& payload) {
  if (wal_ == nullptr) return Status::Internal("store is closed");
  STRDB_RETURN_IF_ERROR(wal_->Append(payload));
  Metrics().commits->Increment();
  return Status::OK();
}

Status CatalogStore::PutRelation(const std::string& name, int arity,
                                 std::vector<Tuple> tuples) {
  return PutRelation(name, arity, std::move(tuples), ReqId{}, nullptr);
}

Status CatalogStore::PutRelation(const std::string& name, int arity,
                                 std::vector<Tuple> tuples, const ReqId& req,
                                 bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  // Build and validate before logging, so the WAL only ever sees ops
  // that apply cleanly.
  STRDB_ASSIGN_OR_RETURN(StringRelation rel,
                         StringRelation::Create(arity, std::move(tuples)));
  for (const Tuple& t : rel.tuples()) {
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  std::string payload = EncodePut(name, rel);
  AppendReqTagLine(&payload, req.client, req.seq);
  RelationStats stats = ComputeRelationStats(rel);
  STRDB_RETURN_IF_ERROR(CommitPayload(payload));
  if (paged_.count(name) > 0) DiscardPagedLocked(name);  // put replaces
  STRDB_RETURN_IF_ERROR(db_.Put(name, std::move(rel)));
  stats_[name] = std::move(stats);
  RecordReqLocked(req);
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InsertTuples(const std::string& name,
                                  std::vector<Tuple> tuples) {
  return InsertTuples(name, std::move(tuples), ReqId{}, nullptr);
}

Status CatalogStore::InsertTuples(const std::string& name,
                                  std::vector<Tuple> tuples, const ReqId& req,
                                  bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  // The dedup check comes before validation: a retried request whose
  // first application already committed must succeed even if the state
  // has since moved on (e.g. the relation was later dropped).
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  // Inserting into a spilled relation pulls it back in memory first (it
  // re-spills at the next checkpoint if still over threshold).  Done
  // before the WAL commit so the durable order matches the in-memory
  // order a replay reproduces.
  if (paged_.count(name) > 0) {
    STRDB_RETURN_IF_ERROR(MaterializePagedLocked(name));
  }
  STRDB_ASSIGN_OR_RETURN(const StringRelation* rel, db_.Get(name));
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != rel->arity()) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(t.size()) +
          " differs from relation arity " + std::to_string(rel->arity()));
    }
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  std::string payload = EncodeInsert(name, tuples);
  AppendReqTagLine(&payload, req.client, req.seq);
  // Statistics only count tuples the set-semantics insert will actually
  // add, so incremental maintenance stays exactly equal to recomputing
  // from the relation (the planner differential target pins this).
  std::vector<Tuple> fresh;
  {
    std::set<Tuple> batch_seen;
    for (const Tuple& t : tuples) {
      if (!rel->Contains(t) && batch_seen.insert(t).second) fresh.push_back(t);
    }
  }
  STRDB_RETURN_IF_ERROR(CommitPayload(payload));
  auto sit = stats_.find(name);
  if (sit != stats_.end()) {
    AddTuplesToStats(&sit->second, fresh);
  } else {
    // No stats yet (store predates them): seed from the full relation,
    // which after this insert means old tuples + the new batch.
    RelationStats seeded = ComputeRelationStats(*rel);
    AddTuplesToStats(&seeded, fresh);
    stats_[name] = std::move(seeded);
  }
  STRDB_RETURN_IF_ERROR(db_.InsertTuples(name, std::move(tuples)));
  RecordReqLocked(req);
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::DropRelation(const std::string& name) {
  return DropRelation(name, ReqId{}, nullptr);
}

Status CatalogStore::DropRelation(const std::string& name, const ReqId& req,
                                  bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  bool paged = paged_.count(name) > 0;
  if (!paged && !db_.Has(name)) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  std::string payload = EncodeDrop(name);
  AppendReqTagLine(&payload, req.client, req.seq);
  STRDB_RETURN_IF_ERROR(CommitPayload(payload));
  if (paged) {
    DiscardPagedLocked(name);
  } else {
    STRDB_RETURN_IF_ERROR(db_.Remove(name));
  }
  stats_.erase(name);
  RecordReqLocked(req);
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InstallAutomaton(const std::string& key, const Fsa& fsa) {
  return InstallAutomatonText(key, SerializeFsa(fsa));
}

Status CatalogStore::InstallAutomatonText(const std::string& key,
                                          std::string fsa_text) {
  // Verify before persisting: the WAL must never carry an automaton that
  // will not deserialize on recovery.
  STRDB_RETURN_IF_ERROR(DeserializeFsa(db_.alphabet(), fsa_text).status());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = automata_.find(key);
  if (it != automata_.end() && it->second == fsa_text) return Status::OK();
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeFsa(key, fsa_text)));
  automata_[key] = std::move(fsa_text);
  return Status::OK();
}

Status CatalogStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::Internal("store is closed");
  int64_t next = generation_ + 1;

  // 0. Spill phase: write heap files for over-threshold relations, each
  // committed tmp → fsync → rename *before* the snapshot that references
  // them exists.  A crash anywhere leaves the old generation live and
  // the new heap files as unreferenced orphans for Open() to sweep.
  // Nothing in db_/paged_ mutates until the whole checkpoint commits.
  std::vector<CatalogOp> new_spill_ops;
  std::map<std::string, std::shared_ptr<const TupleSource>> new_paged;
  if (options_.spill_threshold_bytes > 0) {
    int64_t seq = 0;
    for (const auto& [name, rel] : db_.relations()) {
      if (ApproxBytes(rel) < options_.spill_threshold_bytes) continue;
      CatalogOp op;
      op.kind = CatalogOp::kSpill;
      op.name = name;
      op.arity = rel.arity();
      op.max_string_length = rel.MaxStringLength();
      op.tuple_count = rel.size();
      op.file = "heap-" + std::to_string(next) + "-" + std::to_string(seq++);
      std::string tmp = dir_ + "/tmp-" + op.file;
      STRDB_RETURN_IF_ERROR(WritePagedHeap(env_, tmp, rel));
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
        return env_->Rename(tmp, dir_ + "/" + op.file);
      }));
      new_spill_ops.push_back(std::move(op));
    }
    if (!new_spill_ops.empty()) {
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                    [&] { return env_->SyncDir(dir_); }));
      for (const CatalogOp& op : new_spill_ops) {
        STRDB_ASSIGN_OR_RETURN(
            std::shared_ptr<const PagedHeap> heap,
            PagedHeap::Open(pool_, dir_ + "/" + op.file));
        new_paged[op.name] = heap;
      }
    }
  }

  // The snapshot carries still-spilled relations as kSpill records and
  // the newly spilled ones the same way — their tuples stay out of it.
  // Lost (quarantined) relations ride as kLost markers, and the
  // idempotent-request window as one kReqId record per client.
  std::vector<CatalogOp> spills;
  spills.reserve(spill_ops_.size() + new_spill_ops.size() +
                 lost_ops_.size() + applied_reqs_.size() + stats_.size());
  for (const auto& [name, op] : spill_ops_) spills.push_back(op);
  for (const CatalogOp& op : new_spill_ops) spills.push_back(op);
  for (const auto& [name, op] : lost_ops_) spills.push_back(op);
  for (const auto& [client, seq] : applied_reqs_) {
    CatalogOp op;
    op.kind = CatalogOp::kReqId;
    op.req_client = client;
    op.req_seq = seq;
    spills.push_back(std::move(op));
  }
  // Statistics ride the snapshot as kStats side-ops, one per relation
  // (inline and spilled alike) — a reopened store plans with the exact
  // statistics the live one held, without rescanning anything.
  for (const auto& [name, st] : stats_) {
    CatalogOp op;
    op.kind = CatalogOp::kStats;
    op.name = name;
    op.stats_text = EncodeRelationStats(st);
    spills.push_back(std::move(op));
  }

  // 1. Materialise the snapshot file (atomic: temp + fsync + rename).
  if (new_spill_ops.empty()) {
    STRDB_RETURN_IF_ERROR(WriteSnapshot(
        env_, dir_, dir_ + "/tmp-snap-" + std::to_string(next), SnapPath(next),
        db_, automata_, options_.retry, &io_retries_,
        spills.empty() ? nullptr : &spills));
  } else {
    Database pruned = db_;
    for (const CatalogOp& op : new_spill_ops) {
      STRDB_RETURN_IF_ERROR(pruned.Remove(op.name));
    }
    STRDB_RETURN_IF_ERROR(WriteSnapshot(
        env_, dir_, dir_ + "/tmp-snap-" + std::to_string(next), SnapPath(next),
        pruned, automata_, options_.retry, &io_retries_, &spills));
  }

  // 2. Flip CURRENT — the commit point of the checkpoint.
  {
    std::string tmp = dir_ + "/tmp-CURRENT";
    std::unique_ptr<WritableFile> file;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto opened = env_->NewWritableFile(tmp, /*truncate=*/true);
      if (!opened.ok()) return opened.status();
      file = std::move(*opened);
      return Status::OK();
    }));
    std::string content = std::to_string(next) + "\n";
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Append(content); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Sync(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Close(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      return env_->Rename(tmp, dir_ + "/CURRENT");
    }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return env_->SyncDir(dir_); }));
  }

  // 3. Start the new (empty) log.  From here on the old generation's
  // files are garbage; a crash leaves them for Open() to sweep.
  Status closed = wal_->Close();
  (void)closed;  // the old log is obsolete either way
  wal_ = std::make_unique<WalWriter>(env_, WalPath(next), options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/true, &io_retries_));

  // 4. Best-effort cleanup of the previous generation, plus heap files
  // the new snapshot no longer references.
  if (generation_ > 0) env_->Remove(SnapPath(generation_));
  env_->Remove(WalPath(generation_));
  for (const std::string& file : garbage_heaps_) {
    env_->Remove(dir_ + "/" + file);
  }
  garbage_heaps_.clear();
  env_->SyncDir(dir_);

  // 5. The checkpoint committed: newly spilled relations move out of
  // db_ and become paged views.
  if (!new_spill_ops.empty()) {
    for (CatalogOp& op : new_spill_ops) {
      Status removed = db_.Remove(op.name);
      (void)removed;  // validated present during the spill phase
      paged_[op.name] = new_paged[op.name];
      spill_ops_[op.name] = std::move(op);
    }
    PublishSnapshotLocked();
  }

  generation_ = next;
  Metrics().checkpoints->Increment();
  return Status::OK();
}

CatalogStore::QuarantineOutcome CatalogStore::QuarantineHeap(
    const std::string& name, const std::string& file,
    const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return QuarantineOutcome::kStale;
  auto it = spill_ops_.find(name);
  if (it == spill_ops_.end() || it->second.file != file) {
    // The relation moved on (materialised, dropped, re-spilled) between
    // the scan and this call: nothing to quarantine any more.
    return QuarantineOutcome::kStale;
  }
  Metrics().scrub_quarantines->Increment();
  CatalogOp spill = it->second;

  // Rescue attempt while the file is still in place: stream whatever
  // pages still verify.  Success means the snapshot+WAL path (heap
  // included) could reproduce every committed tuple — re-commit them
  // inline through the WAL *before* touching the file, so a crash at
  // any point leaves either the old spilled state or the rescued one.
  auto pit = paged_.find(name);
  if (pit != paged_.end()) {
    Result<StringRelation> rescued = pit->second->Materialize();
    if (rescued.ok() &&
        static_cast<int64_t>(rescued->size()) == spill.tuple_count) {
      Status committed = CommitPayload(EncodePut(name, *rescued));
      if (committed.ok()) {
        spill_ops_.erase(name);
        paged_.erase(name);
        Status put = db_.Put(name, std::move(*rescued));
        (void)put;  // name was paged, so it cannot collide
        env_->Rename(dir_ + "/" + file, dir_ + "/quarantine-" + file);
        pool_->Clear();  // drop cached pages of the poisoned file
        PublishSnapshotLocked();
        return QuarantineOutcome::kRescued;
      }
    }
  }

  // Unrescuable: move the file aside and mark the relation lost.  The
  // kLost marker is WAL-committed first so the quarantine itself obeys
  // the same write-ahead discipline as every other state change.
  CatalogOp lost;
  lost.kind = CatalogOp::kLost;
  lost.name = name;
  lost.arity = spill.arity;
  lost.tuple_count = spill.tuple_count;
  lost.max_string_length = spill.max_string_length;
  lost.reason = reason;
  Status committed = CommitPayload(EncodeOp(lost));
  (void)committed;  // quarantine proceeds in memory even on a dying disk
  env_->Rename(dir_ + "/" + file, dir_ + "/quarantine-" + file);
  pool_->Clear();
  MarkLostLocked(name, spill.arity, spill.tuple_count,
                 spill.max_string_length, reason);
  PublishSnapshotLocked();
  return QuarantineOutcome::kLost;
}

Status CatalogStore::ScrubNow(ScrubReport* out) {
  ScrubReport report;
  // Phase 1 under mu_: the snapshot file and the WAL, verified against
  // a quiesced writer (the WAL check needs the committed-bytes
  // watermark and no concurrent append).
  std::vector<std::pair<std::string, CatalogOp>> heaps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ == nullptr) return Status::Internal("store is closed");
    if (generation_ > 0) {
      auto read = env_->ReadFile(SnapPath(generation_));
      std::string why;
      if (!read.ok()) {
        report.snapshot_ok = false;
        report.crc_failures++;
        report.errors.push_back("snapshot unreadable: " +
                                read.status().ToString());
      } else if (!SnapshotChecksumOk(*read, &why)) {
        report.snapshot_ok = false;
        report.crc_failures++;
        report.errors.push_back("snapshot: " + why);
      } else {
        report.pages_verified +=
            (static_cast<int64_t>(read->size()) + kPageSize - 1) / kPageSize;
      }
    }
    std::string wal_path = WalPath(generation_);
    int64_t committed = wal_->committed_bytes();
    if (env_->FileExists(wal_path)) {
      auto salvage = ReadWal(env_, wal_path, options_.retry, nullptr);
      if (!salvage.ok()) {
        report.wal_ok = false;
        report.crc_failures++;
        report.errors.push_back("wal unreadable: " +
                                salvage.status().ToString());
      } else if (salvage->valid_bytes < committed) {
        // The log must hold at least every byte the writer acked.  A
        // shorter intact prefix means committed records rotted.
        report.wal_ok = false;
        report.crc_failures++;
        report.errors.push_back(
            "wal lost committed bytes: intact prefix " +
            std::to_string(salvage->valid_bytes) + " < committed " +
            std::to_string(committed) +
            (salvage->tail_error.empty() ? "" : " (" + salvage->tail_error +
                                                    ")"));
      } else {
        report.pages_verified +=
            (salvage->file_bytes + kPageSize - 1) / kPageSize;
      }
    }
    for (const auto& [name, op] : spill_ops_) heaps.emplace_back(name, op);
  }

  // Phase 2 without mu_: CRC-walk every spilled heap.  This is the bulk
  // of the work and must not block writers; a heap that changes under us
  // (materialised/dropped) is detected inside QuarantineHeap and
  // skipped.
  for (const auto& [name, op] : heaps) {
    report.heaps_scanned++;
    auto read = env_->ReadFile(dir_ + "/" + op.file);
    std::string why;
    bool bad = false;
    if (!read.ok()) {
      bad = true;
      why = "heap unreadable: " + read.status().ToString();
    } else {
      int64_t pages_ok = 0;
      bad = !VerifyPagedBytes(*read, &pages_ok, &why);
      report.pages_verified += pages_ok;
    }
    if (bad) {
      QuarantineOutcome outcome = QuarantineHeap(name, op.file, why);
      if (outcome == QuarantineOutcome::kStale) continue;  // raced a writer
      report.crc_failures++;
      report.quarantined.push_back(name);
      report.errors.push_back(
          "'" + name + "': " + why +
          (outcome == QuarantineOutcome::kRescued ? " (rescued in full)"
                                                  : " (marked lost)"));
    }
  }

  Metrics().scrub_passes->Increment();
  Metrics().scrub_pages_verified->Increment(report.pages_verified);
  Metrics().scrub_crc_failures->Increment(report.crc_failures);
  if (out != nullptr) *out = std::move(report);
  return Status::OK();
}

void CatalogStore::ScrubThreadMain() {
  // Low priority by construction: one pass per interval, all heavy I/O
  // done without holding the store mutex.
  std::unique_lock<std::mutex> lock(scrub_mu_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(lock,
                           std::chrono::milliseconds(
                               options_.scrub_interval_ms),
                           [&] { return scrub_stop_; })) {
      break;
    }
    lock.unlock();
    ScrubReport report;
    Status scrubbed = ScrubNow(&report);
    (void)scrubbed;  // a closed store just ends the loop next iteration
    lock.lock();
  }
}

Status CatalogStore::Close() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::OK();
  std::unique_ptr<WalWriter> wal = std::move(wal_);
  return wal->Close();
}

}  // namespace strdb
