#include "storage/store.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/metrics.h"
#include "fsa/serialize.h"
#include "storage/codec.h"
#include "storage/snapshot.h"

namespace strdb {

namespace {

struct StoreMetrics {
  Counter* commits;
  Counter* checkpoints;
  Counter* recoveries;
  Counter* replayed_records;
  Counter* truncated_bytes;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return StoreMetrics{
        reg.GetCounter("storage.commits"),
        reg.GetCounter("storage.checkpoints"),
        reg.GetCounter("storage.recoveries"),
        reg.GetCounter("storage.recovery.replayed_records"),
        reg.GetCounter("storage.recovery.truncated_bytes"),
    };
  }();
  return metrics;
}

// Parses the CURRENT file: a single decimal generation number.
Result<int64_t> ParseCurrent(const std::string& content) {
  int64_t value = 0;
  bool any = false;
  for (char c : content) {
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      return Status::DataLoss("CURRENT file is corrupt: '" + content + "'");
    }
    value = value * 10 + (c - '0');
    any = true;
    if (value > (int64_t{1} << 40)) {
      return Status::DataLoss("CURRENT file generation out of range");
    }
  }
  if (!any) return Status::DataLoss("CURRENT file is empty");
  return value;
}

int64_t CountTuples(const Database& db) {
  int64_t n = 0;
  for (const auto& [name, rel] : db.relations()) n += rel.size();
  return n;
}

// Rough in-memory footprint of a relation, the quantity the spill
// threshold compares against: string payloads plus container overhead.
int64_t ApproxBytes(const StringRelation& rel) {
  int64_t bytes = 0;
  for (const Tuple& t : rel.tuples()) {
    bytes += 32;
    for (const std::string& s : t) {
      bytes += 32 + static_cast<int64_t>(s.size());
    }
  }
  return bytes;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "recovered generation " << generation << ": " << relations
      << " relation(s), " << tuples << " tuple(s), " << automata
      << " cached automaton(a)";
  if (snapshot_loaded) out << "; snapshot loaded";
  out << "; wal: " << wal_records_replayed << " record(s) replayed";
  if (wal_bytes_truncated > 0) {
    out << ", " << wal_bytes_truncated << " torn byte(s) truncated ("
        << wal_tail_error << ")";
  }
  if (wal_records_dropped > 0) {
    out << ", " << wal_records_dropped << " intact record(s) dropped";
  }
  if (spilled_relations > 0) {
    out << "; " << spilled_relations << " spilled relation(s) ("
        << spilled_tuples << " tuple(s)) recovered as paged heaps";
  }
  if (io_retries > 0) out << "; " << io_retries << " transient I/O retry(ies)";
  return out.str();
}

CatalogStore::CatalogStore(std::string dir, const Alphabet& alphabet,
                           const StoreOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Posix()),
      db_(alphabet) {
  BufferPoolOptions pool_options;
  pool_options.env = env_;
  pool_options.capacity_bytes = options.pager_capacity_bytes;
  pool_ = std::make_unique<BufferPool>(pool_options);
}

CatalogStore::~CatalogStore() { Close(); }

std::string CatalogStore::SnapPath(int64_t gen) const {
  return dir_ + "/snap-" + std::to_string(gen);
}

std::string CatalogStore::WalPath(int64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen);
}

int64_t CatalogStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::shared_ptr<const Database> CatalogStore::SnapshotDb() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const PagedSet> CatalogStore::PagedDb() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return paged_snapshot_;
}

void CatalogStore::SnapshotState(std::shared_ptr<const Database>* db,
                                 std::shared_ptr<const PagedSet>* paged) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  *db = snapshot_;
  *paged = paged_snapshot_;
}

void CatalogStore::PublishSnapshotLocked() {
  // Copy outside snapshot_mu_ so readers grabbing the previous snapshot
  // only ever wait behind a pointer swap, never behind the copy.
  auto fresh = std::make_shared<const Database>(db_);
  auto fresh_paged = std::make_shared<const PagedSet>(paged_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
  paged_snapshot_ = std::move(fresh_paged);
}

Status CatalogStore::MaterializePagedLocked(const std::string& name) {
  auto it = paged_.find(name);
  if (it == paged_.end()) {
    return Status::Internal("relation '" + name + "' is not paged");
  }
  STRDB_ASSIGN_OR_RETURN(StringRelation rel, it->second->Materialize());
  STRDB_RETURN_IF_ERROR(db_.Put(name, std::move(rel)));
  DiscardPagedLocked(name);
  return Status::OK();
}

void CatalogStore::DiscardPagedLocked(const std::string& name) {
  auto it = spill_ops_.find(name);
  if (it != spill_ops_.end()) {
    // The live snapshot still references the file; it only becomes
    // removable once the next checkpoint's snapshot stops mentioning it.
    garbage_heaps_.push_back(it->second.file);
    spill_ops_.erase(it);
  }
  paged_.erase(name);
}

Result<std::unique_ptr<CatalogStore>> CatalogStore::Open(
    const std::string& dir, const Alphabet& alphabet,
    const StoreOptions& options, RecoveryReport* report) {
  std::unique_ptr<CatalogStore> store(
      new CatalogStore(dir, alphabet, options));
  RecoveryReport local;
  STRDB_RETURN_IF_ERROR(store->OpenInternal(report ? report : &local));
  return store;
}

Status CatalogStore::OpenInternal(RecoveryReport* report) {
  *report = RecoveryReport{};
  Metrics().recoveries->Increment();
  STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                [&] { return env_->CreateDir(dir_); }));

  // Which generation is live?
  std::string current_path = dir_ + "/CURRENT";
  if (env_->FileExists(current_path)) {
    report->opened_existing = true;
    std::string content;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto read = env_->ReadFile(current_path);
      if (!read.ok()) return read.status();
      content = std::move(*read);
      return Status::OK();
    }));
    STRDB_ASSIGN_OR_RETURN(generation_, ParseCurrent(content));
  }
  report->generation = generation_;

  // Sweep leftovers from interrupted checkpoints: temp files and
  // snapshots/WALs of generations CURRENT never committed.  Best effort —
  // an orphan costs disk space, not correctness.
  auto listed = env_->ListDir(dir_);
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      bool orphan = false;
      if (name.rfind("tmp-", 0) == 0) {
        orphan = true;
      } else if (name.rfind("snap-", 0) == 0) {
        orphan = name != "snap-" + std::to_string(generation_);
      } else if (name.rfind("wal-", 0) == 0) {
        orphan = name != "wal-" + std::to_string(generation_);
      }
      if (orphan) env_->Remove(dir_ + "/" + name);
    }
  }

  // Load the live snapshot, if any.  kSpill ops come back separately:
  // only the store knows how to open heap files.
  std::vector<CatalogOp> spills;
  if (generation_ > 0) {
    STRDB_RETURN_IF_ERROR(ReadSnapshot(env_, SnapPath(generation_), &db_,
                                       &automata_, options_.retry,
                                       &io_retries_, &spills));
    report->snapshot_loaded = true;
  }

  // Open every spilled relation and cross-check the heap header against
  // the snapshot's record of it — a mismatch means the file on disk is
  // not the one the snapshot committed.
  std::set<std::string> referenced_heaps;
  for (CatalogOp& op : spills) {
    referenced_heaps.insert(op.file);
    if (db_.Has(op.name) || paged_.count(op.name) > 0) {
      return Status::DataLoss("snapshot lists relation '" + op.name +
                              "' twice");
    }
    STRDB_ASSIGN_OR_RETURN(std::shared_ptr<const PagedHeap> heap,
                           PagedHeap::Open(pool_.get(), dir_ + "/" + op.file));
    if (heap->arity() != op.arity || heap->tuple_count() != op.tuple_count ||
        heap->max_string_length() != op.max_string_length) {
      return Status::DataLoss("heap file '" + op.file +
                              "' does not match snapshot record for '" +
                              op.name + "'");
    }
    report->spilled_relations++;
    report->spilled_tuples += op.tuple_count;
    paged_[op.name] = heap;
    spill_ops_[op.name] = std::move(op);
  }

  // Sweep heap files the live snapshot does not reference (a crashed
  // checkpoint's half-spilled output, or heaps whose relation was later
  // dropped).  Best effort, like the generation sweep above.
  auto heap_listing = env_->ListDir(dir_);
  if (heap_listing.ok()) {
    for (const std::string& name : *heap_listing) {
      if (name.rfind("heap-", 0) == 0 && referenced_heaps.count(name) == 0) {
        env_->Remove(dir_ + "/" + name);
      }
    }
  }

  // Replay the WAL, salvaging whatever prefix survived.
  std::string wal_path = WalPath(generation_);
  if (env_->FileExists(wal_path)) {
    report->opened_existing = true;
    STRDB_ASSIGN_OR_RETURN(
        WalSalvage salvage,
        ReadWal(env_, wal_path, options_.retry, &io_retries_));
    int64_t cut_at = salvage.valid_bytes;
    std::string cut_why = salvage.tail_error;
    for (const WalRecord& record : salvage.records) {
      Result<CatalogOp> op = DecodeOp(record.payload);
      Status applied;
      if (!op.ok()) {
        applied = op.status();
      } else if (op->kind == CatalogOp::kDrop && paged_.count(op->name) > 0) {
        DiscardPagedLocked(op->name);
        applied = Status::OK();
      } else {
        // A put replaces a spilled relation outright; an insert must
        // first pull it back in memory.  Heap I/O failing here is an
        // open failure (the snapshot itself is unusable), not a corrupt
        // WAL tail to trim.
        if (op->kind == CatalogOp::kPut && paged_.count(op->name) > 0) {
          DiscardPagedLocked(op->name);
        } else if (op->kind == CatalogOp::kInsert &&
                   paged_.count(op->name) > 0) {
          STRDB_RETURN_IF_ERROR(MaterializePagedLocked(op->name));
        }
        applied = ApplyOp(*op, db_.alphabet(), &db_, &automata_);
      }
      if (!applied.ok()) {
        // A record that frames correctly but does not decode or apply
        // cannot have been produced by a healthy writer against the
        // state the log built: treat it — and everything after it — as
        // the corrupt tail.
        cut_at = record.offset;
        cut_why = "record replay failed: " + applied.ToString();
        report->wal_records_dropped =
            static_cast<int64_t>(salvage.records.size()) -
            report->wal_records_replayed;
        break;
      }
      ++report->wal_records_replayed;
    }
    if (cut_at < salvage.file_bytes) {
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
        return env_->Truncate(wal_path, cut_at);
      }));
    }
    report->wal_bytes_truncated = salvage.file_bytes - cut_at;
    report->wal_tail_error = cut_why;
  }

  // Reopen the (repaired) log for appending.
  wal_ = std::make_unique<WalWriter>(env_, wal_path, options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/false, &io_retries_));

  report->relations = static_cast<int64_t>(db_.relations().size());
  report->tuples = CountTuples(db_);
  report->automata = static_cast<int64_t>(automata_.size());
  report->io_retries = io_retries_;
  Metrics().replayed_records->Increment(report->wal_records_replayed);
  Metrics().truncated_bytes->Increment(report->wal_bytes_truncated);
  PublishSnapshotLocked();  // Open holds the store exclusively
  return Status::OK();
}

Status CatalogStore::CommitPayload(const std::string& payload) {
  if (wal_ == nullptr) return Status::Internal("store is closed");
  STRDB_RETURN_IF_ERROR(wal_->Append(payload));
  Metrics().commits->Increment();
  return Status::OK();
}

Status CatalogStore::PutRelation(const std::string& name, int arity,
                                 std::vector<Tuple> tuples) {
  // Build and validate before logging, so the WAL only ever sees ops
  // that apply cleanly.
  STRDB_ASSIGN_OR_RETURN(StringRelation rel,
                         StringRelation::Create(arity, std::move(tuples)));
  for (const Tuple& t : rel.tuples()) {
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodePut(name, rel)));
  if (paged_.count(name) > 0) DiscardPagedLocked(name);  // put replaces
  STRDB_RETURN_IF_ERROR(db_.Put(name, std::move(rel)));
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InsertTuples(const std::string& name,
                                  std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  // Inserting into a spilled relation pulls it back in memory first (it
  // re-spills at the next checkpoint if still over threshold).  Done
  // before the WAL commit so the durable order matches the in-memory
  // order a replay reproduces.
  if (paged_.count(name) > 0) {
    STRDB_RETURN_IF_ERROR(MaterializePagedLocked(name));
  }
  STRDB_ASSIGN_OR_RETURN(const StringRelation* rel, db_.Get(name));
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != rel->arity()) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(t.size()) +
          " differs from relation arity " + std::to_string(rel->arity()));
    }
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeInsert(name, tuples)));
  STRDB_RETURN_IF_ERROR(db_.InsertTuples(name, std::move(tuples)));
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::DropRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  bool paged = paged_.count(name) > 0;
  if (!paged && !db_.Has(name)) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeDrop(name)));
  if (paged) {
    DiscardPagedLocked(name);
  } else {
    STRDB_RETURN_IF_ERROR(db_.Remove(name));
  }
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InstallAutomaton(const std::string& key, const Fsa& fsa) {
  return InstallAutomatonText(key, SerializeFsa(fsa));
}

Status CatalogStore::InstallAutomatonText(const std::string& key,
                                          std::string fsa_text) {
  // Verify before persisting: the WAL must never carry an automaton that
  // will not deserialize on recovery.
  STRDB_RETURN_IF_ERROR(DeserializeFsa(db_.alphabet(), fsa_text).status());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = automata_.find(key);
  if (it != automata_.end() && it->second == fsa_text) return Status::OK();
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeFsa(key, fsa_text)));
  automata_[key] = std::move(fsa_text);
  return Status::OK();
}

Status CatalogStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::Internal("store is closed");
  int64_t next = generation_ + 1;

  // 0. Spill phase: write heap files for over-threshold relations, each
  // committed tmp → fsync → rename *before* the snapshot that references
  // them exists.  A crash anywhere leaves the old generation live and
  // the new heap files as unreferenced orphans for Open() to sweep.
  // Nothing in db_/paged_ mutates until the whole checkpoint commits.
  std::vector<CatalogOp> new_spill_ops;
  std::map<std::string, std::shared_ptr<const TupleSource>> new_paged;
  if (options_.spill_threshold_bytes > 0) {
    int64_t seq = 0;
    for (const auto& [name, rel] : db_.relations()) {
      if (ApproxBytes(rel) < options_.spill_threshold_bytes) continue;
      CatalogOp op;
      op.kind = CatalogOp::kSpill;
      op.name = name;
      op.arity = rel.arity();
      op.max_string_length = rel.MaxStringLength();
      op.tuple_count = rel.size();
      op.file = "heap-" + std::to_string(next) + "-" + std::to_string(seq++);
      std::string tmp = dir_ + "/tmp-" + op.file;
      STRDB_RETURN_IF_ERROR(WritePagedHeap(env_, tmp, rel));
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
        return env_->Rename(tmp, dir_ + "/" + op.file);
      }));
      new_spill_ops.push_back(std::move(op));
    }
    if (!new_spill_ops.empty()) {
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                    [&] { return env_->SyncDir(dir_); }));
      for (const CatalogOp& op : new_spill_ops) {
        STRDB_ASSIGN_OR_RETURN(
            std::shared_ptr<const PagedHeap> heap,
            PagedHeap::Open(pool_.get(), dir_ + "/" + op.file));
        new_paged[op.name] = heap;
      }
    }
  }

  // The snapshot carries still-spilled relations as kSpill records and
  // the newly spilled ones the same way — their tuples stay out of it.
  std::vector<CatalogOp> spills;
  spills.reserve(spill_ops_.size() + new_spill_ops.size());
  for (const auto& [name, op] : spill_ops_) spills.push_back(op);
  for (const CatalogOp& op : new_spill_ops) spills.push_back(op);

  // 1. Materialise the snapshot file (atomic: temp + fsync + rename).
  if (new_spill_ops.empty()) {
    STRDB_RETURN_IF_ERROR(WriteSnapshot(
        env_, dir_, dir_ + "/tmp-snap-" + std::to_string(next), SnapPath(next),
        db_, automata_, options_.retry, &io_retries_,
        spills.empty() ? nullptr : &spills));
  } else {
    Database pruned = db_;
    for (const CatalogOp& op : new_spill_ops) {
      STRDB_RETURN_IF_ERROR(pruned.Remove(op.name));
    }
    STRDB_RETURN_IF_ERROR(WriteSnapshot(
        env_, dir_, dir_ + "/tmp-snap-" + std::to_string(next), SnapPath(next),
        pruned, automata_, options_.retry, &io_retries_, &spills));
  }

  // 2. Flip CURRENT — the commit point of the checkpoint.
  {
    std::string tmp = dir_ + "/tmp-CURRENT";
    std::unique_ptr<WritableFile> file;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto opened = env_->NewWritableFile(tmp, /*truncate=*/true);
      if (!opened.ok()) return opened.status();
      file = std::move(*opened);
      return Status::OK();
    }));
    std::string content = std::to_string(next) + "\n";
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Append(content); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Sync(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Close(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      return env_->Rename(tmp, dir_ + "/CURRENT");
    }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return env_->SyncDir(dir_); }));
  }

  // 3. Start the new (empty) log.  From here on the old generation's
  // files are garbage; a crash leaves them for Open() to sweep.
  Status closed = wal_->Close();
  (void)closed;  // the old log is obsolete either way
  wal_ = std::make_unique<WalWriter>(env_, WalPath(next), options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/true, &io_retries_));

  // 4. Best-effort cleanup of the previous generation, plus heap files
  // the new snapshot no longer references.
  if (generation_ > 0) env_->Remove(SnapPath(generation_));
  env_->Remove(WalPath(generation_));
  for (const std::string& file : garbage_heaps_) {
    env_->Remove(dir_ + "/" + file);
  }
  garbage_heaps_.clear();
  env_->SyncDir(dir_);

  // 5. The checkpoint committed: newly spilled relations move out of
  // db_ and become paged views.
  if (!new_spill_ops.empty()) {
    for (CatalogOp& op : new_spill_ops) {
      Status removed = db_.Remove(op.name);
      (void)removed;  // validated present during the spill phase
      paged_[op.name] = new_paged[op.name];
      spill_ops_[op.name] = std::move(op);
    }
    PublishSnapshotLocked();
  }

  generation_ = next;
  Metrics().checkpoints->Increment();
  return Status::OK();
}

Status CatalogStore::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::OK();
  std::unique_ptr<WalWriter> wal = std::move(wal_);
  return wal->Close();
}

}  // namespace strdb
