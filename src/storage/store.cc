#include "storage/store.h"

#include <algorithm>
#include <sstream>

#include "core/metrics.h"
#include "fsa/serialize.h"
#include "storage/codec.h"
#include "storage/snapshot.h"

namespace strdb {

namespace {

struct StoreMetrics {
  Counter* commits;
  Counter* checkpoints;
  Counter* recoveries;
  Counter* replayed_records;
  Counter* truncated_bytes;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return StoreMetrics{
        reg.GetCounter("storage.commits"),
        reg.GetCounter("storage.checkpoints"),
        reg.GetCounter("storage.recoveries"),
        reg.GetCounter("storage.recovery.replayed_records"),
        reg.GetCounter("storage.recovery.truncated_bytes"),
    };
  }();
  return metrics;
}

// Parses the CURRENT file: a single decimal generation number.
Result<int64_t> ParseCurrent(const std::string& content) {
  int64_t value = 0;
  bool any = false;
  for (char c : content) {
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      return Status::DataLoss("CURRENT file is corrupt: '" + content + "'");
    }
    value = value * 10 + (c - '0');
    any = true;
    if (value > (int64_t{1} << 40)) {
      return Status::DataLoss("CURRENT file generation out of range");
    }
  }
  if (!any) return Status::DataLoss("CURRENT file is empty");
  return value;
}

int64_t CountTuples(const Database& db) {
  int64_t n = 0;
  for (const auto& [name, rel] : db.relations()) n += rel.size();
  return n;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "recovered generation " << generation << ": " << relations
      << " relation(s), " << tuples << " tuple(s), " << automata
      << " cached automaton(a)";
  if (snapshot_loaded) out << "; snapshot loaded";
  out << "; wal: " << wal_records_replayed << " record(s) replayed";
  if (wal_bytes_truncated > 0) {
    out << ", " << wal_bytes_truncated << " torn byte(s) truncated ("
        << wal_tail_error << ")";
  }
  if (wal_records_dropped > 0) {
    out << ", " << wal_records_dropped << " intact record(s) dropped";
  }
  if (io_retries > 0) out << "; " << io_retries << " transient I/O retry(ies)";
  return out.str();
}

CatalogStore::CatalogStore(std::string dir, const Alphabet& alphabet,
                           const StoreOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Posix()),
      db_(alphabet) {}

CatalogStore::~CatalogStore() { Close(); }

std::string CatalogStore::SnapPath(int64_t gen) const {
  return dir_ + "/snap-" + std::to_string(gen);
}

std::string CatalogStore::WalPath(int64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen);
}

int64_t CatalogStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::shared_ptr<const Database> CatalogStore::SnapshotDb() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void CatalogStore::PublishSnapshotLocked() {
  // Copy outside snapshot_mu_ so readers grabbing the previous snapshot
  // only ever wait behind a pointer swap, never behind the copy.
  auto fresh = std::make_shared<const Database>(db_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
}

Result<std::unique_ptr<CatalogStore>> CatalogStore::Open(
    const std::string& dir, const Alphabet& alphabet,
    const StoreOptions& options, RecoveryReport* report) {
  std::unique_ptr<CatalogStore> store(
      new CatalogStore(dir, alphabet, options));
  RecoveryReport local;
  STRDB_RETURN_IF_ERROR(store->OpenInternal(report ? report : &local));
  return store;
}

Status CatalogStore::OpenInternal(RecoveryReport* report) {
  *report = RecoveryReport{};
  Metrics().recoveries->Increment();
  STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                [&] { return env_->CreateDir(dir_); }));

  // Which generation is live?
  std::string current_path = dir_ + "/CURRENT";
  if (env_->FileExists(current_path)) {
    report->opened_existing = true;
    std::string content;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto read = env_->ReadFile(current_path);
      if (!read.ok()) return read.status();
      content = std::move(*read);
      return Status::OK();
    }));
    STRDB_ASSIGN_OR_RETURN(generation_, ParseCurrent(content));
  }
  report->generation = generation_;

  // Sweep leftovers from interrupted checkpoints: temp files and
  // snapshots/WALs of generations CURRENT never committed.  Best effort —
  // an orphan costs disk space, not correctness.
  auto listed = env_->ListDir(dir_);
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      bool orphan = false;
      if (name.rfind("tmp-", 0) == 0) {
        orphan = true;
      } else if (name.rfind("snap-", 0) == 0) {
        orphan = name != "snap-" + std::to_string(generation_);
      } else if (name.rfind("wal-", 0) == 0) {
        orphan = name != "wal-" + std::to_string(generation_);
      }
      if (orphan) env_->Remove(dir_ + "/" + name);
    }
  }

  // Load the live snapshot, if any.
  if (generation_ > 0) {
    STRDB_RETURN_IF_ERROR(ReadSnapshot(env_, SnapPath(generation_), &db_,
                                       &automata_, options_.retry,
                                       &io_retries_));
    report->snapshot_loaded = true;
  }

  // Replay the WAL, salvaging whatever prefix survived.
  std::string wal_path = WalPath(generation_);
  if (env_->FileExists(wal_path)) {
    report->opened_existing = true;
    STRDB_ASSIGN_OR_RETURN(
        WalSalvage salvage,
        ReadWal(env_, wal_path, options_.retry, &io_retries_));
    int64_t cut_at = salvage.valid_bytes;
    std::string cut_why = salvage.tail_error;
    for (const WalRecord& record : salvage.records) {
      Result<CatalogOp> op = DecodeOp(record.payload);
      Status applied =
          op.ok() ? ApplyOp(*op, db_.alphabet(), &db_, &automata_)
                  : op.status();
      if (!applied.ok()) {
        // A record that frames correctly but does not decode or apply
        // cannot have been produced by a healthy writer against the
        // state the log built: treat it — and everything after it — as
        // the corrupt tail.
        cut_at = record.offset;
        cut_why = "record replay failed: " + applied.ToString();
        report->wal_records_dropped =
            static_cast<int64_t>(salvage.records.size()) -
            report->wal_records_replayed;
        break;
      }
      ++report->wal_records_replayed;
    }
    if (cut_at < salvage.file_bytes) {
      STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
        return env_->Truncate(wal_path, cut_at);
      }));
    }
    report->wal_bytes_truncated = salvage.file_bytes - cut_at;
    report->wal_tail_error = cut_why;
  }

  // Reopen the (repaired) log for appending.
  wal_ = std::make_unique<WalWriter>(env_, wal_path, options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/false, &io_retries_));

  report->relations = static_cast<int64_t>(db_.relations().size());
  report->tuples = CountTuples(db_);
  report->automata = static_cast<int64_t>(automata_.size());
  report->io_retries = io_retries_;
  Metrics().replayed_records->Increment(report->wal_records_replayed);
  Metrics().truncated_bytes->Increment(report->wal_bytes_truncated);
  PublishSnapshotLocked();  // Open holds the store exclusively
  return Status::OK();
}

Status CatalogStore::CommitPayload(const std::string& payload) {
  if (wal_ == nullptr) return Status::Internal("store is closed");
  STRDB_RETURN_IF_ERROR(wal_->Append(payload));
  Metrics().commits->Increment();
  return Status::OK();
}

Status CatalogStore::PutRelation(const std::string& name, int arity,
                                 std::vector<Tuple> tuples) {
  // Build and validate before logging, so the WAL only ever sees ops
  // that apply cleanly.
  STRDB_ASSIGN_OR_RETURN(StringRelation rel,
                         StringRelation::Create(arity, std::move(tuples)));
  for (const Tuple& t : rel.tuples()) {
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodePut(name, rel)));
  STRDB_RETURN_IF_ERROR(db_.Put(name, std::move(rel)));
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InsertTuples(const std::string& name,
                                  std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  STRDB_ASSIGN_OR_RETURN(const StringRelation* rel, db_.Get(name));
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != rel->arity()) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(t.size()) +
          " differs from relation arity " + std::to_string(rel->arity()));
    }
    for (const std::string& s : t) {
      if (!db_.alphabet().Contains(s)) {
        return Status::InvalidArgument("string \"" + s +
                                       "\" leaves the database alphabet");
      }
    }
  }
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeInsert(name, tuples)));
  STRDB_RETURN_IF_ERROR(db_.InsertTuples(name, std::move(tuples)));
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::DropRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!db_.Has(name)) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeDrop(name)));
  STRDB_RETURN_IF_ERROR(db_.Remove(name));
  PublishSnapshotLocked();
  return Status::OK();
}

Status CatalogStore::InstallAutomaton(const std::string& key, const Fsa& fsa) {
  return InstallAutomatonText(key, SerializeFsa(fsa));
}

Status CatalogStore::InstallAutomatonText(const std::string& key,
                                          std::string fsa_text) {
  // Verify before persisting: the WAL must never carry an automaton that
  // will not deserialize on recovery.
  STRDB_RETURN_IF_ERROR(DeserializeFsa(db_.alphabet(), fsa_text).status());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = automata_.find(key);
  if (it != automata_.end() && it->second == fsa_text) return Status::OK();
  STRDB_RETURN_IF_ERROR(CommitPayload(EncodeFsa(key, fsa_text)));
  automata_[key] = std::move(fsa_text);
  return Status::OK();
}

Status CatalogStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::Internal("store is closed");
  int64_t next = generation_ + 1;

  // 1. Materialise the snapshot file (atomic: temp + fsync + rename).
  STRDB_RETURN_IF_ERROR(WriteSnapshot(
      env_, dir_, dir_ + "/tmp-snap-" + std::to_string(next), SnapPath(next),
      db_, automata_, options_.retry, &io_retries_));

  // 2. Flip CURRENT — the commit point of the checkpoint.
  {
    std::string tmp = dir_ + "/tmp-CURRENT";
    std::unique_ptr<WritableFile> file;
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      auto opened = env_->NewWritableFile(tmp, /*truncate=*/true);
      if (!opened.ok()) return opened.status();
      file = std::move(*opened);
      return Status::OK();
    }));
    std::string content = std::to_string(next) + "\n";
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Append(content); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Sync(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return file->Close(); }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_, [&] {
      return env_->Rename(tmp, dir_ + "/CURRENT");
    }));
    STRDB_RETURN_IF_ERROR(RetryIo(env_, options_.retry, &io_retries_,
                                  [&] { return env_->SyncDir(dir_); }));
  }

  // 3. Start the new (empty) log.  From here on the old generation's
  // files are garbage; a crash leaves them for Open() to sweep.
  Status closed = wal_->Close();
  (void)closed;  // the old log is obsolete either way
  wal_ = std::make_unique<WalWriter>(env_, WalPath(next), options_.sync,
                                     options_.retry);
  STRDB_RETURN_IF_ERROR(wal_->Open(/*truncate=*/true, &io_retries_));

  // 4. Best-effort cleanup of the previous generation.
  if (generation_ > 0) env_->Remove(SnapPath(generation_));
  env_->Remove(WalPath(generation_));
  env_->SyncDir(dir_);

  generation_ = next;
  Metrics().checkpoints->Increment();
  return Status::OK();
}

Status CatalogStore::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::OK();
  std::unique_ptr<WalWriter> wal = std::move(wal_);
  return wal->Close();
}

}  // namespace strdb
