#ifndef STRDB_STORAGE_SNAPSHOT_H_
#define STRDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include <vector>

#include "core/alphabet.h"
#include "core/io/env.h"
#include "core/result.h"
#include "relational/relation.h"
#include "storage/codec.h"
#include "storage/retry.h"

namespace strdb {

inline constexpr int kSnapshotFormatVersion = 1;

// A snapshot is the whole catalog as one versioned, checksummed file:
//
//   strdbsnap 1
//   alphabet <len>:<chars>
//   ops <count>
//   op <len>:<encoded CatalogOp>     (one per relation, one per automaton)
//   ...
//   crc32 <hex-of-everything-above>
//
// Snapshots are only ever installed with write-temp + fsync +
// atomic-rename, so unlike the WAL a snapshot is all-or-nothing: a
// checksum failure here is real data loss (kDataLoss), not a tail to
// trim.

// Writes the catalog to `path` via `tmp_path` (same directory) and
// fsyncs `dir` so the rename survives a crash.  `spills` (may be null)
// adds kSpill ops for relations living out-of-core in heap files — the
// heap files themselves must already be durably in place, since CURRENT
// flipping to this snapshot makes them live.
Status WriteSnapshot(Env* env, const std::string& dir,
                     const std::string& tmp_path, const std::string& path,
                     const Database& db,
                     const std::map<std::string, std::string>& automata,
                     const RetryPolicy& retry, int64_t* io_retries = nullptr,
                     const std::vector<CatalogOp>* spills = nullptr);

// Loads `path` into `db` (which must be empty) and `automata`.
// kDataLoss on corruption, kUnimplemented on a version mismatch,
// kInvalidArgument when the stored alphabet differs from `db`'s.
// kSpill ops are collected into `spills` for the caller (CatalogStore)
// to open; a snapshot containing them is unreadable when `spills` is
// null (kInternal via ApplyOp).
Status ReadSnapshot(Env* env, const std::string& path, Database* db,
                    std::map<std::string, std::string>* automata,
                    const RetryPolicy& retry, int64_t* io_retries = nullptr,
                    std::vector<CatalogOp>* spills = nullptr);

}  // namespace strdb

#endif  // STRDB_STORAGE_SNAPSHOT_H_
