#ifndef STRDB_STORAGE_PAGER_H_
#define STRDB_STORAGE_PAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/io/env.h"
#include "core/result.h"

namespace strdb {

// Fixed page geometry, after RDF-3X's BufferManager: every paged file is
// a whole number of 16 KiB pages, each carrying its own crc32 trailer so
// corruption is detected at page granularity (one flipped byte poisons
// one page's reads, not the whole file).
inline constexpr int64_t kPageSize = 16 * 1024;
inline constexpr int64_t kPagePayload = kPageSize - 4;  // u32 crc trailer

// Pads `payload` (at most kPagePayload bytes) to a full page with NULs,
// appends the crc trailer, and appends the page to `out`.
void AppendPage(const std::string& payload, std::string* out);

// A pinned page: while a PageRef is live the page cannot be evicted and
// data() stays valid.  Move-only RAII — destruction unpins.
class BufferPool;
class PageRef {
 public:
  PageRef() = default;
  ~PageRef() { Release(); }

  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  // The page payload (kPagePayload bytes, crc already verified).
  const std::string& data() const;
  explicit operator bool() const { return frame_ != nullptr; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, void* frame) : pool_(pool), frame_(frame) {}
  void Release();

  BufferPool* pool_ = nullptr;
  void* frame_ = nullptr;
};

struct BufferPoolOptions {
  // Filesystem seam; nullptr = Env::Posix().  Reads go through
  // Env::ReadAt so FaultInjectingEnv crash sweeps cover page fetches.
  Env* env = nullptr;
  // Bound on resident page bytes (pinned + cached).  Eviction frees
  // unpinned pages LRU-first; pinned pages are never evicted, so a
  // caller holding many pins can transiently exceed the cap (the scan
  // operators pin O(1) pages at a time precisely so they do not).
  int64_t capacity_bytes = 4 << 20;
};

// Counters for one pool.  The same numbers are mirrored into the global
// MetricsRegistry under storage.pager.* so the shell/server `pager` verb
// and tests can observe them.
struct PagerStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t bytes_cached = 0;       // resident page bytes right now
  int64_t bytes_pinned = 0;       // subset of bytes_cached under a pin
  int64_t peak_bytes_pinned = 0;  // high-water mark of bytes_pinned
};

// A byte-bounded page cache over Env files.  Thread safe: server
// sessions stream scans through one shared pool.  Pages verify their
// crc once at load; a failed check is kDataLoss and nothing is cached.
class BufferPool {
 public:
  explicit BufferPool(BufferPoolOptions options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins page `page_index` (0-based) of `path`, loading it on miss.
  Result<PageRef> Pin(const std::string& path, int64_t page_index);

  // Drops every unpinned cached page (a retired file generation's pages
  // must not serve a same-named successor).  Pinned pages survive.
  void Clear();

  PagerStats stats() const;
  int64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Frame;
  using Key = std::pair<std::string, int64_t>;

  friend class PageRef;
  void Unpin(void* frame);
  void EvictUntilFitsLocked();

  const BufferPoolOptions options_;
  Env* const env_;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Frame>> frames_;
  // LRU over *unpinned* frames only; front = coldest.
  std::list<Frame*> lru_;
  PagerStats stats_;
};

}  // namespace strdb

#endif  // STRDB_STORAGE_PAGER_H_
