#include "storage/wal.h"

#include "core/io/crc32.h"

namespace strdb {

namespace {

// Renders one framed record.
std::string Frame(const std::string& payload) {
  std::string out = "rec ";
  out.append(std::to_string(payload.size()));
  out.push_back(' ');
  out.append(Crc32Hex(Crc32(payload)));
  out.push_back('\n');
  out.append(payload);
  out.push_back('\n');
  return out;
}

}  // namespace

WalWriter::WalWriter(Env* env, std::string path, bool sync, RetryPolicy retry)
    : env_(env), path_(std::move(path)), sync_(sync), retry_(retry) {}

Status WalWriter::Open(bool truncate, int64_t* io_retries) {
  io_retries_ = io_retries;
  if (truncate) committed_bytes_ = 0;
  return RetryIo(env_, retry_, io_retries_, [&] {
    auto file = env_->NewWritableFile(path_, truncate);
    if (!file.ok()) return file.status();
    file_ = std::move(*file);
    return Status::OK();
  });
}

Status WalWriter::Append(const std::string& payload) {
  if (file_ == nullptr) return Status::Internal("WAL writer not open");
  std::string frame = Frame(payload);
  // The frame is appended in one write.  A transient fault injected
  // before the write costs nothing; a torn write is repaired by the
  // frame CRC on recovery, so retrying after one cannot corrupt earlier
  // records — at worst it leaves a duplicate-free torn tail.
  STRDB_RETURN_IF_ERROR(RetryIo(env_, retry_, io_retries_,
                                [&] { return file_->Append(frame); }));
  if (sync_) {
    STRDB_RETURN_IF_ERROR(
        RetryIo(env_, retry_, io_retries_, [&] { return file_->Sync(); }));
  }
  committed_bytes_ += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  std::unique_ptr<WritableFile> file = std::move(file_);
  return RetryIo(env_, retry_, io_retries_, [&] { return file->Close(); });
}

Result<WalSalvage> ReadWal(Env* env, const std::string& path,
                           const RetryPolicy& retry, int64_t* io_retries) {
  std::string data;
  STRDB_RETURN_IF_ERROR(RetryIo(env, retry, io_retries, [&] {
    auto read = env->ReadFile(path);
    if (!read.ok()) return read.status();
    data = std::move(*read);
    return Status::OK();
  }));

  WalSalvage salvage;
  salvage.file_bytes = static_cast<int64_t>(data.size());
  size_t pos = 0;
  auto cut = [&](const std::string& why) {
    salvage.valid_bytes = static_cast<int64_t>(pos);
    salvage.truncated_bytes = salvage.file_bytes - salvage.valid_bytes;
    salvage.tail_error = why;
    return salvage;
  };
  while (pos < data.size()) {
    size_t header_end = data.find('\n', pos);
    if (header_end == std::string::npos) {
      return cut("torn frame header at offset " + std::to_string(pos));
    }
    std::string header = data.substr(pos, header_end - pos);
    // "rec <len> <crc-hex>"
    if (header.rfind("rec ", 0) != 0) {
      return cut("bad frame magic at offset " + std::to_string(pos));
    }
    size_t sp = header.find(' ', 4);
    if (sp == std::string::npos) {
      return cut("malformed frame header at offset " + std::to_string(pos));
    }
    int64_t len = 0;
    bool len_ok = sp > 4;
    for (size_t i = 4; i < sp && len_ok; ++i) {
      char c = header[i];
      if (c < '0' || c > '9') {
        len_ok = false;
        break;
      }
      len = len * 10 + (c - '0');
      if (len > (int64_t{1} << 40)) len_ok = false;
    }
    uint32_t stated = 0;
    if (!len_ok || !ParseCrc32Hex(header.substr(sp + 1), &stated)) {
      return cut("malformed frame header at offset " + std::to_string(pos));
    }
    size_t payload_start = header_end + 1;
    size_t frame_end = payload_start + static_cast<size_t>(len) + 1;
    if (frame_end > data.size()) {
      return cut("torn frame payload at offset " + std::to_string(pos));
    }
    if (data[frame_end - 1] != '\n') {
      return cut("missing frame terminator at offset " + std::to_string(pos));
    }
    std::string payload =
        data.substr(payload_start, static_cast<size_t>(len));
    if (Crc32(payload) != stated) {
      return cut("frame checksum mismatch at offset " + std::to_string(pos));
    }
    WalRecord record;
    record.payload = std::move(payload);
    record.offset = static_cast<int64_t>(pos);
    record.end_offset = static_cast<int64_t>(frame_end);
    salvage.records.push_back(std::move(record));
    pos = frame_end;
  }
  salvage.valid_bytes = static_cast<int64_t>(pos);
  salvage.truncated_bytes = 0;
  return salvage;
}

}  // namespace strdb
