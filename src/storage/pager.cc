#include "storage/pager.h"

#include <cstring>

#include "core/io/crc32.h"
#include "core/metrics.h"

namespace strdb {

namespace {

struct PagerMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Gauge* bytes_cached;
  Gauge* bytes_pinned;
  Gauge* peak_bytes_pinned;

  static PagerMetrics& Get() {
    static PagerMetrics* m = [] {
      auto* metrics = new PagerMetrics();
      MetricsRegistry& reg = MetricsRegistry::Global();
      metrics->hits = reg.GetCounter("storage.pager.hits");
      metrics->misses = reg.GetCounter("storage.pager.misses");
      metrics->evictions = reg.GetCounter("storage.pager.evictions");
      metrics->bytes_cached = reg.GetGauge("storage.pager.bytes_cached");
      metrics->bytes_pinned = reg.GetGauge("storage.pager.bytes_pinned");
      metrics->peak_bytes_pinned =
          reg.GetGauge("storage.pager.bytes_pinned_peak");
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

void AppendPage(const std::string& payload, std::string* out) {
  std::string page = payload;
  page.resize(static_cast<size_t>(kPagePayload), '\0');
  uint32_t crc = Crc32(page);
  char trailer[4] = {static_cast<char>(crc & 0xff),
                     static_cast<char>((crc >> 8) & 0xff),
                     static_cast<char>((crc >> 16) & 0xff),
                     static_cast<char>((crc >> 24) & 0xff)};
  out->append(page);
  out->append(trailer, 4);
}

struct BufferPool::Frame {
  Key key;
  std::string payload;  // kPagePayload bytes
  int pins = 0;
  // Position in lru_ when pins == 0 (frames under a pin are not listed).
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
};

BufferPool::BufferPool(BufferPoolOptions options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Posix()) {}

BufferPool::~BufferPool() = default;

Result<PageRef> BufferPool::Pin(const std::string& path, int64_t page_index) {
  PagerMetrics& metrics = PagerMetrics::Get();
  Key key{path, page_index};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      Frame* frame = it->second.get();
      if (frame->in_lru) {
        lru_.erase(frame->lru_pos);
        frame->in_lru = false;
      }
      if (frame->pins++ == 0) {
        stats_.bytes_pinned += kPageSize;
        if (stats_.bytes_pinned > stats_.peak_bytes_pinned) {
          stats_.peak_bytes_pinned = stats_.bytes_pinned;
        }
      }
      stats_.hits++;
      metrics.hits->Increment();
      metrics.bytes_pinned->Set(stats_.bytes_pinned);
      metrics.peak_bytes_pinned->Set(stats_.peak_bytes_pinned);
      return PageRef(this, frame);
    }
  }

  // Miss: read + verify outside the lock so slow I/O does not serialise
  // unrelated pins.
  STRDB_ASSIGN_OR_RETURN(
      std::string page, env_->ReadAt(path, page_index * kPageSize, kPageSize));
  uint32_t expect = static_cast<uint8_t>(page[kPagePayload]) |
                    (static_cast<uint32_t>(
                         static_cast<uint8_t>(page[kPagePayload + 1]))
                     << 8) |
                    (static_cast<uint32_t>(
                         static_cast<uint8_t>(page[kPagePayload + 2]))
                     << 16) |
                    (static_cast<uint32_t>(
                         static_cast<uint8_t>(page[kPagePayload + 3]))
                     << 24);
  page.resize(static_cast<size_t>(kPagePayload));
  if (Crc32(page) != expect) {
    return Status::DataLoss("page " + std::to_string(page_index) + " of '" +
                            path + "': checksum mismatch");
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    auto frame = std::make_unique<Frame>();
    frame->key = key;
    frame->payload = std::move(page);
    it = frames_.emplace(key, std::move(frame)).first;
    stats_.bytes_cached += kPageSize;
    stats_.misses++;
    metrics.misses->Increment();
    EvictUntilFitsLocked();
  } else {
    // A concurrent pin loaded it first; ours was wasted work.
    stats_.hits++;
    metrics.hits->Increment();
  }
  Frame* frame = it->second.get();
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
  if (frame->pins++ == 0) {
    stats_.bytes_pinned += kPageSize;
    if (stats_.bytes_pinned > stats_.peak_bytes_pinned) {
      stats_.peak_bytes_pinned = stats_.bytes_pinned;
    }
  }
  metrics.bytes_cached->Set(stats_.bytes_cached);
  metrics.bytes_pinned->Set(stats_.bytes_pinned);
  metrics.peak_bytes_pinned->Set(stats_.peak_bytes_pinned);
  return PageRef(this, frame);
}

void BufferPool::Unpin(void* opaque) {
  PagerMetrics& metrics = PagerMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame = static_cast<Frame*>(opaque);
  if (--frame->pins == 0) {
    stats_.bytes_pinned -= kPageSize;
    frame->lru_pos = lru_.insert(lru_.end(), frame);
    frame->in_lru = true;
    EvictUntilFitsLocked();
    metrics.bytes_pinned->Set(stats_.bytes_pinned);
    metrics.bytes_cached->Set(stats_.bytes_cached);
  }
}

void BufferPool::EvictUntilFitsLocked() {
  PagerMetrics& metrics = PagerMetrics::Get();
  while (stats_.bytes_cached > options_.capacity_bytes && !lru_.empty()) {
    Frame* victim = lru_.front();
    lru_.pop_front();
    frames_.erase(victim->key);  // frees victim
    stats_.bytes_cached -= kPageSize;
    stats_.evictions++;
    metrics.evictions->Increment();
  }
  metrics.bytes_cached->Set(stats_.bytes_cached);
}

void BufferPool::Clear() {
  PagerMetrics& metrics = PagerMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame* frame : lru_) {
    frames_.erase(frame->key);
    stats_.bytes_cached -= kPageSize;
  }
  lru_.clear();
  metrics.bytes_cached->Set(stats_.bytes_cached);
}

PagerStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const std::string& PageRef::data() const {
  return static_cast<BufferPool::Frame*>(frame_)->payload;
}

void PageRef::Release() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
}

}  // namespace strdb
