#ifndef STRDB_CORE_RNG_H_
#define STRDB_CORE_RNG_H_

#include <cstdint>
#include <string>

#include "core/alphabet.h"

namespace strdb {

// A small deterministic PRNG (splitmix64) used by tests, benches and the
// synthetic-workload generators.  Seeded explicitly so every experiment is
// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound).  `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int Range(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool Coin() { return (Next() & 1) != 0; }

  // A uniform random Σ-string of length exactly `len`.
  std::string String(const Alphabet& alphabet, int len) {
    std::string out;
    out.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      out.push_back(alphabet.CharOf(
          static_cast<Sym>(Below(static_cast<uint64_t>(alphabet.size())))));
    }
    return out;
  }

  // A uniform random Σ-string with length in [min_len, max_len].
  std::string String(const Alphabet& alphabet, int min_len, int max_len) {
    return String(alphabet, Range(min_len, max_len));
  }

 private:
  uint64_t state_;
};

}  // namespace strdb

#endif  // STRDB_CORE_RNG_H_
