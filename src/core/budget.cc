#include "core/budget.h"

namespace strdb {

namespace {

std::string LimitText(int64_t limit) {
  return limit > 0 ? std::to_string(limit) : std::string("-");
}

}  // namespace

ResourceBudget::ResourceBudget(ResourceLimits limits, ResourceBudget* parent,
                               const char* scope)
    : limits_(limits),
      parent_(parent),
      scope_(scope),
      start_(std::chrono::steady_clock::now()) {}

ResourceBudget::~ResourceBudget() {
  // Hand every forwarded charge back.  The counters hold exactly what
  // was forwarded: charges are mirrored to the parent unconditionally,
  // including the one that overshot a limit (charge-then-check on both
  // sides keeps the two accounts in lockstep with no rollback paths).
  if (parent_ != nullptr) {
    parent_->Release(steps_used(), rows_used(), cached_bytes_used());
  }
}

void ResourceBudget::Release(int64_t steps, int64_t rows,
                             int64_t cached_bytes) {
  if (steps != 0) steps_.fetch_sub(steps, std::memory_order_relaxed);
  if (rows != 0) rows_.fetch_sub(rows, std::memory_order_relaxed);
  if (cached_bytes != 0) {
    cached_bytes_.fetch_sub(cached_bytes, std::memory_order_relaxed);
  }
  if (parent_ != nullptr) parent_->Release(steps, rows, cached_bytes);
}

int64_t ResourceBudget::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

Status ResourceBudget::Exhausted(const char* dimension, int64_t used,
                                 int64_t limit) const {
  return Status::ResourceExhausted(
      std::string(scope_) + " budget: " + dimension + " (" +
      std::to_string(used) + " of " + std::to_string(limit) + ") exhausted");
}

Status ResourceBudget::ChargeSteps(int64_t n) {
  return ChargeStepsImpl(n, /*direct=*/true);
}

Status ResourceBudget::ChargeStepsImpl(int64_t n, bool direct) {
  int64_t total = steps_.fetch_add(n, std::memory_order_relaxed) + n;
  // Mirror into the parent before checking anything so the accounts
  // never diverge; its verdict only surfaces when our own limit holds.
  Status parent_verdict =
      parent_ != nullptr ? parent_->ChargeStepsImpl(n, /*direct=*/false)
                         : Status::OK();
  if (limits_.max_steps > 0 && total > limits_.max_steps) {
    return Exhausted("search steps", total, limits_.max_steps);
  }
  STRDB_RETURN_IF_ERROR(parent_verdict);
  // The deadline needs a clock read; amortise it over charge batches.
  // Only directly charged budgets consult their clock: a forwarded
  // charge checks the parent's step limit but never its deadline, so a
  // long-lived parent (the server's global admission account) with a
  // deadline_ms set cannot start failing every child once its own
  // uptime exceeds it.
  if (direct && limits_.deadline_ms > 0 &&
      total / kDeadlineCheckInterval != (total - n) / kDeadlineCheckInterval) {
    return CheckDeadline();
  }
  return Status::OK();
}

Status ResourceBudget::ChargeRows(int64_t n) {
  int64_t total = rows_.fetch_add(n, std::memory_order_relaxed) + n;
  Status parent_verdict =
      parent_ != nullptr ? parent_->ChargeRows(n) : Status::OK();
  if (limits_.max_rows > 0 && total > limits_.max_rows) {
    return Exhausted("result rows", total, limits_.max_rows);
  }
  return parent_verdict;
}

Status ResourceBudget::ChargeCachedBytes(int64_t n) {
  int64_t total = cached_bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  Status parent_verdict =
      parent_ != nullptr ? parent_->ChargeCachedBytes(n) : Status::OK();
  if (limits_.max_cached_bytes > 0 && total > limits_.max_cached_bytes) {
    return Exhausted("cached bytes", total, limits_.max_cached_bytes);
  }
  return parent_verdict;
}

Status ResourceBudget::CheckDeadline() const {
  if (limits_.deadline_ms <= 0) return Status::OK();
  int64_t ms = elapsed_ms();
  if (ms > limits_.deadline_ms) {
    return Status::ResourceExhausted(
        std::string(scope_) + " budget: wall-clock deadline (" +
        std::to_string(ms) + "ms of " + std::to_string(limits_.deadline_ms) +
        "ms) exhausted");
  }
  return Status::OK();
}

std::string ResourceBudget::ToString() const {
  std::string out = "steps=" + std::to_string(steps_used()) + "/" +
                    LimitText(limits_.max_steps);
  out += " rows=" + std::to_string(rows_used()) + "/" +
         LimitText(limits_.max_rows);
  out += " cached_bytes=" + std::to_string(cached_bytes_used()) + "/" +
         LimitText(limits_.max_cached_bytes);
  out += " elapsed_ms=" + std::to_string(elapsed_ms()) + "/" +
         LimitText(limits_.deadline_ms);
  return out;
}

}  // namespace strdb
