#include "core/thread_pool.h"

#include <algorithm>

namespace strdb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn,
                             int max_chunks) {
  if (n <= 0) return;
  if (max_chunks <= 0) max_chunks = num_threads() * 4;
  int64_t chunks = std::min<int64_t>(n, std::max(1, max_chunks));
  if (num_threads() <= 1 || chunks == 1) {
    fn(0, n);
    return;
  }
  int64_t per = (n + chunks - 1) / chunks;
  for (int64_t begin = 0; begin < n; begin += per) {
    int64_t end = std::min(n, begin + per);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace strdb
