#include "core/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/metrics.h"

namespace strdb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_ || stop_) {
      return Status::Unavailable("thread pool is shutting down");
    }
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
  return Status::OK();
}

void ThreadPool::Wait() {
  std::exception_ptr rethrow;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    std::swap(rethrow, first_exception_);
  }
  if (rethrow != nullptr) std::rethrow_exception(rethrow);
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

Status ThreadPool::Shutdown(int64_t deadline_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  accepting_ = false;
  if (deadline_ms <= 0) {
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    return Status::OK();
  }
  bool drained =
      idle_cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                        [this] { return pending_ == 0; });
  if (drained) return Status::OK();
  return Status::ResourceExhausted(
      "thread pool shutdown deadline (" + std::to_string(deadline_ms) +
      "ms) exhausted with " + std::to_string(pending_) + " task(s) pending");
}

bool ThreadPool::shutting_down() const {
  std::unique_lock<std::mutex> lock(mu_);
  return !accepting_ || stop_;
}

int64_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn,
                             int max_chunks) {
  if (n <= 0) return;
  if (max_chunks <= 0) max_chunks = num_threads() * 4;
  int64_t chunks = std::min<int64_t>(n, std::max(1, max_chunks));
  if (num_threads() <= 1 || chunks == 1) {
    fn(0, n);
    return;
  }
  MetricsRegistry::Global().GetCounter("core.pool.parallel_for")->Increment();
  // One completion latch per call: this caller blocks on its own chunks
  // only, and a chunk exception lands in this latch, not in the
  // pool-wide slot (concurrent callers never see each other's failures).
  struct Latch {
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t remaining = 0;
    std::exception_ptr first_exception;
  };
  auto latch = std::make_shared<Latch>();
  int64_t per = (n + chunks - 1) / chunks;
  latch->remaining = (n + per - 1) / per;
  for (int64_t begin = 0; begin < n; begin += per) {
    int64_t end = std::min(n, begin + per);
    auto chunk = [latch, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(latch->mu);
        if (latch->first_exception == nullptr) {
          latch->first_exception = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->done_cv.notify_all();
    };
    // A pool mid-shutdown rejects the submission; the chunk then runs
    // inline so the latch still drains and callers never deadlock on a
    // closing pool.
    if (!Submit(chunk).ok()) chunk();
  }
  std::exception_ptr rethrow;
  {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->done_cv.wait(lock, [&latch] { return latch->remaining == 0; });
    rethrow = latch->first_exception;
  }
  if (rethrow != nullptr) std::rethrow_exception(rethrow);
}

void ThreadPool::WorkerLoop() {
  Counter* executed = MetricsRegistry::Global().GetCounter("core.pool.tasks");
  Counter* failed =
      MetricsRegistry::Global().GetCounter("core.pool.task_exceptions");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    executed->Increment();
    if (thrown != nullptr) failed->Increment();
    // The decrement must happen on every path — a throwing task used to
    // leave pending_ forever positive and Wait() blocked.
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace strdb
