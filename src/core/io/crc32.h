#ifndef STRDB_CORE_IO_CRC32_H_
#define STRDB_CORE_IO_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace strdb {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
// framing every persisted artifact in this codebase: WAL records,
// snapshot files and serialized automata.  Dependency-free and
// table-driven; Crc32("123456789") == 0xCBF43926 (the standard check
// value, asserted in tests).
uint32_t Crc32(const void* data, size_t n);

inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

// Fixed-width lower-case hex rendering used by the on-disk formats
// ("0xcbf43926" without the prefix: "cbf43926").
std::string Crc32Hex(uint32_t crc);

// Parses the Crc32Hex rendering; returns false on malformed input.
bool ParseCrc32Hex(const std::string& hex, uint32_t* out);

}  // namespace strdb

#endif  // STRDB_CORE_IO_CRC32_H_
