#include "core/io/crc32.h"

#include <array>

namespace strdb {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc32Hex(const std::string& hex, uint32_t* out) {
  if (hex.size() != 8) return false;
  uint32_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace strdb
