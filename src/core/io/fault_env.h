#ifndef STRDB_CORE_IO_FAULT_ENV_H_
#define STRDB_CORE_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/io/env.h"
#include "core/rng.h"

namespace strdb {

class FaultInjectedWritableFile;

// What a FaultInjectingEnv should break.  Operation indices are 0-based
// and count every Env/WritableFile call that touches the filesystem
// (Append, Sync, Close, open, read, rename, ...), in execution order —
// deterministic for a deterministic workload, which is what makes a
// crash-point *sweep* possible: run once to count the ops, then re-run
// once per index.
struct FaultPlan {
  // Op index at which the simulated process dies: the op itself does not
  // take effect (except a torn Append, below) and every later op fails.
  // -1 = never.
  int64_t crash_at_op = -1;
  // A crash landing on an Append first persists a seeded-random strict
  // prefix of the data — the torn write a real power loss produces.
  bool torn_write_on_crash = true;
  // Op indices that fail once with kUnavailable.  The retried operation
  // occupies the *next* index, so a retry loop recovers unless the plan
  // lists consecutive indices deeper than its retry budget.
  std::vector<int64_t> transient_at;
  // > 0: every op with index % transient_every == transient_every - 1
  // fails with kUnavailable (a flaky-disk soak mode).
  int64_t transient_every = 0;
};

// A deterministic fault-injecting Env decorator (cf. LevelDB's
// FaultInjectionTestEnv, but with a seeded RNG and an op-indexed plan so
// every run is reproducible bit-for-bit).  All side effects pass through
// to `base` until the plan says otherwise; after a crash no operation
// reaches the filesystem again, modelling process death.  SleepMs is
// recorded but does not sleep, so exponential backoff is instantaneous
// and observable in tests.
//
// Thread safe; WritableFiles it hands out must not outlive the env.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env* base, uint64_t seed);

  // Installs a new plan and rewinds the op counter and crash flag.
  void Reset(FaultPlan plan);

  // Ops attempted so far (including faulted ones).
  int64_t ops() const;
  bool crashed() const;
  // Total milliseconds of backoff requested via SleepMs.
  int64_t slept_ms() const;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadAt(const std::string& path, int64_t offset,
                             int64_t n) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, int64_t size) override;
  Status SyncDir(const std::string& path) override;
  void SleepMs(int64_t ms) override;

 private:
  friend class FaultInjectedWritableFile;

  // Charges one op against the plan.  Returns OK when the op may
  // proceed; kUnavailable when it is faulted.  `*crash_now` (optional)
  // is set when this op is the crash point itself (Append uses it to
  // produce a torn write).
  Status Gate(const char* op, bool* crash_now = nullptr);

  // Seeded strict-prefix length for a torn write of `n` bytes.
  size_t TornLength(size_t n);

  bool torn_write_on_crash() const;

  Env* const base_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultPlan plan_;
  int64_t ops_ = 0;
  bool crashed_ = false;
  int64_t slept_ms_ = 0;
};

}  // namespace strdb

#endif  // STRDB_CORE_IO_FAULT_ENV_H_
