#include "core/io/env.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace strdb {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  std::string msg = op + " '" + path + "': " + strerror(err);
  // EINTR (and transient resource pressure) are worth retrying; anything
  // else is a hard error.
  if (err == EINTR || err == EAGAIN || err == ENOSPC) {
    return Status::Unavailable(std::move(msg));
  }
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::Internal(std::move(msg));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const std::string& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::string> ReadAt(const std::string& path, int64_t offset,
                             int64_t n) override {
    if (offset < 0 || n < 0) {
      return Status::InvalidArgument("ReadAt: negative offset or length");
    }
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    out.resize(static_cast<size_t>(n));
    size_t done = 0;
    while (done < out.size()) {
      ssize_t got = ::pread(fd, &out[done], out.size() - done,
                            static_cast<off_t>(offset) + done);
      if (got < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("pread", path, err);
      }
      if (got == 0) {
        ::close(fd);
        return Status::DataLoss("ReadAt '" + path + "': short read at offset " +
                                std::to_string(offset + done));
      }
      done += static_cast<size_t>(got);
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("mkdir", path, errno);
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status Truncate(const std::string& path, int64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open(dir)", path, errno);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync(dir)", path, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

Result<std::string> Env::ReadAt(const std::string& path, int64_t offset,
                                int64_t n) {
  if (offset < 0 || n < 0) {
    return Status::InvalidArgument("ReadAt: negative offset or length");
  }
  Result<std::string> whole = ReadFile(path);
  if (!whole.ok()) return whole.status();
  const std::string& bytes = whole.value();
  if (static_cast<uint64_t>(offset) + static_cast<uint64_t>(n) > bytes.size()) {
    return Status::DataLoss("ReadAt '" + path + "': short read at offset " +
                            std::to_string(offset));
  }
  return bytes.substr(static_cast<size_t>(offset), static_cast<size_t>(n));
}

void Env::SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Env* Env::Posix() {
  // Leaked intentionally: storage handles may outlive static destruction
  // order (same policy as MetricsRegistry::Global).
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace strdb
