#include "core/io/fault_env.h"

#include <algorithm>

namespace strdb {

// Wraps a base WritableFile, charging every call against the env's plan.
class FaultInjectedWritableFile : public WritableFile {
 public:
  FaultInjectedWritableFile(FaultInjectingEnv* env,
                            std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const std::string& data) override {
    bool crash_now = false;
    Status gate = env_->Gate("append", &crash_now);
    if (!gate.ok()) {
      if (crash_now && env_->torn_write_on_crash()) {
        // The crash lands mid-write: a strict prefix reaches the disk.
        size_t torn = env_->TornLength(data.size());
        if (torn > 0) base_->Append(data.substr(0, torn));
      }
      return gate;
    }
    return base_->Append(data);
  }

  Status Sync() override {
    STRDB_RETURN_IF_ERROR(env_->Gate("sync"));
    return base_->Sync();
  }

  Status Close() override {
    STRDB_RETURN_IF_ERROR(env_->Gate("close"));
    return base_->Close();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

void FaultInjectingEnv::Reset(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  ops_ = 0;
  crashed_ = false;
  slept_ms_ = 0;
}

int64_t FaultInjectingEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int64_t FaultInjectingEnv::slept_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slept_ms_;
}

Status FaultInjectingEnv::Gate(const char* op, bool* crash_now) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t idx = ops_++;
  if (crash_now != nullptr) *crash_now = false;
  if (crashed_) {
    return Status::Unavailable(std::string("simulated crash: ") + op +
                               " after process death");
  }
  if (plan_.crash_at_op >= 0 && idx >= plan_.crash_at_op) {
    crashed_ = true;
    if (crash_now != nullptr) *crash_now = true;
    return Status::Unavailable(std::string("simulated crash at op ") +
                               std::to_string(idx) + " (" + op + ")");
  }
  bool transient =
      (plan_.transient_every > 0 &&
       idx % plan_.transient_every == plan_.transient_every - 1) ||
      std::find(plan_.transient_at.begin(), plan_.transient_at.end(), idx) !=
          plan_.transient_at.end();
  if (transient) {
    return Status::Unavailable(std::string("injected transient fault at op ") +
                               std::to_string(idx) + " (" + op + ")");
  }
  return Status::OK();
}

size_t FaultInjectingEnv::TornLength(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0) return 0;
  return static_cast<size_t>(rng_.Below(static_cast<uint64_t>(n)));
}

bool FaultInjectingEnv::torn_write_on_crash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_.torn_write_on_crash;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  STRDB_RETURN_IF_ERROR(Gate("open"));
  STRDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectedWritableFile>(this, std::move(base)));
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  STRDB_RETURN_IF_ERROR(Gate("read"));
  return base_->ReadFile(path);
}

Result<std::string> FaultInjectingEnv::ReadAt(const std::string& path,
                                              int64_t offset, int64_t n) {
  STRDB_RETURN_IF_ERROR(Gate("readat"));
  return base_->ReadAt(path, offset, n);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  // Existence probes are metadata-only and failure-free; keeping them out
  // of the op count keeps sweep indices aligned with effectful I/O.
  return base_->FileExists(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  STRDB_RETURN_IF_ERROR(Gate("listdir"));
  return base_->ListDir(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  STRDB_RETURN_IF_ERROR(Gate("mkdir"));
  return base_->CreateDir(path);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  STRDB_RETURN_IF_ERROR(Gate("rename"));
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  STRDB_RETURN_IF_ERROR(Gate("remove"));
  return base_->Remove(path);
}

Status FaultInjectingEnv::Truncate(const std::string& path, int64_t size) {
  STRDB_RETURN_IF_ERROR(Gate("truncate"));
  return base_->Truncate(path, size);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  STRDB_RETURN_IF_ERROR(Gate("syncdir"));
  return base_->SyncDir(path);
}

void FaultInjectingEnv::SleepMs(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slept_ms_ += ms;
}

}  // namespace strdb
