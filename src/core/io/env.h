#ifndef STRDB_CORE_IO_ENV_H_
#define STRDB_CORE_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace strdb {

// An append-only file handle.  Durability contract: data is guaranteed
// on stable storage only after Sync() returns OK — Append alone may sit
// in OS buffers indefinitely.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const std::string& data) = 0;
  // fsync(2): flush file data + metadata to stable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// The seam between the storage layer and the operating system.  All
// filesystem access in src/storage goes through an Env so tests can
// substitute a FaultInjectingEnv (core/io/fault_env.h) and drive the
// recovery path through every failure the real world can produce.
//
// Error taxonomy: kUnavailable marks failures a caller may retry
// (interrupted syscalls, injected transient faults); kNotFound /
// kInvalidArgument / kInternal are permanent.
class Env {
 public:
  virtual ~Env() = default;

  // Opens `path` for appending; `truncate` discards existing content.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  // Reads the whole file (storage artifacts are small relative to RAM;
  // snapshot/WAL recovery wants the bytes contiguously anyway).
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Reads exactly [offset, offset + n) of `path` — the paged-storage
  // read primitive: the buffer pool fetches one 16 KiB page per call
  // instead of slurping the file.  Reading past EOF (even partially) is
  // kDataLoss: page extents come from a checksummed header, so a short
  // file means the file is damaged, not that the caller guessed wrong.
  // The base implementation reads the whole file and slices, which is
  // correct for any Env; PosixEnv overrides it with pread(2).
  virtual Result<std::string> ReadAt(const std::string& path, int64_t offset,
                                     int64_t n);

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  // mkdir -p: OK when the directory already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  // rename(2): atomic within a filesystem — the commit primitive for
  // snapshot/CURRENT installation.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  // Cuts `path` to its first `size` bytes (WAL torn-tail repair).
  virtual Status Truncate(const std::string& path, int64_t size) = 0;
  // fsyncs the directory itself so renames/unlinks inside it survive a
  // crash (POSIX requires a separate sync of the parent directory).
  virtual Status SyncDir(const std::string& path) = 0;

  // Backoff hook: the retry loop sleeps through the Env so the fault
  // injector can make backoff instantaneous (and observable) in tests.
  virtual void SleepMs(int64_t ms);

  // The process-wide real (POSIX) implementation.
  static Env* Posix();
};

}  // namespace strdb

#endif  // STRDB_CORE_IO_ENV_H_
