#ifndef STRDB_CORE_THREAD_POOL_H_
#define STRDB_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strdb {

// A fixed-size worker pool.  The engine uses it to partition tuple
// batches across cores for σ_A acceptance checks; results are merged in
// submission order by the caller, so parallel evaluation stays
// deterministic regardless of completion order.
//
// Exception safety: a throwing task never terminates the process.  The
// worker catches it, records the first one, and completion bookkeeping
// runs regardless, so Wait()/ParallelFor cannot deadlock on a failed
// task.  Wait() rethrows the first exception from plain Submit() tasks;
// ParallelFor rethrows the first exception from its own chunks (and only
// its own — concurrent callers are isolated).
class ThreadPool {
 public:
  // `num_threads` <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  // Drains the queue (queued tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // first exception any of them threw (if any).  Must be called from
  // outside the pool: a worker task calling Wait() (or ParallelFor) would
  // deadlock once every worker blocks.
  void Wait();

  // Runs fn(begin, end) over [0, n) split into roughly equal chunks (at
  // most `max_chunks`, default 4 per worker), blocking until all chunks
  // complete.  Completion is tracked by a per-call latch, so concurrent
  // ParallelFor calls from different threads return as soon as their own
  // chunks drain instead of waiting for the pool to go globally idle.
  // With a single worker the chunks run inline on the calling thread, so
  // single-core machines pay no synchronisation cost.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn,
                   int max_chunks = 0);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait() waits for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t pending_ = 0;  // queued + running tasks
  std::exception_ptr first_exception_;  // from plain Submit() tasks
  bool stop_ = false;
};

}  // namespace strdb

#endif  // STRDB_CORE_THREAD_POOL_H_
