#ifndef STRDB_CORE_THREAD_POOL_H_
#define STRDB_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strdb {

// A fixed-size worker pool.  The engine uses it to partition tuple
// batches across cores for σ_A acceptance checks; results are merged in
// submission order by the caller, so parallel evaluation stays
// deterministic regardless of completion order.
class ThreadPool {
 public:
  // `num_threads` <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.  Must be called from
  // outside the pool: a worker task calling Wait() (or ParallelFor) would
  // deadlock once every worker blocks.
  void Wait();

  // Runs fn(begin, end) over [0, n) split into roughly equal chunks (at
  // most `max_chunks`, default 4 per worker), blocking until all chunks
  // complete.  With a single worker the chunks run inline on the calling
  // thread, so single-core machines pay no synchronisation cost.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn,
                   int max_chunks = 0);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait() waits for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t pending_ = 0;  // queued + running tasks
  bool stop_ = false;
};

}  // namespace strdb

#endif  // STRDB_CORE_THREAD_POOL_H_
