#ifndef STRDB_CORE_THREAD_POOL_H_
#define STRDB_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"

namespace strdb {

// A fixed-size worker pool.  The engine uses it to partition tuple
// batches across cores for σ_A acceptance checks; results are merged in
// submission order by the caller, so parallel evaluation stays
// deterministic regardless of completion order.  The query server uses
// a second instance as its dispatch executor, which is where the
// shutdown API below earns its keep: a long-lived daemon must be able
// to stop intake, drain in-flight work and observe whether the drain
// finished — destruction alone races tasks enqueued by other threads.
//
// Exception safety: a throwing task never terminates the process.  The
// worker catches it, records the first one, and completion bookkeeping
// runs regardless, so Wait()/ParallelFor cannot deadlock on a failed
// task.  Wait() rethrows the first exception from plain Submit() tasks;
// ParallelFor rethrows the first exception from its own chunks (and only
// its own — concurrent callers are isolated).
class ThreadPool {
 public:
  // `num_threads` <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  // Drains the queue (queued tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Fails with kUnavailable once Shutdown() has begun
  // (the task is NOT enqueued); until then it always succeeds.  Callers
  // that never shut their pool down may ignore the result.
  Status Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // first exception any of them threw (if any).  Must be called from
  // outside the pool: a worker task calling Wait() (or ParallelFor) would
  // deadlock once every worker blocks.
  void Wait();

  // Blocks until the pool is idle (no queued or running tasks) without
  // consuming recorded exceptions and without stopping intake.  Useful
  // as a quiesce point for daemons that intend to keep serving.
  void Drain();

  // Stops intake (subsequent Submit calls fail with kUnavailable) and
  // waits for queued + running tasks to finish.  With `deadline_ms` > 0
  // gives up after the deadline and returns kResourceExhausted naming
  // the number of stragglers — those tasks keep draining in the
  // background and the destructor still joins them; intake stays
  // closed either way.  Idempotent: a second call just re-waits.
  Status Shutdown(int64_t deadline_ms = 0);

  // True once Shutdown() has been called.
  bool shutting_down() const;

  // Queued-but-not-yet-running tasks (a load signal for admission
  // control; approximate by nature).
  int64_t queue_depth() const;

  // Runs fn(begin, end) over [0, n) split into roughly equal chunks (at
  // most `max_chunks`, default 4 per worker), blocking until all chunks
  // complete.  Completion is tracked by a per-call latch, so concurrent
  // ParallelFor calls from different threads return as soon as their own
  // chunks drain instead of waiting for the pool to go globally idle.
  // With a single worker the chunks run inline on the calling thread, so
  // single-core machines pay no synchronisation cost.  During shutdown
  // (when Submit rejects) the chunks run inline as well — ParallelFor
  // never fails, it only loses parallelism.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn,
                   int max_chunks = 0);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait()/Drain()/Shutdown() wait
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t pending_ = 0;  // queued + running tasks
  std::exception_ptr first_exception_;  // from plain Submit() tasks
  bool accepting_ = true;  // flipped off by Shutdown()
  bool stop_ = false;
};

}  // namespace strdb

#endif  // STRDB_CORE_THREAD_POOL_H_
