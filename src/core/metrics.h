#ifndef STRDB_CORE_METRICS_H_
#define STRDB_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace strdb {

// A monotonically increasing counter.  Wait-free; safe to bump from pool
// workers and from concurrent queries.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A point-in-time value (cache occupancy, pool queue depth): unlike a
// Counter it may go down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over non-negative int64 samples with fixed power-of-two
// bucket bounds: bucket i holds samples in [2^(i-1), 2^i) (bucket 0 holds
// {0}).  Fixed bounds keep Record() wait-free and allocation-free; the
// exponential grid resolves anything from nanoseconds to row counts to
// within a factor of two, which is all an operational dashboard needs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;  // 0 when empty
  int64_t max() const;  // 0 when empty
  // Approximate quantile (upper bound of the bucket holding it), q in
  // [0, 1].  Returns 0 when empty.
  int64_t Quantile(double q) const;
  void ResetForTest();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

// A process-wide registry of named metrics, dumped as JSON by the shell's
// `metrics` command.  Lookup allocates on first use and returns a stable
// pointer — callers (the artifact cache, the thread pool, the engine)
// resolve their instruments once and bump them lock-free afterwards.
// Instruments are never deleted, so the returned pointers stay valid for
// the life of the process; ResetForTest zeroes values without
// invalidating them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // {"counters": {...}, "gauges": {...}, "histograms": {name:
  // {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}},
  // keys sorted, no external JSON dependency.
  std::string DumpJson() const;

  // Zeroes every registered instrument (pointers stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace strdb

#endif  // STRDB_CORE_METRICS_H_
