#ifndef STRDB_CORE_STATUS_H_
#define STRDB_CORE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace strdb {

// Canonical error codes, modelled after the usual database-library set
// (Arrow/RocksDB style).  `kOk` is the absence of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kNotFound,           // a named entity (relation, variable) does not exist
  kAlreadyExists,      // attempt to redefine a named entity
  kOutOfRange,         // index/length outside the permitted range
  kResourceExhausted,  // an analysis or search exceeded its explicit budget
  kUnimplemented,      // feature intentionally not (yet) supported
  kInternal,           // invariant violation inside the library
  kUnavailable,        // transient I/O failure; safe to retry with backoff
  kDataLoss,           // persisted bytes are corrupt, truncated or torn
  kDeadlineExceeded,   // a wall-clock deadline elapsed before completion
};

// Returns the canonical lower-case name of `code`, e.g. "invalid-argument".
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value.  Functions in this library that
// can fail return `Status` (or `Result<T>`, see result.h) instead of
// throwing: the style guides this project follows forbid exceptions.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace strdb

// Propagates a non-OK status out of the current function.
#define STRDB_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::strdb::Status _strdb_status = (expr);            \
    if (!_strdb_status.ok()) return _strdb_status;     \
  } while (false)

#endif  // STRDB_CORE_STATUS_H_
