#include "core/alphabet.h"

#include <algorithm>

namespace strdb {

Result<Alphabet> Alphabet::Create(const std::string& chars) {
  std::string unique;
  for (char c : chars) {
    if (unique.find(c) == std::string::npos) unique.push_back(c);
  }
  if (unique.size() < 2) {
    return Status::InvalidArgument(
        "alphabet needs at least two distinct characters (paper §2)");
  }
  if (unique.size() > 64) {
    return Status::InvalidArgument("alphabet larger than 64 characters");
  }
  for (char c : unique) {
    if (c <= ' ' || c == '<' || c == '>') {
      return Status::InvalidArgument(
          "alphabet characters must be printable and not '<'/'>'");
    }
  }
  return Alphabet(std::move(unique));
}

Alphabet Alphabet::Binary() { return Alphabet("ab"); }

Alphabet Alphabet::Dna() { return Alphabet("acgt"); }

char Alphabet::CharOf(Sym s) const {
  if (s == kLeftEnd) return '<';
  if (s == kRightEnd) return '>';
  if (s >= 0 && s < size()) return chars_[static_cast<size_t>(s)];
  return '?';
}

Result<Sym> Alphabet::SymOf(char c) const {
  size_t pos = chars_.find(c);
  if (pos == std::string::npos) {
    return Status::InvalidArgument(std::string("character '") + c +
                                   "' not in alphabet \"" + chars_ + "\"");
  }
  return static_cast<Sym>(pos);
}

bool Alphabet::Contains(const std::string& s) const {
  return std::all_of(s.begin(), s.end(), [this](char c) {
    return chars_.find(c) != std::string::npos;
  });
}

Result<std::vector<Sym>> Alphabet::Encode(const std::string& s) const {
  std::vector<Sym> out;
  out.reserve(s.size());
  for (char c : s) {
    STRDB_ASSIGN_OR_RETURN(Sym sym, SymOf(c));
    out.push_back(sym);
  }
  return out;
}

Result<std::string> Alphabet::Decode(const std::vector<Sym>& syms) const {
  std::string out;
  out.reserve(syms.size());
  for (Sym s : syms) {
    if (IsEndmarker(s) || s >= size()) {
      return Status::InvalidArgument("symbol id outside alphabet");
    }
    out.push_back(chars_[static_cast<size_t>(s)]);
  }
  return out;
}

std::vector<std::string> Alphabet::StringsOfLength(int len) const {
  std::vector<std::string> out;
  if (len < 0) return out;
  out.push_back("");
  for (int i = 0; i < len; ++i) {
    std::vector<std::string> next;
    next.reserve(out.size() * chars_.size());
    for (const std::string& prefix : out) {
      for (char c : chars_) next.push_back(prefix + c);
    }
    out = std::move(next);
  }
  return out;
}

std::vector<std::string> Alphabet::StringsUpTo(int max_len) const {
  std::vector<std::string> out;
  for (int len = 0; len <= max_len; ++len) {
    std::vector<std::string> layer = StringsOfLength(len);
    out.insert(out.end(), layer.begin(), layer.end());
  }
  return out;
}

std::vector<Sym> Alphabet::TapeSymbols() const {
  std::vector<Sym> out;
  out.reserve(static_cast<size_t>(size()) + 2);
  for (Sym s = 0; s < size(); ++s) out.push_back(s);
  out.push_back(kLeftEnd);
  out.push_back(kRightEnd);
  return out;
}

}  // namespace strdb
