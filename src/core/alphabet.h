#ifndef STRDB_CORE_ALPHABET_H_
#define STRDB_CORE_ALPHABET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace strdb {

// A tape symbol: either an alphabet character id in [0, Alphabet::size())
// or one of the two endmarker sentinels below.  The paper writes the
// endmarkers as ⊢ (left) and ⊣ (right); a head scanning either corresponds
// to the window-formula value "undefined" (x = ε).
using Sym = int16_t;

inline constexpr Sym kLeftEnd = -1;   // ⊢: before the first character
inline constexpr Sym kRightEnd = -2;  // ⊣: after the last character

// True iff `s` is one of the endmarker sentinels.
inline bool IsEndmarker(Sym s) { return s < 0; }

// The fixed finite alphabet Σ the database designer chooses up front
// (paper §2: "this alphabet Σ is fixed beforehand ... at least two
// characters").  Immutable once constructed; cheap to copy.
class Alphabet {
 public:
  // Creates an alphabet from the distinct characters of `chars`, in order.
  // Fails unless `chars` has >= 2 distinct printable characters.
  static Result<Alphabet> Create(const std::string& chars);

  // Convenience alphabets used throughout tests, examples and benches.
  static Alphabet Binary();  // {a, b}
  static Alphabet Dna();     // {a, c, g, t}

  int size() const { return static_cast<int>(chars_.size()); }

  // The character rendered for symbol id `s`; endmarkers render as '<'
  // and '>' (only used in debug output).
  char CharOf(Sym s) const;

  // The symbol id of `c`, or kInvalidArgument if `c` is not in Σ.
  Result<Sym> SymOf(char c) const;

  // True iff every character of `s` belongs to Σ.
  bool Contains(const std::string& s) const;

  // Encodes a Σ-string into symbol ids.  Fails on foreign characters.
  Result<std::vector<Sym>> Encode(const std::string& s) const;

  // Decodes symbol ids back into characters.  Endmarkers are rejected.
  Result<std::string> Decode(const std::vector<Sym>& syms) const;

  // All strings over Σ of length exactly `len`, in lexicographic order of
  // symbol ids.  |Σ|^len strings: callers must keep `len` small.
  std::vector<std::string> StringsOfLength(int len) const;

  // All strings over Σ of length <= `max_len` (the paper's Σ^l domain
  // symbol).  Σ^0 = {ε}.
  std::vector<std::string> StringsUpTo(int max_len) const;

  // The set of tape symbols a k-FSA head can scan: Σ ∪ {⊢, ⊣}.
  std::vector<Sym> TapeSymbols() const;

  bool operator==(const Alphabet& other) const { return chars_ == other.chars_; }

 private:
  explicit Alphabet(std::string chars) : chars_(std::move(chars)) {}

  std::string chars_;
};

}  // namespace strdb

#endif  // STRDB_CORE_ALPHABET_H_
