#ifndef STRDB_CORE_RESULT_H_
#define STRDB_CORE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "core/status.h"

namespace strdb {

// A value-or-error holder: either an OK `Status` together with a `T`, or a
// non-OK `Status` and no value.  Accessing the value of an errored Result
// is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  // Implicit construction from a value (success) or a Status (failure)
  // keeps `return value;` / `return SomeError();` ergonomic, mirroring
  // arrow::Result.  Constructing from an OK status is an internal error.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace strdb

// Evaluates `rexpr` (a Result<T>), propagating its error; on success binds
// the moved-out value to `lhs`.  `lhs` may include a declaration, e.g.
//   STRDB_ASSIGN_OR_RETURN(auto fsa, CompileStringFormula(...));
#define STRDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define STRDB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define STRDB_ASSIGN_OR_RETURN_NAME(a, b) STRDB_ASSIGN_OR_RETURN_CONCAT(a, b)

#define STRDB_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  STRDB_ASSIGN_OR_RETURN_IMPL(                                              \
      STRDB_ASSIGN_OR_RETURN_NAME(_strdb_result_, __LINE__), lhs, rexpr)

#endif  // STRDB_CORE_RESULT_H_
