#include "core/metrics.h"

#include <sstream>

namespace strdb {

namespace {

// Index of the bucket holding `sample`: 0 for 0, otherwise
// 1 + floor(log2(sample)), clamped to the last bucket.
int BucketOf(int64_t sample) {
  if (sample <= 0) return 0;
  int bit = 63 - __builtin_clzll(static_cast<uint64_t>(sample));
  return bit + 1 < Histogram::kBuckets ? bit + 1 : Histogram::kBuckets - 1;
}

// Upper bound of bucket i (inclusive range end used for quantiles).
int64_t BucketUpper(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return INT64_MAX;
  return (int64_t{1} << i) - 1;
}

void UpdateMin(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void UpdateMax(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Metric names are caller-chosen strings; a quote, backslash or control
// character must not break the JSON dump.
std::string JsonEscape(const std::string& s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  UpdateMin(&min_, sample);
  UpdateMax(&max_, sample);
  buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

int64_t Histogram::Quantile(double q) const {
  int64_t n = count();
  if (n <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested sample, 1-based.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      int64_t upper = BucketUpper(i);
      return upper > max() ? max() : upper;
    }
  }
  return max();
}

void Histogram::ResetForTest() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments may be bumped by detached pool
  // workers during static destruction.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"min\": " << h->min() << ", \"max\": " << h->max()
        << ", \"p50\": " << h->Quantile(0.5)
        << ", \"p90\": " << h->Quantile(0.9)
        << ", \"p99\": " << h->Quantile(0.99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

}  // namespace strdb
