#include "core/status.h"

namespace strdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace strdb
