#ifndef STRDB_CORE_BUDGET_H_
#define STRDB_CORE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace strdb {

// Per-query resource limits.  A zero (or negative) field means
// "unlimited" for that dimension, so a default-constructed limits object
// imposes nothing.  The limits are *cumulative across the whole query*:
// unlike the per-call constants in GenerateOptions, a budget threaded
// through an evaluation charges every σ_A generation, every acceptance
// BFS and every operator's output rows against one shared account, so a
// query with many small factor combinations degrades at the same point
// as one with a single huge combination.
struct ResourceLimits {
  // Wall-clock deadline, measured from ResourceBudget construction.
  int64_t deadline_ms = 0;
  // Cumulative configuration-search steps (generation DFS + acceptance
  // BFS) across every σ_A evaluated by the query.
  int64_t max_steps = 0;
  // Cumulative rows produced by plan operators (intermediate results
  // count: they occupy memory whether or not they survive a later π/σ).
  int64_t max_rows = 0;
  // Bytes of compiled-artifact cache this query may *add* (its cold
  // footprint; cache hits are free).
  int64_t max_cached_bytes = 0;
};

// A thread-safe per-query resource account.  One ResourceBudget instance
// is created per query execution and threaded (as a pointer) through
// EvalOptions → the engine's executor → GenerateAccepted / Accepts and
// the artifact cache.  Charging is wait-free (relaxed atomics); the
// wall-clock deadline is only consulted every kDeadlineCheckInterval
// charged steps to keep clock reads off the hot path.
//
// Budgets compose hierarchically: a budget constructed with a `parent`
// forwards every charge to the parent as well (parent limits bound the
// *sum* across all live children — the server uses one long-lived
// parent as a global in-flight admission account shared by every
// session), and on destruction releases everything it forwarded, so a
// finished query hands its in-flight usage back.  The invariant, which
// tests/core_test.cc checks under TSan: at every instant the parent's
// used totals equal the sum over live children of their used totals
// (plus the parent's own direct charges), and after every child is
// destroyed the parent is back at its baseline — no lost and no
// double-counted charges.  Parent deadlines are not inherited: a child
// checks its own clock only.
//
// Every exceeded dimension yields StatusCode::kResourceExhausted with a
// message naming the dimension (and the scope for parent budgets), so
// callers can distinguish a budget error from a per-call GenerateOptions
// limit and a per-query overrun from global admission pressure.
class ResourceBudget {
 public:
  ResourceBudget() : ResourceBudget(ResourceLimits{}) {}
  explicit ResourceBudget(ResourceLimits limits)
      : ResourceBudget(limits, nullptr) {}
  // `parent` (not owned, may be nullptr) must outlive this budget.
  // `scope` names this account in error messages ("query", "server").
  ResourceBudget(ResourceLimits limits, ResourceBudget* parent,
                 const char* scope = "query");
  ~ResourceBudget();

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  const ResourceLimits& limits() const { return limits_; }
  ResourceBudget* parent() const { return parent_; }

  // Charges `n` search steps; fails once the cumulative total passes
  // max_steps or the deadline has passed (checked periodically).  With a
  // parent, the charge is forwarded (and the parent's verdict returned
  // when this budget's own limit holds).
  Status ChargeSteps(int64_t n);
  // Charges `n` result rows against max_rows.
  Status ChargeRows(int64_t n);
  // Charges `n` bytes of freshly-cached artifacts against
  // max_cached_bytes.
  Status ChargeCachedBytes(int64_t n);
  // Explicit deadline check (operator boundaries, loop heads).
  Status CheckDeadline() const;

  // Hands back previously charged amounts.  Used by child budgets (the
  // destructor releases a child's full totals from its parent) and by
  // long-lived admission accounts that track in-flight usage.
  void Release(int64_t steps, int64_t rows, int64_t cached_bytes);

  int64_t steps_used() const { return steps_.load(std::memory_order_relaxed); }
  int64_t rows_used() const { return rows_.load(std::memory_order_relaxed); }
  int64_t cached_bytes_used() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }
  int64_t elapsed_ms() const;

  // "steps=12/1000 rows=3/- ..." (a "-" limit is unlimited).
  std::string ToString() const;

 private:
  static constexpr int64_t kDeadlineCheckInterval = 8192;

  // `direct` is true for ChargeSteps callers, false for charges
  // forwarded up from a child: forwarded charges check max_steps but
  // never this budget's deadline (deadlines are not inherited, and a
  // long-lived parent's clock must not fail its children's queries).
  Status ChargeStepsImpl(int64_t n, bool direct);

  Status Exhausted(const char* dimension, int64_t used, int64_t limit) const;

  const ResourceLimits limits_;
  ResourceBudget* const parent_;
  const char* const scope_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<int64_t> steps_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> cached_bytes_{0};
};

}  // namespace strdb

#endif  // STRDB_CORE_BUDGET_H_
