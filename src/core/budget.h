#ifndef STRDB_CORE_BUDGET_H_
#define STRDB_CORE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace strdb {

// Per-query resource limits.  A zero (or negative) field means
// "unlimited" for that dimension, so a default-constructed limits object
// imposes nothing.  The limits are *cumulative across the whole query*:
// unlike the per-call constants in GenerateOptions, a budget threaded
// through an evaluation charges every σ_A generation, every acceptance
// BFS and every operator's output rows against one shared account, so a
// query with many small factor combinations degrades at the same point
// as one with a single huge combination.
struct ResourceLimits {
  // Wall-clock deadline, measured from ResourceBudget construction.
  int64_t deadline_ms = 0;
  // Cumulative configuration-search steps (generation DFS + acceptance
  // BFS) across every σ_A evaluated by the query.
  int64_t max_steps = 0;
  // Cumulative rows produced by plan operators (intermediate results
  // count: they occupy memory whether or not they survive a later π/σ).
  int64_t max_rows = 0;
  // Bytes of compiled-artifact cache this query may *add* (its cold
  // footprint; cache hits are free).
  int64_t max_cached_bytes = 0;
};

// A thread-safe per-query resource account.  One ResourceBudget instance
// is created per query execution and threaded (as a pointer) through
// EvalOptions → the engine's executor → GenerateAccepted / Accepts and
// the artifact cache.  Charging is wait-free (relaxed atomics); the
// wall-clock deadline is only consulted every kDeadlineCheckInterval
// charged steps to keep clock reads off the hot path.
//
// Every exceeded dimension yields StatusCode::kResourceExhausted with a
// message naming the dimension, so callers can distinguish a budget
// error from a per-call GenerateOptions limit.
class ResourceBudget {
 public:
  ResourceBudget() : ResourceBudget(ResourceLimits{}) {}
  explicit ResourceBudget(ResourceLimits limits);

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  const ResourceLimits& limits() const { return limits_; }

  // Charges `n` search steps; fails once the cumulative total passes
  // max_steps or the deadline has passed (checked periodically).
  Status ChargeSteps(int64_t n);
  // Charges `n` result rows against max_rows.
  Status ChargeRows(int64_t n);
  // Charges `n` bytes of freshly-cached artifacts against
  // max_cached_bytes.
  Status ChargeCachedBytes(int64_t n);
  // Explicit deadline check (operator boundaries, loop heads).
  Status CheckDeadline() const;

  int64_t steps_used() const { return steps_.load(std::memory_order_relaxed); }
  int64_t rows_used() const { return rows_.load(std::memory_order_relaxed); }
  int64_t cached_bytes_used() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }
  int64_t elapsed_ms() const;

  // "steps=12/1000 rows=3/- ..." (a "-" limit is unlimited).
  std::string ToString() const;

 private:
  static constexpr int64_t kDeadlineCheckInterval = 8192;

  Status Exhausted(const char* dimension, int64_t used, int64_t limit) const;

  const ResourceLimits limits_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<int64_t> steps_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> cached_bytes_{0};
};

}  // namespace strdb

#endif  // STRDB_CORE_BUDGET_H_
