#ifndef STRDB_RELATIONAL_RELATION_H_
#define STRDB_RELATIONAL_RELATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"

namespace strdb {

// A tuple of strings.
using Tuple = std::vector<std::string>;

// A finite relation over Σ*: a finite subset of (Σ*)^arity (paper §2).
// Arity 0 is allowed: the empty relation ∅ and the full relation {()}
// play the role of boolean query results (§4).
class StringRelation {
 public:
  explicit StringRelation(int arity) : arity_(arity) {}

  static Result<StringRelation> Create(int arity,
                                       std::vector<Tuple> tuples);

  int arity() const { return arity_; }
  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  Status Insert(Tuple tuple);
  bool Contains(const Tuple& tuple) const { return tuples_.count(tuple) > 0; }

  const std::set<Tuple>& tuples() const { return tuples_; }

  // Length of the longest string in the relation (the paper's
  // max(R, db), Eq. (2)); 0 for empty relations.
  int MaxStringLength() const;

  // Restriction to tuples whose components all have length <= l (the
  // ⟦·⟧^l truncation semantics keep only such tuples).
  StringRelation TruncatedTo(int l) const;

  bool operator==(const StringRelation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }

  std::string ToString() const;

 private:
  int arity_;
  std::set<Tuple> tuples_;
};

// A database db: a mapping from relation names to finite string
// relations (paper §2), with a fixed alphabet all strings must use.
class Database {
 public:
  explicit Database(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  const Alphabet& alphabet() const { return alphabet_; }

  // Defines or replaces relation `name`.  Every string must be over the
  // database alphabet.
  Status Put(const std::string& name, StringRelation relation);

  // Convenience: define from a tuple list.
  Status Put(const std::string& name, int arity, std::vector<Tuple> tuples);

  // Adds tuples to an existing relation (kNotFound when it is missing;
  // arity and alphabet are checked as in Put).
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples);

  // Drops relation `name`; kNotFound when it does not exist.
  Status Remove(const std::string& name);

  Result<const StringRelation*> Get(const std::string& name) const;
  bool Has(const std::string& name) const { return relations_.count(name) > 0; }

  // max over all relations of max(R, db); the quantity limit functions
  // depend on (§3, Definition 3.2 discussion).
  int MaxStringLength() const;

  const std::map<std::string, StringRelation>& relations() const {
    return relations_;
  }

  // Mutation epoch of relation `name`: a value drawn from a process-wide
  // monotone counter every time Put/InsertTuples touches the relation
  // (0 when the relation is absent).  Copies of a Database keep their
  // epochs, so derived artifacts cached on (name, epoch) — the planner's
  // statistics — stay valid across copy-on-write snapshots and only
  // recompute after an actual mutation.
  uint64_t stats_epoch(const std::string& name) const;

 private:
  Alphabet alphabet_;
  std::map<std::string, StringRelation> relations_;
  std::map<std::string, uint64_t> epochs_;
};

}  // namespace strdb

#endif  // STRDB_RELATIONAL_RELATION_H_
