#ifndef STRDB_RELATIONAL_STATS_H_
#define STRDB_RELATIONAL_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/result.h"
#include "relational/relation.h"

namespace strdb {

// Per-column summaries of a string relation, the planner's raw material:
// length histogram (expected string length sizes Σ* generation and the
// DFA acceptance-density chain), per-byte character frequency (weights
// the density walk's transitions), and a bounded distinct-prefix set
// (run locality for the paged scans).  All fields are additive over
// tuple inserts, so incremental maintenance and recomputation agree —
// the prefix set keeps the lexicographically smallest `kMaxPrefixes`
// members, which is insertion-order independent.
struct ColumnStats {
  // Lengths 0..15 bucket exactly; everything longer lands in the last.
  static constexpr int kLenBuckets = 17;
  static constexpr int kPrefixBytes = 4;
  static constexpr int kMaxPrefixes = 4096;

  int64_t total_chars = 0;
  int64_t max_len = 0;
  std::array<int64_t, kLenBuckets> len_hist{};
  std::array<int64_t, 256> char_freq{};
  // Distinct first-min(kPrefixBytes,|w|) byte prefixes; saturated means
  // more than kMaxPrefixes were seen and only the smallest are kept.
  std::set<std::string> prefixes;
  bool prefixes_saturated = false;

  // Mean string length over `rows` strings (0 for an empty column).
  double ExpectedLength(int64_t rows) const;

  bool operator==(const ColumnStats& other) const;
};

// Statistics for one relation: cardinality plus per-column summaries.
struct RelationStats {
  int arity = 0;
  int64_t rows = 0;
  std::vector<ColumnStats> columns;

  bool operator==(const RelationStats& other) const;
};

// A catalog's worth of statistics, keyed by relation name — the unit the
// storage layer persists and snapshots publish.
using StatsMap = std::map<std::string, RelationStats>;

// Full recomputation from the relation's tuples.
RelationStats ComputeRelationStats(const StringRelation& relation);
// Same, from a raw tuple list (the WAL-replay path, which has the op's
// tuples in hand but not yet a StringRelation).
RelationStats ComputeRelationStats(int arity, const std::vector<Tuple>& tuples);

// Incremental maintenance: folds `tuples` (all of `stats->arity`) into
// existing statistics.  Equivalent to recomputing over the union as long
// as the tuples are actually new to the relation.
void AddTuplesToStats(RelationStats* stats, const std::vector<Tuple>& tuples);

// Deterministic, binary-safe text codec (strings are length-prefixed),
// byte-identical across encode→decode→encode — the storage layer relies
// on this for exact round-trips through snapshots.
std::string EncodeRelationStats(const RelationStats& stats);
Result<RelationStats> DecodeRelationStats(const std::string& text);

}  // namespace strdb

#endif  // STRDB_RELATIONAL_STATS_H_
