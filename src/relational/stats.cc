#include "relational/stats.h"

#include <algorithm>
#include <string>

namespace strdb {

namespace {

void AddString(ColumnStats* col, const std::string& s) {
  const int64_t len = static_cast<int64_t>(s.size());
  col->total_chars += len;
  col->max_len = std::max(col->max_len, len);
  const int bucket =
      static_cast<int>(std::min<int64_t>(len, ColumnStats::kLenBuckets - 1));
  ++col->len_hist[static_cast<size_t>(bucket)];
  for (unsigned char c : s) ++col->char_freq[c];
  col->prefixes.insert(
      s.substr(0, static_cast<size_t>(ColumnStats::kPrefixBytes)));
  if (static_cast<int>(col->prefixes.size()) > ColumnStats::kMaxPrefixes) {
    // Keep the smallest kMaxPrefixes members: the surviving set is a
    // pure function of the distinct prefixes seen, not of their order.
    col->prefixes.erase(std::prev(col->prefixes.end()));
    col->prefixes_saturated = true;
  }
}

// Cursor over the text codec: whitespace-separated integer tokens plus
// `<len>:<bytes>` length-prefixed strings (binary safe).
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  Result<int64_t> Int() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("stats: expected int");
    return static_cast<int64_t>(
        std::stoll(text_.substr(start, pos_ - start)));
  }

  Result<std::string> Str() {
    STRDB_ASSIGN_OR_RETURN(int64_t len, Int());
    if (len < 0 || pos_ >= text_.size() || text_[pos_] != ':' ||
        pos_ + 1 + static_cast<size_t>(len) > text_.size()) {
      return Status::InvalidArgument("stats: bad string prefix");
    }
    std::string out = text_.substr(pos_ + 1, static_cast<size_t>(len));
    pos_ += 1 + static_cast<size_t>(len);
    return out;
  }

  Result<std::string> Word() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != '\n') {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("stats: expected word");
    return text_.substr(start, pos_ - start);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

double ColumnStats::ExpectedLength(int64_t rows) const {
  if (rows <= 0) return 0.0;
  return static_cast<double>(total_chars) / static_cast<double>(rows);
}

bool ColumnStats::operator==(const ColumnStats& other) const {
  return total_chars == other.total_chars && max_len == other.max_len &&
         len_hist == other.len_hist && char_freq == other.char_freq &&
         prefixes == other.prefixes &&
         prefixes_saturated == other.prefixes_saturated;
}

bool RelationStats::operator==(const RelationStats& other) const {
  return arity == other.arity && rows == other.rows &&
         columns == other.columns;
}

RelationStats ComputeRelationStats(const StringRelation& relation) {
  std::vector<Tuple> tuples(relation.tuples().begin(),
                            relation.tuples().end());
  return ComputeRelationStats(relation.arity(), tuples);
}

RelationStats ComputeRelationStats(int arity,
                                   const std::vector<Tuple>& tuples) {
  RelationStats stats;
  stats.arity = arity;
  stats.columns.resize(static_cast<size_t>(std::max(arity, 0)));
  AddTuplesToStats(&stats, tuples);
  return stats;
}

void AddTuplesToStats(RelationStats* stats, const std::vector<Tuple>& tuples) {
  stats->rows += static_cast<int64_t>(tuples.size());
  for (const Tuple& tuple : tuples) {
    for (size_t c = 0; c < tuple.size() && c < stats->columns.size(); ++c) {
      AddString(&stats->columns[c], tuple[c]);
    }
  }
}

std::string EncodeRelationStats(const RelationStats& stats) {
  std::string out = "rstats 1 " + std::to_string(stats.arity) + " " +
                    std::to_string(stats.rows) + "\n";
  for (const ColumnStats& col : stats.columns) {
    out += "col " + std::to_string(col.total_chars) + " " +
           std::to_string(col.max_len) + "\nhist";
    for (int64_t h : col.len_hist) out += " " + std::to_string(h);
    int nonzero = 0;
    for (int64_t f : col.char_freq) nonzero += f != 0 ? 1 : 0;
    out += "\nfreq " + std::to_string(nonzero);
    for (int b = 0; b < 256; ++b) {
      if (col.char_freq[static_cast<size_t>(b)] == 0) continue;
      out += " " + std::to_string(b) + " " +
             std::to_string(col.char_freq[static_cast<size_t>(b)]);
    }
    out += "\npfx " + std::string(col.prefixes_saturated ? "1" : "0") + " " +
           std::to_string(col.prefixes.size());
    for (const std::string& p : col.prefixes) {
      out += " " + std::to_string(p.size()) + ":" + p;
    }
    out += "\n";
  }
  return out;
}

Result<RelationStats> DecodeRelationStats(const std::string& text) {
  Cursor cur(text);
  STRDB_ASSIGN_OR_RETURN(std::string magic, cur.Word());
  if (magic != "rstats") return Status::InvalidArgument("stats: bad magic");
  STRDB_ASSIGN_OR_RETURN(int64_t version, cur.Int());
  if (version != 1) return Status::InvalidArgument("stats: bad version");
  RelationStats stats;
  STRDB_ASSIGN_OR_RETURN(int64_t arity, cur.Int());
  STRDB_ASSIGN_OR_RETURN(stats.rows, cur.Int());
  if (arity < 0 || arity > 1024) {
    return Status::InvalidArgument("stats: bad arity");
  }
  stats.arity = static_cast<int>(arity);
  stats.columns.resize(static_cast<size_t>(arity));
  for (ColumnStats& col : stats.columns) {
    STRDB_ASSIGN_OR_RETURN(std::string tag, cur.Word());
    if (tag != "col") return Status::InvalidArgument("stats: expected col");
    STRDB_ASSIGN_OR_RETURN(col.total_chars, cur.Int());
    STRDB_ASSIGN_OR_RETURN(col.max_len, cur.Int());
    STRDB_ASSIGN_OR_RETURN(tag, cur.Word());
    if (tag != "hist") return Status::InvalidArgument("stats: expected hist");
    for (int64_t& h : col.len_hist) {
      STRDB_ASSIGN_OR_RETURN(h, cur.Int());
    }
    STRDB_ASSIGN_OR_RETURN(tag, cur.Word());
    if (tag != "freq") return Status::InvalidArgument("stats: expected freq");
    STRDB_ASSIGN_OR_RETURN(int64_t nonzero, cur.Int());
    for (int64_t i = 0; i < nonzero; ++i) {
      STRDB_ASSIGN_OR_RETURN(int64_t byte, cur.Int());
      STRDB_ASSIGN_OR_RETURN(int64_t count, cur.Int());
      if (byte < 0 || byte > 255) {
        return Status::InvalidArgument("stats: bad freq byte");
      }
      col.char_freq[static_cast<size_t>(byte)] = count;
    }
    STRDB_ASSIGN_OR_RETURN(tag, cur.Word());
    if (tag != "pfx") return Status::InvalidArgument("stats: expected pfx");
    STRDB_ASSIGN_OR_RETURN(int64_t saturated, cur.Int());
    col.prefixes_saturated = saturated != 0;
    STRDB_ASSIGN_OR_RETURN(int64_t num_prefixes, cur.Int());
    for (int64_t i = 0; i < num_prefixes; ++i) {
      STRDB_ASSIGN_OR_RETURN(std::string p, cur.Str());
      col.prefixes.insert(std::move(p));
    }
  }
  return stats;
}

}  // namespace strdb
