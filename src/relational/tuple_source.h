#ifndef STRDB_RELATIONAL_TUPLE_SOURCE_H_
#define STRDB_RELATIONAL_TUPLE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "relational/relation.h"

namespace strdb {

// A relation that lives somewhere other than RAM.  The storage layer's
// paged heap implements this interface; it is declared here (below the
// storage layer) so the evaluator and the engine can stream tuples out
// of a spilled relation without depending on src/storage.
//
// Tuples are delivered in strict lexicographic order with no duplicates
// (heap runs are sorted at write time), so a consumer that needs set
// semantics can rely on ordering instead of re-deduplicating.
class TupleSource {
 public:
  virtual ~TupleSource() = default;

  virtual int arity() const = 0;
  virtual int64_t tuple_count() const = 0;
  // Length of the longest string in the relation — the paper's
  // max(R, db), which truncation inference needs *without* scanning.
  virtual int max_string_length() const = 0;

  // Streams every tuple, in order, as a sequence of batches.  A non-OK
  // status from `on_batch` aborts the scan and is returned unchanged;
  // the batch vector is only valid for the duration of the callback.
  virtual Status Scan(
      const std::function<Status(const std::vector<Tuple>&)>& on_batch)
      const = 0;

  // Materialises the whole relation in memory (the differential oracle,
  // and the write path when a spilled relation receives new tuples).
  // Default implementation drains Scan().
  virtual Result<StringRelation> Materialize() const;
};

// Named out-of-core relations riding alongside a Database.  Invariant
// maintained by CatalogStore: a relation name appears in exactly one of
// Database::relations() and the PagedSet.
using PagedSet = std::map<std::string, std::shared_ptr<const TupleSource>>;

}  // namespace strdb

#endif  // STRDB_RELATIONAL_TUPLE_SOURCE_H_
