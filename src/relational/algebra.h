#ifndef STRDB_RELATIONAL_ALGEBRA_H_
#define STRDB_RELATIONAL_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/result.h"
#include "fsa/fsa.h"
#include "relational/relation.h"
#include "relational/stats.h"
#include "relational/tuple_source.h"

namespace strdb {

// Alignment algebra (paper §4): relational algebra over string relations
// whose selection operator is a k-FSA, plus the domain symbols Σ* and
// Σ^l that let queries *generate* strings not present in the database.
//
// Expressions are immutable values sharing their AST.
class AlgebraExpr {
 public:
  enum class Kind : uint8_t {
    kRelation,    // a named database relation
    kSigmaStar,   // Σ*, arity 1 (infinite; see evaluation notes)
    kSigmaL,      // Σ^l = {u : |u| <= l}, arity 1
    kUnion,       // E ∪ F
    kDifference,  // E \ F
    kProduct,     // E × F
    kProject,     // π_{i1..iu} E (0-based indices here)
    kSelect,      // σ_A E
    kRestrict,    // E ∩ (Σ*)^m — identity at full semantics, a length
                  // filter at the ↓l truncation (avoids materialising
                  // (Σ^l)^m the way a literal intersection would)
  };

  // --- factories -----------------------------------------------------------
  static AlgebraExpr Relation(std::string name, int arity);
  static AlgebraExpr SigmaStar();
  static AlgebraExpr SigmaL(int l);
  static Result<AlgebraExpr> Union(AlgebraExpr a, AlgebraExpr b);
  static Result<AlgebraExpr> Difference(AlgebraExpr a, AlgebraExpr b);
  // E ∩ F, the paper's shorthand for E \ (E \ F).
  static Result<AlgebraExpr> Intersect(AlgebraExpr a, AlgebraExpr b);
  static AlgebraExpr Product(AlgebraExpr a, AlgebraExpr b);
  static Result<AlgebraExpr> Project(AlgebraExpr child,
                                     std::vector<int> columns);
  static Result<AlgebraExpr> Select(AlgebraExpr child, Fsa fsa);
  // E ∩ (Σ*)^arity, evaluated at ↓l as a length-<=l filter.
  static AlgebraExpr RestrictToDomain(AlgebraExpr child);

  Kind kind() const;
  int arity() const;

  // Accessors (valid for the kinds that carry them).
  const std::string& relation_name() const;
  int sigma_l() const;
  const AlgebraExpr& Left() const;
  const AlgebraExpr& Right() const;
  const std::vector<int>& columns() const;
  const Fsa& fsa() const;
  // The selection automaton, shared with every copy of this expression
  // (used by the engine's artifact cache to key compiled artifacts).
  std::shared_ptr<const Fsa> shared_fsa() const;

  // True iff the expression is *finitely evaluable* in the paper's
  // syntactic sense: every Σ* occurs inside a subexpression
  // σ_A(F × (Σ*)^n) with F finitely evaluable.  (The limitation
  // condition on A is a semantic matter checked by the safety analyser,
  // not here.)
  bool IsFinitelyEvaluable() const;

  std::string ToString() const;

  struct Node;

  // Identity of the underlying shared AST node.  Copies of an expression
  // share their node; the engine keys per-execution memoisation on it.
  const Node* node_identity() const { return node_.get(); }

 private:
  explicit AlgebraExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;

  friend class AlgebraEvaluator;
};

struct EvalOptions {
  // The truncation length l: every Σ* is read as Σ^l (Theorem 4.2's
  // E↓l semantics) and generated strings are bounded by l.
  int truncation = 4;
  // Tuple-count guard for intermediate results (per operator).
  int64_t max_tuples = 5'000'000;
  // Step budget forwarded to the FSA generator (per σ_A call).
  int64_t max_steps = 50'000'000;
  // Optional query-wide resource account (deadline, cumulative steps,
  // cumulative rows, cold cache bytes), shared by every operator of the
  // evaluation — unlike the per-call limits above, one runaway σ_A
  // factor chain exhausts it and the whole query degrades to a typed
  // kResourceExhausted instead of burning one call-site limit at a time.
  // Not owned; must outlive the evaluation.  nullptr = unlimited.
  ResourceBudget* budget = nullptr;
  // Out-of-core relations: a kRelation name missing from the Database is
  // looked up here and materialised (the naive evaluator is the oracle —
  // only the engine's PagedScan streams).  Not owned; nullptr = none.
  const PagedSet* paged = nullptr;
  // Persisted relation statistics (from the durable catalog's snapshot)
  // for the cost-based planner: covers paged relations the in-memory
  // Database cannot summarise, and spares re-scanning inline ones.
  // Advisory only — never consulted for answers, so stale entries cost
  // plan quality, not correctness.  Not owned; nullptr = recompute from
  // the Database on demand.
  const StatsMap* stats = nullptr;
  // Run plain-filtering σ_A through the DFA codegen tier when the
  // automaton admits it (one-way, move-deterministic, within the subset
  // caps), falling back to the reference BFS otherwise.  Answers are
  // identical either way; differential oracles pin this to false so the
  // naive evaluator stays an independent implementation.
  bool enable_dfa = true;
};

// Evaluates db(E↓l).  Selections over products containing Σ* factors are
// evaluated with the FSA *generator* (the generalized-Mealy reading of
// Definition 3.1) instead of materialising Σ^l, which keeps the common
// finitely-evaluable form σ_A(F × (Σ*)^n) polynomial in the size of F's
// value; a bare Σ* elsewhere is materialised as Σ^l (exponential in l).
Result<StringRelation> EvalAlgebra(const AlgebraExpr& expr,
                                   const Database& db,
                                   const EvalOptions& options);

}  // namespace strdb

#endif  // STRDB_RELATIONAL_ALGEBRA_H_
