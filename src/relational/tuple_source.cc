#include "relational/tuple_source.h"

namespace strdb {

Result<StringRelation> TupleSource::Materialize() const {
  StringRelation out(arity());
  Status status = Scan([&out](const std::vector<Tuple>& batch) -> Status {
    for (const Tuple& t : batch) {
      STRDB_RETURN_IF_ERROR(out.Insert(t));
    }
    return Status::OK();
  });
  if (!status.ok()) return status;
  return out;
}

}  // namespace strdb
