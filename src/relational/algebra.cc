#include "relational/algebra.h"

#include <cassert>
#include <optional>

#include "fsa/accept.h"
#include "fsa/codegen/program.h"
#include "fsa/generate.h"

namespace strdb {

struct AlgebraExpr::Node {
  Kind kind = Kind::kSigmaStar;
  int arity = 1;
  std::string name;                     // kRelation
  int l = 0;                            // kSigmaL
  std::optional<AlgebraExpr> left;      // binary ops, kProject, kSelect
  std::optional<AlgebraExpr> right;     // binary ops
  std::vector<int> columns;             // kProject
  std::shared_ptr<const Fsa> fsa;       // kSelect
};

AlgebraExpr AlgebraExpr::Relation(std::string name, int arity) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRelation;
  node->arity = arity;
  node->name = std::move(name);
  return AlgebraExpr(std::move(node));
}

AlgebraExpr AlgebraExpr::SigmaStar() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSigmaStar;
  node->arity = 1;
  return AlgebraExpr(std::move(node));
}

AlgebraExpr AlgebraExpr::SigmaL(int l) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSigmaL;
  node->arity = 1;
  node->l = l;
  return AlgebraExpr(std::move(node));
}

Result<AlgebraExpr> AlgebraExpr::Union(AlgebraExpr a, AlgebraExpr b) {
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument("union of expressions of unequal arity");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->arity = a.arity();
  node->left = std::move(a);
  node->right = std::move(b);
  return AlgebraExpr(std::move(node));
}

Result<AlgebraExpr> AlgebraExpr::Difference(AlgebraExpr a, AlgebraExpr b) {
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument(
        "difference of expressions of unequal arity");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDifference;
  node->arity = a.arity();
  node->left = std::move(a);
  node->right = std::move(b);
  return AlgebraExpr(std::move(node));
}

Result<AlgebraExpr> AlgebraExpr::Intersect(AlgebraExpr a, AlgebraExpr b) {
  STRDB_ASSIGN_OR_RETURN(AlgebraExpr inner, Difference(a, std::move(b)));
  return Difference(std::move(a), std::move(inner));
}

AlgebraExpr AlgebraExpr::Product(AlgebraExpr a, AlgebraExpr b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProduct;
  node->arity = a.arity() + b.arity();
  node->left = std::move(a);
  node->right = std::move(b);
  return AlgebraExpr(std::move(node));
}

Result<AlgebraExpr> AlgebraExpr::Project(AlgebraExpr child,
                                         std::vector<int> columns) {
  std::vector<bool> seen(static_cast<size_t>(child.arity()), false);
  for (int c : columns) {
    if (c < 0 || c >= child.arity()) {
      return Status::OutOfRange("projection column out of range");
    }
    if (seen[static_cast<size_t>(c)]) {
      return Status::InvalidArgument("projection columns must be distinct");
    }
    seen[static_cast<size_t>(c)] = true;
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProject;
  node->arity = static_cast<int>(columns.size());
  node->left = std::move(child);
  node->columns = std::move(columns);
  return AlgebraExpr(std::move(node));
}

Result<AlgebraExpr> AlgebraExpr::Select(AlgebraExpr child, Fsa fsa) {
  if (fsa.num_tapes() != child.arity()) {
    return Status::InvalidArgument(
        "selection automaton tape count differs from expression arity");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->arity = child.arity();
  node->left = std::move(child);
  node->fsa = std::make_shared<const Fsa>(std::move(fsa));
  return AlgebraExpr(std::move(node));
}

AlgebraExpr AlgebraExpr::RestrictToDomain(AlgebraExpr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRestrict;
  node->arity = child.arity();
  node->left = std::move(child);
  return AlgebraExpr(std::move(node));
}

AlgebraExpr::Kind AlgebraExpr::kind() const { return node_->kind; }
int AlgebraExpr::arity() const { return node_->arity; }
const std::string& AlgebraExpr::relation_name() const { return node_->name; }
int AlgebraExpr::sigma_l() const { return node_->l; }
const AlgebraExpr& AlgebraExpr::Left() const {
  assert(node_->left.has_value());
  return *node_->left;
}
const AlgebraExpr& AlgebraExpr::Right() const {
  assert(node_->right.has_value());
  return *node_->right;
}
const std::vector<int>& AlgebraExpr::columns() const { return node_->columns; }
const Fsa& AlgebraExpr::fsa() const { return *node_->fsa; }
std::shared_ptr<const Fsa> AlgebraExpr::shared_fsa() const {
  return node_->fsa;
}

namespace {

// Flattens nested products into a factor list (left-to-right column
// order).
void FlattenProduct(const AlgebraExpr& e, std::vector<AlgebraExpr>* out) {
  if (e.kind() == AlgebraExpr::Kind::kProduct) {
    FlattenProduct(e.Left(), out);
    FlattenProduct(e.Right(), out);
  } else {
    out->push_back(e);
  }
}

}  // namespace

bool AlgebraExpr::IsFinitelyEvaluable() const {
  switch (kind()) {
    case Kind::kRelation:
    case Kind::kSigmaL:
      return true;
    case Kind::kSigmaStar:
      return false;
    case Kind::kUnion:
    case Kind::kDifference:
    case Kind::kProduct:
      return Left().IsFinitelyEvaluable() && Right().IsFinitelyEvaluable();
    case Kind::kProject:
    case Kind::kRestrict:
      return Left().IsFinitelyEvaluable();
    case Kind::kSelect: {
      // σ_A(F × (Σ*)^n): Σ* factors are allowed directly under the
      // product here, all other factors must be finitely evaluable.
      std::vector<AlgebraExpr> factors;
      FlattenProduct(Left(), &factors);
      for (const AlgebraExpr& f : factors) {
        if (f.kind() == Kind::kSigmaStar) continue;
        if (!f.IsFinitelyEvaluable()) return false;
      }
      return true;
    }
  }
  return false;
}

std::string AlgebraExpr::ToString() const {
  switch (kind()) {
    case Kind::kRelation:
      return relation_name();
    case Kind::kSigmaStar:
      return "Sigma*";
    case Kind::kSigmaL:
      return "Sigma^" + std::to_string(sigma_l());
    case Kind::kUnion:
      return "(" + Left().ToString() + " u " + Right().ToString() + ")";
    case Kind::kDifference:
      return "(" + Left().ToString() + " \\ " + Right().ToString() + ")";
    case Kind::kProduct:
      return "(" + Left().ToString() + " x " + Right().ToString() + ")";
    case Kind::kProject: {
      std::string cols;
      for (size_t i = 0; i < columns().size(); ++i) {
        if (i > 0) cols += ",";
        cols += std::to_string(columns()[i]);
      }
      return "pi[" + cols + "](" + Left().ToString() + ")";
    }
    case Kind::kSelect:
      return "select[fsa:" + std::to_string(fsa().num_transitions()) +
             "t](" + Left().ToString() + ")";
    case Kind::kRestrict:
      return "restrict(" + Left().ToString() + ")";
  }
  return "?";
}

namespace {

class AlgebraEvaluatorImpl {
 public:
  AlgebraEvaluatorImpl(const Database& db, const EvalOptions& options)
      : db_(db), options_(options) {}

  Result<StringRelation> Eval(const AlgebraExpr& e) {
    if (options_.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options_.budget->CheckDeadline());
    }
    STRDB_ASSIGN_OR_RETURN(StringRelation out, EvalNode(e));
    if (options_.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options_.budget->ChargeRows(out.size()));
    }
    return out;
  }

 private:
  Result<StringRelation> EvalNode(const AlgebraExpr& e) {
    switch (e.kind()) {
      case AlgebraExpr::Kind::kRelation: {
        if (options_.paged != nullptr && !db_.Has(e.relation_name())) {
          auto it = options_.paged->find(e.relation_name());
          if (it != options_.paged->end()) {
            const TupleSource& source = *it->second;
            if (source.arity() != e.arity()) {
              return Status::InvalidArgument(
                  "paged relation '" + e.relation_name() + "' has arity " +
                  std::to_string(source.arity()) + ", expression expects " +
                  std::to_string(e.arity()));
            }
            return source.Materialize();
          }
        }
        STRDB_ASSIGN_OR_RETURN(const StringRelation* rel,
                               db_.Get(e.relation_name()));
        if (rel->arity() != e.arity()) {
          return Status::InvalidArgument(
              "relation '" + e.relation_name() + "' has arity " +
              std::to_string(rel->arity()) + ", expression expects " +
              std::to_string(e.arity()));
        }
        return *rel;
      }
      case AlgebraExpr::Kind::kSigmaStar:
        return Domain(options_.truncation);
      case AlgebraExpr::Kind::kSigmaL:
        return Domain(e.sigma_l());
      case AlgebraExpr::Kind::kUnion: {
        STRDB_ASSIGN_OR_RETURN(StringRelation a, Eval(e.Left()));
        STRDB_ASSIGN_OR_RETURN(StringRelation b, Eval(e.Right()));
        StringRelation out = std::move(a);
        for (const Tuple& t : b.tuples()) {
          STRDB_RETURN_IF_ERROR(out.Insert(t));
        }
        return CheckSize(std::move(out));
      }
      case AlgebraExpr::Kind::kDifference: {
        STRDB_ASSIGN_OR_RETURN(StringRelation a, Eval(e.Left()));
        STRDB_ASSIGN_OR_RETURN(StringRelation b, Eval(e.Right()));
        StringRelation out(a.arity());
        for (const Tuple& t : a.tuples()) {
          if (!b.Contains(t)) {
            STRDB_RETURN_IF_ERROR(out.Insert(t));
          }
        }
        return out;
      }
      case AlgebraExpr::Kind::kProduct: {
        STRDB_ASSIGN_OR_RETURN(StringRelation a, Eval(e.Left()));
        STRDB_ASSIGN_OR_RETURN(StringRelation b, Eval(e.Right()));
        StringRelation out(a.arity() + b.arity());
        for (const Tuple& ta : a.tuples()) {
          for (const Tuple& tb : b.tuples()) {
            Tuple t = ta;
            t.insert(t.end(), tb.begin(), tb.end());
            STRDB_RETURN_IF_ERROR(out.Insert(std::move(t)));
          }
          if (out.size() > options_.max_tuples) {
            return Status::ResourceExhausted("product exceeds max_tuples");
          }
        }
        return out;
      }
      case AlgebraExpr::Kind::kProject: {
        STRDB_ASSIGN_OR_RETURN(StringRelation child, Eval(e.Left()));
        StringRelation out(e.arity());
        for (const Tuple& t : child.tuples()) {
          Tuple proj;
          proj.reserve(e.columns().size());
          for (int c : e.columns()) {
            proj.push_back(t[static_cast<size_t>(c)]);
          }
          STRDB_RETURN_IF_ERROR(out.Insert(std::move(proj)));
        }
        return out;
      }
      case AlgebraExpr::Kind::kSelect:
        return EvalSelect(e);
      case AlgebraExpr::Kind::kRestrict: {
        STRDB_ASSIGN_OR_RETURN(StringRelation child, Eval(e.Left()));
        return child.TruncatedTo(options_.truncation);
      }
    }
    return Status::Internal("unknown algebra node kind");
  }

 private:
  Result<StringRelation> CheckSize(StringRelation rel) const {
    if (rel.size() > options_.max_tuples) {
      return Status::ResourceExhausted("intermediate relation exceeds " +
                                       std::to_string(options_.max_tuples) +
                                       " tuples");
    }
    return rel;
  }

  Result<StringRelation> Domain(int l) const {
    StringRelation out(1);
    for (std::string& s : db_.alphabet().StringsUpTo(l)) {
      STRDB_RETURN_IF_ERROR(out.Insert({std::move(s)}));
    }
    return CheckSize(std::move(out));
  }

  Result<StringRelation> EvalSelect(const AlgebraExpr& e) {
    const Fsa& fsa = e.fsa();
    std::vector<AlgebraExpr> factors;
    FlattenProduct(e.Left(), &factors);
    bool has_star = false;
    for (const AlgebraExpr& f : factors) {
      if (f.kind() == AlgebraExpr::Kind::kSigmaStar) has_star = true;
    }
    if (!has_star || !fsa.FinalStatesHaveNoExits()) {
      // Plain filtering semantics: evaluate the child (Σ* becomes Σ^l)
      // and keep the accepted tuples.
      STRDB_ASSIGN_OR_RETURN(StringRelation child, Eval(e.Left()));
      StringRelation out(e.arity());
      AcceptOptions accept_opts;
      accept_opts.budget = options_.budget;
      // The DFA tier, compiled per call (no cache at this layer): a
      // refusal — two-way machine, head-schedule nondeterminism, subset
      // blowup — silently drops to the reference BFS.
      std::optional<DfaProgram> dfa;
      if (options_.enable_dfa) {
        Result<DfaProgram> compiled = DfaProgram::Compile(fsa);
        if (compiled.ok()) dfa.emplace(std::move(compiled).value());
      }
      DfaScratch dfa_scratch;
      for (const Tuple& t : child.tuples()) {
        bool acc;
        if (dfa.has_value()) {
          STRDB_ASSIGN_OR_RETURN(AcceptStats stats,
                                 dfa->Accept(t, &dfa_scratch, accept_opts));
          acc = stats.accepted;
        } else {
          STRDB_ASSIGN_OR_RETURN(acc, Accepts(fsa, t, accept_opts));
        }
        if (acc) {
          STRDB_RETURN_IF_ERROR(out.Insert(t));
        }
      }
      return out;
    }
    // The finitely-evaluable form σ_A(F × (Σ*)^n): run the automaton as
    // a generator, with the Σ* columns free and everything else fixed
    // from the materialised factors.
    std::vector<std::optional<StringRelation>> values;  // per factor
    std::vector<int> factor_offset;
    int offset = 0;
    for (const AlgebraExpr& f : factors) {
      factor_offset.push_back(offset);
      offset += f.arity();
      if (f.kind() == AlgebraExpr::Kind::kSigmaStar) {
        values.emplace_back(std::nullopt);
      } else {
        STRDB_ASSIGN_OR_RETURN(StringRelation v, Eval(f));
        values.emplace_back(std::move(v));
      }
    }
    GenerateOptions gen_opts;
    gen_opts.max_len = options_.truncation;
    gen_opts.max_steps = options_.max_steps;
    gen_opts.max_results = options_.max_tuples;
    gen_opts.budget = options_.budget;

    StringRelation out(e.arity());
    // Iterate the cartesian product of the materialised factors.
    std::vector<std::set<Tuple>::const_iterator> iters;
    std::vector<const std::set<Tuple>*> sets;
    for (const auto& v : values) {
      if (!v.has_value()) continue;
      sets.push_back(&v->tuples());
      iters.push_back(v->tuples().begin());
    }
    for (const std::set<Tuple>* s : sets) {
      if (s->empty()) return out;  // empty product
    }
    for (;;) {
      // Assemble the fixed-columns pattern.
      std::vector<std::optional<std::string>> fixed(
          static_cast<size_t>(e.arity()), std::nullopt);
      std::vector<int> free_columns;
      size_t which = 0;
      for (size_t fi = 0; fi < factors.size(); ++fi) {
        if (!values[fi].has_value()) {
          free_columns.push_back(factor_offset[fi]);
          continue;
        }
        const Tuple& t = *iters[which++];
        for (int c = 0; c < factors[fi].arity(); ++c) {
          fixed[static_cast<size_t>(factor_offset[fi] + c)] =
              t[static_cast<size_t>(c)];
        }
      }
      STRDB_ASSIGN_OR_RETURN(std::set<std::vector<std::string>> generated,
                             GenerateAccepted(fsa, fixed, gen_opts));
      for (const std::vector<std::string>& frees : generated) {
        Tuple full(static_cast<size_t>(e.arity()));
        for (size_t c = 0; c < full.size(); ++c) {
          if (fixed[c].has_value()) full[c] = *fixed[c];
        }
        for (size_t fc = 0; fc < free_columns.size(); ++fc) {
          full[static_cast<size_t>(free_columns[fc])] = frees[fc];
        }
        STRDB_RETURN_IF_ERROR(out.Insert(std::move(full)));
      }
      if (out.size() > options_.max_tuples) {
        return Status::ResourceExhausted("selection exceeds max_tuples");
      }
      // Advance the factor odometer.
      size_t d = 0;
      for (; d < iters.size(); ++d) {
        if (++iters[d] != sets[d]->end()) break;
        iters[d] = sets[d]->begin();
      }
      if (d == iters.size()) break;
      if (iters.empty()) break;
    }
    return out;
  }

  const Database& db_;
  const EvalOptions& options_;
};

}  // namespace

Result<StringRelation> EvalAlgebra(const AlgebraExpr& expr, const Database& db,
                                   const EvalOptions& options) {
  AlgebraEvaluatorImpl evaluator(db, options);
  return evaluator.Eval(expr);
}

}  // namespace strdb
