#include "relational/relation.h"

#include <algorithm>
#include <atomic>

namespace strdb {

namespace {

// Process-wide epoch source: distinct mutations — even of equally named
// relations in unrelated databases — never share an epoch, so a stats
// cache keyed (name, epoch) can never serve data for the wrong content.
uint64_t NextStatsEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<StringRelation> StringRelation::Create(int arity,
                                              std::vector<Tuple> tuples) {
  if (arity < 0) return Status::InvalidArgument("negative arity");
  StringRelation out(arity);
  for (Tuple& t : tuples) {
    STRDB_RETURN_IF_ERROR(out.Insert(std::move(t)));
  }
  return out;
}

Status StringRelation::Insert(Tuple tuple) {
  if (static_cast<int>(tuple.size()) != arity_) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " differs from relation arity " + std::to_string(arity_));
  }
  tuples_.insert(std::move(tuple));
  return Status::OK();
}

int StringRelation::MaxStringLength() const {
  int max_len = 0;
  for (const Tuple& t : tuples_) {
    for (const std::string& s : t) {
      max_len = std::max(max_len, static_cast<int>(s.size()));
    }
  }
  return max_len;
}

StringRelation StringRelation::TruncatedTo(int l) const {
  StringRelation out(arity_);
  for (const Tuple& t : tuples_) {
    bool fits = std::all_of(t.begin(), t.end(), [l](const std::string& s) {
      return static_cast<int>(s.size()) <= l;
    });
    if (fits) out.tuples_.insert(t);
  }
  return out;
}

std::string StringRelation::ToString() const {
  std::string out = "{";
  bool first_tuple = true;
  for (const Tuple& t : tuples_) {
    if (!first_tuple) out += ", ";
    first_tuple = false;
    out += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + t[i] + "\"";
    }
    out += ")";
  }
  out += "}";
  return out;
}

Status Database::Put(const std::string& name, StringRelation relation) {
  for (const Tuple& t : relation.tuples()) {
    for (const std::string& s : t) {
      if (!alphabet_.Contains(s)) {
        return Status::InvalidArgument("string \"" + s + "\" in relation '" +
                                       name +
                                       "' leaves the database alphabet");
      }
    }
  }
  relations_.insert_or_assign(name, std::move(relation));
  epochs_[name] = NextStatsEpoch();
  return Status::OK();
}

Status Database::Put(const std::string& name, int arity,
                     std::vector<Tuple> tuples) {
  STRDB_ASSIGN_OR_RETURN(StringRelation rel,
                         StringRelation::Create(arity, std::move(tuples)));
  return Put(name, std::move(rel));
}

Status Database::InsertTuples(const std::string& name,
                              std::vector<Tuple> tuples) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  // Validate everything before mutating so a failed call leaves the
  // relation untouched.
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != it->second.arity()) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(t.size()) +
          " differs from relation arity " +
          std::to_string(it->second.arity()));
    }
    for (const std::string& s : t) {
      if (!alphabet_.Contains(s)) {
        return Status::InvalidArgument("string \"" + s + "\" in relation '" +
                                       name +
                                       "' leaves the database alphabet");
      }
    }
  }
  for (Tuple& t : tuples) {
    STRDB_RETURN_IF_ERROR(it->second.Insert(std::move(t)));
  }
  epochs_[name] = NextStatsEpoch();
  return Status::OK();
}

Status Database::Remove(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  epochs_.erase(name);
  return Status::OK();
}

Result<const StringRelation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  return &it->second;
}

uint64_t Database::stats_epoch(const std::string& name) const {
  auto it = epochs_.find(name);
  return it == epochs_.end() ? 0 : it->second;
}

int Database::MaxStringLength() const {
  int max_len = 0;
  for (const auto& [name, rel] : relations_) {
    max_len = std::max(max_len, rel.MaxStringLength());
  }
  return max_len;
}

}  // namespace strdb
