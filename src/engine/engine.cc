#include "engine/engine.h"

#include <chrono>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "engine/cost.h"
#include "fsa/accept.h"
#include "fsa/codegen/program.h"
#include "fsa/generate.h"
#include "fsa/kernel.h"

namespace strdb {

namespace {

using Kind = AlgebraExpr::Kind;
using Op = PlanNode::Op;
using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

void FlattenProduct(const AlgebraExpr& e, std::vector<AlgebraExpr>* out) {
  if (e.kind() == Kind::kProduct) {
    FlattenProduct(e.Left(), out);
    FlattenProduct(e.Right(), out);
  } else {
    out->push_back(e);
  }
}

// Lowers the (rewritten) algebra AST to a physical-plan DAG.  Subtrees
// shared in the AST — including those unified by the CSE rewrite — lower
// to one PlanNode, which the executor evaluates once.
class Planner {
 public:
  Planner(const Database& db, const EvalOptions& options,
          const CostPlannerContext* cost_ctx)
      : db_(db), options_(options), cost_ctx_(cost_ctx) {}

  Result<std::shared_ptr<PlanNode>> Lower(const AlgebraExpr& e) {
    auto it = memo_.find(e.node_identity());
    if (it != memo_.end()) return it->second;
    STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> node, LowerNew(e));
    if (cost_ctx_ != nullptr) {
      node->est_rows = EstimateRows(e, *cost_ctx_);
    } else {
      node->est_rows =
          node->op == Op::kPagedScan
              ? static_cast<double>(node->source->tuple_count())
              : EstimateCardinality(e, db_, options_.truncation);
    }
    memo_.emplace(e.node_identity(), node);
    return node;
  }

 private:
  Result<std::shared_ptr<PlanNode>> LowerNew(const AlgebraExpr& e) {
    auto node = std::make_shared<PlanNode>();
    node->arity = e.arity();
    switch (e.kind()) {
      case Kind::kRelation: {
        node->relation = e.relation_name();
        // A name absent from the catalog but present in the paged set is
        // a spilled relation: scan it out-of-core.
        if (options_.paged != nullptr && !db_.Has(node->relation)) {
          auto spilled = options_.paged->find(node->relation);
          if (spilled != options_.paged->end()) {
            if (spilled->second->arity() != node->arity) {
              return Status::InvalidArgument(
                  "relation '" + node->relation + "' has arity " +
                  std::to_string(spilled->second->arity()) +
                  ", expression expects " + std::to_string(node->arity));
            }
            node->op = Op::kPagedScan;
            node->source = spilled->second;
            return node;
          }
        }
        node->op = Op::kScan;
        return node;
      }
      case Kind::kSigmaStar:
        node->op = Op::kDomain;
        node->sigma_l = -1;
        return node;
      case Kind::kSigmaL:
        node->op = Op::kDomain;
        node->sigma_l = e.sigma_l();
        return node;
      case Kind::kUnion:
      case Kind::kDifference:
      case Kind::kProduct: {
        node->op = e.kind() == Kind::kUnion        ? Op::kUnion
                   : e.kind() == Kind::kDifference ? Op::kDifference
                                                   : Op::kProduct;
        STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> l, Lower(e.Left()));
        STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> r, Lower(e.Right()));
        node->children = {std::move(l), std::move(r)};
        return node;
      }
      case Kind::kProject: {
        node->op = Op::kProject;
        node->columns = e.columns();
        STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> c, Lower(e.Left()));
        node->children = {std::move(c)};
        return node;
      }
      case Kind::kRestrict: {
        node->op = Op::kRestrict;
        STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> c, Lower(e.Left()));
        node->children = {std::move(c)};
        return node;
      }
      case Kind::kSelect:
        return LowerSelect(e, std::move(node));
    }
    return Status::Internal("unknown algebra node kind");
  }

  Result<std::shared_ptr<PlanNode>> LowerSelect(const AlgebraExpr& e,
                                                std::shared_ptr<PlanNode> node) {
    node->fsa = e.shared_fsa();
    node->fsa_key = ArtifactCache::FsaKey(*node->fsa);
    std::vector<AlgebraExpr> factors;
    FlattenProduct(e.Left(), &factors);
    bool has_star = false;
    for (const AlgebraExpr& f : factors) {
      if (f.kind() == Kind::kSigmaStar) has_star = true;
    }
    if (!has_star || !node->fsa->FinalStatesHaveNoExits()) {
      // Plain filtering: evaluate the child (Σ* becomes Σ^l) and keep
      // the accepted tuples — same semantics as the naïve evaluator.
      node->op = Op::kFilterSelect;
      STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> c, Lower(e.Left()));
      node->children = {std::move(c)};
      return node;
    }
    // σ_A(F1×…×Fm×(Σ*)^n): materialise the non-Σ* factors and run the
    // automaton as a generator over the free columns.
    node->op = Op::kGenerateSelect;
    int offset = 0;
    for (const AlgebraExpr& f : factors) {
      if (f.kind() == Kind::kSigmaStar) {
        node->free_columns.push_back(offset);
      } else {
        STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> c, Lower(f));
        node->factor_offsets.push_back(offset);
        node->children.push_back(std::move(c));
      }
      offset += f.arity();
    }
    return node;
  }

  const Database& db_;
  const EvalOptions& options_;
  const CostPlannerContext* cost_ctx_;  // nullptr = heuristic estimates
  std::unordered_map<const AlgebraExpr::Node*, std::shared_ptr<PlanNode>>
      memo_;
};

// Runs a plan DAG.  Holds one result per PlanNode (evaluate-once for
// shared subtrees); Eval returns pointers into the memo, which is
// node-based and therefore stable across inserts.
class Executor {
 public:
  Executor(const Database& db, const EvalOptions& options,
           const EngineOptions& engine_options, ArtifactCache* cache,
           ThreadPool* pool)
      : db_(db),
        options_(options),
        engine_options_(engine_options),
        cache_(cache),
        pool_(pool) {}

  Result<const StringRelation*> Eval(PlanNode* node) {
    auto it = memo_.find(node);
    if (it != memo_.end()) {
      ++node->stats.memo_hits;
      return &it->second;
    }
    if (options_.budget != nullptr) {
      STRDB_RETURN_IF_ERROR(options_.budget->CheckDeadline());
    }
    Clock::time_point start = Clock::now();
    STRDB_ASSIGN_OR_RETURN(StringRelation out, Compute(node));
    node->stats.wall_ns += ElapsedNs(start);
    node->stats.tuples_out = out.size();
    if (options_.budget != nullptr) {
      // Rows are charged per operator: a memo hit reuses the same
      // materialisation, so only fresh rows count against the budget.
      STRDB_RETURN_IF_ERROR(options_.budget->ChargeRows(out.size()));
    }
    auto inserted = memo_.emplace(node, std::move(out));
    return &inserted.first->second;
  }

 private:
  Result<StringRelation> CheckSize(StringRelation rel) const {
    if (rel.size() > options_.max_tuples) {
      return Status::ResourceExhausted("intermediate relation exceeds " +
                                       std::to_string(options_.max_tuples) +
                                       " tuples");
    }
    return rel;
  }

  Result<StringRelation> Compute(PlanNode* node) {
    switch (node->op) {
      case Op::kScan: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* rel,
                               db_.Get(node->relation));
        if (rel->arity() != node->arity) {
          return Status::InvalidArgument(
              "relation '" + node->relation + "' has arity " +
              std::to_string(rel->arity()) + ", expression expects " +
              std::to_string(node->arity));
        }
        return *rel;
      }
      case Op::kPagedScan: {
        // Generic parents need the relation resident; only a FilterSelect
        // parent streams (it intercepts before Eval reaches here).
        if (node->source == nullptr) {
          return Status::Internal("paged-scan node without a tuple source");
        }
        STRDB_ASSIGN_OR_RETURN(StringRelation out, node->source->Materialize());
        return CheckSize(std::move(out));
      }
      case Op::kDomain: {
        int l = node->sigma_l < 0 ? options_.truncation : node->sigma_l;
        StringRelation out(1);
        for (std::string& s : db_.alphabet().StringsUpTo(l)) {
          STRDB_RETURN_IF_ERROR(out.Insert({std::move(s)}));
        }
        return CheckSize(std::move(out));
      }
      case Op::kUnion: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* a,
                               Eval(node->children[0].get()));
        STRDB_ASSIGN_OR_RETURN(const StringRelation* b,
                               Eval(node->children[1].get()));
        node->stats.tuples_in = a->size() + b->size();
        StringRelation out = *a;
        for (const Tuple& t : b->tuples()) {
          STRDB_RETURN_IF_ERROR(out.Insert(t));
        }
        return CheckSize(std::move(out));
      }
      case Op::kDifference: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* a,
                               Eval(node->children[0].get()));
        STRDB_ASSIGN_OR_RETURN(const StringRelation* b,
                               Eval(node->children[1].get()));
        node->stats.tuples_in = a->size() + b->size();
        StringRelation out(a->arity());
        for (const Tuple& t : a->tuples()) {
          if (!b->Contains(t)) {
            STRDB_RETURN_IF_ERROR(out.Insert(t));
          }
        }
        return out;
      }
      case Op::kProduct: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* a,
                               Eval(node->children[0].get()));
        STRDB_ASSIGN_OR_RETURN(const StringRelation* b,
                               Eval(node->children[1].get()));
        node->stats.tuples_in = a->size() + b->size();
        StringRelation out(a->arity() + b->arity());
        for (const Tuple& ta : a->tuples()) {
          for (const Tuple& tb : b->tuples()) {
            Tuple t = ta;
            t.insert(t.end(), tb.begin(), tb.end());
            STRDB_RETURN_IF_ERROR(out.Insert(std::move(t)));
          }
          if (out.size() > options_.max_tuples) {
            return Status::ResourceExhausted("product exceeds max_tuples");
          }
        }
        return out;
      }
      case Op::kProject: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* child,
                               Eval(node->children[0].get()));
        node->stats.tuples_in = child->size();
        StringRelation out(node->arity);
        for (const Tuple& t : child->tuples()) {
          Tuple proj;
          proj.reserve(node->columns.size());
          for (int c : node->columns) {
            proj.push_back(t[static_cast<size_t>(c)]);
          }
          STRDB_RETURN_IF_ERROR(out.Insert(std::move(proj)));
        }
        return out;
      }
      case Op::kRestrict: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* child,
                               Eval(node->children[0].get()));
        node->stats.tuples_in = child->size();
        return child->TruncatedTo(options_.truncation);
      }
      case Op::kFilterSelect:
        return FilterSelect(node);
      case Op::kGenerateSelect:
        return GenerateSelect(node);
    }
    return Status::Internal("unknown plan operator");
  }

  // Fetches (or compiles) the acceptance kernel for `node`'s automaton.
  // Returns nullptr when the kernel is disabled or uncompilable, in
  // which case the caller falls back to the reference BFS.
  Result<std::shared_ptr<const AcceptKernel>> KernelFor(PlanNode* node) {
    if (!engine_options_.enable_kernel) return std::shared_ptr<const AcceptKernel>();
    if (cache_ != nullptr) {
      std::string key = node->fsa_key + "\n|kernel";
      std::shared_ptr<const AcceptKernel> kernel = cache_->GetKernel(key);
      if (kernel != nullptr) {
        ++node->stats.cache_hits;
        return kernel;
      }
      ++node->stats.cache_misses;
      Result<AcceptKernel> compiled = AcceptKernel::Compile(*node->fsa);
      if (!compiled.ok()) return std::shared_ptr<const AcceptKernel>();
      return cache_->PutKernel(key, std::move(compiled).value(),
                               options_.budget);
    }
    Result<AcceptKernel> compiled = AcceptKernel::Compile(*node->fsa);
    if (!compiled.ok()) return std::shared_ptr<const AcceptKernel>();
    return std::make_shared<const AcceptKernel>(std::move(compiled).value());
  }

  // Fetches (or compiles) the DFA-tier program for `node`'s automaton.
  // Returns nullptr when the tier is disabled, the machine is outside
  // its applicability class (two-way, nondeterministic head schedule)
  // or past the subset-construction caps — the caller then falls back
  // to the kernel.  Refusals are cached too, so an inapplicable machine
  // pays the classification once, not per query.
  Result<std::shared_ptr<const DfaProgram>> DfaFor(PlanNode* node) {
    if (!engine_options_.enable_dfa) {
      return std::shared_ptr<const DfaProgram>();
    }
    static Counter* const hits =
        MetricsRegistry::Global().GetCounter("fsa.dfa.cache_hits");
    static Counter* const fallbacks =
        MetricsRegistry::Global().GetCounter("fsa.dfa.fallbacks");
    if (cache_ != nullptr) {
      std::string key = node->fsa_key + "\n|dfa";
      std::shared_ptr<const DfaCompilation> cached = cache_->GetDfa(key);
      if (cached != nullptr) {
        if (cached->program != nullptr) {
          ++node->stats.cache_hits;
          hits->Increment();
          return cached->program;
        }
        fallbacks->Increment();
        return std::shared_ptr<const DfaProgram>();
      }
      ++node->stats.cache_misses;
      DfaCompilation fresh;
      Result<DfaProgram> compiled = DfaProgram::Compile(*node->fsa);
      if (compiled.ok()) {
        fresh.program =
            std::make_shared<const DfaProgram>(std::move(compiled).value());
      } else {
        fresh.failure = compiled.status();
        fallbacks->Increment();
      }
      STRDB_ASSIGN_OR_RETURN(std::shared_ptr<const DfaCompilation> stored,
                             cache_->PutDfa(key, std::move(fresh),
                                            options_.budget));
      return stored->program;
    }
    Result<DfaProgram> compiled = DfaProgram::Compile(*node->fsa);
    if (!compiled.ok()) {
      fallbacks->Increment();
      return std::shared_ptr<const DfaProgram>();
    }
    return std::make_shared<const DfaProgram>(std::move(compiled).value());
  }

  Result<StringRelation> FilterSelect(PlanNode* node) {
    PlanNode* child_node = node->children[0].get();
    if (child_node->op == Op::kPagedScan && engine_options_.enable_paged &&
        child_node->source != nullptr &&
        memo_.find(child_node) == memo_.end()) {
      return StreamFilterSelect(node, child_node);
    }
    STRDB_ASSIGN_OR_RETURN(const StringRelation* child, Eval(child_node));
    node->stats.tuples_in = child->size();
    std::vector<const Tuple*> tuples;
    tuples.reserve(static_cast<size_t>(child->size()));
    for (const Tuple& t : child->tuples()) tuples.push_back(&t);
    int64_t n = static_cast<int64_t>(tuples.size());

    std::vector<char> accepted(tuples.size(), 0);
    std::vector<int64_t> steps(tuples.size(), 0);
    std::vector<Status> errors(tuples.size());
    const Fsa& fsa = *node->fsa;
    // Fallback ladder: DFA program → CSR kernel → reference BFS.  The
    // kernel is only compiled when the DFA tier bowed out.
    STRDB_ASSIGN_OR_RETURN(std::shared_ptr<const DfaProgram> dfa,
                           DfaFor(node));
    std::shared_ptr<const AcceptKernel> kernel;
    if (dfa == nullptr) {
      STRDB_ASSIGN_OR_RETURN(kernel, KernelFor(node));
    }
    AcceptOptions accept_opts;
    accept_opts.budget = options_.budget;  // shared account; charging is atomic
    auto check_range = [&](int64_t begin, int64_t end) {
      // One scratch per pool thread, reused across chunks, batches and
      // queries: the warm path allocates nothing per tuple.
      thread_local AcceptScratch scratch;
      thread_local DfaScratch dfa_scratch;
      if (dfa != nullptr) {
        if (begin >= end) return;
        // The whole chunk advances through the row table lanes-at-a-time.
        std::vector<const Tuple*> slice(
            tuples.begin() + static_cast<ptrdiff_t>(begin),
            tuples.begin() + static_cast<ptrdiff_t>(end));
        DfaBatchResult res = AcceptBatch(*dfa, slice, &dfa_scratch,
                                         accept_opts);
        for (size_t j = 0; j < slice.size(); ++j) {
          size_t i = static_cast<size_t>(begin) + j;
          if (!res.statuses[j].ok()) {
            errors[i] = res.statuses[j];
            continue;
          }
          accepted[i] = res.accepted[j];
        }
        // The batch reports aggregate chain steps; park them on the
        // chunk's first slot so the input-order merge sums correctly.
        steps[static_cast<size_t>(begin)] = res.configurations_visited;
        return;
      }
      for (int64_t i = begin; i < end; ++i) {
        Result<AcceptStats> res =
            kernel != nullptr
                ? scratch.Accept(*kernel, *tuples[static_cast<size_t>(i)],
                                 accept_opts)
                : AcceptsWithStats(fsa, *tuples[static_cast<size_t>(i)],
                                   accept_opts);
        if (!res.ok()) {
          errors[static_cast<size_t>(i)] = res.status();
          continue;
        }
        accepted[static_cast<size_t>(i)] = res->accepted ? 1 : 0;
        steps[static_cast<size_t>(i)] = res->configurations_visited;
      }
    };
    bool parallel = engine_options_.enable_parallel &&
                    pool_->num_threads() > 1 &&
                    n >= engine_options_.parallel_threshold;
    if (parallel) {
      pool_->ParallelFor(n, check_range);
    } else {
      check_range(0, n);
    }
    // Merge in input order: the result (and the first error surfaced) is
    // the same no matter how the chunks were scheduled.
    StringRelation out(node->arity);
    for (size_t i = 0; i < tuples.size(); ++i) {
      STRDB_RETURN_IF_ERROR(errors[i]);
      node->stats.fsa_steps += steps[i];
      if (accepted[i]) {
        STRDB_RETURN_IF_ERROR(out.Insert(*tuples[i]));
      }
    }
    return out;
  }

  // σ_A over a spilled relation: pump the heap's decoded batches through
  // acceptance and keep only survivors, so the input relation is never
  // resident — peak memory is the buffer-pool cap plus one batch plus the
  // (filtered) output.  Same verdicts as the materialise-then-filter
  // path; only where budget errors surface can differ.
  Result<StringRelation> StreamFilterSelect(PlanNode* node, PlanNode* child) {
    Clock::time_point child_start = Clock::now();
    const Fsa& fsa = *node->fsa;
    STRDB_ASSIGN_OR_RETURN(std::shared_ptr<const DfaProgram> dfa,
                           DfaFor(node));
    std::shared_ptr<const AcceptKernel> kernel;
    if (dfa == nullptr) {
      STRDB_ASSIGN_OR_RETURN(kernel, KernelFor(node));
    }
    AcceptOptions accept_opts;
    accept_opts.budget = options_.budget;
    StringRelation out(node->arity);
    STRDB_RETURN_IF_ERROR(child->source->Scan(
        [&](const std::vector<Tuple>& batch) -> Status {
          int64_t n = static_cast<int64_t>(batch.size());
          node->stats.tuples_in += n;
          child->stats.tuples_out += n;
          if (options_.budget != nullptr) {
            // Scanned rows are charged as the child materialisation
            // would have been, so the flag changes memory, not cost.
            STRDB_RETURN_IF_ERROR(options_.budget->ChargeRows(n));
          }
          bool parallel = engine_options_.enable_parallel &&
                          pool_->num_threads() > 1 &&
                          n >= engine_options_.parallel_threshold;
          if (dfa != nullptr && !parallel) {
            // The streamed batch drives the DFA tier's lane interpreter
            // directly: one page's worth of tuples per AcceptBatch call.
            std::vector<const Tuple*> ptrs;
            ptrs.reserve(batch.size());
            for (const Tuple& t : batch) ptrs.push_back(&t);
            thread_local DfaScratch scratch;
            DfaBatchResult res = AcceptBatch(*dfa, ptrs, &scratch,
                                             accept_opts);
            node->stats.fsa_steps += res.configurations_visited;
            for (size_t i = 0; i < batch.size(); ++i) {
              STRDB_RETURN_IF_ERROR(res.statuses[i]);
              if (res.accepted[i]) {
                STRDB_RETURN_IF_ERROR(out.Insert(batch[i]));
              }
            }
          } else if (kernel != nullptr && !parallel) {
            std::vector<const Tuple*> ptrs;
            ptrs.reserve(batch.size());
            for (const Tuple& t : batch) ptrs.push_back(&t);
            thread_local AcceptScratch scratch;
            KernelBatchResult res =
                AcceptBatch(*kernel, ptrs, &scratch, accept_opts);
            node->stats.fsa_steps += res.configurations_visited;
            for (size_t i = 0; i < batch.size(); ++i) {
              STRDB_RETURN_IF_ERROR(res.statuses[i]);
              if (res.accepted[i]) {
                STRDB_RETURN_IF_ERROR(out.Insert(batch[i]));
              }
            }
          } else {
            std::vector<char> accepted(batch.size(), 0);
            std::vector<int64_t> steps(batch.size(), 0);
            std::vector<Status> errors(batch.size());
            auto check_range = [&](int64_t begin, int64_t end) {
              thread_local AcceptScratch scratch;
              thread_local DfaScratch dfa_scratch;
              for (int64_t i = begin; i < end; ++i) {
                const Tuple& t = batch[static_cast<size_t>(i)];
                Result<AcceptStats> res =
                    dfa != nullptr
                        ? dfa->Accept(t, &dfa_scratch, accept_opts)
                    : kernel != nullptr
                        ? scratch.Accept(*kernel, t, accept_opts)
                        : AcceptsWithStats(fsa, t, accept_opts);
                if (!res.ok()) {
                  errors[static_cast<size_t>(i)] = res.status();
                  continue;
                }
                accepted[static_cast<size_t>(i)] = res->accepted ? 1 : 0;
                steps[static_cast<size_t>(i)] = res->configurations_visited;
              }
            };
            if (parallel) {
              pool_->ParallelFor(n, check_range);
            } else {
              check_range(0, n);
            }
            for (size_t i = 0; i < batch.size(); ++i) {
              STRDB_RETURN_IF_ERROR(errors[i]);
              node->stats.fsa_steps += steps[i];
              if (accepted[i]) {
                STRDB_RETURN_IF_ERROR(out.Insert(batch[i]));
              }
            }
          }
          if (out.size() > options_.max_tuples) {
            return Status::ResourceExhausted("selection exceeds " +
                                             std::to_string(options_.max_tuples) +
                                             " tuples");
          }
          return Status::OK();
        }));
    child->stats.wall_ns += ElapsedNs(child_start);
    return out;
  }

  Result<StringRelation> GenerateSelect(PlanNode* node) {
    std::vector<const std::set<Tuple>*> sets;
    for (const auto& child : node->children) {
      STRDB_ASSIGN_OR_RETURN(const StringRelation* rel, Eval(child.get()));
      node->stats.tuples_in += rel->size();
      sets.push_back(&rel->tuples());
    }
    StringRelation out(node->arity);
    for (const std::set<Tuple>* s : sets) {
      if (s->empty()) return out;  // empty product
    }
    GenerateOptions gen_opts;
    gen_opts.max_len = options_.truncation;
    gen_opts.max_steps = options_.max_steps;
    gen_opts.max_results = options_.max_tuples;
    gen_opts.budget = options_.budget;

    std::vector<std::set<Tuple>::const_iterator> iters;
    for (const std::set<Tuple>* s : sets) iters.push_back(s->begin());
    for (;;) {
      std::vector<std::optional<std::string>> fixed(
          static_cast<size_t>(node->arity), std::nullopt);
      for (size_t fi = 0; fi < iters.size(); ++fi) {
        const Tuple& t = *iters[fi];
        for (size_t c = 0; c < t.size(); ++c) {
          fixed[static_cast<size_t>(node->factor_offsets[fi]) + c] = t[c];
        }
      }
      STRDB_RETURN_IF_ERROR(GenerateCombo(node, fixed, gen_opts, &out));
      if (out.size() > options_.max_tuples) {
        return Status::ResourceExhausted("selection exceeds max_tuples");
      }
      size_t d = 0;
      for (; d < iters.size(); ++d) {
        if (++iters[d] != sets[d]->end()) break;
        iters[d] = sets[d]->begin();
      }
      if (d == iters.size()) break;
    }
    return out;
  }

  // One odometer step of a generate-select: generates the free-column
  // strings for the given fixed pattern and merges the full tuples into
  // `out`.  With the cache on, the automaton is specialised one fixed
  // column at a time so a shared (column, value) prefix across combos is
  // built once, and the final bounded generation is memoised too.
  Status GenerateCombo(PlanNode* node,
                       const std::vector<std::optional<std::string>>& fixed,
                       const GenerateOptions& gen_opts, StringRelation* out) {
    ArtifactCache::GeneratedSet computed;
    std::shared_ptr<const ArtifactCache::GeneratedSet> cached;
    const ArtifactCache::GeneratedSet* generated = nullptr;
    if (cache_ != nullptr) {
      std::string key = node->fsa_key;
      std::shared_ptr<const Fsa> machine = node->fsa;
      int already_fixed = 0;
      for (size_t col = 0; col < fixed.size(); ++col) {
        if (!fixed[col].has_value()) continue;
        // In the current (partially specialised) machine, original
        // column `col` is tape col - #columns fixed before it.
        int tape = static_cast<int>(col) - already_fixed;
        bool hit = false;
        STRDB_ASSIGN_OR_RETURN(
            machine,
            cache_->GetSpecialized(key, *machine, tape, *fixed[col], &key,
                                   &hit, options_.budget));
        ++(hit ? node->stats.cache_hits : node->stats.cache_misses);
        ++already_fixed;
      }
      std::string gen_key = key + "|g" + std::to_string(gen_opts.max_len);
      cached = cache_->GetGenerated(gen_key);
      if (cached != nullptr) {
        ++node->stats.cache_hits;
        generated = cached.get();
      } else {
        ++node->stats.cache_misses;
        STRDB_ASSIGN_OR_RETURN(computed, EnumerateLanguage(*machine, gen_opts));
        // The returned pointer keeps the set alive even if the LRU
        // evicts it immediately (it may exceed the remaining headroom).
        STRDB_ASSIGN_OR_RETURN(
            cached, cache_->PutGenerated(gen_key, std::move(computed),
                                         options_.budget));
        generated = cached.get();
      }
    } else {
      STRDB_ASSIGN_OR_RETURN(computed,
                             GenerateAccepted(*node->fsa, fixed, gen_opts));
      generated = &computed;
    }
    for (const std::vector<std::string>& frees : *generated) {
      Tuple full(static_cast<size_t>(node->arity));
      for (size_t c = 0; c < full.size(); ++c) {
        if (fixed[c].has_value()) full[c] = *fixed[c];
      }
      for (size_t fc = 0; fc < node->free_columns.size(); ++fc) {
        full[static_cast<size_t>(node->free_columns[fc])] = frees[fc];
      }
      STRDB_RETURN_IF_ERROR(out->Insert(std::move(full)));
    }
    return Status::OK();
  }

  const Database& db_;
  const EvalOptions& options_;
  const EngineOptions& engine_options_;
  ArtifactCache* cache_;  // nullptr = caching disabled
  ThreadPool* pool_;
  std::unordered_map<const PlanNode*, StringRelation> memo_;
};

void SumStats(const PlanNode& node, std::set<const PlanNode*>* seen,
              ExecStats* stats) {
  if (!seen->insert(&node).second) return;
  stats->cache_hits += node.stats.cache_hits;
  stats->cache_misses += node.stats.cache_misses;
  stats->fsa_steps += node.stats.fsa_steps;
  stats->memo_hits += node.stats.memo_hits;
  stats->operators.push_back(
      {node.OpName(), node.est_rows, node.stats.tuples_out});
  for (const auto& child : node.children) SumStats(*child, seen, stats);
}

// Feeds each σ_A filter's observed selectivity back to the engine's
// correction table — the adaptive loop that shrinks systematic model
// error on repeated machines.  Nodes that never saw input carry no
// signal and are skipped.
void RecordSelectivities(const PlanNode& node,
                         std::set<const PlanNode*>* seen,
                         SelectivityFeedback* feedback) {
  if (!seen->insert(&node).second) return;
  if (node.op == Op::kFilterSelect && node.stats.tuples_in > 0) {
    feedback->Record(node.fsa_key,
                     static_cast<double>(node.stats.tuples_out) /
                         static_cast<double>(node.stats.tuples_in));
  }
  for (const auto& child : node.children) {
    RecordSelectivities(*child, seen, feedback);
  }
}

// Fills `stats` from the executed (possibly partially executed) plan and
// the query's budget account.  Called on success and failure alike.
void FillStats(const PlanNode& root, const EvalOptions& options,
               int64_t wall_ns, int64_t rows_out, ExecStats* stats) {
  stats->wall_ns = wall_ns;
  stats->cache_hits = 0;
  stats->cache_misses = 0;
  stats->fsa_steps = 0;
  stats->memo_hits = 0;
  stats->rows_out = rows_out;
  stats->operators.clear();
  std::set<const PlanNode*> seen;
  SumStats(root, &seen, stats);
  if (options.budget != nullptr) {
    stats->budget_steps_used = options.budget->steps_used();
    stats->budget_rows_used = options.budget->rows_used();
    stats->budget_cached_bytes_used = options.budget->cached_bytes_used();
  }
  stats->plan = ExplainPlan(root, /*with_stats=*/true);
}

// Engine-wide instruments, resolved once.
struct EngineMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* queries = reg.GetCounter("engine.queries");
  Counter* failures = reg.GetCounter("engine.query_failures");
  Counter* exhausted = reg.GetCounter("engine.budget_exhausted");
  Histogram* wall_us = reg.GetHistogram("engine.query_wall_us");
  Histogram* rows = reg.GetHistogram("engine.query_rows");

  static EngineMetrics& Get() {
    static EngineMetrics* m = new EngineMetrics();
    return *m;
  }
};

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      cache_(options.cache_max_bytes),
      pool_(options.enable_parallel ? options.num_threads : 1) {}

Result<std::shared_ptr<PlanNode>> Engine::Plan(const AlgebraExpr& expr,
                                               const Database& db,
                                               const EvalOptions& options) {
  CostPlannerContext cost_ctx;
  cost_ctx.db = &db;
  cost_ctx.paged = options.paged;
  cost_ctx.stored_stats = options.stats;
  cost_ctx.stats = &stats_catalog_;
  cost_ctx.feedback = &feedback_;
  cost_ctx.densities = &densities_;
  cost_ctx.cache = options_.enable_cache ? &cache_ : nullptr;
  cost_ctx.truncation = options.truncation;
  cost_ctx.enable_dfa = options_.enable_dfa && options.enable_dfa;
  AlgebraExpr target = expr;
  if (options_.enable_rewrites) {
    RewriteOptions rewrites = options_.rewrites;
    if (options_.enable_cost_planner) {
      rewrites.cost_planner = &cost_ctx;
    }
    STRDB_ASSIGN_OR_RETURN(target,
                           RewriteExpr(expr, db, options, rewrites));
  }
  Planner planner(db, options,
                  options_.enable_cost_planner ? &cost_ctx : nullptr);
  return planner.Lower(target);
}

Result<StringRelation> Engine::Execute(const AlgebraExpr& expr,
                                       const Database& db,
                                       const EvalOptions& options,
                                       ExecStats* stats) {
  EngineMetrics& metrics = EngineMetrics::Get();
  Clock::time_point start = Clock::now();
  metrics.queries->Increment();
  STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> root,
                         Plan(expr, db, options));
  Executor executor(db, options, options_,
                    options_.enable_cache ? &cache_ : nullptr, &pool_);
  Result<const StringRelation*> result = executor.Eval(root.get());
  int64_t wall_ns = ElapsedNs(start);
  metrics.wall_us->Record(wall_ns / 1000);
  if (options_.enable_cost_planner) {
    std::set<const PlanNode*> seen;
    RecordSelectivities(*root, &seen, &feedback_);
  }
  if (!result.ok()) {
    // The plan nodes keep whatever counters the partial run accumulated,
    // so a budget-exhausted query is still fully observable.
    metrics.failures->Increment();
    if (result.status().code() == StatusCode::kResourceExhausted) {
      metrics.exhausted->Increment();
    }
    if (stats != nullptr) {
      FillStats(*root, options, wall_ns, /*rows_out=*/0, stats);
    }
    return result.status();
  }
  StringRelation out = **result;
  metrics.rows->Record(out.size());
  if (stats != nullptr) {
    FillStats(*root, options, wall_ns, out.size(), stats);
  }
  return out;
}

Result<std::string> Engine::Explain(const AlgebraExpr& expr,
                                    const Database& db,
                                    const EvalOptions& options) {
  STRDB_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> root,
                         Plan(expr, db, options));
  return ExplainPlan(*root, /*with_stats=*/false);
}

Engine& Engine::Shared() {
  // Leaked intentionally: the pool's worker threads must not be joined
  // during static destruction.
  static Engine* shared = new Engine();
  return *shared;
}

}  // namespace strdb
