#include "engine/rewrite.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "engine/planner.h"
#include "fsa/serialize.h"
#include "fsa/specialize.h"

namespace strdb {

namespace {

using Kind = AlgebraExpr::Kind;

void Flatten(const AlgebraExpr& e, std::vector<AlgebraExpr>* out) {
  if (e.kind() == Kind::kProduct) {
    Flatten(e.Left(), out);
    Flatten(e.Right(), out);
  } else {
    out->push_back(e);
  }
}

// Left-assoc product of a non-empty factor list.
AlgebraExpr BuildProduct(std::vector<AlgebraExpr> factors) {
  AlgebraExpr out = std::move(factors.front());
  for (size_t i = 1; i < factors.size(); ++i) {
    out = AlgebraExpr::Product(std::move(out), std::move(factors[i]));
  }
  return out;
}

// Tape i is disregarded by `fsa` iff every transition pins it to ⊢ and
// never moves it — acceptance is then independent of the tape's content
// (the shape Fsa::DisregardTape produces).
std::vector<bool> DisregardedTapes(const Fsa& fsa) {
  std::vector<bool> ignored(static_cast<size_t>(fsa.num_tapes()),
                            !fsa.transitions().empty());
  for (const Transition& t : fsa.transitions()) {
    for (size_t i = 0; i < ignored.size(); ++i) {
      if (t.read[i] != kLeftEnd || t.move[i] != 0) ignored[i] = false;
    }
  }
  return ignored;
}

// Rebuilds `fsa` without the tapes marked in `drop`.  Only valid for
// disregarded tapes (the computation structure is unchanged).
Result<Fsa> DropTapes(const Fsa& fsa, const std::vector<bool>& drop) {
  int kept = 0;
  for (bool d : drop) kept += d ? 0 : 1;
  Fsa out(fsa.alphabet(), kept);
  while (out.num_states() < fsa.num_states()) out.AddState();
  out.SetStart(fsa.start());
  for (int s = 0; s < fsa.num_states(); ++s) {
    if (fsa.IsFinal(s)) out.SetFinal(s);
  }
  for (const Transition& t : fsa.transitions()) {
    Transition nt;
    nt.from = t.from;
    nt.to = t.to;
    for (size_t i = 0; i < drop.size(); ++i) {
      if (drop[i]) continue;
      nt.read.push_back(t.read[i]);
      nt.move.push_back(t.move[i]);
    }
    STRDB_RETURN_IF_ERROR(out.AddTransition(std::move(nt)));
  }
  return out;
}

// Splits the factors of a σ child into kept and pulled-out parts and
// rebuilds π_restore(σ_{A'}(∏kept) × ∏pulled).  `pulled[i]` marks
// factors moved out; the caller guarantees ≥1 kept factor and supplies
// the tape-reduced (or specialised) automaton.
Result<AlgebraExpr> RebuildSplitSelect(const std::vector<AlgebraExpr>& factors,
                                       const std::vector<bool>& pulled,
                                       Fsa reduced) {
  std::vector<AlgebraExpr> kept_factors, pulled_factors;
  std::vector<int> offsets(factors.size(), 0);
  int offset = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    offsets[i] = offset;
    offset += factors[i].arity();
    (pulled[i] ? pulled_factors : kept_factors).push_back(factors[i]);
  }
  STRDB_ASSIGN_OR_RETURN(
      AlgebraExpr inner,
      AlgebraExpr::Select(BuildProduct(std::move(kept_factors)),
                          std::move(reduced)));
  AlgebraExpr joined = AlgebraExpr::Product(
      std::move(inner), BuildProduct(std::move(pulled_factors)));
  // Column c of the original layout now lives at: its offset within the
  // kept block, or kept_arity + its offset within the pulled block.
  int kept_arity = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    if (!pulled[i]) kept_arity += factors[i].arity();
  }
  std::vector<int> restore(static_cast<size_t>(offset));
  int kept_pos = 0, pulled_pos = kept_arity;
  for (size_t i = 0; i < factors.size(); ++i) {
    int& pos = pulled[i] ? pulled_pos : kept_pos;
    for (int c = 0; c < factors[i].arity(); ++c) {
      restore[static_cast<size_t>(offsets[i] + c)] = pos++;
    }
  }
  return AlgebraExpr::Project(std::move(joined), std::move(restore));
}

// --- pass 1: selection pushdown --------------------------------------------

Result<AlgebraExpr> PushdownSelections(const AlgebraExpr& e);

Result<AlgebraExpr> PushdownSelect(const AlgebraExpr& select,
                                   AlgebraExpr child) {
  const Fsa& fsa = select.fsa();
  if (child.kind() == Kind::kUnion) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr left,
                           AlgebraExpr::Select(child.Left(), Fsa(fsa)));
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr right,
                           AlgebraExpr::Select(child.Right(), Fsa(fsa)));
    STRDB_ASSIGN_OR_RETURN(left, PushdownSelections(left));
    STRDB_ASSIGN_OR_RETURN(right, PushdownSelections(right));
    return AlgebraExpr::Union(std::move(left), std::move(right));
  }
  if (child.kind() == Kind::kProduct) {
    std::vector<AlgebraExpr> factors;
    Flatten(child, &factors);
    std::vector<bool> ignored = DisregardedTapes(fsa);
    std::vector<bool> pulled(factors.size(), false);
    int offset = 0, kept = 0;
    for (size_t i = 0; i < factors.size(); ++i) {
      bool all_ignored = true;
      for (int c = 0; c < factors[i].arity(); ++c) {
        all_ignored &= ignored[static_cast<size_t>(offset + c)];
      }
      offset += factors[i].arity();
      // A pulled-out Σ* would sit bare outside the σ and lose finite
      // evaluability; leave those to the generator.
      pulled[i] = all_ignored && factors[i].kind() != Kind::kSigmaStar;
      kept += pulled[i] ? 0 : 1;
    }
    if (kept == 0) pulled[0] = false;  // keep the automaton ≥ 1 tape
    if (std::find(pulled.begin(), pulled.end(), true) == pulled.end()) {
      return AlgebraExpr::Select(std::move(child), Fsa(fsa));
    }
    std::vector<bool> drop;
    for (size_t i = 0; i < factors.size(); ++i) {
      for (int c = 0; c < factors[i].arity(); ++c) drop.push_back(pulled[i]);
    }
    STRDB_ASSIGN_OR_RETURN(Fsa reduced, DropTapes(fsa, drop));
    return RebuildSplitSelect(factors, pulled, std::move(reduced));
  }
  return AlgebraExpr::Select(std::move(child), Fsa(fsa));
}

Result<AlgebraExpr> PushdownSelections(const AlgebraExpr& e) {
  switch (e.kind()) {
    case Kind::kRelation:
    case Kind::kSigmaStar:
    case Kind::kSigmaL:
      return e;
    case Kind::kUnion: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, PushdownSelections(e.Left()));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, PushdownSelections(e.Right()));
      return AlgebraExpr::Union(std::move(l), std::move(r));
    }
    case Kind::kDifference: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, PushdownSelections(e.Left()));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, PushdownSelections(e.Right()));
      return AlgebraExpr::Difference(std::move(l), std::move(r));
    }
    case Kind::kProduct: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, PushdownSelections(e.Left()));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, PushdownSelections(e.Right()));
      return AlgebraExpr::Product(std::move(l), std::move(r));
    }
    case Kind::kProject: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, PushdownSelections(e.Left()));
      return AlgebraExpr::Project(std::move(c), e.columns());
    }
    case Kind::kRestrict: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, PushdownSelections(e.Left()));
      return AlgebraExpr::RestrictToDomain(std::move(c));
    }
    case Kind::kSelect: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, PushdownSelections(e.Left()));
      return PushdownSelect(e, std::move(c));
    }
  }
  return Status::Internal("unknown algebra node kind");
}

// --- pass 2: Lemma 3.1 constant-column specialisation -----------------------

Result<AlgebraExpr> SpecializeConstants(const AlgebraExpr& e,
                                        const Database& db) {
  switch (e.kind()) {
    case Kind::kRelation:
    case Kind::kSigmaStar:
    case Kind::kSigmaL:
      return e;
    case Kind::kUnion: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, SpecializeConstants(e.Left(), db));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r,
                             SpecializeConstants(e.Right(), db));
      return AlgebraExpr::Union(std::move(l), std::move(r));
    }
    case Kind::kDifference: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, SpecializeConstants(e.Left(), db));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r,
                             SpecializeConstants(e.Right(), db));
      return AlgebraExpr::Difference(std::move(l), std::move(r));
    }
    case Kind::kProduct: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, SpecializeConstants(e.Left(), db));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r,
                             SpecializeConstants(e.Right(), db));
      return AlgebraExpr::Product(std::move(l), std::move(r));
    }
    case Kind::kProject: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, SpecializeConstants(e.Left(), db));
      return AlgebraExpr::Project(std::move(c), e.columns());
    }
    case Kind::kRestrict: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, SpecializeConstants(e.Left(), db));
      return AlgebraExpr::RestrictToDomain(std::move(c));
    }
    case Kind::kSelect:
      break;
  }
  STRDB_ASSIGN_OR_RETURN(AlgebraExpr child, SpecializeConstants(e.Left(), db));
  std::vector<AlgebraExpr> factors;
  Flatten(child, &factors);
  std::vector<bool> constant(factors.size(), false);
  std::vector<std::optional<std::string>> fixed(
      static_cast<size_t>(e.arity()), std::nullopt);
  int offset = 0;
  size_t num_constant = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    if (factors[i].kind() == Kind::kRelation && db.Has(factors[i].relation_name())) {
      const StringRelation* rel = *db.Get(factors[i].relation_name());
      if (rel->size() == 1 && rel->arity() == factors[i].arity()) {
        const Tuple& tuple = *rel->tuples().begin();
        for (int c = 0; c < factors[i].arity(); ++c) {
          fixed[static_cast<size_t>(offset + c)] =
              tuple[static_cast<size_t>(c)];
        }
        constant[i] = true;
        ++num_constant;
      }
    }
    offset += factors[i].arity();
  }
  if (num_constant == 0 || num_constant == factors.size()) {
    return AlgebraExpr::Select(std::move(child), Fsa(e.fsa()));
  }
  Result<Fsa> specialized = Specialize(e.fsa(), fixed);
  if (!specialized.ok()) {
    // The lemma construction tripping a budget is not an error of the
    // query: keep the unspecialised form.
    return AlgebraExpr::Select(std::move(child), Fsa(e.fsa()));
  }
  return RebuildSplitSelect(factors, constant, *std::move(specialized));
}

// --- pass 3: product reordering by estimated cardinality --------------------

Result<AlgebraExpr> ReorderProducts(const AlgebraExpr& e, const Database& db,
                                    int truncation) {
  switch (e.kind()) {
    case Kind::kRelation:
    case Kind::kSigmaStar:
    case Kind::kSigmaL:
      return e;
    case Kind::kUnion: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l,
                             ReorderProducts(e.Left(), db, truncation));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r,
                             ReorderProducts(e.Right(), db, truncation));
      return AlgebraExpr::Union(std::move(l), std::move(r));
    }
    case Kind::kDifference: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l,
                             ReorderProducts(e.Left(), db, truncation));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r,
                             ReorderProducts(e.Right(), db, truncation));
      return AlgebraExpr::Difference(std::move(l), std::move(r));
    }
    case Kind::kProject: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c,
                             ReorderProducts(e.Left(), db, truncation));
      return AlgebraExpr::Project(std::move(c), e.columns());
    }
    case Kind::kRestrict: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c,
                             ReorderProducts(e.Left(), db, truncation));
      return AlgebraExpr::RestrictToDomain(std::move(c));
    }
    case Kind::kSelect: {
      // The child product's order fixes the tape layout of σ_A: recurse
      // into the factors but keep their order.
      std::vector<AlgebraExpr> factors;
      Flatten(e.Left(), &factors);
      if (factors.size() == 1) {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr c,
                               ReorderProducts(factors[0], db, truncation));
        return AlgebraExpr::Select(std::move(c), Fsa(e.fsa()));
      }
      std::vector<AlgebraExpr> rebuilt;
      for (const AlgebraExpr& f : factors) {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr rf,
                               ReorderProducts(f, db, truncation));
        rebuilt.push_back(std::move(rf));
      }
      return AlgebraExpr::Select(BuildProduct(std::move(rebuilt)),
                                 Fsa(e.fsa()));
    }
    case Kind::kProduct:
      break;
  }
  std::vector<AlgebraExpr> factors;
  Flatten(e, &factors);
  std::vector<AlgebraExpr> rebuilt;
  for (const AlgebraExpr& f : factors) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr rf, ReorderProducts(f, db, truncation));
    rebuilt.push_back(std::move(rf));
  }
  std::vector<size_t> order(rebuilt.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> card;
  for (const AlgebraExpr& f : rebuilt) {
    card.push_back(EstimateCardinality(f, db, truncation));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return card[a] < card[b]; });
  bool changed = false;
  for (size_t i = 0; i < order.size(); ++i) changed |= order[i] != i;
  if (!changed) return BuildProduct(std::move(rebuilt));
  std::vector<int> offsets(rebuilt.size(), 0);
  int offset = 0;
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    offsets[i] = offset;
    offset += rebuilt[i].arity();
  }
  // New position of each original column.
  std::vector<int> restore(static_cast<size_t>(offset));
  int pos = 0;
  std::vector<AlgebraExpr> sorted;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t i = order[rank];
    for (int c = 0; c < rebuilt[i].arity(); ++c) {
      restore[static_cast<size_t>(offsets[i] + c)] = pos++;
    }
  }
  for (size_t i : order) sorted.push_back(rebuilt[i]);
  return AlgebraExpr::Project(BuildProduct(std::move(sorted)),
                              std::move(restore));
}

// --- pass 4: common-subexpression elimination -------------------------------

// Hash-consing rebuild: every structurally distinct subtree gets one
// shared node, keyed by a small id-composed signature (child signatures
// collapse to ids, so keys stay O(1) per node).
class HashCons {
 public:
  Result<AlgebraExpr> Canonical(const AlgebraExpr& e) {
    std::string key;
    switch (e.kind()) {
      case Kind::kRelation:
        key = "R/" + e.relation_name() + "/" +
              std::to_string(e.arity());
        break;
      case Kind::kSigmaStar:
        key = "S*";
        break;
      case Kind::kSigmaL:
        key = "S^" + std::to_string(e.sigma_l());
        break;
      case Kind::kUnion:
      case Kind::kDifference:
      case Kind::kProduct: {
        STRDB_ASSIGN_OR_RETURN(int l, Id(e.Left()));
        STRDB_ASSIGN_OR_RETURN(int r, Id(e.Right()));
        key = std::string(e.kind() == Kind::kUnion       ? "u"
                          : e.kind() == Kind::kDifference ? "d"
                                                          : "x") +
              "/" + std::to_string(l) + "," + std::to_string(r);
        break;
      }
      case Kind::kProject: {
        STRDB_ASSIGN_OR_RETURN(int c, Id(e.Left()));
        key = "p/" + std::to_string(c) + "/";
        for (int col : e.columns()) key += std::to_string(col) + ",";
        break;
      }
      case Kind::kRestrict: {
        STRDB_ASSIGN_OR_RETURN(int c, Id(e.Left()));
        key = "t/" + std::to_string(c);
        break;
      }
      case Kind::kSelect: {
        STRDB_ASSIGN_OR_RETURN(int c, Id(e.Left()));
        key = "s/" + std::to_string(c) + "/" +
              std::to_string(FsaId(e.shared_fsa()));
        break;
      }
    }
    auto it = pool_.find(key);
    if (it != pool_.end()) return it->second;
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr canonical, Rebuild(e));
    pool_.emplace(key, canonical);
    ids_.emplace(canonical.node_identity(), static_cast<int>(ids_.size()));
    return canonical;
  }

 private:
  Result<int> Id(const AlgebraExpr& e) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr canonical, Canonical(e));
    return ids_.at(canonical.node_identity());
  }

  int FsaId(const std::shared_ptr<const Fsa>& fsa) {
    auto it = fsa_ids_.find(fsa.get());
    if (it != fsa_ids_.end()) return it->second;
    std::string text = SerializeFsa(*fsa);
    auto [tit, inserted] =
        fsa_text_ids_.emplace(std::move(text), static_cast<int>(fsa_text_ids_.size()));
    fsa_ids_.emplace(fsa.get(), tit->second);
    return tit->second;
  }

  // Rebuilds one node over canonical children (children are already in
  // the pool by the time this runs).
  Result<AlgebraExpr> Rebuild(const AlgebraExpr& e) {
    switch (e.kind()) {
      case Kind::kRelation:
      case Kind::kSigmaStar:
      case Kind::kSigmaL:
        return e;
      case Kind::kUnion: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, Canonical(e.Left()));
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, Canonical(e.Right()));
        return AlgebraExpr::Union(std::move(l), std::move(r));
      }
      case Kind::kDifference: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, Canonical(e.Left()));
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, Canonical(e.Right()));
        return AlgebraExpr::Difference(std::move(l), std::move(r));
      }
      case Kind::kProduct: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, Canonical(e.Left()));
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, Canonical(e.Right()));
        return AlgebraExpr::Product(std::move(l), std::move(r));
      }
      case Kind::kProject: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, Canonical(e.Left()));
        return AlgebraExpr::Project(std::move(c), e.columns());
      }
      case Kind::kRestrict: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, Canonical(e.Left()));
        return AlgebraExpr::RestrictToDomain(std::move(c));
      }
      case Kind::kSelect: {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, Canonical(e.Left()));
        return AlgebraExpr::Select(std::move(c), Fsa(e.fsa()));
      }
    }
    return Status::Internal("unknown algebra node kind");
  }

  std::map<std::string, AlgebraExpr> pool_;
  std::map<const AlgebraExpr::Node*, int> ids_;
  std::map<const Fsa*, int> fsa_ids_;
  std::map<std::string, int> fsa_text_ids_;
};

}  // namespace

double EstimateCardinality(const AlgebraExpr& e, const Database& db,
                           int truncation) {
  constexpr double kCap = 1e18;
  auto domain_size = [&](int l) {
    double total = 0, level = 1;
    for (int i = 0; i <= l; ++i) {
      total += level;
      level *= static_cast<double>(db.alphabet().size());
      if (total > kCap) return kCap;
    }
    return total;
  };
  switch (e.kind()) {
    case Kind::kRelation: {
      Result<const StringRelation*> rel = db.Get(e.relation_name());
      return rel.ok() ? static_cast<double>((*rel)->size()) : 0.0;
    }
    case Kind::kSigmaStar:
      return domain_size(truncation);
    case Kind::kSigmaL:
      return domain_size(e.sigma_l());
    case Kind::kUnion:
      return std::min(kCap, EstimateCardinality(e.Left(), db, truncation) +
                                EstimateCardinality(e.Right(), db, truncation));
    case Kind::kDifference:
      return EstimateCardinality(e.Left(), db, truncation);
    case Kind::kProduct:
      return std::min(kCap, EstimateCardinality(e.Left(), db, truncation) *
                                EstimateCardinality(e.Right(), db, truncation));
    case Kind::kProject:
    case Kind::kRestrict:
      return EstimateCardinality(e.Left(), db, truncation);
    case Kind::kSelect:
      return std::max(1.0,
                      EstimateCardinality(e.Left(), db, truncation) * 0.25);
  }
  return 0;
}

Result<AlgebraExpr> RewriteExpr(const AlgebraExpr& expr, const Database& db,
                                const EvalOptions& options,
                                const RewriteOptions& rewrites) {
  AlgebraExpr current = expr;
  const bool finitely_evaluable = expr.IsFinitelyEvaluable();
  auto guard = [&](Result<AlgebraExpr> candidate) {
    if (!candidate.ok()) return;  // a pass bailing out keeps the input
    if (candidate->arity() != current.arity()) return;
    if (finitely_evaluable && !candidate->IsFinitelyEvaluable()) return;
    current = *std::move(candidate);
  };
  if (rewrites.pushdown_selections) {
    guard(PushdownSelections(current));
  }
  if (rewrites.specialize_constants) {
    guard(SpecializeConstants(current, db));
  }
  if (rewrites.reorder_products) {
    bool cost_based = false;
    if (rewrites.cost_planner != nullptr) {
      const AlgebraExpr before = current;
      guard(CostBasedReorder(current, *rewrites.cost_planner));
      // The guard leaves `current` untouched when the DP pass errors or
      // violates an invariant; fall through to the heuristic then.
      cost_based = current.node_identity() != before.node_identity();
      if (!cost_based) current = before;
    }
    if (!cost_based) {
      guard(ReorderProducts(current, db, options.truncation));
    }
  }
  if (rewrites.common_subexpressions) {
    HashCons cse;
    guard(cse.Canonical(current));
  }
  return current;
}

}  // namespace strdb
