#ifndef STRDB_ENGINE_ENGINE_H_
#define STRDB_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "core/result.h"
#include "core/thread_pool.h"
#include "engine/cache.h"
#include "engine/plan.h"
#include "engine/rewrite.h"
#include "engine/stats.h"
#include "relational/algebra.h"
#include "relational/relation.h"

namespace strdb {

struct EngineOptions {
  // Run the rewrite pipeline (engine/rewrite) before lowering.
  bool enable_rewrites = true;
  RewriteOptions rewrites;
  // Reuse compiled σ_A artifacts (specialised automata, bounded
  // generations) across selections and across Execute calls.
  bool enable_cache = true;
  // Byte bound of the artifact cache (LRU-evicted; <= 0 picks the
  // default).  The bound holds at all times, not just between queries.
  int64_t cache_max_bytes = ArtifactCache::kDefaultMaxBytes;
  // Run σ_A filters through the compiled acceptance kernel
  // (fsa/kernel): CSR-indexed transitions, a one-way fast path and
  // reusable per-thread scratch.  Off = every tuple runs the reference
  // Theorem 3.3 BFS (AcceptsWithStats); answers are identical either
  // way, only speed differs.
  bool enable_kernel = true;
  // Route σ_A filters through the DFA codegen tier (fsa/dfa +
  // fsa/codegen) when the automaton is one-way and move-deterministic:
  // subset-constructed, minimised and lowered to threaded bytecode with
  // a batched execution path.  Machines outside the class — or past the
  // subset-construction caps — silently fall back to the CSR kernel
  // (and the kernel to the reference BFS), so the fallback ladder is
  // DFA → kernel → BFS and answers are identical at every rung.
  bool enable_dfa = true;
  // Partition filter-select inputs across the thread pool.  Inputs
  // smaller than `parallel_threshold` tuples run on the calling thread.
  bool enable_parallel = true;
  int num_threads = 0;  // <= 0 picks hardware_concurrency()
  int64_t parallel_threshold = 32;
  // Stream spilled (out-of-core) relations through σ_A filters batch by
  // batch instead of materialising them first.  Off = paged relations
  // are materialised on first use (the differential oracle path);
  // answers are identical either way, only peak memory differs.
  bool enable_paged = true;
  // Replace the heuristic product-reordering pass with the cost-based
  // DP planner (engine/planner): statistics-backed cardinalities, σ_A
  // selectivity from DFA acceptance density, Selinger bitset DP over
  // product factors (with tape permutation under a σ), and observed
  // selectivities fed back as adaptive corrections.  Any estimation
  // failure falls back to the heuristic order; answers are identical
  // either way, only plan shape differs.
  bool enable_cost_planner = true;
};

// Planning + execution engine for the alignment algebra: lowers an
// AlgebraExpr to a physical-plan DAG (engine/plan), optimises it
// (engine/rewrite), and runs it with shared-subtree memoisation, a
// process-wide compiled-artifact cache and parallel acceptance checks.
// Agrees with EvalAlgebra on every expression (engine_test property-tests
// the equivalence); only resource-budget *errors* can surface at
// different points.
//
// Thread safe: Execute keeps per-call state on the stack, the artifact
// cache locks internally.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  // Evaluates db(E↓l) like EvalAlgebra(expr, db, options).  When `stats`
  // is non-null it receives wall time, cache counters and the executed
  // plan annotated with per-operator counters — also on failure, where
  // the partial counters show how far the query got before the error
  // (a budget-exhausted query is still fully observable).
  Result<StringRelation> Execute(const AlgebraExpr& expr, const Database& db,
                                 const EvalOptions& options,
                                 ExecStats* stats = nullptr);

  // The plan Execute would run, rendered with planner estimates only.
  Result<std::string> Explain(const AlgebraExpr& expr, const Database& db,
                              const EvalOptions& options);

  const EngineOptions& options() const { return options_; }
  ArtifactCache& cache() { return cache_; }
  ThreadPool& pool() { return pool_; }
  StatsCatalog& stats_catalog() { return stats_catalog_; }
  SelectivityFeedback& feedback() { return feedback_; }
  DensityCache& densities() { return densities_; }

  // The process-wide engine instance the Query facade routes through.
  static Engine& Shared();

 private:
  // Lowers `expr` (after rewrites) to a plan DAG; shared AST subtrees
  // lower to one shared PlanNode.
  Result<std::shared_ptr<PlanNode>> Plan(const AlgebraExpr& expr,
                                         const Database& db,
                                         const EvalOptions& options);

  const EngineOptions options_;
  ArtifactCache cache_;
  ThreadPool pool_;
  // Cost-planner state: epoch-cached relation statistics, adaptive
  // selectivity corrections, and memoised acceptance densities.
  StatsCatalog stats_catalog_;
  SelectivityFeedback feedback_;
  DensityCache densities_;
};

}  // namespace strdb

#endif  // STRDB_ENGINE_ENGINE_H_
