#include "engine/plan.h"

#include <set>
#include <sstream>

namespace strdb {

std::string PlanNode::OpName() const {
  switch (op) {
    case Op::kScan:
      return "scan";
    case Op::kPagedScan:
      return "paged-scan";
    case Op::kDomain:
      return "domain";
    case Op::kUnion:
      return "union";
    case Op::kDifference:
      return "difference";
    case Op::kProduct:
      return "product";
    case Op::kProject:
      return "project";
    case Op::kFilterSelect:
      return "filter-select";
    case Op::kGenerateSelect:
      return "gen-select";
    case Op::kRestrict:
      return "restrict";
  }
  return "?";
}

namespace {

std::string JoinInts(const std::vector<int>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(xs[i]);
  }
  return out;
}

void ExplainNode(const PlanNode& node, int depth, bool with_stats,
                 std::set<const PlanNode*>* seen, std::ostringstream* out) {
  *out << std::string(static_cast<size_t>(depth) * 2, ' ') << node.OpName();
  switch (node.op) {
    case PlanNode::Op::kScan:
      *out << " " << node.relation;
      break;
    case PlanNode::Op::kPagedScan:
      *out << " " << node.relation;
      break;
    case PlanNode::Op::kDomain:
      if (node.sigma_l < 0) {
        *out << " Sigma*";
      } else {
        *out << " Sigma^" << node.sigma_l;
      }
      break;
    case PlanNode::Op::kProject:
      *out << "[" << JoinInts(node.columns) << "]";
      break;
    case PlanNode::Op::kFilterSelect:
      *out << "[fsa:" << node.fsa->num_transitions() << "t]";
      break;
    case PlanNode::Op::kGenerateSelect:
      *out << "[fsa:" << node.fsa->num_transitions() << "t free={"
           << JoinInts(node.free_columns) << "}]";
      break;
    default:
      break;
  }
  *out << "  (arity " << node.arity << ", est=" << node.est_rows;
  if (with_stats) *out << ", act=" << node.stats.tuples_out;
  *out << ")";
  if (with_stats) {
    const OperatorStats& s = node.stats;
    *out << "  [in=" << s.tuples_in << " out=" << s.tuples_out;
    if (s.fsa_steps > 0) *out << " fsa_steps=" << s.fsa_steps;
    if (s.cache_hits + s.cache_misses > 0) {
      *out << " cache=" << s.cache_hits << "/"
           << (s.cache_hits + s.cache_misses);
    }
    if (s.memo_hits > 0) *out << " memo_hits=" << s.memo_hits;
    *out << " time=" << static_cast<double>(s.wall_ns) / 1e6 << "ms]";
  }
  if (!seen->insert(&node).second) {
    *out << "  (shared, evaluated once)\n";
    return;
  }
  *out << "\n";
  for (const auto& child : node.children) {
    ExplainNode(*child, depth + 1, with_stats, seen, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode& root, bool with_stats) {
  std::ostringstream out;
  std::set<const PlanNode*> seen;
  ExplainNode(root, 0, with_stats, &seen, &out);
  return out.str();
}

std::string ExecStats::ToString() const {
  std::ostringstream out;
  out << "wall=" << static_cast<double>(wall_ns) / 1e6
      << "ms cache_hits=" << cache_hits << " cache_misses=" << cache_misses
      << " fsa_steps=" << fsa_steps << " rows_out=" << rows_out;
  if (memo_hits > 0) out << " memo_hits=" << memo_hits;
  if (budget_steps_used + budget_rows_used + budget_cached_bytes_used > 0) {
    out << " budget[steps=" << budget_steps_used
        << " rows=" << budget_rows_used
        << " cached_bytes=" << budget_cached_bytes_used << "]";
  }
  out << "\n" << plan;
  return out.str();
}

}  // namespace strdb
