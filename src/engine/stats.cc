#include "engine/stats.h"

#include <algorithm>

namespace strdb {

std::shared_ptr<const RelationStats> StatsCatalog::Get(
    const Database& db, const std::string& name) {
  Result<const StringRelation*> rel = db.Get(name);
  if (!rel.ok()) return nullptr;
  const uint64_t epoch = db.stats_epoch(name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end() && it->second.epoch == epoch) {
      return it->second.stats;
    }
  }
  auto stats =
      std::make_shared<const RelationStats>(ComputeRelationStats(**rel));
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(cache_.size()) >= kMaxEntries) cache_.clear();
  cache_[name] = Entry{epoch, stats};
  return stats;
}

int64_t StatsCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

void StatsCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

void SelectivityFeedback::Record(const std::string& fsa_key,
                                 double observed) {
  if (!(observed >= 0)) return;  // rejects NaN too
  const double clamped = std::clamp(observed, 1e-6, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ewma_.find(fsa_key);
  if (it == ewma_.end()) {
    if (static_cast<int64_t>(ewma_.size()) >= kMaxEntries) ewma_.clear();
    ewma_.emplace(fsa_key, clamped);
  } else {
    it->second += kAlpha * (clamped - it->second);
  }
}

bool SelectivityFeedback::Lookup(const std::string& fsa_key,
                                 double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ewma_.find(fsa_key);
  if (it == ewma_.end()) return false;
  *out = it->second;
  return true;
}

double SelectivityFeedback::Corrected(const std::string& fsa_key,
                                      double model_estimate) const {
  double observed = 0;
  if (!Lookup(fsa_key, &observed)) return model_estimate;
  return kBlend * observed + (1.0 - kBlend) * model_estimate;
}

int64_t SelectivityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(ewma_.size());
}

void SelectivityFeedback::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ewma_.clear();
}

bool DensityCache::Lookup(const std::string& key, double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  *out = it->second;
  return true;
}

void DensityCache::Insert(const std::string& key, double density) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(cache_.size()) >= kMaxEntries) cache_.clear();
  cache_[key] = density;
}

void DensityCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace strdb
