#ifndef STRDB_ENGINE_REWRITE_H_
#define STRDB_ENGINE_REWRITE_H_

#include "core/result.h"
#include "relational/algebra.h"
#include "relational/relation.h"

namespace strdb {

struct CostPlannerContext;

// Which passes of the rewrite pipeline run (in the order listed).
struct RewriteOptions {
  // σ_A(E ∪ F) → σ_A(E) ∪ σ_A(F), and σ_A(E × F) → σ_{A'}(E) × F when
  // every tape of F is disregarded by A (pinned to ⊢ and never moved):
  // selections sink towards the data they actually read.
  bool pushdown_selections = true;
  // Lemma 3.1 at plan time: a product factor that is a single-tuple
  // database relation is folded into the automaton (fsa/specialize),
  // shrinking both the σ input and the machine.
  bool specialize_constants = true;
  // Products reassociate cheapest-factor-first by estimated cardinality,
  // with a projection restoring the original column order.  Products
  // directly under a σ keep their order (it fixes the tape layout).
  bool reorder_products = true;
  // Hash-consing over the shared AST: structurally identical subtrees
  // are unified into one node, which the executor then evaluates once.
  bool common_subexpressions = true;
  // When set, the reordering pass runs the cost-based DP planner
  // (engine/planner.h) — statistics-backed cardinalities, DFA-derived
  // σ_A selectivities, and tape permutation for products under a σ —
  // falling back to the heuristic sort if the DP pass errors out.  Not
  // owned; must outlive the RewriteExpr call.
  const CostPlannerContext* cost_planner = nullptr;
};

// Applies the pipeline.  The database supplies cardinalities (product
// reordering) and constant relations (specialisation); the truncation in
// `options` sizes the Σ*/Σ^l estimates.  Rewrites never change db(E↓l)
// and preserve IsFinitelyEvaluable(); a pass whose output would violate
// either guard is skipped wholesale.
Result<AlgebraExpr> RewriteExpr(const AlgebraExpr& expr, const Database& db,
                                const EvalOptions& options,
                                const RewriteOptions& rewrites = {});

// The planner's cardinality estimate for db(E↓truncation), used to order
// product factors.  A heuristic: relations report their true size,
// domains their exact Σ^{<=l} count, selections assume 1/4 selectivity.
double EstimateCardinality(const AlgebraExpr& expr, const Database& db,
                           int truncation);

}  // namespace strdb

#endif  // STRDB_ENGINE_REWRITE_H_
