#ifndef STRDB_ENGINE_CACHE_H_
#define STRDB_ENGINE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "fsa/fsa.h"

namespace strdb {

// Process-wide cache of compiled σ_A artifacts, keyed by *structural*
// identity: the stable fsa/serialize text of the base automaton plus the
// chain of Lemma 3.1 bindings applied to it.  Repeated selections with
// the same automaton (re-running a Query, the odometer of
// σ_A(F × (Σ*)^n) revisiting a factor value, two queries sharing a
// compiled formula) skip respecialisation and regeneration entirely.
//
// Two artifact kinds are cached:
//   * specialised automata   — Specialize(A, tape := constant);
//   * bounded generations    — EnumerateLanguage(A', max_len) results.
// Both are pure functions of their key, so the cache never changes a
// result; only budget *errors* can differ when a previously computed
// artifact is reused under a smaller step budget.
//
// Thread safe.  When the entry count exceeds `max_entries` the cache is
// cleared wholesale (generation artifacts first) — crude, but bounds
// memory without bookkeeping on the hot path.
class ArtifactCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  using GeneratedSet = std::set<std::vector<std::string>>;

  explicit ArtifactCache(int64_t max_entries = 1 << 17)
      : max_entries_(max_entries) {}

  // The structural key of an automaton: its serialized text.  Stable
  // across processes (fsa/serialize round-trips byte-identically), so
  // equal machines share one cache line even when compiled separately.
  static std::string FsaKey(const Fsa& fsa);

  // Returns Specialize(base, base tape `tape` := value), where `base` is
  // the machine identified by `base_key`; `*derived_key` receives the
  // key under which the result is cached (feed it back to specialise
  // further tapes of the result).
  Result<std::shared_ptr<const Fsa>> GetSpecialized(
      const std::string& base_key, const Fsa& base, int tape,
      const std::string& value, std::string* derived_key, bool* hit);

  // Returns the cached EnumerateLanguage result for `key`, or nullptr.
  std::shared_ptr<const GeneratedSet> GetGenerated(const std::string& key);
  void PutGenerated(const std::string& key, GeneratedSet set);

  Stats stats() const;
  void Clear();

 private:
  void MaybeEvictLocked();

  const int64_t max_entries_;
  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<std::string, std::shared_ptr<const Fsa>> specialized_;
  std::unordered_map<std::string, std::shared_ptr<const GeneratedSet>>
      generated_;
};

}  // namespace strdb

#endif  // STRDB_ENGINE_CACHE_H_
