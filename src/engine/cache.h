#ifndef STRDB_ENGINE_CACHE_H_
#define STRDB_ENGINE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "core/result.h"
#include "fsa/codegen/program.h"
#include "fsa/fsa.h"
#include "fsa/kernel.h"

namespace strdb {

// Process-wide cache of compiled σ_A artifacts, keyed by *structural*
// identity: the stable fsa/serialize text of the base automaton plus the
// chain of Lemma 3.1 bindings applied to it.  Repeated selections with
// the same automaton (re-running a Query, the odometer of
// σ_A(F × (Σ*)^n) revisiting a factor value, two queries sharing a
// compiled formula) skip respecialisation and regeneration entirely.
//
// Four artifact kinds are cached:
//   * specialised automata   — Specialize(A, tape := constant);
//   * bounded generations    — EnumerateLanguage(A', max_len) results;
//   * acceptance kernels     — AcceptKernel::Compile(A) for σ_A filters;
//   * DFA programs           — DfaProgram::Compile(A) outcomes, *including
//     typed refusals*: an automaton outside the DFA tier's applicability
//     class is classified once, and every later query on it goes
//     straight to the kernel without re-running the subset construction.
// All are pure functions of their key, so the cache never changes a
// result; only budget *errors* can differ when a previously computed
// artifact is reused under a smaller step budget.
//
// Memory is bounded: each entry carries an estimated byte cost (key +
// payload), and the cache is a single LRU across both artifact kinds
// evicted strictly to stay under `max_bytes` — bytes_in_use() never
// exceeds the bound.  An artifact whose cost alone exceeds the bound is
// returned to the caller but not retained (counted as an eviction).
//
// Thread safe; hits and evictions also feed the process metrics
// registry ("engine.cache.*") so a churn workload is observable from the
// shell's `metrics` command.
class ArtifactCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t bytes_in_use = 0;
    int64_t peak_bytes = 0;
    int64_t entries = 0;
  };

  using GeneratedSet = std::set<std::vector<std::string>>;

  static constexpr int64_t kDefaultMaxBytes = 64ll << 20;  // 64 MiB

  explicit ArtifactCache(int64_t max_bytes = kDefaultMaxBytes);

  int64_t max_bytes() const { return max_bytes_; }

  // The structural key of an automaton: its serialized text.  Stable
  // across processes (fsa/serialize round-trips byte-identically), so
  // equal machines share one cache line even when compiled separately.
  static std::string FsaKey(const Fsa& fsa);

  // Estimated resident cost of the artifacts, used for LRU accounting
  // and exposed for tests.
  static int64_t FsaCost(const Fsa& fsa);
  static int64_t GeneratedCost(const GeneratedSet& set);
  static int64_t KernelCost(const AcceptKernel& kernel);
  static int64_t DfaCost(const DfaCompilation& compilation);

  // Returns Specialize(base, base tape `tape` := value), where `base` is
  // the machine identified by `base_key`; `*derived_key` receives the
  // key under which the result is cached (feed it back to specialise
  // further tapes of the result).  On a miss, the freshly built
  // artifact's cost is charged to `budget` (when given) before caching.
  Result<std::shared_ptr<const Fsa>> GetSpecialized(
      const std::string& base_key, const Fsa& base, int tape,
      const std::string& value, std::string* derived_key, bool* hit,
      ResourceBudget* budget = nullptr);

  // Returns the cached EnumerateLanguage result for `key`, or nullptr.
  std::shared_ptr<const GeneratedSet> GetGenerated(const std::string& key);
  // Caches `set` under `key`, charging its cost to `budget` (when
  // given).  Returns the shared artifact so callers keep it alive even
  // if it is immediately evicted.
  Result<std::shared_ptr<const GeneratedSet>> PutGenerated(
      const std::string& key, GeneratedSet set,
      ResourceBudget* budget = nullptr);

  // Returns the cached compiled acceptance kernel for `key`, or nullptr.
  std::shared_ptr<const AcceptKernel> GetKernel(const std::string& key);
  // Caches `kernel` under `key`, charging its cost to `budget` (when
  // given).  Returns the shared artifact so callers keep it alive even
  // if it is immediately evicted.
  Result<std::shared_ptr<const AcceptKernel>> PutKernel(
      const std::string& key, AcceptKernel kernel,
      ResourceBudget* budget = nullptr);

  // Returns the cached DFA compile outcome for `key`, or nullptr when
  // the machine has not been classified yet.  A non-null result with a
  // null `program` is a cached refusal.
  std::shared_ptr<const DfaCompilation> GetDfa(const std::string& key);
  // Caches a compile outcome (program or typed refusal) under `key`,
  // charging its cost to `budget` (when given).
  Result<std::shared_ptr<const DfaCompilation>> PutDfa(
      const std::string& key, DfaCompilation compilation,
      ResourceBudget* budget = nullptr);

  // Installs a prebuilt automaton artifact under `key`, as if a miss had
  // just computed it — the durable-storage layer uses this to warm the
  // cache from persisted automata at open time.  Normal LRU accounting
  // applies (an oversize artifact is dropped, counted as an eviction).
  void InstallFsa(const std::string& key, std::shared_ptr<const Fsa> fsa);

  // Visits every cached automaton artifact, most recently used first —
  // the persistence layer harvests these at checkpoint time.  `fn` runs
  // under the cache lock: keep it cheap and reentrancy-free.
  void ForEachFsa(
      const std::function<void(const std::string& key, const Fsa& fsa)>& fn)
      const;

  Stats stats() const;
  void Clear();

 private:
  // One artifact, either kind; exactly one payload pointer is set.
  struct Entry {
    std::string key;
    std::shared_ptr<const Fsa> fsa;
    std::shared_ptr<const GeneratedSet> generated;
    std::shared_ptr<const AcceptKernel> kernel;
    std::shared_ptr<const DfaCompilation> dfa;
    int64_t cost = 0;
  };

  // Inserts an already-built entry, evicting from the LRU tail first so
  // the byte bound is never exceeded even transiently.  Returns false
  // when the entry was NOT retained — oversize, or a concurrent miss on
  // the same key already inserted an incumbent — so the caller can
  // refund any budget bytes charged for it: a budget's cached-bytes
  // account must only ever reflect bytes actually resident.  Caller
  // holds mu_.
  bool InsertLocked(Entry entry);
  void EvictUntilFitsLocked(int64_t incoming);
  void TouchLocked(std::list<Entry>::iterator it);
  void RecordHitLocked();
  void RecordMissLocked();

  const int64_t max_bytes_;
  mutable std::mutex mu_;
  Stats stats_;
  // Front = most recently used.  The index owns nothing; entries live in
  // the list so iterators stay stable across splices.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace strdb

#endif  // STRDB_ENGINE_CACHE_H_
