#include "engine/cache.h"

#include <optional>

#include "fsa/serialize.h"
#include "fsa/specialize.h"

namespace strdb {

std::string ArtifactCache::FsaKey(const Fsa& fsa) {
  return SerializeFsa(fsa);
}

Result<std::shared_ptr<const Fsa>> ArtifactCache::GetSpecialized(
    const std::string& base_key, const Fsa& base, int tape,
    const std::string& value, std::string* derived_key, bool* hit) {
  std::string key = base_key;
  key += "\n|s";
  key += std::to_string(tape);
  key += '=';
  key += value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = specialized_.find(key);
    if (it != specialized_.end()) {
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      *derived_key = std::move(key);
      return it->second;
    }
    ++stats_.misses;
    if (hit != nullptr) *hit = false;
  }
  // Build outside the lock; concurrent misses on the same key compute
  // twice and agree (Specialize is deterministic).
  std::vector<std::optional<std::string>> fixed(
      static_cast<size_t>(base.num_tapes()), std::nullopt);
  fixed[static_cast<size_t>(tape)] = value;
  STRDB_ASSIGN_OR_RETURN(Fsa specialized, Specialize(base, fixed));
  auto shared = std::make_shared<const Fsa>(std::move(specialized));
  {
    std::lock_guard<std::mutex> lock(mu_);
    MaybeEvictLocked();
    specialized_.emplace(key, shared);
  }
  *derived_key = std::move(key);
  return shared;
}

std::shared_ptr<const ArtifactCache::GeneratedSet> ArtifactCache::GetGenerated(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generated_.find(key);
  if (it == generated_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void ArtifactCache::PutGenerated(const std::string& key, GeneratedSet set) {
  auto shared = std::make_shared<const GeneratedSet>(std::move(set));
  std::lock_guard<std::mutex> lock(mu_);
  MaybeEvictLocked();
  generated_[key] = std::move(shared);
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  specialized_.clear();
  generated_.clear();
}

void ArtifactCache::MaybeEvictLocked() {
  if (static_cast<int64_t>(specialized_.size() + generated_.size()) <
      max_entries_) {
    return;
  }
  ++stats_.evictions;
  generated_.clear();
  if (static_cast<int64_t>(specialized_.size()) >= max_entries_) {
    specialized_.clear();
  }
}

}  // namespace strdb
