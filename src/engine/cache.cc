#include "engine/cache.h"

#include <optional>
#include <utility>

#include "core/metrics.h"
#include "fsa/serialize.h"
#include "fsa/specialize.h"

namespace strdb {

namespace {

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Gauge* bytes;
  Gauge* entries;
};

// All ArtifactCache instances report into one set of process-wide
// instruments (there is normally exactly one cache, Engine::Shared()'s).
const CacheMetrics& Metrics() {
  static const CacheMetrics metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return CacheMetrics{reg.GetCounter("engine.cache.hits"),
                        reg.GetCounter("engine.cache.misses"),
                        reg.GetCounter("engine.cache.evictions"),
                        reg.GetGauge("engine.cache.bytes_in_use"),
                        reg.GetGauge("engine.cache.entries")};
  }();
  return metrics;
}

}  // namespace

ArtifactCache::ArtifactCache(int64_t max_bytes)
    : max_bytes_(max_bytes > 0 ? max_bytes : kDefaultMaxBytes) {}

std::string ArtifactCache::FsaKey(const Fsa& fsa) {
  return SerializeFsa(fsa);
}

int64_t ArtifactCache::FsaCost(const Fsa& fsa) {
  // Resident footprint, not serialized size: states (finality bit +
  // per-state out-index vector) plus transitions (fixed header + one
  // read symbol and one move per tape + the out-index slot).
  int64_t per_transition =
      static_cast<int64_t>(sizeof(Transition)) +
      static_cast<int64_t>(fsa.num_tapes()) *
          static_cast<int64_t>(sizeof(Sym) + sizeof(Move)) +
      static_cast<int64_t>(sizeof(int));
  return static_cast<int64_t>(sizeof(Fsa)) +
         static_cast<int64_t>(fsa.num_states()) *
             static_cast<int64_t>(sizeof(std::vector<int>) + 1) +
         static_cast<int64_t>(fsa.num_transitions()) * per_transition;
}

int64_t ArtifactCache::KernelCost(const AcceptKernel& kernel) {
  return kernel.MemoryCost();
}

int64_t ArtifactCache::DfaCost(const DfaCompilation& compilation) {
  int64_t bytes = static_cast<int64_t>(sizeof(DfaCompilation)) +
                  static_cast<int64_t>(compilation.failure.message().size());
  if (compilation.program != nullptr) {
    bytes += compilation.program->MemoryCost();
  }
  return bytes;
}

int64_t ArtifactCache::GeneratedCost(const GeneratedSet& set) {
  // Red-black tree node (3 pointers + colour, rounded) + vector header
  // per tuple, string header + content per component.
  int64_t bytes = static_cast<int64_t>(sizeof(GeneratedSet));
  for (const std::vector<std::string>& tuple : set) {
    bytes += 32 + static_cast<int64_t>(sizeof(tuple));
    for (const std::string& s : tuple) {
      bytes += static_cast<int64_t>(sizeof(s) + s.capacity());
    }
  }
  return bytes;
}

Result<std::shared_ptr<const Fsa>> ArtifactCache::GetSpecialized(
    const std::string& base_key, const Fsa& base, int tape,
    const std::string& value, std::string* derived_key, bool* hit,
    ResourceBudget* budget) {
  std::string key = base_key;
  key += "\n|s";
  key += std::to_string(tape);
  key += '=';
  key += value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      RecordHitLocked();
      TouchLocked(it->second);
      if (hit != nullptr) *hit = true;
      std::shared_ptr<const Fsa> found = it->second->fsa;
      *derived_key = std::move(key);
      return found;
    }
    RecordMissLocked();
    if (hit != nullptr) *hit = false;
  }
  // Build outside the lock; concurrent misses on the same key compute
  // twice and agree (Specialize is deterministic).
  std::vector<std::optional<std::string>> fixed(
      static_cast<size_t>(base.num_tapes()), std::nullopt);
  fixed[static_cast<size_t>(tape)] = value;
  STRDB_ASSIGN_OR_RETURN(Fsa specialized, Specialize(base, fixed));
  auto shared = std::make_shared<const Fsa>(std::move(specialized));
  int64_t cost = static_cast<int64_t>(key.size()) + FsaCost(*shared);
  // Charge before inserting (an exhausted budget must not grow the
  // cache), refund if the insert is rejected — oversize artifact or a
  // concurrent incumbent — so the account only ever holds bytes that
  // are actually resident.
  if (budget != nullptr) {
    STRDB_RETURN_IF_ERROR(budget->ChargeCachedBytes(cost));
  }
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted =
        InsertLocked(Entry{key, shared, nullptr, nullptr, nullptr, cost});
  }
  if (!inserted && budget != nullptr) budget->Release(0, 0, cost);
  *derived_key = std::move(key);
  return shared;
}

std::shared_ptr<const ArtifactCache::GeneratedSet> ArtifactCache::GetGenerated(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    RecordMissLocked();
    return nullptr;
  }
  RecordHitLocked();
  TouchLocked(it->second);
  return it->second->generated;
}

Result<std::shared_ptr<const ArtifactCache::GeneratedSet>>
ArtifactCache::PutGenerated(const std::string& key, GeneratedSet set,
                            ResourceBudget* budget) {
  auto shared = std::make_shared<const GeneratedSet>(std::move(set));
  int64_t cost = static_cast<int64_t>(key.size()) + GeneratedCost(*shared);
  if (budget != nullptr) {
    STRDB_RETURN_IF_ERROR(budget->ChargeCachedBytes(cost));
  }
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted =
        InsertLocked(Entry{key, nullptr, shared, nullptr, nullptr, cost});
  }
  if (!inserted && budget != nullptr) budget->Release(0, 0, cost);
  return shared;
}

std::shared_ptr<const AcceptKernel> ArtifactCache::GetKernel(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    RecordMissLocked();
    return nullptr;
  }
  RecordHitLocked();
  TouchLocked(it->second);
  return it->second->kernel;
}

Result<std::shared_ptr<const AcceptKernel>> ArtifactCache::PutKernel(
    const std::string& key, AcceptKernel kernel, ResourceBudget* budget) {
  auto shared = std::make_shared<const AcceptKernel>(std::move(kernel));
  int64_t cost = static_cast<int64_t>(key.size()) + KernelCost(*shared);
  if (budget != nullptr) {
    STRDB_RETURN_IF_ERROR(budget->ChargeCachedBytes(cost));
  }
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted =
        InsertLocked(Entry{key, nullptr, nullptr, shared, nullptr, cost});
  }
  if (!inserted && budget != nullptr) budget->Release(0, 0, cost);
  return shared;
}

std::shared_ptr<const DfaCompilation> ArtifactCache::GetDfa(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    RecordMissLocked();
    return nullptr;
  }
  RecordHitLocked();
  TouchLocked(it->second);
  return it->second->dfa;
}

Result<std::shared_ptr<const DfaCompilation>> ArtifactCache::PutDfa(
    const std::string& key, DfaCompilation compilation,
    ResourceBudget* budget) {
  auto shared = std::make_shared<const DfaCompilation>(std::move(compilation));
  int64_t cost = static_cast<int64_t>(key.size()) + DfaCost(*shared);
  if (budget != nullptr) {
    STRDB_RETURN_IF_ERROR(budget->ChargeCachedBytes(cost));
  }
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted =
        InsertLocked(Entry{key, nullptr, nullptr, nullptr, shared, cost});
  }
  if (!inserted && budget != nullptr) budget->Release(0, 0, cost);
  return shared;
}

void ArtifactCache::InstallFsa(const std::string& key,
                               std::shared_ptr<const Fsa> fsa) {
  int64_t cost = static_cast<int64_t>(key.size()) + FsaCost(*fsa);
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(Entry{key, std::move(fsa), nullptr, nullptr, nullptr, cost});
}

void ArtifactCache::ForEachFsa(
    const std::function<void(const std::string& key, const Fsa& fsa)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : lru_) {
    if (entry.fsa != nullptr) fn(entry.key, *entry.fsa);
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  Metrics().bytes->Add(-stats_.bytes_in_use);
  Metrics().entries->Add(-stats_.entries);
  index_.clear();
  lru_.clear();
  stats_.bytes_in_use = 0;
  stats_.entries = 0;
}

void ArtifactCache::TouchLocked(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ArtifactCache::RecordHitLocked() {
  ++stats_.hits;
  Metrics().hits->Increment();
}

void ArtifactCache::RecordMissLocked() {
  ++stats_.misses;
  Metrics().misses->Increment();
}

bool ArtifactCache::InsertLocked(Entry entry) {
  auto existing = index_.find(entry.key);
  if (existing != index_.end()) {
    // A concurrent miss on the same key beat us to the insert; keep the
    // incumbent (equal by construction) and refresh its recency.
    TouchLocked(existing->second);
    return false;
  }
  if (entry.cost > max_bytes_) {
    // Too large to ever retain under the bound; hand it back uncached so
    // the invariant bytes_in_use <= max_bytes holds unconditionally.
    ++stats_.evictions;
    Metrics().evictions->Increment();
    return false;
  }
  // Make room first: the bound must hold at all times, not just between
  // inserts, so evict before the new entry's cost is ever accounted.
  EvictUntilFitsLocked(entry.cost);
  stats_.bytes_in_use += entry.cost;
  if (stats_.bytes_in_use > stats_.peak_bytes) {
    stats_.peak_bytes = stats_.bytes_in_use;
  }
  ++stats_.entries;
  Metrics().bytes->Add(entry.cost);
  Metrics().entries->Add(1);
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().key, lru_.begin());
  return true;
}

void ArtifactCache::EvictUntilFitsLocked(int64_t incoming) {
  while (stats_.bytes_in_use + incoming > max_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    stats_.bytes_in_use -= victim.cost;
    --stats_.entries;
    ++stats_.evictions;
    Metrics().bytes->Add(-victim.cost);
    Metrics().entries->Add(-1);
    Metrics().evictions->Increment();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace strdb
