#ifndef STRDB_ENGINE_PLANNER_H_
#define STRDB_ENGINE_PLANNER_H_

#include <vector>

#include "core/result.h"
#include "engine/cost.h"
#include "relational/algebra.h"

namespace strdb {

// Rebuilds `fsa` with its tapes permuted: tape i of the result is tape
// `perm[i]` of the input (`perm` is a permutation of 0..k-1).  Tapes
// are symmetric in the k-FSA model, so the result accepts exactly the
// correspondingly permuted tuples — the piece that lets the planner
// reorder product factors *under* a σ, which the heuristic pass must
// leave pinned.
Result<Fsa> PermuteTapes(const Fsa& fsa, const std::vector<int>& perm);

// Selinger-style bitset DP over product factors: finds the left-deep
// order minimising the summed intermediate materialisation cost
// Σ_prefix Π rows, given each factor's estimated cardinality.  Returns
// `order` with order[rank] = factor index; identity when fewer than two
// factors or more than kMaxDpFactors (the 2^n table stops paying for
// itself long before exhaustive search stops fitting).
inline constexpr int kMaxDpFactors = 12;
std::vector<int> DpOrderFactors(const std::vector<double>& rows,
                                const CostModel& model);

// The cost-based replacement for the heuristic product-reordering pass:
// walks the expression, estimates factor cardinalities from statistics
// (EstimateRows), orders every product — including products directly
// under a σ, via PermuteTapes — by DP, and restores the original column
// order with a projection.  Answer-preserving by construction; the
// rewrite pipeline additionally guards arity and finite evaluability.
Result<AlgebraExpr> CostBasedReorder(const AlgebraExpr& expr,
                                     const CostPlannerContext& ctx);

}  // namespace strdb

#endif  // STRDB_ENGINE_PLANNER_H_
