#ifndef STRDB_ENGINE_PLAN_H_
#define STRDB_ENGINE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fsa/fsa.h"
#include "relational/algebra.h"
#include "relational/tuple_source.h"

namespace strdb {

// Execution counters of one plan operator, filled in while the plan
// runs.  `fsa_steps` counts configurations visited by σ_A acceptance
// checks; cache counters refer to the engine-wide artifact cache.
struct OperatorStats {
  int64_t tuples_in = 0;
  int64_t tuples_out = 0;
  int64_t fsa_steps = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t memo_hits = 0;  // result reuses of this (shared) subtree
  int64_t wall_ns = 0;
};

// One operator of a physical plan.  Plans are DAGs: subtrees shared in
// the algebra AST (or unified by the CSE rewrite) lower to a single
// PlanNode, which the executor evaluates once.
struct PlanNode {
  enum class Op : uint8_t {
    kScan,            // a database relation
    kPagedScan,       // a spilled (out-of-core) relation, read page-at-a-time
    kDomain,          // Σ^l, or Σ* read as Σ^truncation when sigma_l < 0
    kUnion,
    kDifference,
    kProduct,
    kProject,
    kFilterSelect,    // σ_A as a per-tuple acceptance filter
    kGenerateSelect,  // σ_A(F1×…×Fm×(Σ*)^n) run as a generator
    kRestrict,        // length-<=l filter (E ∩ (Σ*)^m at ↓l)
  };

  Op op = Op::kScan;
  int arity = 0;
  std::string relation;            // kScan, kPagedScan
  // kPagedScan: the out-of-core relation.  A FilterSelect parent streams
  // its batches through acceptance without materialising; any other
  // parent (or a disabled paged path) materialises it on first Eval.
  std::shared_ptr<const TupleSource> source;
  int sigma_l = -1;                // kDomain
  std::vector<int> columns;        // kProject
  std::shared_ptr<const Fsa> fsa;  // the two select ops
  std::string fsa_key;             // structural cache key of `fsa`

  // kGenerateSelect: children are the materialised factors, in column
  // order; factor_offsets[i] is the first output column of children[i];
  // free_columns lists the Σ* columns the generator fills in.
  std::vector<int> factor_offsets;
  std::vector<int> free_columns;

  std::vector<std::shared_ptr<PlanNode>> children;

  double est_rows = 0;  // planner cardinality estimate
  OperatorStats stats;  // filled by the executor

  // One-word operator name as rendered by Explain.
  std::string OpName() const;
};

// Multi-line, indentation-structured rendering of a plan ("explain").
// With `with_stats`, each line is annotated with the executor's actual
// counters; otherwise only the planner estimates are shown.
std::string ExplainPlan(const PlanNode& root, bool with_stats = false);

// Execution-wide statistics surfaced through the Query facade.  On a
// failed execution (budget exhaustion included) the engine still fills
// these in with whatever the partial run accumulated, so a degraded
// query remains observable: the plan annotations show exactly which
// operator burnt the budget.
struct ExecStats {
  // One row per plan operator (DAG order, shared nodes once): the
  // planner's cardinality estimate next to the executed row count —
  // the explain surface's `est=… act=…`, and the planner differential
  // target's estimate-sanity oracle.
  struct EstActRow {
    std::string op;
    double est = 0;
    int64_t act = 0;
  };

  int64_t wall_ns = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t fsa_steps = 0;   // acceptance configurations visited
  int64_t memo_hits = 0;   // shared-subtree result reuses
  int64_t rows_out = 0;    // rows of the final result (0 on error)
  // Snapshot of the query's ResourceBudget account; zero when the query
  // ran without a budget.
  int64_t budget_steps_used = 0;
  int64_t budget_rows_used = 0;
  int64_t budget_cached_bytes_used = 0;
  std::string plan;  // ExplainPlan(root, /*with_stats=*/true)
  std::vector<EstActRow> operators;

  std::string ToString() const;
};

}  // namespace strdb

#endif  // STRDB_ENGINE_PLAN_H_
