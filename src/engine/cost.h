#ifndef STRDB_ENGINE_COST_H_
#define STRDB_ENGINE_COST_H_

#include <string>
#include <vector>

#include "engine/cache.h"
#include "engine/stats.h"
#include "relational/algebra.h"
#include "relational/relation.h"
#include "relational/stats.h"

namespace strdb {

// Per-tuple cost constants (nanoseconds), calibrated from the
// checked-in BENCH_accept.json / BENCH_query_eval.json rows: the three
// acceptance tiers' end-to-end σ ns/tuple, plus materialisation and
// scan costs measured alongside them.  Absolute accuracy is not the
// point — plan choices only depend on the ratios, and those are pinned
// by the bench-regression gate.
struct CostModel {
  double bfs_ns_per_tuple = 8442;     // reference Theorem 3.3 BFS
  double kernel_ns_per_tuple = 3975;  // CSR acceptance kernel
  double dfa_ns_per_tuple = 679;      // DFA bytecode tier
  double tuple_build_ns = 400;        // product materialisation, per row
  double scan_ns = 120;               // per scanned tuple
  double generate_ns = 4000;          // per generated σ_A candidate
};

// Everything the cost-based planner needs, bundled so the rewrite
// pipeline can carry it as one optional pointer.  All pointers are
// unowned and may be null (each consumer degrades to the heuristic it
// replaces); the context must outlive the RewriteExpr call.
struct CostPlannerContext {
  const Database* db = nullptr;
  const PagedSet* paged = nullptr;
  // Persisted statistics from the durable catalog (covers paged
  // relations); consulted before recomputing from the Database.
  const StatsMap* stored_stats = nullptr;
  StatsCatalog* stats = nullptr;
  SelectivityFeedback* feedback = nullptr;
  DensityCache* densities = nullptr;
  ArtifactCache* cache = nullptr;
  int truncation = 4;
  bool enable_dfa = true;
  CostModel model;
};

// A crude per-column generative model of an expression's output,
// feeding the acceptance-density walk: character weights by byte value
// and an expected string length.
struct ColumnDist {
  std::vector<double> char_weight;  // [byte]; empty = uniform over Σ
  double expected_len = 2.0;
};

// Per-column distributions of db(E↓l)'s output, derived from relation
// statistics where available and flat defaults elsewhere.
std::vector<ColumnDist> EstimateColumnDists(const AlgebraExpr& expr,
                                            const CostPlannerContext& ctx);

// Statistics-backed cardinality estimate for db(E↓l).  Always finite
// and non-negative; falls back to EstimateCardinality's heuristics when
// no statistics reach a leaf.
double EstimateRows(const AlgebraExpr& expr, const CostPlannerContext& ctx);

// σ_A selectivity in [0, 1]: the DFA acceptance density under the
// column model, blended with the adaptive feedback for `fsa_key` when
// any exists.  Machines outside the DFA tier (or past its caps) fall
// back to the flat 0.25 guess before blending.
double EstimateSelectivity(const Fsa& fsa, const std::string& fsa_key,
                           const std::vector<ColumnDist>& dists,
                           const CostPlannerContext& ctx);

}  // namespace strdb

#endif  // STRDB_ENGINE_COST_H_
