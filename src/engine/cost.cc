#include "engine/cost.h"

#include <algorithm>
#include <cmath>

#include "fsa/dfa/dfa.h"

namespace strdb {

namespace {

using Kind = AlgebraExpr::Kind;

constexpr double kRowCap = 1e18;

// Resolves statistics for relation `name`: the live Database first
// (epoch-cached), then the persisted map (paged relations).  The
// aliasing constructor keeps stored entries usable without copying.
std::shared_ptr<const RelationStats> LookupStats(
    const std::string& name, const CostPlannerContext& ctx) {
  if (ctx.stats != nullptr && ctx.db != nullptr) {
    std::shared_ptr<const RelationStats> live = ctx.stats->Get(*ctx.db, name);
    if (live != nullptr) return live;
  }
  if (ctx.stored_stats != nullptr) {
    auto it = ctx.stored_stats->find(name);
    if (it != ctx.stored_stats->end()) {
      return std::shared_ptr<const RelationStats>(
          std::shared_ptr<const StatsMap>(), &it->second);
    }
  }
  return nullptr;
}

double DomainCount(const CostPlannerContext& ctx, int l) {
  const double sigma =
      ctx.db != nullptr ? static_cast<double>(ctx.db->alphabet().size()) : 2.0;
  double total = 0, level = 1;
  for (int i = 0; i <= l; ++i) {
    total += level;
    level *= sigma;
    if (total > kRowCap) return kRowCap;
  }
  return total;
}

// Mean length of a uniform draw from Σ^{<=l}: Σ i·σ^i / Σ σ^i.
double DomainExpectedLength(const CostPlannerContext& ctx, int l) {
  const double sigma =
      ctx.db != nullptr ? static_cast<double>(ctx.db->alphabet().size()) : 2.0;
  double total = 0, weighted = 0, level = 1;
  for (int i = 0; i <= l; ++i) {
    total += level;
    weighted += static_cast<double>(i) * level;
    level *= sigma;
    if (total > kRowCap) break;
  }
  return total > 0 ? weighted / total : 0.0;
}

ColumnDist DistFromStats(const ColumnStats& col, int64_t rows) {
  ColumnDist dist;
  dist.expected_len = col.ExpectedLength(rows);
  double total = 0;
  for (int64_t f : col.char_freq) total += static_cast<double>(f);
  if (total > 0) {
    dist.char_weight.resize(256, 0.0);
    for (int b = 0; b < 256; ++b) {
      dist.char_weight[static_cast<size_t>(b)] =
          static_cast<double>(col.char_freq[static_cast<size_t>(b)]);
    }
  }
  return dist;
}

// Quantised signature of the column model, the density memo's key
// suffix: coarse enough that near-identical models share an entry,
// fine enough that genuinely different statistics recompute.
std::string DistSignature(const std::vector<ColumnDist>& dists) {
  std::string sig;
  for (const ColumnDist& d : dists) {
    sig += "|l" + std::to_string(
                      static_cast<int64_t>(std::lround(d.expected_len * 4)));
    uint64_t h = 1469598103934665603ull;
    double total = 0;
    for (double w : d.char_weight) total += w;
    if (total > 0) {
      for (double w : d.char_weight) {
        uint64_t q = static_cast<uint64_t>(std::lround(1000.0 * w / total));
        h = (h ^ q) * 1099511628211ull;
      }
    }
    sig += "h" + std::to_string(h);
  }
  return sig;
}

}  // namespace

std::vector<ColumnDist> EstimateColumnDists(const AlgebraExpr& expr,
                                            const CostPlannerContext& ctx) {
  switch (expr.kind()) {
    case Kind::kRelation: {
      std::shared_ptr<const RelationStats> stats =
          LookupStats(expr.relation_name(), ctx);
      std::vector<ColumnDist> dists(static_cast<size_t>(expr.arity()));
      if (stats != nullptr) {
        for (size_t c = 0;
             c < dists.size() && c < stats->columns.size(); ++c) {
          dists[c] = DistFromStats(stats->columns[c], stats->rows);
        }
      }
      return dists;
    }
    case Kind::kSigmaStar:
      return {ColumnDist{{}, DomainExpectedLength(ctx, ctx.truncation)}};
    case Kind::kSigmaL:
      return {ColumnDist{
          {}, DomainExpectedLength(ctx,
                                   std::min(expr.sigma_l(), ctx.truncation))}};
    case Kind::kUnion:
    case Kind::kDifference:
      return EstimateColumnDists(expr.Left(), ctx);
    case Kind::kProduct: {
      std::vector<ColumnDist> left = EstimateColumnDists(expr.Left(), ctx);
      std::vector<ColumnDist> right = EstimateColumnDists(expr.Right(), ctx);
      left.insert(left.end(), std::make_move_iterator(right.begin()),
                  std::make_move_iterator(right.end()));
      return left;
    }
    case Kind::kProject: {
      std::vector<ColumnDist> child = EstimateColumnDists(expr.Left(), ctx);
      std::vector<ColumnDist> out;
      out.reserve(expr.columns().size());
      for (int c : expr.columns()) {
        if (c >= 0 && c < static_cast<int>(child.size())) {
          out.push_back(child[static_cast<size_t>(c)]);
        } else {
          out.emplace_back();
        }
      }
      return out;
    }
    case Kind::kRestrict:
    case Kind::kSelect:
      return EstimateColumnDists(expr.Left(), ctx);
  }
  return std::vector<ColumnDist>(static_cast<size_t>(expr.arity()));
}

double EstimateRows(const AlgebraExpr& expr, const CostPlannerContext& ctx) {
  double rows = 0;
  switch (expr.kind()) {
    case Kind::kRelation: {
      std::shared_ptr<const RelationStats> stats =
          LookupStats(expr.relation_name(), ctx);
      if (stats != nullptr) {
        rows = static_cast<double>(stats->rows);
      } else if (ctx.paged != nullptr) {
        auto it = ctx.paged->find(expr.relation_name());
        if (it != ctx.paged->end() && it->second != nullptr) {
          rows = static_cast<double>(it->second->tuple_count());
        }
      }
      break;
    }
    case Kind::kSigmaStar:
      rows = DomainCount(ctx, ctx.truncation);
      break;
    case Kind::kSigmaL:
      rows = DomainCount(ctx, std::min(expr.sigma_l(), ctx.truncation));
      break;
    case Kind::kUnion:
      rows = EstimateRows(expr.Left(), ctx) + EstimateRows(expr.Right(), ctx);
      break;
    case Kind::kDifference:
      rows = EstimateRows(expr.Left(), ctx);
      break;
    case Kind::kProduct:
      rows = EstimateRows(expr.Left(), ctx) * EstimateRows(expr.Right(), ctx);
      break;
    case Kind::kProject:
    case Kind::kRestrict:
      rows = EstimateRows(expr.Left(), ctx);
      break;
    case Kind::kSelect: {
      const double child = EstimateRows(expr.Left(), ctx);
      const std::string key = ArtifactCache::FsaKey(expr.fsa());
      const double sel = EstimateSelectivity(
          expr.fsa(), key, EstimateColumnDists(expr.Left(), ctx), ctx);
      rows = child * sel;
      break;
    }
  }
  if (!std::isfinite(rows) || rows < 0) rows = 0;
  return std::min(rows, kRowCap);
}

double EstimateSelectivity(const Fsa& fsa, const std::string& fsa_key,
                           const std::vector<ColumnDist>& dists,
                           const CostPlannerContext& ctx) {
  const std::string key =
      (fsa_key.empty() ? ArtifactCache::FsaKey(fsa) : fsa_key);
  const std::string memo_key = key + DistSignature(dists);
  double model = 0.25;
  bool have_model = false;
  if (ctx.densities != nullptr &&
      ctx.densities->Lookup(memo_key, &model)) {
    have_model = true;
  }
  if (!have_model) {
    Result<Dfa> dfa = BuildDfa(fsa);
    if (dfa.ok()) {
      DensityOptions opts;
      for (const ColumnDist& d : dists) {
        opts.char_weight.push_back(d.char_weight);
        opts.expected_len.push_back(d.expected_len);
      }
      Result<double> density = AcceptanceDensity(*dfa, opts);
      if (density.ok()) {
        model = *density;
        have_model = true;
      }
    }
    if (!have_model) model = 0.25;
    if (ctx.densities != nullptr) ctx.densities->Insert(memo_key, model);
  }
  double blended = ctx.feedback != nullptr
                       ? ctx.feedback->Corrected(key, model)
                       : model;
  if (!std::isfinite(blended)) blended = 0.25;
  return std::clamp(blended, 1e-9, 1.0);
}

}  // namespace strdb
