#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace strdb {

namespace {

using Kind = AlgebraExpr::Kind;

void Flatten(const AlgebraExpr& e, std::vector<AlgebraExpr>* out) {
  if (e.kind() == Kind::kProduct) {
    Flatten(e.Left(), out);
    Flatten(e.Right(), out);
  } else {
    out->push_back(e);
  }
}

AlgebraExpr BuildProduct(std::vector<AlgebraExpr> factors) {
  AlgebraExpr out = std::move(factors.front());
  for (size_t i = 1; i < factors.size(); ++i) {
    out = AlgebraExpr::Product(std::move(out), std::move(factors[i]));
  }
  return out;
}

bool IsIdentity(const std::vector<int>& order) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != static_cast<int>(i)) return false;
  }
  return true;
}

// Column permutation induced by a factor order: restore[old_col] is the
// column's position after the factors are rearranged, so
// π_restore(reordered) reproduces the original layout.
std::vector<int> RestoreProjection(const std::vector<AlgebraExpr>& factors,
                                   const std::vector<int>& order) {
  std::vector<int> offsets(factors.size(), 0);
  int offset = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    offsets[i] = offset;
    offset += factors[i].arity();
  }
  std::vector<int> restore(static_cast<size_t>(offset));
  int pos = 0;
  for (int i : order) {
    for (int c = 0; c < factors[static_cast<size_t>(i)].arity(); ++c) {
      restore[static_cast<size_t>(offsets[static_cast<size_t>(i)] + c)] =
          pos++;
    }
  }
  return restore;
}

std::vector<AlgebraExpr> ApplyOrder(const std::vector<AlgebraExpr>& factors,
                                    const std::vector<int>& order) {
  std::vector<AlgebraExpr> sorted;
  sorted.reserve(factors.size());
  for (int i : order) sorted.push_back(factors[static_cast<size_t>(i)]);
  return sorted;
}

}  // namespace

Result<Fsa> PermuteTapes(const Fsa& fsa, const std::vector<int>& perm) {
  const int k = fsa.num_tapes();
  if (static_cast<int>(perm.size()) != k) {
    return Status::InvalidArgument("tape permutation size mismatch");
  }
  std::vector<bool> seen(static_cast<size_t>(k), false);
  for (int p : perm) {
    if (p < 0 || p >= k || seen[static_cast<size_t>(p)]) {
      return Status::InvalidArgument("not a tape permutation");
    }
    seen[static_cast<size_t>(p)] = true;
  }
  Fsa out(fsa.alphabet(), k);
  while (out.num_states() < fsa.num_states()) out.AddState();
  out.SetStart(fsa.start());
  for (int s = 0; s < fsa.num_states(); ++s) {
    if (fsa.IsFinal(s)) out.SetFinal(s);
  }
  for (const Transition& t : fsa.transitions()) {
    Transition nt;
    nt.from = t.from;
    nt.to = t.to;
    nt.read.resize(static_cast<size_t>(k));
    nt.move.resize(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      nt.read[static_cast<size_t>(i)] =
          t.read[static_cast<size_t>(perm[static_cast<size_t>(i)])];
      nt.move[static_cast<size_t>(i)] =
          t.move[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    }
    STRDB_RETURN_IF_ERROR(out.AddTransition(std::move(nt)));
  }
  return out;
}

std::vector<int> DpOrderFactors(const std::vector<double>& rows,
                                const CostModel& model) {
  const int n = static_cast<int>(rows.size());
  std::vector<int> identity(static_cast<size_t>(n));
  std::iota(identity.begin(), identity.end(), 0);
  if (n < 2 || n > kMaxDpFactors) return identity;

  constexpr double kInf = 1e300;
  const int full = (1 << n) - 1;
  std::vector<double> best(static_cast<size_t>(full) + 1, kInf);
  std::vector<double> subset_rows(static_cast<size_t>(full) + 1, 1.0);
  std::vector<int> choice(static_cast<size_t>(full) + 1, -1);
  for (int j = 0; j < n; ++j) {
    const double r = std::max(1.0, rows[static_cast<size_t>(j)]);
    best[static_cast<size_t>(1 << j)] = r * model.scan_ns;
    subset_rows[static_cast<size_t>(1 << j)] = r;
  }
  for (int mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton, seeded above
    const int low = mask & -mask;
    subset_rows[static_cast<size_t>(mask)] =
        std::min(1e300, subset_rows[static_cast<size_t>(low)] *
                            subset_rows[static_cast<size_t>(mask ^ low)]);
    const double build =
        subset_rows[static_cast<size_t>(mask)] * model.tuple_build_ns;
    for (int j = 0; j < n; ++j) {
      if ((mask & (1 << j)) == 0) continue;
      const int rest = mask ^ (1 << j);
      const double total = best[static_cast<size_t>(rest)] + build;
      // <= prefers the largest j as the last factor added, so exact
      // ties reconstruct to the identity order (no gratuitous
      // projections when every factor costs the same).
      if (total <= best[static_cast<size_t>(mask)]) {
        best[static_cast<size_t>(mask)] = total;
        choice[static_cast<size_t>(mask)] = j;
      }
    }
  }
  std::vector<int> order;
  int mask = full;
  while (mask != 0) {
    int j = choice[static_cast<size_t>(mask)];
    if (j < 0) j = __builtin_ctz(static_cast<unsigned>(mask));
    order.push_back(j);
    mask ^= 1 << j;
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Result<AlgebraExpr> CostBasedReorder(const AlgebraExpr& e,
                                     const CostPlannerContext& ctx) {
  switch (e.kind()) {
    case Kind::kRelation:
    case Kind::kSigmaStar:
    case Kind::kSigmaL:
      return e;
    case Kind::kUnion: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, CostBasedReorder(e.Left(), ctx));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, CostBasedReorder(e.Right(), ctx));
      return AlgebraExpr::Union(std::move(l), std::move(r));
    }
    case Kind::kDifference: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr l, CostBasedReorder(e.Left(), ctx));
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr r, CostBasedReorder(e.Right(), ctx));
      return AlgebraExpr::Difference(std::move(l), std::move(r));
    }
    case Kind::kProject: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, CostBasedReorder(e.Left(), ctx));
      return AlgebraExpr::Project(std::move(c), e.columns());
    }
    case Kind::kRestrict: {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr c, CostBasedReorder(e.Left(), ctx));
      return AlgebraExpr::RestrictToDomain(std::move(c));
    }
    case Kind::kSelect: {
      std::vector<AlgebraExpr> factors;
      Flatten(e.Left(), &factors);
      std::vector<AlgebraExpr> rebuilt;
      rebuilt.reserve(factors.size());
      for (const AlgebraExpr& f : factors) {
        STRDB_ASSIGN_OR_RETURN(AlgebraExpr rf, CostBasedReorder(f, ctx));
        rebuilt.push_back(std::move(rf));
      }
      if (rebuilt.size() < 2 ||
          e.fsa().num_tapes() != e.Left().arity()) {
        return AlgebraExpr::Select(BuildProduct(std::move(rebuilt)),
                                   Fsa(e.fsa()));
      }
      std::vector<double> rows;
      rows.reserve(rebuilt.size());
      for (const AlgebraExpr& f : rebuilt) {
        rows.push_back(EstimateRows(f, ctx));
      }
      const std::vector<int> order = DpOrderFactors(rows, ctx.model);
      if (IsIdentity(order)) {
        return AlgebraExpr::Select(BuildProduct(std::move(rebuilt)),
                                   Fsa(e.fsa()));
      }
      // Tape i of the permuted machine reads the factor placed at rank
      // i's old columns — the per-column expansion of `order`.
      std::vector<int> tape_perm;
      tape_perm.reserve(static_cast<size_t>(e.Left().arity()));
      std::vector<int> offsets(rebuilt.size(), 0);
      int offset = 0;
      for (size_t i = 0; i < rebuilt.size(); ++i) {
        offsets[i] = offset;
        offset += rebuilt[i].arity();
      }
      for (int i : order) {
        for (int c = 0; c < rebuilt[static_cast<size_t>(i)].arity(); ++c) {
          tape_perm.push_back(offsets[static_cast<size_t>(i)] + c);
        }
      }
      STRDB_ASSIGN_OR_RETURN(Fsa permuted, PermuteTapes(e.fsa(), tape_perm));
      std::vector<int> restore = RestoreProjection(rebuilt, order);
      std::vector<AlgebraExpr> sorted = ApplyOrder(rebuilt, order);
      STRDB_ASSIGN_OR_RETURN(
          AlgebraExpr selected,
          AlgebraExpr::Select(BuildProduct(std::move(sorted)),
                              std::move(permuted)));
      return AlgebraExpr::Project(std::move(selected), std::move(restore));
    }
    case Kind::kProduct:
      break;
  }
  std::vector<AlgebraExpr> factors;
  Flatten(e, &factors);
  std::vector<AlgebraExpr> rebuilt;
  rebuilt.reserve(factors.size());
  for (const AlgebraExpr& f : factors) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr rf, CostBasedReorder(f, ctx));
    rebuilt.push_back(std::move(rf));
  }
  std::vector<double> rows;
  rows.reserve(rebuilt.size());
  for (const AlgebraExpr& f : rebuilt) rows.push_back(EstimateRows(f, ctx));
  const std::vector<int> order = DpOrderFactors(rows, ctx.model);
  if (IsIdentity(order)) return BuildProduct(std::move(rebuilt));
  std::vector<int> restore = RestoreProjection(rebuilt, order);
  std::vector<AlgebraExpr> sorted = ApplyOrder(rebuilt, order);
  return AlgebraExpr::Project(BuildProduct(std::move(sorted)),
                              std::move(restore));
}

}  // namespace strdb
