#ifndef STRDB_ENGINE_STATS_H_
#define STRDB_ENGINE_STATS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "relational/relation.h"
#include "relational/stats.h"

namespace strdb {

// Epoch-keyed cache of per-relation statistics.  The planner asks for a
// relation's summary on every query; recomputation scans the relation,
// so results are cached against the Database's mutation epoch (see
// Database::stats_epoch) and recomputed only after an actual mutation.
// One process-wide instance serves unrelated databases: epochs are
// globally unique per mutation, so a name collision merely evicts.
// Thread safe.
class StatsCatalog {
 public:
  // Statistics for `db`'s relation `name`; nullptr when the relation is
  // not in the database (paged relations live in the persisted StatsMap
  // instead).
  std::shared_ptr<const RelationStats> Get(const Database& db,
                                           const std::string& name);

  int64_t size() const;
  void Clear();

 private:
  struct Entry {
    uint64_t epoch = 0;
    std::shared_ptr<const RelationStats> stats;
  };

  static constexpr int64_t kMaxEntries = 4096;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> cache_;
};

// Adaptive correction factors: after every execution the engine records
// each σ_A operator's observed selectivity (rows out / rows in) against
// the automaton's structural key, and the planner blends the EWMA into
// its model estimate — systematic model error decays within a few
// queries of the same machine.  Thread safe.
class SelectivityFeedback {
 public:
  static constexpr double kAlpha = 0.3;   // EWMA step
  static constexpr double kBlend = 0.7;   // weight of feedback vs model

  void Record(const std::string& fsa_key, double observed);
  bool Lookup(const std::string& fsa_key, double* out) const;

  // Blends a model estimate with whatever feedback exists for the key.
  double Corrected(const std::string& fsa_key, double model_estimate) const;

  int64_t size() const;
  void Clear();

 private:
  static constexpr int64_t kMaxEntries = 8192;

  mutable std::mutex mu_;
  std::unordered_map<std::string, double> ewma_;
};

// Memo for acceptance-density results: the subset construction plus the
// density walk cost real time, and a hot automaton is re-planned with
// every query, so densities are cached on (fsa key, quantised column
// model).  Thread safe.
class DensityCache {
 public:
  bool Lookup(const std::string& key, double* out) const;
  void Insert(const std::string& key, double density);
  void Clear();

 private:
  static constexpr int64_t kMaxEntries = 8192;

  mutable std::mutex mu_;
  std::unordered_map<std::string, double> cache_;
};

}  // namespace strdb

#endif  // STRDB_ENGINE_STATS_H_
