#include "server/command.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "calculus/query.h"
#include "core/metrics.h"
#include "engine/engine.h"

namespace strdb {

namespace {

// printf into a std::string tail — the handlers below keep the shell's
// historical printf formats verbatim, so transcripts stay byte-stable.
void AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args_copy);
    return;
  }
  size_t old = out->size();
  out->resize(old + static_cast<size_t>(n) + 1);
  std::vsnprintf(out->data() + old, static_cast<size_t>(n) + 1, fmt,
                 args_copy);
  va_end(args_copy);
  out->resize(old + static_cast<size_t>(n));
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

// Parses the shell's tuple syntax ("ab,ba", "-" for the empty string).
std::vector<Tuple> ParseTuples(const std::vector<std::string>& words,
                               size_t first) {
  std::vector<Tuple> tuples;
  for (size_t i = first; i < words.size(); ++i) {
    Tuple tuple;
    std::istringstream in(words[i]);
    std::string part;
    while (std::getline(in, part, ',')) {
      tuple.push_back(part == "-" ? "" : part);
    }
    if (tuple.empty()) tuple.push_back("");
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

void AppendLimits(const ResourceLimits& limits, std::string* out) {
  auto show = [](int64_t v) {
    return v > 0 ? std::to_string(v) : std::string("-");
  };
  AppendF(out, "budget: steps=%s rows=%s ms=%s bytes=%s\n",
          show(limits.max_steps).c_str(), show(limits.max_rows).c_str(),
          show(limits.deadline_ms).c_str(),
          show(limits.max_cached_bytes).c_str());
}

}  // namespace

CommandProcessor::CommandProcessor(SharedCatalog* catalog, Mode mode)
    : catalog_(catalog), mode_(mode) {}

// A dedup'd retry answers with the same success text the original
// application produced (the text is a pure function of the command
// line), so the retrying client cannot tell — which is the point.
static void CountDeduped(bool deduped) {
  if (deduped) {
    MetricsRegistry::Global()
        .GetCounter("server.retried_requests_deduped")
        ->Increment();
  }
}

Status CommandProcessor::HandleRel(const std::vector<std::string>& words,
                                   const ReqId& req, std::string* out) {
  if (words.size() < 3) {
    return Status::InvalidArgument("usage: rel NAME tuple [tuple ...]");
  }
  const std::string& name = words[1];
  std::vector<Tuple> tuples = ParseTuples(words, 2);
  int arity = static_cast<int>(tuples.front().size());
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != arity) {
      return Status::InvalidArgument("tuples of unequal arity");
    }
  }
  size_t count = tuples.size();
  bool durable = catalog_->durable();
  bool deduped = false;
  STRDB_RETURN_IF_ERROR(
      catalog_->PutRelation(name, arity, std::move(tuples), req, &deduped));
  CountDeduped(deduped);
  AppendF(out, "defined %s/%d with %zu tuples%s\n", name.c_str(), arity, count,
          durable ? " (durable)" : "");
  return Status::OK();
}

Status CommandProcessor::HandleInsert(const std::vector<std::string>& words,
                                      const ReqId& req, std::string* out) {
  if (words.size() < 3) {
    return Status::InvalidArgument("usage: insert NAME tuple [tuple ...]");
  }
  const std::string& name = words[1];
  std::vector<Tuple> tuples = ParseTuples(words, 2);
  size_t count = tuples.size();
  bool durable = catalog_->durable();
  bool deduped = false;
  STRDB_RETURN_IF_ERROR(
      catalog_->InsertTuples(name, std::move(tuples), req, &deduped));
  CountDeduped(deduped);
  AppendF(out, "inserted %zu tuple(s) into %s%s\n", count, name.c_str(),
          durable ? " (durable)" : "");
  return Status::OK();
}

Status CommandProcessor::HandleDrop(const std::vector<std::string>& words,
                                    const ReqId& req, std::string* out) {
  if (words.size() != 2) return Status::InvalidArgument("usage: drop NAME");
  bool durable = catalog_->durable();
  bool deduped = false;
  STRDB_RETURN_IF_ERROR(catalog_->DropRelation(words[1], req, &deduped));
  CountDeduped(deduped);
  AppendF(out, "dropped %s%s\n", words[1].c_str(),
          durable ? " (durable)" : "");
  return Status::OK();
}

Status CommandProcessor::HandleOpen(const std::vector<std::string>& words,
                                    std::string* out) {
  if (words.size() != 2 && !(words.size() == 4 && words[2] == "spill")) {
    return Status::InvalidArgument("usage: open DIR [spill BYTES]");
  }
  if (words.size() == 4) {
    int64_t threshold = std::atoll(words[3].c_str());
    if (threshold <= 0) {
      return Status::InvalidArgument(
          "spill threshold must be a positive byte count");
    }
    StoreOptions store_opts;
    store_opts.spill_threshold_bytes = threshold;
    catalog_->set_store_options(store_opts);
  }
  RecoveryReport report;
  int warmed = 0;
  STRDB_RETURN_IF_ERROR(catalog_->OpenDurable(words[1], &report, &warmed));
  AppendF(out, "%s\n", report.ToString().c_str());
  if (warmed > 0) {
    AppendF(out, "warmed %d automata into the engine cache\n", warmed);
  }
  return Status::OK();
}

Status CommandProcessor::HandleSave(std::string* out) {
  int persisted = 0;
  int64_t generation = 0;
  size_t relations = 0;
  STRDB_RETURN_IF_ERROR(
      catalog_->CheckpointDurable(&persisted, &generation, &relations));
  AppendF(out, "checkpointed generation %lld (%zu relation(s), %d automata)\n",
          static_cast<long long>(generation), relations, persisted);
  return Status::OK();
}

Status CommandProcessor::HandleClose(std::string* out) {
  STRDB_RETURN_IF_ERROR(catalog_->CloseDurable());
  AppendF(out, "closed durable session (catalog kept in memory)\n");
  return Status::OK();
}

Status CommandProcessor::HandleBudget(const std::vector<std::string>& words,
                                      std::string* out) {
  if (words.size() == 2 && words[1] == "off") {
    limits_ = ResourceLimits{};
    AppendLimits(limits_, out);
    return Status::OK();
  }
  if (words.size() % 2 != 1) {
    return Status::InvalidArgument(
        "usage: budget [steps|rows|ms|bytes N ...] | budget off");
  }
  ResourceLimits next = limits_;
  for (size_t i = 1; i + 1 < words.size(); i += 2) {
    int64_t value = std::atoll(words[i + 1].c_str());
    if (words[i] == "steps") {
      next.max_steps = value;
    } else if (words[i] == "rows") {
      next.max_rows = value;
    } else if (words[i] == "ms") {
      next.deadline_ms = value;
    } else if (words[i] == "bytes") {
      next.max_cached_bytes = value;
    } else {
      return Status::InvalidArgument("unknown budget dimension '" + words[i] +
                                     "' (steps|rows|ms|bytes)");
    }
  }
  limits_ = next;
  AppendLimits(limits_, out);
  return Status::OK();
}

Status CommandProcessor::HandleQuery(const std::string& text,
                                     std::string* out) {
  int explicit_trunc = -1;
  std::string body = text;
  if (!body.empty() && body[0] == '!') {
    size_t sp = body.find(' ');
    if (sp == std::string::npos) {
      return Status::InvalidArgument("usage: !N QUERY");
    }
    explicit_trunc = std::atoi(body.substr(1, sp - 1).c_str());
    body = body.substr(sp + 1);
  }
  // One snapshot for the whole command: parse, truncation inference and
  // evaluation all see the same catalog — inline and spilled relations
  // as one consistent pair — whatever writers commit meanwhile.
  std::shared_ptr<const Database> snapshot;
  std::shared_ptr<const PagedSet> paged;
  std::shared_ptr<const StatsMap> rel_stats;
  catalog_->SnapshotState(&snapshot, &paged, &rel_stats);
  Result<Query> q = Query::Parse(body, snapshot->alphabet());
  if (!q.ok()) return q.status();
  ExecStats stats;
  QueryOptions opts;
  opts.use_engine = use_engine_;
  opts.stats = show_stats_ ? &stats : nullptr;
  opts.limits = limits_;
  opts.parent_budget = parent_budget_;
  opts.paged = paged.get();
  opts.relation_stats = rel_stats.get();
  // The server's per-request deadline rides the same budget machinery
  // as the session's own `budget ms`; it binds only when tighter, and
  // only then does an overrun convert to kDeadlineExceeded below.
  bool request_deadline_binding = false;
  if (request_deadline_ms_ > 0 && (opts.limits.deadline_ms <= 0 ||
                                   request_deadline_ms_ <
                                       opts.limits.deadline_ms)) {
    opts.limits.deadline_ms = request_deadline_ms_;
    request_deadline_binding = true;
  }
  Result<StringRelation> answer =
      explicit_trunc >= 0
          ? q->ExecuteTruncated(*snapshot, explicit_trunc, opts)
          : q->Execute(*snapshot, opts);
  if (!answer.ok()) {
    // A budget-exhausted query still fills the stats in: the plan
    // annotations show which operator burnt the budget.
    if (show_stats_ && use_engine_ && !stats.plan.empty()) {
      AppendF(out, "%s", stats.ToString().c_str());
    }
    if (explicit_trunc < 0) {
      AppendF(out, "hint: \"!N <query>\" evaluates at explicit "
                   "truncation N\n");
    }
    Status status = answer.status();
    if (request_deadline_binding &&
        status.code() == StatusCode::kResourceExhausted &&
        status.message().find("wall-clock deadline") != std::string::npos) {
      MetricsRegistry::Global()
          .GetCounter("server.deadline_exceeded")
          ->Increment();
      status = Status::DeadlineExceeded(status.message());
    }
    return status;
  }
  AppendF(out, "%s   (%lld tuples)\n", answer->ToString().c_str(),
          static_cast<long long>(answer->size()));
  if (show_stats_ && use_engine_) {
    AppendF(out, "%s", stats.ToString().c_str());
  }
  return Status::OK();
}

Status CommandProcessor::HandleSafe(const std::string& text,
                                    std::string* out) {
  std::shared_ptr<const Database> snapshot;
  std::shared_ptr<const PagedSet> paged;
  catalog_->SnapshotState(&snapshot, &paged);
  Result<Query> q = Query::Parse(text, snapshot->alphabet());
  if (!q.ok()) return q.status();
  Result<int> w = q->InferTruncation(*snapshot, paged.get());
  if (w.ok()) {
    AppendF(out, "SAFE; inferred truncation W(db) = %d\n", *w);
  } else {
    AppendF(out, "NOT certified: %s\n", w.status().ToString().c_str());
  }
  return Status::OK();
}

Status CommandProcessor::HandlePlan(const std::string& text,
                                    std::string* out) {
  std::shared_ptr<const Database> snapshot = catalog_->Snapshot();
  Result<Query> q = Query::Parse(text, snapshot->alphabet());
  if (!q.ok()) return q.status();
  AppendF(out, "formula: %s\n", q->formula().ToString().c_str());
  AppendF(out, "plan:    %s\n", q->plan().ToString().c_str());
  AppendF(out, "finitely evaluable: %s\n",
          q->plan().IsFinitelyEvaluable() ? "yes" : "no");
  return Status::OK();
}

Status CommandProcessor::HandleExplain(const std::string& text,
                                       std::string* out) {
  std::shared_ptr<const Database> snapshot;
  std::shared_ptr<const PagedSet> paged;
  std::shared_ptr<const StatsMap> rel_stats;
  catalog_->SnapshotState(&snapshot, &paged, &rel_stats);
  Result<Query> q = Query::Parse(text, snapshot->alphabet());
  if (!q.ok()) return q.status();
  Result<std::string> plan =
      q->ExplainPlan(*snapshot, paged.get(), rel_stats.get());
  if (!plan.ok()) return plan.status();
  AppendF(out, "%s", plan->c_str());
  return Status::OK();
}

Status CommandProcessor::Execute(const std::string& line, std::string* out) {
  std::vector<std::string> words = SplitWords(line);
  if (words.empty()) return Status::OK();

  // Optional idempotent-request prefix: "req CLIENT:SEQ COMMAND...".
  // Strip it here so the rest of the dispatcher sees the bare command;
  // only the mutation handlers consume the tag.
  ReqId req;
  std::string cmd = line;
  if (words[0] == "req") {
    if (words.size() < 3) {
      return Status::InvalidArgument("usage: req CLIENT:SEQ COMMAND ...");
    }
    const std::string& tag = words[1];
    size_t colon = tag.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= tag.size()) {
      return Status::InvalidArgument("malformed request tag '" + tag +
                                     "' (want CLIENT:SEQ)");
    }
    char* end = nullptr;
    unsigned long long seq = std::strtoull(tag.c_str() + colon + 1, &end, 10);
    if (end == tag.c_str() + colon + 1 || *end != '\0') {
      return Status::InvalidArgument("malformed request sequence in '" + tag +
                                     "'");
    }
    req.client = tag.substr(0, colon);
    req.seq = static_cast<uint64_t>(seq);
    // Cut the first two whitespace-delimited tokens off the raw line so
    // free-text commands (queries) keep their spacing.
    size_t pos = line.find_first_not_of(" \t");
    pos = line.find_first_of(" \t", pos);       // end of "req"
    pos = line.find_first_not_of(" \t", pos);   // start of the tag
    pos = line.find_first_of(" \t", pos);       // end of the tag
    pos = line.find_first_not_of(" \t", pos);   // start of the command
    cmd = pos == std::string::npos ? std::string() : line.substr(pos);
    words.erase(words.begin(), words.begin() + 2);
    if (words.empty()) return Status::OK();
  }

  if (words[0] == "open" || words[0] == "save" || words[0] == "close") {
    if (mode_ == Mode::kServer) {
      return Status::InvalidArgument(
          "'" + words[0] +
          "' is a shell verb: the server owns its durable session "
          "(start strdb_server with --dir)");
    }
    if (words[0] == "open") return HandleOpen(words, out);
    if (words[0] == "save") return HandleSave(out);
    return HandleClose(out);
  }
  if (words[0] == "rel") return HandleRel(words, req, out);
  if (words[0] == "insert") return HandleInsert(words, req, out);
  if (words[0] == "drop") return HandleDrop(words, req, out);
  if (words[0] == "show") {
    std::shared_ptr<const Database> snapshot;
    std::shared_ptr<const PagedSet> paged;
    catalog_->SnapshotState(&snapshot, &paged);
    for (const auto& [name, rel] : snapshot->relations()) {
      AppendF(out, "%s/%d = %s\n", name.c_str(), rel.arity(),
              rel.ToString().c_str());
    }
    for (const auto& [name, source] : *paged) {
      AppendF(out, "%s/%d = <spilled: %lld tuples on disk>\n", name.c_str(),
              source->arity(), static_cast<long long>(source->tuple_count()));
    }
    return Status::OK();
  }
  if (words[0] == "safe") {
    return HandleSafe(cmd.size() > 5 ? cmd.substr(5) : "", out);
  }
  if (words[0] == "plan") {
    return HandlePlan(cmd.size() > 5 ? cmd.substr(5) : "", out);
  }
  if (words[0] == "explain") {
    return HandleExplain(cmd.size() > 8 ? cmd.substr(8) : "", out);
  }
  if (words[0] == "engine" && words.size() == 2) {
    use_engine_ = words[1] != "off";
    AppendF(out, "engine %s\n", use_engine_ ? "on" : "off");
    return Status::OK();
  }
  if (words[0] == "stats" && words.size() == 2) {
    show_stats_ = words[1] != "off";
    AppendF(out, "stats %s\n", show_stats_ ? "on" : "off");
    return Status::OK();
  }
  if (words[0] == "budget") return HandleBudget(words, out);
  if (words[0] == "metrics" && words.size() == 1) {
    AppendF(out, "%s\n", MetricsRegistry::Global().DumpJson().c_str());
    return Status::OK();
  }
  if (words[0] == "pager" && words.size() == 1) {
    PagerStats stats;
    int64_t capacity = 0;
    size_t spilled = 0;
    if (!catalog_->PagerStatus(&stats, &capacity, &spilled)) {
      AppendF(out, "pager: no durable session\n");
      return Status::OK();
    }
    AppendF(out,
            "pager: capacity=%lld cached=%lld pinned=%lld peak_pinned=%lld\n",
            static_cast<long long>(capacity),
            static_cast<long long>(stats.bytes_cached),
            static_cast<long long>(stats.bytes_pinned),
            static_cast<long long>(stats.peak_bytes_pinned));
    AppendF(out, "pager: hits=%lld misses=%lld evictions=%lld\n",
            static_cast<long long>(stats.hits),
            static_cast<long long>(stats.misses),
            static_cast<long long>(stats.evictions));
    AppendF(out, "pager: %zu spilled relation(s)\n", spilled);
    return Status::OK();
  }
  if (words[0] == "ping" && words.size() == 1) {
    AppendF(out, "pong\n");
    return Status::OK();
  }
  return HandleQuery(cmd, out);
}

std::string FrameResponse(const Status& status, const std::string& body) {
  std::string out = body;
  if (!out.empty() && out.back() != '\n') out += '\n';
  if (status.ok()) {
    out += "ok\n";
    return out;
  }
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out += "err ";
  out += StatusCodeName(status.code());
  if (!message.empty()) {
    out += ' ';
    out += message;
  }
  out += '\n';
  return out;
}

}  // namespace strdb
