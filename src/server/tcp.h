#ifndef STRDB_SERVER_TCP_H_
#define STRDB_SERVER_TCP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "server/server.h"

namespace strdb {

// The thin POSIX socket transport over ServerCore: a TCP listener on
// 127.0.0.1 speaking the newline-framed protocol (one command per line
// in, FrameResponse-framed response out).  One thread per connection;
// each connection owns one ServerCore session and executes its
// commands in order, so the response stream is the serial execution of
// that connection's lines — concurrency (and every interesting
// property) lives entirely in ServerCore, which is why the conformance
// driver skips this layer and tests the core in-process.
class TcpServer {
 public:
  explicit TcpServer(ServerCore* core) : core_(core) {}
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds and listens on 127.0.0.1:port.  port 0 asks the kernel for an
  // ephemeral port; port() reports the bound one either way.
  Status Listen(int port);
  int port() const { return port_; }

  // Accept loop; runs until Stop() is called (returns after the
  // listener closes).  A signal interrupting accept() is tolerated, so
  // a SIGTERM handler may simply call RequestStop().
  void Serve();

  // Async-signal-safe stop request: Serve() returns soon after.
  void RequestStop();

  // Graceful drain: stop accepting, shut down the read side of every
  // live connection (in-flight commands still get their responses),
  // join connection threads, then drain the core (see
  // ServerCore::Drain for deadline semantics).  Idempotent.
  Status Stop(int64_t deadline_ms = 0);

 private:
  void HandleConnection(int64_t conn_id, int fd);
  // Joins connection threads that have announced completion.  Called
  // from the accept loop each poll tick so a long-lived daemon holds
  // one thread per *live* connection, not per connection ever served.
  void ReapFinished();

  ServerCore* const core_;
  // Atomic: Serve() polls/accepts on it lock-free while Stop() (another
  // thread) closes it and writes -1.  The close-while-blocked-in-accept
  // wakeup is the intended stop mechanism; the atomic only makes the
  // descriptor handoff itself race-free.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex mu_;
  std::set<int> conn_fds_;  // live connections (for shutdown on Stop)
  int64_t next_conn_id_ = 0;
  // Keyed by connection id, not fd: the kernel reuses fd numbers as
  // soon as they close, so an fd cannot name a thread unambiguously.
  std::map<int64_t, std::thread> conn_threads_;
  std::vector<int64_t> finished_conn_ids_;  // done, awaiting join
};

}  // namespace strdb

#endif  // STRDB_SERVER_TCP_H_
