#ifndef STRDB_SERVER_COMMAND_H_
#define STRDB_SERVER_COMMAND_H_

#include <string>
#include <vector>

#include "core/budget.h"
#include "core/status.h"
#include "server/catalog.h"

namespace strdb {

// The one command grammar both front-ends speak.  Extracted from
// examples/strdb_shell.cc so the interactive shell and the query server
// dispatch identical commands with byte-identical output — the golden
// transcript in tests/command_test.cc pins the text down, and the
// server-vs-serial conformance target leans on the determinism.
//
// Commands (the shell's historical set):
//   rel NAME tuple [tuple ...]    define a relation ("ab,ba" tuples,
//                                 "-" for the empty string)
//   insert NAME tuple [...]       add tuples to an existing relation
//   drop NAME                     remove a relation
//   show                          list the relations
//   open DIR [spill BYTES] / save / close
//                                 durable-session verbs (shell mode
//                                 only — the server owns its store and
//                                 rejects these with a typed error);
//                                 `spill BYTES` makes save move
//                                 relations that big out-of-core
//   pager                         buffer-pool counters of the durable
//                                 store's pager (spilled relations,
//                                 cached/pinned bytes, hit rate)
//   safe QUERY                    safety analysis only
//   plan QUERY                    Theorem 4.2 algebra plan
//   explain QUERY                 engine physical plan
//   engine on|off                 engine vs naive evaluator
//   stats on|off                  per-operator stats after each query
//   budget [DIM N ...] | off      per-session query resource limits
//   metrics                       process metrics registry as JSON
//   ping                          liveness probe ("pong")
//   req CLIENT:SEQ COMMAND...     idempotent-request prefix: CLIENT is a
//                                 client-chosen id, SEQ its monotonically
//                                 increasing request number.  A mutation
//                                 (rel/insert/drop) whose SEQ is already
//                                 inside the client's applied window is
//                                 acknowledged without re-applying — the
//                                 response text is identical — so a
//                                 client may retry after a lost ack.
//                                 Non-mutations ignore the tag.
//   QUERY                         evaluate ("!N QUERY" for an explicit
//                                 truncation)
//
// One CommandProcessor per session; it holds the session-local knobs
// (engine route, stats, budget limits) and points at the process-shared
// SharedCatalog.  Execute is NOT reentrant — the dispatcher serializes
// commands per session — but different sessions' processors run
// concurrently: queries evaluate against an immutable catalog snapshot
// grabbed at command start, mutations serialize inside SharedCatalog.
class CommandProcessor {
 public:
  enum class Mode {
    kShell,   // full grammar, including open/save/close
    kServer,  // durable-session verbs rejected (server owns the store)
  };

  explicit CommandProcessor(SharedCatalog* catalog, Mode mode = Mode::kShell);

  // Executes one command line.  `out` receives exactly the text the
  // command historically printed to stdout (possibly empty, possibly
  // multi-line, '\n'-terminated when non-empty); the returned Status is
  // the command's verdict.  A blank line is an OK no-op.
  Status Execute(const std::string& line, std::string* out);

  // Per-session query limits (the `budget` verb mutates these).
  const ResourceLimits& limits() const { return limits_; }
  void set_limits(const ResourceLimits& limits) { limits_ = limits; }

  // Optional shared admission account: when set, every query opens its
  // per-query budget as a child of this one (see QueryOptions).  Not
  // owned; must outlive the processor.
  void set_parent_budget(ResourceBudget* parent) { parent_budget_ = parent; }

  // Server-imposed per-request wall-clock cap (0 = none).  Tighter than
  // the session's own `budget ms` it wins, and an overrun it caused
  // comes back as typed kDeadlineExceeded (counted in
  // server.deadline_exceeded) instead of kResourceExhausted, so clients
  // can tell "the server cut me off" from "my budget ran out".
  void set_request_deadline_ms(int64_t ms) { request_deadline_ms_ = ms; }

 private:
  Status HandleRel(const std::vector<std::string>& words, const ReqId& req,
                   std::string* out);
  Status HandleInsert(const std::vector<std::string>& words, const ReqId& req,
                      std::string* out);
  Status HandleDrop(const std::vector<std::string>& words, const ReqId& req,
                    std::string* out);
  Status HandleOpen(const std::vector<std::string>& words, std::string* out);
  Status HandleSave(std::string* out);
  Status HandleClose(std::string* out);
  Status HandleBudget(const std::vector<std::string>& words, std::string* out);
  Status HandleQuery(const std::string& text, std::string* out);
  Status HandleSafe(const std::string& text, std::string* out);
  Status HandlePlan(const std::string& text, std::string* out);
  Status HandleExplain(const std::string& text, std::string* out);

  SharedCatalog* const catalog_;
  const Mode mode_;
  bool use_engine_ = true;
  bool show_stats_ = false;
  ResourceLimits limits_;
  ResourceBudget* parent_budget_ = nullptr;
  int64_t request_deadline_ms_ = 0;
};

// Frames one command's outcome as the server's wire response: the body
// lines (already '\n'-terminated) followed by a terminator line —
// "ok\n" on success, "err <code-name> <message>\n" otherwise (message
// newlines flattened so the terminator stays one line).  Both the TCP
// transport and the serial conformance oracle use this, which is what
// makes "byte-identical to serial replay" a meaningful check.
std::string FrameResponse(const Status& status, const std::string& body);

}  // namespace strdb

#endif  // STRDB_SERVER_COMMAND_H_
