// strdb_server: the concurrent query server.
//
//   $ ./strdb_server [alphabet] [flags]      (default alphabet: ab)
//
//   --port N            listen port on 127.0.0.1 (default 7411; 0 asks
//                       the kernel for an ephemeral port — the chosen
//                       one is printed either way)
//   --dir DIR           serve a durable catalog: open (or create) the
//                       store in DIR, replay the WAL, warm the engine's
//                       automaton cache; rel/insert/drop then commit
//                       through the WAL.  Without it the catalog is
//                       memory-only.
//   --spill BYTES       with --dir: relations whose in-memory footprint
//                       reaches BYTES move out-of-core (paged heap
//                       files) at each checkpoint; queries stream them
//                       through the buffer pool (default 0 = never)
//   --pager-cap BYTES   buffer-pool byte cap for reading spilled
//                       relations (default 4 MiB)
//   --workers N         dispatcher pool size (default: hardware)
//   --queue-depth N     admission bound on queued commands (default 64)
//   --max-sessions N    concurrent session bound (default 256)
//   --global-steps N    global in-flight search-step account
//   --global-rows N     global in-flight materialised-row account
//   --session-steps N   default per-query step limit per session
//   --session-rows N    default per-query row limit per session
//   --session-ms N      default per-query deadline per session
//   --request-deadline-ms N
//                       server-imposed wall-clock cap per request; a
//                       query it cancels gets "err deadline-exceeded"
//                       (default 0 = none)
//   --read-deadline-ms N
//                       cut a connection that stalls mid-command for
//                       this long with "err deadline-exceeded" (default
//                       0 = none; idle connections are unaffected)
//   --scrub-interval-ms N
//                       with --dir: background-scrub the snapshot, WAL
//                       and spilled heaps every N ms, quarantining
//                       relations whose pages fail their CRCs (default
//                       0 = no scrub thread)
//
// Protocol: one command per line (the shell grammar; see
// server/command.h), response = body lines + "ok" or "err <code> <msg>"
// terminator.  Try it with nc:
//
//   $ nc 127.0.0.1 7411
//   rel R ab ba
//   defined R/1 with 2 tuples
//   ok
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
// commands, checkpoint the durable store if one is open, then exit 0.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/alphabet.h"
#include "server/server.h"
#include "server/tcp.h"
#include "storage/store.h"

namespace {

strdb::TcpServer* g_server = nullptr;

// Async-signal-safe: RequestStop is a lock-free atomic store, and
// Serve()'s poll loop re-checks the flag at least every 200ms even if
// the wakeup EINTR is missed.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

int64_t ParseInt(const char* flag, const char* text) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace strdb;

  std::string chars = "ab";
  std::string dir;
  int port = 7411;
  ServerOptions options;
  StoreOptions store_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<int>(ParseInt("--port", next("--port")));
    } else if (arg == "--dir") {
      dir = next("--dir");
    } else if (arg == "--spill") {
      store_options.spill_threshold_bytes =
          ParseInt("--spill", next("--spill"));
    } else if (arg == "--pager-cap") {
      store_options.pager_capacity_bytes =
          ParseInt("--pager-cap", next("--pager-cap"));
    } else if (arg == "--workers") {
      options.num_workers =
          static_cast<int>(ParseInt("--workers", next("--workers")));
    } else if (arg == "--queue-depth") {
      options.max_queue_depth =
          ParseInt("--queue-depth", next("--queue-depth"));
    } else if (arg == "--max-sessions") {
      options.max_sessions =
          ParseInt("--max-sessions", next("--max-sessions"));
    } else if (arg == "--global-steps") {
      options.global_limits.max_steps =
          ParseInt("--global-steps", next("--global-steps"));
    } else if (arg == "--global-rows") {
      options.global_limits.max_rows =
          ParseInt("--global-rows", next("--global-rows"));
    } else if (arg == "--session-steps") {
      options.session_limits.max_steps =
          ParseInt("--session-steps", next("--session-steps"));
    } else if (arg == "--session-rows") {
      options.session_limits.max_rows =
          ParseInt("--session-rows", next("--session-rows"));
    } else if (arg == "--session-ms") {
      options.session_limits.deadline_ms =
          ParseInt("--session-ms", next("--session-ms"));
    } else if (arg == "--request-deadline-ms") {
      options.request_deadline_ms =
          ParseInt("--request-deadline-ms", next("--request-deadline-ms"));
    } else if (arg == "--read-deadline-ms") {
      options.read_deadline_ms =
          ParseInt("--read-deadline-ms", next("--read-deadline-ms"));
    } else if (arg == "--scrub-interval-ms") {
      store_options.scrub_interval_ms =
          ParseInt("--scrub-interval-ms", next("--scrub-interval-ms"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      chars = arg;
    }
  }

  Result<Alphabet> alphabet = Alphabet::Create(chars);
  if (!alphabet.ok()) {
    std::fprintf(stderr, "bad alphabet: %s\n",
                 alphabet.status().ToString().c_str());
    return 1;
  }

  ServerCore core(*alphabet, options);
  if (!dir.empty()) {
    RecoveryReport report;
    int warmed = 0;
    core.catalog().set_store_options(store_options);
    Status opened = core.catalog().OpenDurable(dir, &report, &warmed);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open durable catalog '%s': %s\n",
                   dir.c_str(), opened.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s\n", report.ToString().c_str());
    if (warmed > 0) {
      std::fprintf(stderr, "warmed %d automata into the engine cache\n",
                   warmed);
    }
  }

  TcpServer server(&core);
  Status listening = server.Listen(port);
  if (!listening.ok()) {
    std::fprintf(stderr, "cannot listen on port %d: %s\n", port,
                 listening.ToString().c_str());
    return 1;
  }
  g_server = &server;
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // The port line is the startup handshake scripts wait for; flush so a
  // pipe reader sees it before the first client connects.
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  server.Serve();  // returns once a signal requests the stop

  Status drained = server.Stop();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
  }
  if (core.catalog().durable()) {
    int persisted = 0;
    int64_t generation = 0;
    Status saved = core.catalog().CheckpointDurable(&persisted, &generation,
                                                    nullptr);
    if (saved.ok()) {
      std::fprintf(stderr, "checkpointed generation %lld on shutdown\n",
                   static_cast<long long>(generation));
    } else {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                   saved.ToString().c_str());
    }
    (void)core.catalog().CloseDurable();
  }
  std::printf("drained: %lld command(s) served\n",
              static_cast<long long>(
                  MetricsRegistry::Global().GetCounter("server.commands")
                      ->value()));
  return drained.ok() ? 0 : 1;
}
