#ifndef STRDB_SERVER_TRANSPORT_H_
#define STRDB_SERVER_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/rng.h"

namespace strdb {

// The client side of the newline-framed protocol, behind a seam so the
// resilient client (client/client.h) can be driven over a real socket
// in production and over a fault-injecting wrapper in tests.  One
// transport object represents one logical peer: Connect() may be called
// again after a drop, and implementations must make a failed or closed
// transport safe to reconnect.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  // (Re)establishes the connection.  Any previous connection is closed
  // first.
  virtual Status Connect(const std::string& host, int port) = 0;

  // Writes the whole buffer.  kUnavailable when the connection died
  // (the caller reconnects and retries).
  virtual Status Send(const std::string& data) = 0;

  // Reads some bytes (at least one).  An empty string is a clean EOF —
  // the peer closed.  kUnavailable on a broken connection.
  virtual Result<std::string> Recv() = 0;

  virtual void Close() = 0;
  virtual bool connected() const = 0;
};

// The real thing: a blocking TCP connection.
class TcpClientTransport : public ClientTransport {
 public:
  TcpClientTransport() = default;
  ~TcpClientTransport() override;

  Status Connect(const std::string& host, int port) override;
  Status Send(const std::string& data) override;
  Result<std::string> Recv() override;
  void Close() override;
  bool connected() const override { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// What a FaultyTransport should break.  Operation indices are 0-based
// and count every transport call (Connect, Send, Recv) in execution
// order — deterministic for a deterministic workload, exactly like
// FaultPlan's op indices over Env calls (core/io/fault_env.h), which is
// what makes a fault-point sweep over a client session possible.
struct TransportFaultPlan {
  // Seeds torn-frame prefix lengths.
  uint64_t seed = 1;
  // Op indices at which the connection tears mid-byte: a Send landing
  // here transmits only a seeded strict prefix of its bytes before the
  // connection drops (the server sees a torn request frame); a Recv
  // landing here delivers only a seeded strict prefix of what arrived
  // and then the connection drops (the client sees a torn response
  // frame).  Connect is unaffected by a tear index.
  std::vector<int64_t> tear_at;
  // Op indices that drop the connection instead of executing: the op
  // fails kUnavailable and the underlying connection is closed.
  std::vector<int64_t> drop_at;
  // > 0: every op with index % drop_every == drop_every - 1 drops, a
  // flaky-network soak mode (composes with the explicit lists).
  int64_t drop_every = 0;
  // Op indices at which a Recv stalls (slow-loris): the call sleeps
  // stall_ms before proceeding.  Non-Recv ops ignore stall indices.
  std::vector<int64_t> stall_at;
  int64_t stall_ms = 0;
};

// A deterministic fault-injecting decorator over another transport.
// All traffic passes through to `base` until the plan says otherwise.
// Unlike FaultInjectingEnv there is no terminal "crashed" state: a
// dropped connection is exactly what the resilient client is built to
// survive, so the very next Connect proceeds normally (unless its own
// index is listed).  Thread-compatible: one client session drives one
// transport.
class FaultyTransport : public ClientTransport {
 public:
  // `base` is owned.
  FaultyTransport(std::unique_ptr<ClientTransport> base,
                  TransportFaultPlan plan);

  // Installs a new plan and rewinds the op counter.
  void Reset(TransportFaultPlan plan);
  // Ops attempted so far (including faulted ones).
  int64_t ops() const { return ops_; }
  // Faults injected so far (tears + drops; stalls are delays, not
  // faults).
  int64_t faults() const { return faults_; }

  Status Connect(const std::string& host, int port) override;
  Status Send(const std::string& data) override;
  Result<std::string> Recv() override;
  void Close() override;
  bool connected() const override { return base_->connected(); }

 private:
  enum class Verdict { kProceed, kDrop, kTear, kStall };
  Verdict Gate();  // charges one op against the plan

  // Seeded strict-prefix length for a torn frame of `n` bytes.
  size_t TornLength(size_t n);

  std::unique_ptr<ClientTransport> base_;
  TransportFaultPlan plan_;
  Rng rng_;
  int64_t ops_ = 0;
  int64_t faults_ = 0;
};

}  // namespace strdb

#endif  // STRDB_SERVER_TRANSPORT_H_
