#include "server/server.h"

#include <exception>
#include <future>
#include <string>
#include <utility>

namespace strdb {

namespace {

MetricsRegistry& Reg() { return MetricsRegistry::Global(); }

}  // namespace

ServerCore::ServerCore(Alphabet alphabet, ServerOptions options)
    : options_(options),
      catalog_(std::move(alphabet)),
      global_budget_(options.global_limits, nullptr, "server"),
      accepted_(Reg().GetCounter("server.accepted")),
      rejected_admission_(Reg().GetCounter("server.rejected_admission")),
      commands_(Reg().GetCounter("server.commands")),
      errors_(Reg().GetCounter("server.errors")),
      bytes_in_(Reg().GetCounter("server.bytes_in")),
      bytes_out_(Reg().GetCounter("server.bytes_out")),
      active_sessions_gauge_(Reg().GetGauge("server.active_sessions")),
      queue_depth_gauge_(Reg().GetGauge("server.queue_depth")),
      pool_(options.num_workers) {
  // Fault-path counters, registered eagerly so the `metrics` verb shows
  // them at zero instead of omitting them until the first incident.
  Reg().GetCounter("server.deadline_exceeded");
  Reg().GetCounter("server.retried_requests_deduped");
}

ServerCore::~ServerCore() { Drain(); }

Result<int64_t> ServerCore::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) return Status::Unavailable("server is draining");
  if (options_.max_sessions > 0 &&
      static_cast<int64_t>(sessions_.size()) >= options_.max_sessions) {
    rejected_admission_->Increment();
    return Status::ResourceExhausted(
        "admission: session limit (" + std::to_string(options_.max_sessions) +
        ") reached");
  }
  int64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(&catalog_);
  session->processor.set_limits(options_.session_limits);
  session->processor.set_parent_budget(&global_budget_);
  session->processor.set_request_deadline_ms(options_.request_deadline_ms);
  sessions_.emplace(id, std::move(session));
  accepted_->Increment();
  active_sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  return id;
}

Status ServerCore::CloseSession(int64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session_id));
  }
  sessions_.erase(it);
  active_sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  return Status::OK();
}

std::shared_ptr<ServerCore::Session> ServerCore::FindSession(
    int64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  return it != sessions_.end() ? it->second : nullptr;
}

void ServerCore::Respond(const Status& status, const std::string& body,
                         const std::function<void(std::string)>& done) {
  std::string response = FrameResponse(status, body);
  bytes_out_->Increment(static_cast<int64_t>(response.size()));
  if (!status.ok()) errors_->Increment();
  done(std::move(response));
}

void ServerCore::Dispatch(int64_t session_id, std::string line,
                          std::function<void(std::string)> done) {
  bytes_in_->Increment(static_cast<int64_t>(line.size()) + 1);  // + '\n'
  Status admit;  // non-OK => immediate inline response, nothing enqueued
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      rejected_admission_->Increment();
      admit = Status::Unavailable("server is draining");
    } else if (auto it = sessions_.find(session_id); it == sessions_.end()) {
      admit = Status::NotFound("unknown session " +
                               std::to_string(session_id));
    } else if (options_.max_queue_depth > 0 &&
               queued_ >= options_.max_queue_depth) {
      rejected_admission_->Increment();
      admit = Status::ResourceExhausted(
          "admission: dispatch queue full (" +
          std::to_string(options_.max_queue_depth) +
          " command(s) already waiting); retry later");
    } else {
      session = it->second;
      ++queued_;
      queue_depth_gauge_->Set(queued_);
    }
  }
  if (!admit.ok()) {
    // A rejection is a response line, not a disconnect: the client
    // keeps its connection and may retry after backing off.
    Respond(admit, std::string(), done);
    return;
  }

  // Shared so the Submit-failure path below can still answer after the
  // rejected lambda (which owns a reference too) has been destroyed.
  auto shared_done =
      std::make_shared<std::function<void(std::string)>>(std::move(done));
  Status submitted = pool_.Submit(
      [this, session = std::move(session), line = std::move(line),
       shared_done] {
        {
          std::lock_guard<std::mutex> lock(mu_);
          --queued_;
          queue_depth_gauge_->Set(queued_);
        }
        // One command at a time per session: the grammar state
        // (budget/engine toggles) and the response stream both assume
        // serial order within a session.
        std::lock_guard<std::mutex> session_lock(session->mu);
        std::string body;
        Status status;
        // A throwing command must not orphan its response: the pool
        // worker swallows task exceptions, so an escape here would
        // leave Execute() blocked on a future that never resolves (and
        // the connection thread wedged forever).
        try {
          status = session->processor.Execute(line, &body);
        } catch (const std::exception& e) {
          body.clear();
          status = Status::Internal(std::string("command threw: ") + e.what());
        } catch (...) {
          body.clear();
          status = Status::Internal("command threw a non-exception");
        }
        commands_->Increment();
        Respond(status, body, *shared_done);
      });
  if (!submitted.ok()) {
    // The pool closed intake between the admission check and here (a
    // drain raced us).  Undo the queue accounting and answer typed.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --queued_;
      queue_depth_gauge_->Set(queued_);
    }
    rejected_admission_->Increment();
    Respond(Status::Unavailable("server is draining"), std::string(),
            *shared_done);
  }
}

std::string ServerCore::Execute(int64_t session_id, const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  Dispatch(session_id, line,
           [&promise](std::string response) {
             promise.set_value(std::move(response));
           });
  return future.get();
}

Status ServerCore::Drain(int64_t deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  return pool_.Shutdown(deadline_ms);
}

bool ServerCore::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

int64_t ServerCore::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t ServerCore::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace strdb
