#include "server/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace strdb {

namespace {

// send() the whole buffer; MSG_NOSIGNAL so a client that hung up turns
// into a return value, not a process-wide SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Listen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_.store(fd, std::memory_order_release);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  return Status::OK();
}

void TcpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinished();
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;  // Stop() already closed the listener
    pollfd pfd{listen_fd, POLLIN, 0};
    // A finite timeout doubles as the stop-flag poll interval when no
    // signal arrives to interrupt us.
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks stop_
      break;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed (Stop) or unrecoverable
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    int64_t id = next_conn_id_++;
    conn_threads_.emplace(
        id, std::thread([this, id, fd] { HandleConnection(id, fd); }));
  }
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t id : finished_conn_ids_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;  // Stop() already took it
      finished.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_ids_.clear();
  }
  // These threads announced completion as their last locked action, so
  // each join returns (near-)immediately.
  for (std::thread& t : finished) t.join();
}

void TcpServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
}

Status TcpServer::Stop(int64_t deadline_ms) {
  stop_.store(true, std::memory_order_relaxed);
  std::map<int64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (listen_fd >= 0) ::close(listen_fd);
    // SHUT_RD unblocks each connection thread's recv() with EOF; the
    // write side stays open so an in-flight command can still deliver
    // its response before the handler closes the socket.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    threads.swap(conn_threads_);
    finished_conn_ids_.clear();
  }
  for (auto& [id, t] : threads) t.join();
  return core_->Drain(deadline_ms);
}

void TcpServer::HandleConnection(int64_t conn_id, int fd) {
  Result<int64_t> session = core_->OpenSession();
  if (!session.ok()) {
    // Admission rejection is protocol-visible: the client reads one
    // typed error line instead of an unexplained hangup.
    SendAll(fd, FrameResponse(session.status(), std::string()));
  } else {
    const int64_t read_deadline_ms = core_->options().read_deadline_ms;
    std::string buffer;
    char chunk[4096];
    bool alive = true;
    while (alive) {
      // The read deadline arms only mid-command: once any bytes of an
      // unterminated line are buffered, the rest must arrive within the
      // deadline or the connection is cut with a typed error — a
      // slow-loris writer cannot pin this thread.  An idle connection
      // (empty buffer) may sit quietly forever.
      if (read_deadline_ms > 0 && !buffer.empty()) {
        pollfd pfd{fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, static_cast<int>(read_deadline_ms));
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) {
          MetricsRegistry::Global()
              .GetCounter("server.deadline_exceeded")
              ->Increment();
          SendAll(fd, FrameResponse(
                          Status::DeadlineExceeded(
                              "read stalled mid-command for " +
                              std::to_string(read_deadline_ms) + "ms"),
                          std::string()));
          break;
        }
        if (ready < 0) break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t pos;
      while (alive && (pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        alive = SendAll(fd, core_->Execute(*session, line));
      }
    }
    (void)core_->CloseSession(*session);  // kNotFound only after a drain
  }
  {
    // The fd must leave conn_fds_ *before* close(): the kernel reuses
    // closed descriptor numbers immediately, and Stop() must never
    // shutdown() a number that now names someone else's fd (a fresh
    // connection, the durable store's WAL).
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
    finished_conn_ids_.push_back(conn_id);
  }
  ::close(fd);
}

}  // namespace strdb
