#ifndef STRDB_SERVER_SERVER_H_
#define STRDB_SERVER_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/alphabet.h"
#include "core/budget.h"
#include "core/metrics.h"
#include "core/result.h"
#include "core/thread_pool.h"
#include "server/catalog.h"
#include "server/command.h"

namespace strdb {

struct ServerOptions {
  // Dispatcher pool size; <= 0 picks hardware_concurrency().  This pool
  // runs whole commands; the engine's own pool (Engine::Shared())
  // parallelises *inside* a query, so the two never compose into a
  // worker-waits-for-worker deadlock.
  int num_workers = 0;
  // Admission bound: commands queued (accepted but not yet running) at
  // once, across all sessions.  The bound is what turns overload into a
  // typed, protocol-visible kResourceExhausted line instead of
  // unbounded memory growth or a hung client.
  int64_t max_queue_depth = 64;
  // Concurrent sessions; OpenSession past this is rejected typed.
  int64_t max_sessions = 256;
  // Global in-flight resource account shared by every session's
  // queries (zero fields = unlimited).  Charges roll up from per-query
  // child budgets and are released when each query finishes, so this
  // bounds *concurrent* work, not lifetime totals.
  ResourceLimits global_limits;
  // Default per-query limits every new session starts with (a session
  // may lower/raise its own with the `budget` verb).
  ResourceLimits session_limits;
  // Server-imposed wall-clock cap per request (0 = none).  Binds when
  // tighter than the session's own `budget ms`; a query it cancels gets
  // a typed "err deadline-exceeded" response (counted in
  // server.deadline_exceeded) instead of wedging its session.
  int64_t request_deadline_ms = 0;
  // TCP read deadline (0 = none): a connection that stalls mid-command
  // (bytes received but no terminating newline) for this long gets a
  // typed "err deadline-exceeded" line and is closed — a slow-loris
  // client cannot pin a connection thread forever.  Idle connections
  // with no partial command pending are unaffected.
  int64_t read_deadline_ms = 0;
};

// The transport-free heart of strdb_server: session registry, command
// dispatcher and admission control over a SharedCatalog.  The TCP layer
// (server/tcp.h) is a thin framing shim over this class, and the
// server-vs-serial conformance target drives it directly in-process —
// every concurrency property is testable without a socket.
//
// Dispatch model: each session holds one CommandProcessor (its grammar
// state: engine route, stats, budget limits) and executes at most one
// command at a time (a per-session lock enforces it even if a transport
// misbehaves).  Commands from different sessions run concurrently on
// the dispatcher pool; queries read an immutable catalog snapshot,
// mutations serialize inside SharedCatalog — so readers never block the
// writer and every response equals some serial execution of that
// session's commands.
//
// Admission: a command is rejected up front — with a response line, not
// a disconnect — when the dispatch queue is at max_queue_depth, when
// the server is draining, or (mid-query, via the budget hierarchy) when
// the global in-flight account is exhausted.
//
// Metrics (server.*): accepted, rejected_admission, commands, errors,
// bytes_in, bytes_out counters; active_sessions, queue_depth gauges.
class ServerCore {
 public:
  explicit ServerCore(Alphabet alphabet, ServerOptions options = {});
  // Drains: equivalent to Drain() with no deadline.
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  SharedCatalog& catalog() { return catalog_; }
  const ServerOptions& options() const { return options_; }

  // Registers a session.  Fails typed (kResourceExhausted) at the
  // max_sessions bound, (kUnavailable) once draining.
  Result<int64_t> OpenSession();
  // Unregisters; an in-flight command finishes safely (the dispatch
  // task keeps the session alive), later dispatches fail kNotFound.
  Status CloseSession(int64_t session_id);

  // Enqueues one command line for `session_id`.  `done` receives the
  // framed protocol response (body + "ok"/"err ..." terminator; see
  // FrameResponse) exactly once — on a pool worker normally, inline on
  // admission rejection.  Never blocks on query execution.
  void Dispatch(int64_t session_id, std::string line,
                std::function<void(std::string)> done);

  // Dispatch + wait: the transport's (and tests') synchronous form.
  std::string Execute(int64_t session_id, const std::string& line);

  // Graceful drain: stop admitting commands (and sessions), wait for
  // in-flight work.  deadline_ms <= 0 waits indefinitely; otherwise a
  // deadline overrun returns kResourceExhausted (stragglers keep
  // draining in the background).  Idempotent.
  Status Drain(int64_t deadline_ms = 0);
  bool draining() const;

  int64_t active_sessions() const;
  int64_t queue_depth() const;

 private:
  struct Session {
    explicit Session(SharedCatalog* catalog)
        : processor(catalog, CommandProcessor::Mode::kServer) {}
    std::mutex mu;  // one command at a time per session
    CommandProcessor processor;
  };

  std::shared_ptr<Session> FindSession(int64_t session_id) const;
  void Respond(const Status& status, const std::string& body,
               const std::function<void(std::string)>& done);

  const ServerOptions options_;
  SharedCatalog catalog_;
  ResourceBudget global_budget_;

  Counter* const accepted_;
  Counter* const rejected_admission_;
  Counter* const commands_;
  Counter* const errors_;
  Counter* const bytes_in_;
  Counter* const bytes_out_;
  Gauge* const active_sessions_gauge_;
  Gauge* const queue_depth_gauge_;

  mutable std::mutex mu_;
  std::map<int64_t, std::shared_ptr<Session>> sessions_;
  int64_t next_session_id_ = 1;
  int64_t queued_ = 0;  // accepted, not yet running
  bool draining_ = false;

  // Last member: its destructor (via Drain in ~ServerCore) runs before
  // the fields above are torn down, so in-flight tasks always see a
  // live catalog and metrics.
  ThreadPool pool_;
};

}  // namespace strdb

#endif  // STRDB_SERVER_SERVER_H_
