#include "server/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace strdb {

// --- TcpClientTransport -----------------------------------------------------

TcpClientTransport::~TcpClientTransport() { Close(); }

Status TcpClientTransport::Connect(const std::string& host, int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status TcpClientTransport::Send(const std::string& data) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::Unavailable(std::string("send: ") + std::strerror(errno));
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> TcpClientTransport::Recv() {
  if (fd_ < 0) return Status::Unavailable("not connected");
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::Unavailable(std::string("recv: ") + std::strerror(errno));
      Close();
      return status;
    }
    if (n == 0) {
      Close();
      return std::string();  // clean EOF
    }
    return std::string(chunk, static_cast<size_t>(n));
  }
}

void TcpClientTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- FaultyTransport --------------------------------------------------------

FaultyTransport::FaultyTransport(std::unique_ptr<ClientTransport> base,
                                 TransportFaultPlan plan)
    : base_(std::move(base)), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultyTransport::Reset(TransportFaultPlan plan) {
  plan_ = std::move(plan);
  rng_ = Rng(plan_.seed);
  ops_ = 0;
  faults_ = 0;
}

FaultyTransport::Verdict FaultyTransport::Gate() {
  int64_t index = ops_++;
  auto listed = [index](const std::vector<int64_t>& v) {
    return std::find(v.begin(), v.end(), index) != v.end();
  };
  if (listed(plan_.drop_at) ||
      (plan_.drop_every > 0 &&
       index % plan_.drop_every == plan_.drop_every - 1)) {
    return Verdict::kDrop;
  }
  if (listed(plan_.tear_at)) return Verdict::kTear;
  if (listed(plan_.stall_at)) return Verdict::kStall;
  return Verdict::kProceed;
}

size_t FaultyTransport::TornLength(size_t n) {
  if (n <= 1) return 0;
  return static_cast<size_t>(rng_.Below(static_cast<uint64_t>(n)));
}

Status FaultyTransport::Connect(const std::string& host, int port) {
  Verdict verdict = Gate();
  if (verdict == Verdict::kDrop) {
    ++faults_;
    base_->Close();
    return Status::Unavailable("injected: connection refused");
  }
  // Tears and stalls are about in-flight bytes; a Connect just proceeds.
  return base_->Connect(host, port);
}

Status FaultyTransport::Send(const std::string& data) {
  switch (Gate()) {
    case Verdict::kDrop:
      ++faults_;
      base_->Close();
      return Status::Unavailable("injected: connection dropped before send");
    case Verdict::kTear: {
      ++faults_;
      // The server sees a torn request frame (no terminating newline),
      // then EOF — exactly what a connection dying mid-write produces.
      std::string prefix = data.substr(0, TornLength(data.size()));
      if (!prefix.empty()) (void)base_->Send(prefix);
      base_->Close();
      return Status::Unavailable("injected: connection torn mid-send");
    }
    case Verdict::kStall:
      if (plan_.stall_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan_.stall_ms));
      }
      break;
    case Verdict::kProceed:
      break;
  }
  return base_->Send(data);
}

Result<std::string> FaultyTransport::Recv() {
  switch (Gate()) {
    case Verdict::kDrop:
      ++faults_;
      base_->Close();
      return Status::Unavailable("injected: connection dropped before recv");
    case Verdict::kTear: {
      ++faults_;
      // The client sees a strict prefix of the response frame, then the
      // connection is gone: a torn response.  Deliver the prefix so the
      // caller's framing logic has to cope with a half-line.
      Result<std::string> got = base_->Recv();
      base_->Close();
      if (!got.ok() || got->empty()) {
        return Status::Unavailable("injected: connection torn mid-recv");
      }
      return got->substr(0, TornLength(got->size()));
    }
    case Verdict::kStall:
      if (plan_.stall_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan_.stall_ms));
      }
      break;
    case Verdict::kProceed:
      break;
  }
  return base_->Recv();
}

void FaultyTransport::Close() { base_->Close(); }

}  // namespace strdb
