#ifndef STRDB_SERVER_CATALOG_H_
#define STRDB_SERVER_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/alphabet.h"
#include "core/result.h"
#include "relational/relation.h"
#include "storage/store.h"

namespace strdb {

// The one catalog a process serves, shared by every session (the shell
// is the degenerate single-session case).  Two jobs:
//
//  1. Writer serialization: rel/insert/drop (and the durable session
//     verbs) serialize on an internal mutex, routed through a
//     CatalogStore — WAL commit before apply, exactly as before — once
//     a durable session is open, and through an in-memory Database
//     otherwise.
//
//  2. Snapshot isolation for readers: Snapshot() returns an immutable
//     shared handle to the current catalog.  Every committed mutation
//     publishes a fresh copy-on-write Database, so a query evaluates
//     one consistent catalog for its whole run while writers commit
//     freely — readers never block the writer and never observe a
//     half-applied mutation.  Grabbing a snapshot is a pointer copy
//     under a short lock that is never held across I/O.
//
// Durable-session lifecycle mirrors the shell's historical behaviour:
// OpenDurable shadows the in-memory catalog with the recovered store
// (and warms the engine's artifact cache from the persisted automata);
// CloseDurable copies the store's catalog back to memory and keeps
// serving.
class SharedCatalog {
 public:
  explicit SharedCatalog(Alphabet alphabet);

  const Alphabet& alphabet() const { return alphabet_; }

  // The current catalog as an immutable snapshot.  Never null; never
  // waits behind writer I/O.
  std::shared_ptr<const Database> Snapshot() const;

  // The catalog and its spilled-relation set as one consistent pair
  // (never null; the paged set is empty unless a durable store with a
  // spill threshold is attached).  A checkpoint that spills a relation
  // moves it between the two atomically w.r.t. this call.
  void SnapshotState(std::shared_ptr<const Database>* db,
                     std::shared_ptr<const PagedSet>* paged) const;
  // Same, plus the relation-statistics snapshot published in lockstep
  // (never null; without a durable store the stats are recomputed on
  // each publish from the in-memory catalog).  Pass nullptr to skip.
  void SnapshotState(std::shared_ptr<const Database>* db,
                     std::shared_ptr<const PagedSet>* paged,
                     std::shared_ptr<const StatsMap>* stats) const;

  // Options the next OpenDurable passes to CatalogStore::Open (spill
  // threshold, buffer-pool cap).  Takes effect at open, not on a live
  // store.
  void set_store_options(const StoreOptions& options);

  // Buffer-pool counters and capacity of the attached store's pager,
  // plus the number of currently spilled relations.  False when no
  // durable session is open.
  bool PagerStatus(PagerStats* stats, int64_t* capacity_bytes,
                   size_t* spilled) const;

  // Catalog mutations (durable once OpenDurable has run).
  Status PutRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples);
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples);
  Status DropRelation(const std::string& name);

  // Idempotent-retry variants: when `req` is valid and already inside
  // the applied window, the call is a success no-op with `*deduped =
  // true`.  Durable sessions persist the window through the store (WAL
  // tags + snapshot kReqId ops); memory-only catalogs keep it in
  // process, so a client retrying over one server lifetime still
  // dedups either way.
  Status PutRelation(const std::string& name, int arity,
                     std::vector<Tuple> tuples, const ReqId& req,
                     bool* deduped);
  Status InsertTuples(const std::string& name, std::vector<Tuple> tuples,
                      const ReqId& req, bool* deduped);
  Status DropRelation(const std::string& name, const ReqId& req,
                      bool* deduped);

  // Relations the durable store has quarantined (name -> reason); empty
  // when none or when no store is attached.
  std::map<std::string, std::string> LostRelations() const;

  // One synchronous scrub pass over the attached store (see
  // CatalogStore::ScrubNow).  kInvalidArgument without a durable
  // session.
  Status ScrubNow(ScrubReport* report);

  bool durable() const;
  // The open store's directory ("" when not durable).
  std::string durable_dir() const;

  // Attaches a CatalogStore over `dir` (creating it if necessary),
  // replays its WAL and warms the engine artifact cache from the
  // persisted automata.  `report` (optional) receives what recovery
  // found; `warmed` (optional) the number of automata installed.
  Status OpenDurable(const std::string& dir, RecoveryReport* report,
                     int* warmed);

  // Harvests the engine's compiled automata into the store and folds
  // the WAL into a fresh snapshot generation.  Out-params (each
  // optional) feed the shell's transcript.
  Status CheckpointDurable(int* persisted, int64_t* generation,
                           size_t* relations);

  // Detaches the store; the catalog stays available in memory.
  Status CloseDurable();

 private:
  // Rebuilds the published in-memory snapshot from db_ (writer lock
  // held).  Only used while no store is attached — the store publishes
  // its own snapshots.
  void PublishLocked();

  const Alphabet alphabet_;

  // In-memory half of AlreadyApplied/Record for the non-durable path.
  // With mu_ held.
  bool AlreadyAppliedLocked(const ReqId& req) const;
  void RecordReqLocked(const ReqId& req);

  mutable std::mutex mu_;  // serializes writers (including store I/O)
  Database db_;            // the catalog while no store is attached
  StoreOptions store_options_;  // applied at the next OpenDurable
  std::unique_ptr<CatalogStore> store_;
  // Idempotent-request window while no store is attached (the store
  // keeps its own, durably).
  std::map<std::string, uint64_t> applied_reqs_;

  // Reader-side state, behind its own short-hold lock (never held
  // across I/O): the published in-memory snapshot and, when a store is
  // attached, the store pointer readers pull snapshots from.  Open and
  // close republish both fields before the store object itself is
  // created/destroyed, so readers never touch a dying store.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Database> snapshot_;
  std::shared_ptr<const StatsMap> stats_snapshot_;
  CatalogStore* live_store_ = nullptr;
};

}  // namespace strdb

#endif  // STRDB_SERVER_CATALOG_H_
