#include "server/catalog.h"

#include <utility>

#include "engine/engine.h"
#include "fsa/serialize.h"

namespace strdb {

SharedCatalog::SharedCatalog(Alphabet alphabet)
    : alphabet_(std::move(alphabet)), db_(alphabet_) {
  snapshot_ = std::make_shared<const Database>(db_);
  stats_snapshot_ = std::make_shared<const StatsMap>();
}

std::shared_ptr<const Database> SharedCatalog::Snapshot() const {
  // snapshot_mu_ is only ever held for pointer swaps and this read, so
  // a reader grabbing its snapshot never queues behind a WAL fsync the
  // writer is sitting in (the writer holds mu_, not snapshot_mu_,
  // across I/O).  The store's SnapshotDb() makes the same guarantee on
  // its side.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return live_store_ != nullptr ? live_store_->SnapshotDb() : snapshot_;
}

void SharedCatalog::SnapshotState(
    std::shared_ptr<const Database>* db,
    std::shared_ptr<const PagedSet>* paged) const {
  SnapshotState(db, paged, nullptr);
}

void SharedCatalog::SnapshotState(
    std::shared_ptr<const Database>* db,
    std::shared_ptr<const PagedSet>* paged,
    std::shared_ptr<const StatsMap>* stats) const {
  static const std::shared_ptr<const PagedSet> kEmptyPaged =
      std::make_shared<const PagedSet>();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (live_store_ != nullptr) {
    live_store_->SnapshotState(db, paged, stats);
    return;
  }
  *db = snapshot_;
  *paged = kEmptyPaged;
  if (stats != nullptr) *stats = stats_snapshot_;
}

void SharedCatalog::set_store_options(const StoreOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  store_options_ = options;
}

bool SharedCatalog::PagerStatus(PagerStats* stats, int64_t* capacity_bytes,
                                size_t* spilled) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (live_store_ == nullptr) return false;
  if (stats != nullptr) *stats = live_store_->pager_stats();
  if (capacity_bytes != nullptr) {
    *capacity_bytes = live_store_->pager_capacity_bytes();
  }
  if (spilled != nullptr) *spilled = live_store_->PagedDb()->size();
  return true;
}

void SharedCatalog::PublishLocked() {
  auto fresh = std::make_shared<const Database>(db_);
  // Recomputing stats on publish matches the cost of the catalog copy
  // itself (both walk every tuple); the store path maintains them
  // incrementally instead.
  auto fresh_stats = std::make_shared<StatsMap>();
  for (const auto& [name, rel] : db_.relations()) {
    (*fresh_stats)[name] = ComputeRelationStats(rel);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
  stats_snapshot_ = std::move(fresh_stats);
}

Status SharedCatalog::PutRelation(const std::string& name, int arity,
                                  std::vector<Tuple> tuples) {
  return PutRelation(name, arity, std::move(tuples), ReqId{}, nullptr);
}

Status SharedCatalog::PutRelation(const std::string& name, int arity,
                                  std::vector<Tuple> tuples, const ReqId& req,
                                  bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return store_->PutRelation(name, arity, std::move(tuples), req, deduped);
  }
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  STRDB_RETURN_IF_ERROR(db_.Put(name, arity, std::move(tuples)));
  RecordReqLocked(req);
  PublishLocked();
  return Status::OK();
}

Status SharedCatalog::InsertTuples(const std::string& name,
                                   std::vector<Tuple> tuples) {
  return InsertTuples(name, std::move(tuples), ReqId{}, nullptr);
}

Status SharedCatalog::InsertTuples(const std::string& name,
                                   std::vector<Tuple> tuples,
                                   const ReqId& req, bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return store_->InsertTuples(name, std::move(tuples), req, deduped);
  }
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  STRDB_RETURN_IF_ERROR(db_.InsertTuples(name, std::move(tuples)));
  RecordReqLocked(req);
  PublishLocked();
  return Status::OK();
}

Status SharedCatalog::DropRelation(const std::string& name) {
  return DropRelation(name, ReqId{}, nullptr);
}

Status SharedCatalog::DropRelation(const std::string& name, const ReqId& req,
                                   bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) return store_->DropRelation(name, req, deduped);
  if (AlreadyAppliedLocked(req)) {
    if (deduped != nullptr) *deduped = true;
    return Status::OK();
  }
  STRDB_RETURN_IF_ERROR(db_.Remove(name));
  RecordReqLocked(req);
  PublishLocked();
  return Status::OK();
}

bool SharedCatalog::AlreadyAppliedLocked(const ReqId& req) const {
  if (!req.valid()) return false;
  auto it = applied_reqs_.find(req.client);
  return it != applied_reqs_.end() && it->second >= req.seq;
}

void SharedCatalog::RecordReqLocked(const ReqId& req) {
  if (!req.valid()) return;
  uint64_t& cur = applied_reqs_[req.client];
  if (req.seq > cur) cur = req.seq;
}

std::map<std::string, std::string> SharedCatalog::LostRelations() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) return {};
  return store_->LostRelations();
}

Status SharedCatalog::ScrubNow(ScrubReport* report) {
  // Deliberately not under mu_: a scrub pass is bulk I/O, and the store
  // takes its own locks in the phases that need them.  The store_
  // pointer only changes under mu_, so guard the read alone.
  CatalogStore* store = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = store_.get();
    if (store == nullptr) {
      return Status::InvalidArgument("no durable session; nothing to scrub");
    }
  }
  return store->ScrubNow(report);
}

bool SharedCatalog::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr;
}

std::string SharedCatalog::durable_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr ? store_->dir() : std::string();
}

Status SharedCatalog::OpenDurable(const std::string& dir,
                                  RecoveryReport* report, int* warmed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return Status::InvalidArgument("a durable session is already open ('" +
                                   store_->dir() + "'); close it first");
  }
  auto opened = CatalogStore::Open(dir, alphabet_, store_options_, report);
  if (!opened.ok()) return opened.status();
  store_ = std::move(*opened);
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    live_store_ = store_.get();
  }

  // Warm the engine's artifact cache from the persisted automata, so the
  // first query after a restart skips recompilation.
  int count = 0;
  for (const auto& [key, text] : store_->automata()) {
    Result<Fsa> fsa = DeserializeFsa(alphabet_, text);
    if (!fsa.ok()) continue;  // recovery already verified; belt and braces
    Engine::Shared().cache().InstallFsa(
        key, std::make_shared<const Fsa>(std::move(*fsa)));
    ++count;
  }
  if (warmed != nullptr) *warmed = count;
  return Status::OK();
}

Status SharedCatalog::CheckpointDurable(int* persisted, int64_t* generation,
                                        size_t* relations) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("no durable session; run 'open DIR' first");
  }
  // Harvest the engine's compiled automata so the next open can warm
  // from disk.  Collect first: ForEachFsa runs under the cache lock and
  // persistence does real I/O.
  std::vector<std::pair<std::string, std::string>> artifacts;
  Engine::Shared().cache().ForEachFsa(
      [&](const std::string& key, const Fsa& fsa) {
        artifacts.emplace_back(key, SerializeFsa(fsa));
      });
  int count = 0;
  for (auto& [key, text] : artifacts) {
    STRDB_RETURN_IF_ERROR(store_->InstallAutomatonText(key, std::move(text)));
    ++count;
  }
  STRDB_RETURN_IF_ERROR(store_->Checkpoint());
  if (persisted != nullptr) *persisted = count;
  if (generation != nullptr) *generation = store_->generation();
  if (relations != nullptr) {
    // Spilled relations are still relations: the count reflects the
    // whole catalog, wherever each relation lives.
    *relations = store_->db().relations().size() + store_->PagedDb()->size();
  }
  return Status::OK();
}

Status SharedCatalog::CloseDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("no durable session to close");
  }
  db_ = store_->db();  // keep working on the catalog, now in memory only
  // Spilled relations live only in the store's heap files: pull them
  // back in memory before detaching, or they would vanish from the
  // in-memory catalog.  A read failure keeps the session open — except
  // for relations the scrubber already quarantined: their data is gone
  // by definition, and wedging shutdown on them would turn one bad heap
  // into an unclosable store.
  std::map<std::string, std::string> lost = store_->LostRelations();
  for (const auto& [name, source] : *store_->PagedDb()) {
    if (lost.count(name) > 0) continue;  // quarantined: nothing to copy
    Result<StringRelation> rel = source->Materialize();
    if (!rel.ok()) {
      db_ = Database(alphabet_);  // discard the half-built copy
      return Status::DataLoss("cannot close: spilled relation '" + name +
                              "' is unreadable: " +
                              rel.status().ToString());
    }
    std::vector<Tuple> tuples(rel->tuples().begin(), rel->tuples().end());
    STRDB_RETURN_IF_ERROR(db_.Put(name, rel->arity(), std::move(tuples)));
  }
  // Point readers back at the in-memory snapshot *before* the store
  // dies: a reader only dereferences live_store_ under snapshot_mu_, so
  // once this block completes none can still be inside the store.
  {
    auto fresh = std::make_shared<const Database>(db_);
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
    live_store_ = nullptr;
  }
  Status closed = store_->Close();
  store_.reset();
  return closed;
}

}  // namespace strdb
