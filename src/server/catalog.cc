#include "server/catalog.h"

#include <utility>

#include "engine/engine.h"
#include "fsa/serialize.h"

namespace strdb {

SharedCatalog::SharedCatalog(Alphabet alphabet)
    : alphabet_(std::move(alphabet)), db_(alphabet_) {
  snapshot_ = std::make_shared<const Database>(db_);
}

std::shared_ptr<const Database> SharedCatalog::Snapshot() const {
  // snapshot_mu_ is only ever held for pointer swaps and this read, so
  // a reader grabbing its snapshot never queues behind a WAL fsync the
  // writer is sitting in (the writer holds mu_, not snapshot_mu_,
  // across I/O).  The store's SnapshotDb() makes the same guarantee on
  // its side.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return live_store_ != nullptr ? live_store_->SnapshotDb() : snapshot_;
}

void SharedCatalog::PublishLocked() {
  auto fresh = std::make_shared<const Database>(db_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
}

Status SharedCatalog::PutRelation(const std::string& name, int arity,
                                  std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return store_->PutRelation(name, arity, std::move(tuples));
  }
  STRDB_RETURN_IF_ERROR(db_.Put(name, arity, std::move(tuples)));
  PublishLocked();
  return Status::OK();
}

Status SharedCatalog::InsertTuples(const std::string& name,
                                   std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return store_->InsertTuples(name, std::move(tuples));
  }
  STRDB_RETURN_IF_ERROR(db_.InsertTuples(name, std::move(tuples)));
  PublishLocked();
  return Status::OK();
}

Status SharedCatalog::DropRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) return store_->DropRelation(name);
  STRDB_RETURN_IF_ERROR(db_.Remove(name));
  PublishLocked();
  return Status::OK();
}

bool SharedCatalog::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr;
}

std::string SharedCatalog::durable_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr ? store_->dir() : std::string();
}

Status SharedCatalog::OpenDurable(const std::string& dir,
                                  RecoveryReport* report, int* warmed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    return Status::InvalidArgument("a durable session is already open ('" +
                                   store_->dir() + "'); close it first");
  }
  auto opened = CatalogStore::Open(dir, alphabet_, {}, report);
  if (!opened.ok()) return opened.status();
  store_ = std::move(*opened);
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    live_store_ = store_.get();
  }

  // Warm the engine's artifact cache from the persisted automata, so the
  // first query after a restart skips recompilation.
  int count = 0;
  for (const auto& [key, text] : store_->automata()) {
    Result<Fsa> fsa = DeserializeFsa(alphabet_, text);
    if (!fsa.ok()) continue;  // recovery already verified; belt and braces
    Engine::Shared().cache().InstallFsa(
        key, std::make_shared<const Fsa>(std::move(*fsa)));
    ++count;
  }
  if (warmed != nullptr) *warmed = count;
  return Status::OK();
}

Status SharedCatalog::CheckpointDurable(int* persisted, int64_t* generation,
                                        size_t* relations) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("no durable session; run 'open DIR' first");
  }
  // Harvest the engine's compiled automata so the next open can warm
  // from disk.  Collect first: ForEachFsa runs under the cache lock and
  // persistence does real I/O.
  std::vector<std::pair<std::string, std::string>> artifacts;
  Engine::Shared().cache().ForEachFsa(
      [&](const std::string& key, const Fsa& fsa) {
        artifacts.emplace_back(key, SerializeFsa(fsa));
      });
  int count = 0;
  for (auto& [key, text] : artifacts) {
    STRDB_RETURN_IF_ERROR(store_->InstallAutomatonText(key, std::move(text)));
    ++count;
  }
  STRDB_RETURN_IF_ERROR(store_->Checkpoint());
  if (persisted != nullptr) *persisted = count;
  if (generation != nullptr) *generation = store_->generation();
  if (relations != nullptr) *relations = store_->db().relations().size();
  return Status::OK();
}

Status SharedCatalog::CloseDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("no durable session to close");
  }
  db_ = store_->db();  // keep working on the catalog, now in memory only
  // Point readers back at the in-memory snapshot *before* the store
  // dies: a reader only dereferences live_store_ under snapshot_mu_, so
  // once this block completes none can still be inside the store.
  {
    auto fresh = std::make_shared<const Database>(db_);
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
    live_store_ = nullptr;
  }
  Status closed = store_->Close();
  store_.reset();
  return closed;
}

}  // namespace strdb
