#ifndef STRDB_BASELINE_SAT_SOLVER_H_
#define STRDB_BASELINE_SAT_SOLVER_H_

#include <optional>
#include <vector>

namespace strdb {

// A propositional CNF instance: variables are 1-based; a literal is +v
// or -v.  The baseline comparator for the Theorem 6.5 (Σ^p_1 = NP)
// demonstration.
struct CnfInstance {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

// Exhaustive DPLL-free truth-table search (deliberately the naive
// baseline): returns a satisfying assignment (index i = variable i+1)
// or nullopt.
std::optional<std::vector<bool>> SolveSatBruteForce(const CnfInstance& cnf);

// Evaluates `cnf` under `assignment` (index i = variable i+1).
bool EvaluateCnf(const CnfInstance& cnf, const std::vector<bool>& assignment);

}  // namespace strdb

#endif  // STRDB_BASELINE_SAT_SOLVER_H_
