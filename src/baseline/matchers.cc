#include "baseline/matchers.h"

#include <algorithm>

namespace strdb {

int EditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

bool IsShuffle(const std::string& s, const std::string& a,
               const std::string& b) {
  if (s.size() != a.size() + b.size()) return false;
  const size_t n = a.size();
  const size_t m = b.size();
  // dp[j] = can s[0..i+j) be formed from a[0..i) and b[0..j).
  std::vector<bool> dp(m + 1, false);
  dp[0] = true;
  for (size_t j = 1; j <= m; ++j) dp[j] = dp[j - 1] && s[j - 1] == b[j - 1];
  for (size_t i = 1; i <= n; ++i) {
    dp[0] = dp[0] && s[i - 1] == a[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      dp[j] = (dp[j] && s[i + j - 1] == a[i - 1]) ||
              (dp[j - 1] && s[i + j - 1] == b[j - 1]);
    }
  }
  return dp[m];
}

bool ContainsSubstring(const std::string& haystack,
                       const std::string& needle) {
  if (needle.empty()) return true;
  // KMP failure function.
  std::vector<size_t> fail(needle.size(), 0);
  for (size_t i = 1; i < needle.size(); ++i) {
    size_t k = fail[i - 1];
    while (k > 0 && needle[i] != needle[k]) k = fail[k - 1];
    if (needle[i] == needle[k]) ++k;
    fail[i] = k;
  }
  size_t k = 0;
  for (char c : haystack) {
    while (k > 0 && c != needle[k]) k = fail[k - 1];
    if (c == needle[k]) ++k;
    if (k == needle.size()) return true;
  }
  return false;
}

bool IsManifold(const std::string& x, const std::string& y) {
  if (y.empty()) return x.empty();
  if (x.empty()) return false;  // the paper's formula forces m >= 1
  if (x.size() % y.size() != 0) return false;
  for (size_t i = 0; i < x.size(); i += y.size()) {
    if (x.compare(i, y.size(), y) != 0) return false;
  }
  return true;
}

}  // namespace strdb
