#ifndef STRDB_BASELINE_REGEX_H_
#define STRDB_BASELINE_REGEX_H_

#include <memory>
#include <string>

#include "core/alphabet.h"
#include "core/result.h"

namespace strdb {

// A classical regular expression over an alphabet Σ: the comparison
// baseline for Theorem 6.1 (unidirectional unquantified string formulae
// = regular languages) and the pattern language of queries like §1's
// "(gc+a)*".
//
// Textual syntax: characters stand for themselves, '+' is union, '.'
// or juxtaposition is concatenation, '*' is Kleene closure, '%' is the
// empty word ε, parentheses group.  (The paper writes union as '+',
// matching the string-formula syntax.)
class Regex {
 public:
  enum class Kind : uint8_t { kEpsilon, kChar, kConcat, kUnion, kStar };

  static Regex Epsilon();
  static Regex Char(char c);
  static Regex Concat(Regex a, Regex b);
  static Regex Union(Regex a, Regex b);
  static Regex Star(Regex r);

  // Parses the textual syntax; fails on characters outside Σ.
  static Result<Regex> Parse(const std::string& pattern,
                             const Alphabet& alphabet);

  Kind kind() const;
  char ch() const;          // kChar
  const Regex Left() const;   // kConcat/kUnion/kStar
  const Regex Right() const;  // kConcat/kUnion

  std::string ToString() const;

 private:
  struct Node;
  explicit Regex(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

// A Thompson-construction NFA matcher: the "selection predicate"
// baseline approach the paper cites ([13, 19, 25]).
class RegexMatcher {
 public:
  explicit RegexMatcher(const Regex& regex);

  // True iff `s` ∈ L(regex).  Linear in |s| x NFA size.
  bool Matches(const std::string& s) const;

  int num_states() const { return static_cast<int>(edges_.size()); }

 private:
  struct Edge {
    int to;
    char ch;  // 0 = ε
  };
  std::vector<std::vector<Edge>> edges_;
  int start_ = 0;
  int accept_ = 0;

  void Closure(std::vector<bool>* states) const;
};

}  // namespace strdb

#endif  // STRDB_BASELINE_REGEX_H_
