#include "baseline/regex.h"

#include <cassert>
#include <deque>
#include <functional>

namespace strdb {

struct Regex::Node {
  Kind kind = Kind::kEpsilon;
  char ch = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

Regex Regex::Epsilon() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kEpsilon;
  return Regex(std::move(node));
}

Regex Regex::Char(char c) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kChar;
  node->ch = c;
  return Regex(std::move(node));
}

Regex Regex::Concat(Regex a, Regex b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConcat;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Regex(std::move(node));
}

Regex Regex::Union(Regex a, Regex b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Regex(std::move(node));
}

Regex Regex::Star(Regex r) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kStar;
  node->left = std::move(r.node_);
  return Regex(std::move(node));
}

Regex::Kind Regex::kind() const { return node_->kind; }
char Regex::ch() const { return node_->ch; }
const Regex Regex::Left() const {
  assert(node_->left != nullptr);
  return Regex(node_->left);
}
const Regex Regex::Right() const {
  assert(node_->right != nullptr);
  return Regex(node_->right);
}

namespace {

class RegexParser {
 public:
  RegexParser(const std::string& input, const Alphabet& alphabet)
      : input_(input), alphabet_(alphabet) {}

  Result<Regex> Parse() {
    STRDB_ASSIGN_OR_RETURN(Regex r, ParseUnion());
    if (pos_ != input_.size()) {
      return Status::InvalidArgument("trailing input in regex at offset " +
                                     std::to_string(pos_));
    }
    return r;
  }

 private:
  bool AtAtomStart() const {
    if (pos_ >= input_.size()) return false;
    char c = input_[pos_];
    return c == '(' || c == '%' || alphabet_.Contains(std::string(1, c));
  }

  Result<Regex> ParseAtom() {
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("regex ended unexpectedly");
    }
    char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      STRDB_ASSIGN_OR_RETURN(Regex inner, ParseUnion());
      if (pos_ >= input_.size() || input_[pos_] != ')') {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(pos_));
      }
      ++pos_;
      return inner;
    }
    if (c == '%') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (!alphabet_.Contains(std::string(1, c))) {
      return Status::InvalidArgument(std::string("character '") + c +
                                     "' not in the alphabet");
    }
    ++pos_;
    return Regex::Char(c);
  }

  Result<Regex> ParsePostfix() {
    STRDB_ASSIGN_OR_RETURN(Regex r, ParseAtom());
    while (pos_ < input_.size() && input_[pos_] == '*') {
      ++pos_;
      r = Regex::Star(std::move(r));
    }
    return r;
  }

  Result<Regex> ParseConcat() {
    STRDB_ASSIGN_OR_RETURN(Regex r, ParsePostfix());
    for (;;) {
      if (pos_ < input_.size() && input_[pos_] == '.') {
        ++pos_;
        STRDB_ASSIGN_OR_RETURN(Regex rhs, ParsePostfix());
        r = Regex::Concat(std::move(r), std::move(rhs));
      } else if (AtAtomStart()) {
        STRDB_ASSIGN_OR_RETURN(Regex rhs, ParsePostfix());
        r = Regex::Concat(std::move(r), std::move(rhs));
      } else {
        break;
      }
    }
    return r;
  }

  Result<Regex> ParseUnion() {
    STRDB_ASSIGN_OR_RETURN(Regex r, ParseConcat());
    while (pos_ < input_.size() && input_[pos_] == '+') {
      ++pos_;
      STRDB_ASSIGN_OR_RETURN(Regex rhs, ParseConcat());
      r = Regex::Union(std::move(r), std::move(rhs));
    }
    return r;
  }

  const std::string& input_;
  const Alphabet& alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<Regex> Regex::Parse(const std::string& pattern,
                           const Alphabet& alphabet) {
  RegexParser parser(pattern, alphabet);
  return parser.Parse();
}

std::string Regex::ToString() const {
  switch (kind()) {
    case Kind::kEpsilon:
      return "%";
    case Kind::kChar:
      return std::string(1, ch());
    case Kind::kConcat:
      return "(" + Left().ToString() + Right().ToString() + ")";
    case Kind::kUnion:
      return "(" + Left().ToString() + "+" + Right().ToString() + ")";
    case Kind::kStar:
      return "(" + Left().ToString() + ")*";
  }
  return "?";
}

RegexMatcher::RegexMatcher(const Regex& regex) {
  // Thompson construction.
  auto new_state = [&]() {
    edges_.emplace_back();
    return static_cast<int>(edges_.size()) - 1;
  };
  std::function<std::pair<int, int>(const Regex&)> build =
      [&](const Regex& r) -> std::pair<int, int> {
    int in = new_state();
    int out = new_state();
    switch (r.kind()) {
      case Regex::Kind::kEpsilon:
        edges_[static_cast<size_t>(in)].push_back(Edge{out, 0});
        break;
      case Regex::Kind::kChar:
        edges_[static_cast<size_t>(in)].push_back(Edge{out, r.ch()});
        break;
      case Regex::Kind::kConcat: {
        auto [la, lb] = build(r.Left());
        auto [ra, rb] = build(r.Right());
        edges_[static_cast<size_t>(in)].push_back(Edge{la, 0});
        edges_[static_cast<size_t>(lb)].push_back(Edge{ra, 0});
        edges_[static_cast<size_t>(rb)].push_back(Edge{out, 0});
        break;
      }
      case Regex::Kind::kUnion: {
        auto [la, lb] = build(r.Left());
        auto [ra, rb] = build(r.Right());
        edges_[static_cast<size_t>(in)].push_back(Edge{la, 0});
        edges_[static_cast<size_t>(in)].push_back(Edge{ra, 0});
        edges_[static_cast<size_t>(lb)].push_back(Edge{out, 0});
        edges_[static_cast<size_t>(rb)].push_back(Edge{out, 0});
        break;
      }
      case Regex::Kind::kStar: {
        auto [ia, ib] = build(r.Left());
        edges_[static_cast<size_t>(in)].push_back(Edge{out, 0});
        edges_[static_cast<size_t>(in)].push_back(Edge{ia, 0});
        edges_[static_cast<size_t>(ib)].push_back(Edge{ia, 0});
        edges_[static_cast<size_t>(ib)].push_back(Edge{out, 0});
        break;
      }
    }
    return {in, out};
  };
  auto [s, a] = build(regex);
  start_ = s;
  accept_ = a;
}

void RegexMatcher::Closure(std::vector<bool>* states) const {
  std::deque<int> queue;
  for (size_t i = 0; i < states->size(); ++i) {
    if ((*states)[i]) queue.push_back(static_cast<int>(i));
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (const Edge& e : edges_[static_cast<size_t>(s)]) {
      if (e.ch == 0 && !(*states)[static_cast<size_t>(e.to)]) {
        (*states)[static_cast<size_t>(e.to)] = true;
        queue.push_back(e.to);
      }
    }
  }
}

bool RegexMatcher::Matches(const std::string& s) const {
  std::vector<bool> current(edges_.size(), false);
  current[static_cast<size_t>(start_)] = true;
  Closure(&current);
  for (char c : s) {
    std::vector<bool> next(edges_.size(), false);
    for (size_t st = 0; st < current.size(); ++st) {
      if (!current[st]) continue;
      for (const Edge& e : edges_[st]) {
        if (e.ch == c) next[static_cast<size_t>(e.to)] = true;
      }
    }
    Closure(&next);
    current = std::move(next);
  }
  return current[static_cast<size_t>(accept_)];
}

}  // namespace strdb
