#ifndef STRDB_BASELINE_MATCHERS_H_
#define STRDB_BASELINE_MATCHERS_H_

#include <string>
#include <vector>

namespace strdb {

// Special-purpose string algorithms used as baselines for the queries of
// §2: the alignment-calculus formulation must agree with these and the
// benches compare their performance profiles.

// Levenshtein edit distance (unit costs, as in the paper's Example 8 and
// [24]).  O(|a|·|b|) dynamic programming.
int EditDistance(const std::string& a, const std::string& b);

// True iff `s` is a shuffle (interleaving) of `a` and `b` (Example 5).
// O(|a|·|b|) dynamic programming.
bool IsShuffle(const std::string& s, const std::string& a,
               const std::string& b);

// True iff `needle` occurs in `haystack` as a contiguous substring
// (Example 7): Knuth-Morris-Pratt, O(n+m).
bool ContainsSubstring(const std::string& haystack,
                       const std::string& needle);

// True iff x = y^m for some m >= 1, or x = y = ε (Example 4's exact
// semantics).
bool IsManifold(const std::string& x, const std::string& y);

}  // namespace strdb

#endif  // STRDB_BASELINE_MATCHERS_H_
