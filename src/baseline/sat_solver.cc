#include "baseline/sat_solver.h"

#include <cstdint>
#include <cstdlib>

namespace strdb {

bool EvaluateCnf(const CnfInstance& cnf, const std::vector<bool>& assignment) {
  for (const std::vector<int>& clause : cnf.clauses) {
    bool satisfied = false;
    for (int literal : clause) {
      int var = std::abs(literal) - 1;
      if (var < 0 || var >= static_cast<int>(assignment.size())) continue;
      bool value = assignment[static_cast<size_t>(var)];
      if ((literal > 0) == value) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::optional<std::vector<bool>> SolveSatBruteForce(const CnfInstance& cnf) {
  if (cnf.num_vars < 0 || cnf.num_vars > 30) return std::nullopt;
  const uint64_t limit = 1ull << cnf.num_vars;
  std::vector<bool> assignment(static_cast<size_t>(cnf.num_vars), false);
  for (uint64_t bits = 0; bits < limit; ++bits) {
    for (int v = 0; v < cnf.num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = ((bits >> v) & 1) != 0;
    }
    if (EvaluateCnf(cnf, assignment)) return assignment;
  }
  return std::nullopt;
}

}  // namespace strdb
