#ifndef STRDB_STRFORM_STRING_FORMULA_H_
#define STRDB_STRFORM_STRING_FORMULA_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "align/alignment.h"
#include "align/assignment.h"
#include "align/window_formula.h"
#include "core/alphabet.h"
#include "core/result.h"

namespace strdb {

// An atomic string formula τα (paper §2): a transpose over variable
// names followed by a window formula, e.g. [x,z]r(z='a' | y='b').
// The transpose list may be empty ("[ ]l", the identity transpose).
struct AtomicStringFormula {
  Dir dir = Dir::kLeft;
  std::vector<std::string> transposed;  // variables slid by the transpose
  WindowFormula window = WindowFormula::True();

  // Truth definitions 6-7: transposes the mentioned rows, then evaluates
  // the window formula in the resulting alignment.  On success also
  // returns the transposed alignment via `out` (may be null).
  Result<bool> Eval(const Alignment& alignment, const Assignment& assignment,
                    Alignment* out) const;

  std::string ToString() const;
  std::set<std::string> Vars() const;

  bool operator==(const AtomicStringFormula& other) const;
};

// A formula word: a (possibly empty = λ) sequence of atomic string
// formulae, applied left to right (truth definition 8).
using FormulaWord = std::vector<AtomicStringFormula>;

// A string formula (paper §2): a regular expression over the alphabet of
// atomic string formulae.  Immutable value type sharing its AST.
//
// Textual syntax (see parser.h):
//   phi := phi '+' phi            union
//        | phi '.' phi            concatenation
//        | phi '*'                Kleene closure
//        | phi '^' N              N-fold concatenation (phi^0 = lambda)
//        | '[' vars ']' ('l'|'r') '(' window ')'
//        | 'lambda'
//        | '(' phi ')'
class StringFormula {
 public:
  enum class Kind : uint8_t { kLambda, kAtomic, kConcat, kUnion, kStar };

  // The empty formula word λ, vacuously true everywhere.
  static StringFormula Lambda();
  static StringFormula Atomic(AtomicStringFormula atom);
  static StringFormula Atomic(Dir dir, std::vector<std::string> transposed,
                              WindowFormula window);
  static StringFormula Concat(StringFormula a, StringFormula b);
  // Concatenation of a whole sequence (λ for the empty sequence).
  static StringFormula ConcatAll(std::vector<StringFormula> parts);
  static StringFormula Union(StringFormula a, StringFormula b);
  static StringFormula UnionAll(std::vector<StringFormula> parts);
  static StringFormula Star(StringFormula f);
  // φ+ = φ.φ* (paper shorthand).
  static StringFormula Plus(StringFormula f);
  // φ^n with φ^0 = λ (paper shorthand).
  static StringFormula Power(StringFormula f, int n);

  Kind kind() const;
  // Valid for kAtomic only.
  const AtomicStringFormula& atom() const;
  // Valid for kConcat/kUnion (left/right) and kStar (left).
  const StringFormula Left() const;
  const StringFormula Right() const;

  // All variables occurring in the formula (in transposes or window
  // formulae), in name order.
  std::vector<std::string> Vars() const;

  // Variables occurring in right transposes (paper: a variable is
  // *bidirectional* if it appears in right transposes, else
  // *unidirectional*).
  std::set<std::string> BidirectionalVars() const;

  // True iff at most one variable is bidirectional (the right-restricted
  // class of §2/§5 for which safety is decidable).
  bool IsRightRestricted() const;

  // True iff no variable is bidirectional.
  bool IsUnidirectional() const;

  // Truth definition 9: A ⊨ φ θ, i.e. some formula word of L(φ) is true
  // in `alignment` under `assignment`.  This is the *reference*
  // (logic-side) semantics, implemented as a product search of the
  // formula's word-NFA with alignment states; the k-FSA compiler of
  // Theorem 3.1 is property-tested against it.  Fails if a variable is
  // unbound or a string strays outside the alphabet-independent position
  // range (it cannot).
  Result<bool> Satisfies(const Alignment& alignment,
                         const Assignment& assignment) const;

  // Convenience entry point matching the paper's query semantics: binds
  // `vars[i]` to row i of the initial alignment of `strings` and
  // evaluates.  `vars` and `strings` must have equal lengths.
  Result<bool> AcceptsStrings(const std::vector<std::string>& vars,
                              const std::vector<std::string>& strings) const;

  // Enumerates L(φ) members of word length <= max_len (for tests; the
  // language is infinite in the presence of *).
  std::vector<FormulaWord> WordsUpTo(int max_len) const;

  // Number of AST nodes; the |φ| of the expression-complexity results.
  int Size() const;

  // A copy with every variable occurrence renamed through `renaming`
  // (simultaneous substitution; unmapped variables are kept).
  StringFormula RenameVars(
      const std::map<std::string, std::string>& renaming) const;

  std::string ToString() const;

 private:
  struct Node;
  explicit StringFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace strdb

#endif  // STRDB_STRFORM_STRING_FORMULA_H_
