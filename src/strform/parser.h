#ifndef STRDB_STRFORM_PARSER_H_
#define STRDB_STRFORM_PARSER_H_

#include <string>

#include "align/window_formula.h"
#include "core/result.h"
#include "strform/lexer.h"
#include "strform/string_formula.h"

namespace strdb {

// Parses the textual string-formula syntax (see StringFormula docs), e.g.
//
//   ([x,y]l(x = y))* . [x,y]l(x = ~ & y = ~)
//
// Operator precedence: '*' / '^N' (postfix) > '.' (concatenation, which
// may also be written by juxtaposition) > '+' (union).  Window formulae
// use '!', '&', '|' with the usual precedence, atoms "x = 'a'",
// "x = y", "x = ~" (ε), "true" and the "!=" negated forms.
Result<StringFormula> ParseStringFormula(const std::string& input);

// Parses a window formula on its own (mostly for tests).
Result<WindowFormula> ParseWindowFormula(const std::string& input);

// Implementation entry points shared with the calculus parser: parse from
// an existing token stream without requiring end-of-input afterwards.
Result<StringFormula> ParseStringFormula(TokenStream* tokens);
Result<WindowFormula> ParseWindowFormula(TokenStream* tokens);

// Continues parsing string-formula operators ('*', '^N', concatenation,
// '+') that follow an already-parsed left operand; used by the calculus
// parser when a parenthesised string formula turns out to be part of a
// larger one, e.g. "([x]l(true))* . [x]l(x = ~)".
Result<StringFormula> ContinueStringFormula(StringFormula left,
                                            TokenStream* tokens);

}  // namespace strdb

#endif  // STRDB_STRFORM_PARSER_H_
