#include "strform/string_formula.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <utility>

namespace strdb {

// ---------------------------------------------------------------------------
// AtomicStringFormula

Result<bool> AtomicStringFormula::Eval(const Alignment& alignment,
                                       const Assignment& assignment,
                                       Alignment* out) const {
  RowTranspose t;
  t.dir = dir;
  for (const std::string& var : transposed) {
    STRDB_ASSIGN_OR_RETURN(int row, assignment.RowOf(var));
    t.rows.push_back(row);
  }
  Alignment next = alignment.Transposed(t);
  STRDB_ASSIGN_OR_RETURN(bool truth, window.Eval(next, assignment));
  if (out != nullptr) *out = std::move(next);
  return truth;
}

std::string AtomicStringFormula::ToString() const {
  std::string s = "[";
  for (size_t i = 0; i < transposed.size(); ++i) {
    if (i > 0) s += ",";
    s += transposed[i];
  }
  s += "]";
  s += (dir == Dir::kLeft) ? "l" : "r";
  s += "(" + window.ToString() + ")";
  return s;
}

std::set<std::string> AtomicStringFormula::Vars() const {
  std::set<std::string> vars = window.Vars();
  vars.insert(transposed.begin(), transposed.end());
  return vars;
}

bool AtomicStringFormula::operator==(const AtomicStringFormula& other) const {
  return dir == other.dir && transposed == other.transposed &&
         window == other.window;
}

// ---------------------------------------------------------------------------
// StringFormula AST

struct StringFormula::Node {
  Kind kind = Kind::kLambda;
  AtomicStringFormula atom;           // kAtomic
  std::shared_ptr<const Node> left;   // kConcat, kUnion, kStar
  std::shared_ptr<const Node> right;  // kConcat, kUnion
};

StringFormula StringFormula::Lambda() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kLambda;
  return StringFormula(std::move(node));
}

StringFormula StringFormula::Atomic(AtomicStringFormula atom) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtomic;
  node->atom = std::move(atom);
  return StringFormula(std::move(node));
}

StringFormula StringFormula::Atomic(Dir dir,
                                    std::vector<std::string> transposed,
                                    WindowFormula window) {
  AtomicStringFormula atom;
  atom.dir = dir;
  atom.transposed = std::move(transposed);
  atom.window = std::move(window);
  return Atomic(std::move(atom));
}

StringFormula StringFormula::Concat(StringFormula a, StringFormula b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConcat;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return StringFormula(std::move(node));
}

StringFormula StringFormula::ConcatAll(std::vector<StringFormula> parts) {
  if (parts.empty()) return Lambda();
  StringFormula out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = Concat(std::move(out), std::move(parts[i]));
  }
  return out;
}

StringFormula StringFormula::Union(StringFormula a, StringFormula b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return StringFormula(std::move(node));
}

StringFormula StringFormula::UnionAll(std::vector<StringFormula> parts) {
  assert(!parts.empty());
  StringFormula out = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    out = Union(std::move(out), std::move(parts[i]));
  }
  return out;
}

StringFormula StringFormula::Star(StringFormula f) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kStar;
  node->left = std::move(f.node_);
  return StringFormula(std::move(node));
}

StringFormula StringFormula::Plus(StringFormula f) {
  StringFormula copy = f;
  return Concat(std::move(copy), Star(std::move(f)));
}

StringFormula StringFormula::Power(StringFormula f, int n) {
  StringFormula out = Lambda();
  for (int i = 0; i < n; ++i) out = Concat(std::move(out), f);
  return out;
}

StringFormula::Kind StringFormula::kind() const { return node_->kind; }

const AtomicStringFormula& StringFormula::atom() const {
  assert(kind() == Kind::kAtomic);
  return node_->atom;
}

const StringFormula StringFormula::Left() const {
  assert(node_->left != nullptr);
  return StringFormula(node_->left);
}

const StringFormula StringFormula::Right() const {
  assert(node_->right != nullptr);
  return StringFormula(node_->right);
}

namespace {

void CollectAtoms(const StringFormula& f,
                  std::vector<AtomicStringFormula>* out) {
  switch (f.kind()) {
    case StringFormula::Kind::kLambda:
      break;
    case StringFormula::Kind::kAtomic:
      out->push_back(f.atom());
      break;
    case StringFormula::Kind::kStar:
      CollectAtoms(f.Left(), out);
      break;
    case StringFormula::Kind::kConcat:
    case StringFormula::Kind::kUnion:
      CollectAtoms(f.Left(), out);
      CollectAtoms(f.Right(), out);
      break;
  }
}

}  // namespace

std::vector<std::string> StringFormula::Vars() const {
  std::vector<AtomicStringFormula> atoms;
  CollectAtoms(*this, &atoms);
  std::set<std::string> vars;
  for (const AtomicStringFormula& a : atoms) {
    std::set<std::string> av = a.Vars();
    vars.insert(av.begin(), av.end());
  }
  return std::vector<std::string>(vars.begin(), vars.end());
}

std::set<std::string> StringFormula::BidirectionalVars() const {
  std::vector<AtomicStringFormula> atoms;
  CollectAtoms(*this, &atoms);
  std::set<std::string> out;
  for (const AtomicStringFormula& a : atoms) {
    if (a.dir == Dir::kRight) {
      out.insert(a.transposed.begin(), a.transposed.end());
    }
  }
  return out;
}

bool StringFormula::IsRightRestricted() const {
  return BidirectionalVars().size() <= 1;
}

bool StringFormula::IsUnidirectional() const {
  return BidirectionalVars().empty();
}

// ---------------------------------------------------------------------------
// Word NFA + direct satisfaction (truth definition 9)

namespace {

// A Thompson-style NFA over the alphabet of atomic string formulae.
struct WordNfa {
  struct Edge {
    int to = 0;
    int atom = -1;  // -1 = epsilon
  };
  std::vector<std::vector<Edge>> edges;
  std::vector<AtomicStringFormula> atoms;
  int start = 0;
  int accept = 0;

  int NewState() {
    edges.emplace_back();
    return static_cast<int>(edges.size()) - 1;
  }
  void AddEps(int from, int to) { edges[from].push_back(Edge{to, -1}); }
  void AddAtom(int from, int to, AtomicStringFormula atom) {
    atoms.push_back(std::move(atom));
    edges[from].push_back(Edge{to, static_cast<int>(atoms.size()) - 1});
  }
};

// Builds the fragment for `f` between fresh states; returns (in, out).
std::pair<int, int> BuildNfa(const StringFormula& f, WordNfa* nfa) {
  switch (f.kind()) {
    case StringFormula::Kind::kLambda: {
      int a = nfa->NewState();
      int b = nfa->NewState();
      nfa->AddEps(a, b);
      return {a, b};
    }
    case StringFormula::Kind::kAtomic: {
      int a = nfa->NewState();
      int b = nfa->NewState();
      nfa->AddAtom(a, b, f.atom());
      return {a, b};
    }
    case StringFormula::Kind::kConcat: {
      auto [la, lb] = BuildNfa(f.Left(), nfa);
      auto [ra, rb] = BuildNfa(f.Right(), nfa);
      nfa->AddEps(lb, ra);
      return {la, rb};
    }
    case StringFormula::Kind::kUnion: {
      int a = nfa->NewState();
      int b = nfa->NewState();
      auto [la, lb] = BuildNfa(f.Left(), nfa);
      auto [ra, rb] = BuildNfa(f.Right(), nfa);
      nfa->AddEps(a, la);
      nfa->AddEps(a, ra);
      nfa->AddEps(lb, b);
      nfa->AddEps(rb, b);
      return {a, b};
    }
    case StringFormula::Kind::kStar: {
      int a = nfa->NewState();
      int b = nfa->NewState();
      auto [ia, ib] = BuildNfa(f.Left(), nfa);
      nfa->AddEps(a, ia);
      nfa->AddEps(ib, a);
      nfa->AddEps(a, b);
      return {a, b};
    }
  }
  // Unreachable.
  int a = nfa->NewState();
  return {a, a};
}

}  // namespace

Result<bool> StringFormula::Satisfies(const Alignment& alignment,
                                      const Assignment& assignment) const {
  // Resolve all variables up front.
  std::vector<std::string> vars = Vars();
  std::vector<int> rows;
  std::vector<std::string> contents;
  std::vector<int> lens;
  std::map<std::string, int> var_index;
  for (size_t i = 0; i < vars.size(); ++i) {
    STRDB_ASSIGN_OR_RETURN(int row, assignment.RowOf(vars[i]));
    rows.push_back(row);
    contents.push_back(alignment.StringOf(row));
    lens.push_back(static_cast<int>(contents.back().size()));
    var_index[vars[i]] = static_cast<int>(i);
  }

  WordNfa nfa;
  auto [start, accept] = BuildNfa(*this, &nfa);
  nfa.start = start;
  nfa.accept = accept;

  // Pre-resolve each atom's transposed variables and window evaluation to
  // indices into the position vector.
  struct ResolvedAtom {
    Dir dir;
    std::vector<int> indices;  // into the position vector
    const WindowFormula* window;
  };
  std::vector<ResolvedAtom> resolved;
  resolved.reserve(nfa.atoms.size());
  for (const AtomicStringFormula& a : nfa.atoms) {
    ResolvedAtom r;
    r.dir = a.dir;
    for (const std::string& v : a.transposed) r.indices.push_back(var_index[v]);
    r.window = &a.window;
    resolved.push_back(std::move(r));
  }

  // Initial positions come from the given alignment (definition 9 is
  // stated for arbitrary alignments, not only initial ones).
  std::vector<int> init_pos;
  for (int row : rows) init_pos.push_back(alignment.PosOf(row));

  auto window_char = [&](const std::vector<int>& pos,
                         int var_idx) -> std::optional<char> {
    int p = pos[static_cast<size_t>(var_idx)];
    if (p >= 1 && p <= lens[static_cast<size_t>(var_idx)]) {
      return contents[static_cast<size_t>(var_idx)][static_cast<size_t>(p - 1)];
    }
    return std::nullopt;
  };

  // BFS over (nfa state, position vector) configurations.
  using Config = std::pair<int, std::vector<int>>;
  std::set<Config> visited;
  std::deque<Config> frontier;
  Config init{nfa.start, init_pos};
  visited.insert(init);
  frontier.push_back(std::move(init));

  while (!frontier.empty()) {
    auto [state, pos] = std::move(frontier.front());
    frontier.pop_front();
    if (state == nfa.accept) return true;
    for (const WordNfa::Edge& e : nfa.edges[static_cast<size_t>(state)]) {
      std::vector<int> next_pos = pos;
      if (e.atom >= 0) {
        const ResolvedAtom& atom = resolved[static_cast<size_t>(e.atom)];
        for (int idx : atom.indices) {
          int& p = next_pos[static_cast<size_t>(idx)];
          if (atom.dir == Dir::kLeft) {
            if (p <= lens[static_cast<size_t>(idx)]) ++p;
          } else {
            if (p >= 1) --p;
          }
        }
        bool truth = atom.window->EvalWith(
            [&](const std::string& v) -> std::optional<char> {
              auto it = var_index.find(v);
              assert(it != var_index.end());
              return window_char(next_pos, it->second);
            });
        if (!truth) continue;
      }
      Config next{e.to, std::move(next_pos)};
      if (visited.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  return false;
}

Result<bool> StringFormula::AcceptsStrings(
    const std::vector<std::string>& vars,
    const std::vector<std::string>& strings) const {
  if (vars.size() != strings.size()) {
    return Status::InvalidArgument("vars and strings differ in length");
  }
  Assignment assignment;
  for (size_t i = 0; i < vars.size(); ++i) {
    STRDB_RETURN_IF_ERROR(assignment.Bind(vars[i], static_cast<int>(i)));
  }
  Alignment a0 = Alignment::Initial(strings);
  return Satisfies(a0, assignment);
}

// ---------------------------------------------------------------------------
// Word enumeration (tests)

namespace {

void Dedupe(std::vector<FormulaWord>* words) {
  std::set<std::string> seen;
  std::vector<FormulaWord> out;
  for (FormulaWord& w : *words) {
    std::string key;
    for (const AtomicStringFormula& a : w) key += a.ToString() + ";";
    if (seen.insert(key).second) out.push_back(std::move(w));
  }
  *words = std::move(out);
}

std::vector<FormulaWord> Words(const StringFormula& f, int max_len) {
  std::vector<FormulaWord> out;
  switch (f.kind()) {
    case StringFormula::Kind::kLambda:
      out.push_back({});
      break;
    case StringFormula::Kind::kAtomic:
      if (max_len >= 1) out.push_back({f.atom()});
      break;
    case StringFormula::Kind::kConcat: {
      std::vector<FormulaWord> left = Words(f.Left(), max_len);
      for (const FormulaWord& lw : left) {
        int budget = max_len - static_cast<int>(lw.size());
        for (FormulaWord& rw : Words(f.Right(), budget)) {
          FormulaWord w = lw;
          w.insert(w.end(), rw.begin(), rw.end());
          out.push_back(std::move(w));
        }
      }
      break;
    }
    case StringFormula::Kind::kUnion: {
      out = Words(f.Left(), max_len);
      std::vector<FormulaWord> right = Words(f.Right(), max_len);
      out.insert(out.end(), right.begin(), right.end());
      break;
    }
    case StringFormula::Kind::kStar: {
      out.push_back({});
      std::vector<FormulaWord> frontier = {{}};
      std::vector<FormulaWord> body = Words(f.Left(), max_len);
      bool grew = true;
      while (grew) {
        grew = false;
        std::vector<FormulaWord> next;
        for (const FormulaWord& prefix : frontier) {
          for (const FormulaWord& b : body) {
            if (b.empty()) continue;
            if (static_cast<int>(prefix.size() + b.size()) > max_len) continue;
            FormulaWord w = prefix;
            w.insert(w.end(), b.begin(), b.end());
            next.push_back(std::move(w));
            grew = true;
          }
        }
        Dedupe(&next);
        out.insert(out.end(), next.begin(), next.end());
        frontier = std::move(next);
      }
      break;
    }
  }
  Dedupe(&out);
  return out;
}

}  // namespace

std::vector<FormulaWord> StringFormula::WordsUpTo(int max_len) const {
  return Words(*this, max_len);
}

StringFormula StringFormula::RenameVars(
    const std::map<std::string, std::string>& renaming) const {
  switch (kind()) {
    case Kind::kLambda:
      return Lambda();
    case Kind::kAtomic: {
      AtomicStringFormula a;
      a.dir = atom().dir;
      for (const std::string& v : atom().transposed) {
        auto it = renaming.find(v);
        a.transposed.push_back(it == renaming.end() ? v : it->second);
      }
      a.window = atom().window.RenameVars(renaming);
      return Atomic(std::move(a));
    }
    case Kind::kConcat:
      return Concat(Left().RenameVars(renaming), Right().RenameVars(renaming));
    case Kind::kUnion:
      return Union(Left().RenameVars(renaming), Right().RenameVars(renaming));
    case Kind::kStar:
      return Star(Left().RenameVars(renaming));
  }
  return Lambda();
}

int StringFormula::Size() const {
  switch (kind()) {
    case Kind::kLambda:
    case Kind::kAtomic:
      return 1;
    case Kind::kStar:
      return 1 + Left().Size();
    case Kind::kConcat:
    case Kind::kUnion:
      return 1 + Left().Size() + Right().Size();
  }
  return 1;
}

std::string StringFormula::ToString() const {
  switch (kind()) {
    case Kind::kLambda:
      return "lambda";
    case Kind::kAtomic:
      return atom().ToString();
    case Kind::kConcat:
      return "(" + Left().ToString() + " . " + Right().ToString() + ")";
    case Kind::kUnion:
      return "(" + Left().ToString() + " + " + Right().ToString() + ")";
    case Kind::kStar:
      return "(" + Left().ToString() + ")*";
  }
  return "?";
}

}  // namespace strdb
