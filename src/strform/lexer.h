#ifndef STRDB_STRFORM_LEXER_H_
#define STRDB_STRFORM_LEXER_H_

#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace strdb {

// Token kinds shared by the string-formula and alignment-calculus parsers.
enum class TokenKind : uint8_t {
  kIdent,     // variable / relation / keyword (lambda, true, exists, ...)
  kChar,      // 'a' — a quoted alphabet character
  kInt,       // non-negative integer literal
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kEq,        // =
  kNeq,       // !=
  kBang,      // !
  kAmp,       // &
  kPipe,      // |
  kTilde,     // ~  (ε / undefined)
  kStar,      // *
  kPlus,      // +
  kDot,       // .
  kCaret,     // ^
  kColon,     // :
  kArrow,     // ->
  kEnd,       // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier text / character / digits
  int value = 0;     // kInt
  size_t offset = 0;  // byte offset in the input, for error messages
};

// Splits `input` into tokens.  Whitespace separates tokens and is
// otherwise ignored.  Fails on unknown characters and unterminated
// character literals.
Result<std::vector<Token>> Tokenize(const std::string& input);

// A simple cursor over a token vector with error-message helpers shared
// by the parsers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t lookahead) const;
  Token Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  // True (and advances) iff the next token has kind `kind`.
  bool Eat(TokenKind kind);
  // True (and advances) iff the next token is the identifier `word`.
  bool EatKeyword(const std::string& word);

  // Consumes a token of kind `kind` or fails with a message naming
  // `what` and the offending position.
  Status Expect(TokenKind kind, const std::string& what);

  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace strdb

#endif  // STRDB_STRFORM_LEXER_H_
