#include "strform/lexer.h"

#include <cctype>

namespace strdb {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t at, std::string text = "",
                  int value = 0) {
    out.push_back(Token{kind, std::move(text), value, at});
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t at = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, at, input.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int value = 0;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        value = value * 10 + (input[j] - '0');
        ++j;
      }
      push(TokenKind::kInt, at, input.substr(i, j - i), value);
      i = j;
      continue;
    }
    switch (c) {
      case '\'': {
        if (i + 2 >= input.size() || input[i + 2] != '\'') {
          return Status::InvalidArgument(
              "unterminated character literal at offset " +
              std::to_string(at));
        }
        push(TokenKind::kChar, at, std::string(1, input[i + 1]));
        i += 3;
        continue;
      }
      case '[':
        push(TokenKind::kLBracket, at);
        break;
      case ']':
        push(TokenKind::kRBracket, at);
        break;
      case '(':
        push(TokenKind::kLParen, at);
        break;
      case ')':
        push(TokenKind::kRParen, at);
        break;
      case ',':
        push(TokenKind::kComma, at);
        break;
      case '=':
        push(TokenKind::kEq, at);
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNeq, at);
          ++i;
        } else {
          push(TokenKind::kBang, at);
        }
        break;
      case '&':
        push(TokenKind::kAmp, at);
        break;
      case '|':
        push(TokenKind::kPipe, at);
        break;
      case '~':
        push(TokenKind::kTilde, at);
        break;
      case '*':
        push(TokenKind::kStar, at);
        break;
      case '+':
        push(TokenKind::kPlus, at);
        break;
      case '.':
        push(TokenKind::kDot, at);
        break;
      case '^':
        push(TokenKind::kCaret, at);
        break;
      case ':':
        push(TokenKind::kColon, at);
        break;
      case '-':
        if (i + 1 < input.size() && input[i + 1] == '>') {
          push(TokenKind::kArrow, at);
          ++i;
        } else {
          return Status::InvalidArgument("stray '-' at offset " +
                                         std::to_string(at));
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(at));
    }
    ++i;
  }
  out.push_back(Token{TokenKind::kEnd, "", 0, input.size()});
  return out;
}

const Token& TokenStream::PeekAt(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

Token TokenStream::Next() {
  Token t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::Eat(TokenKind kind) {
  if (Peek().kind == kind) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::EatKeyword(const std::string& word) {
  if (Peek().kind == TokenKind::kIdent && Peek().text == word) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::Expect(TokenKind kind, const std::string& what) {
  if (Eat(kind)) return Status::OK();
  return ErrorHere("expected " + what);
}

Status TokenStream::ErrorHere(const std::string& message) const {
  return Status::InvalidArgument(message + " at offset " +
                                 std::to_string(Peek().offset));
}

}  // namespace strdb
