#include "strform/parser.h"

#include <vector>

namespace strdb {

namespace {

// --- window formulae -------------------------------------------------------

Result<WindowFormula> ParseWinOr(TokenStream* ts);

Result<WindowFormula> ParseWinPrimary(TokenStream* ts) {
  if (ts->Eat(TokenKind::kBang)) {
    STRDB_ASSIGN_OR_RETURN(WindowFormula inner, ParseWinPrimary(ts));
    return WindowFormula::Not(std::move(inner));
  }
  if (ts->Eat(TokenKind::kLParen)) {
    STRDB_ASSIGN_OR_RETURN(WindowFormula inner, ParseWinOr(ts));
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen, "')'"));
    return inner;
  }
  if (ts->Peek().kind != TokenKind::kIdent) {
    return ts->ErrorHere("expected window-formula atom");
  }
  if (ts->Peek().text == "true") {
    ts->Next();
    return WindowFormula::True();
  }
  std::string var = ts->Next().text;
  bool negated = false;
  if (ts->Eat(TokenKind::kNeq)) {
    negated = true;
  } else {
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kEq, "'=' or '!='"));
  }
  WindowFormula atom = WindowFormula::True();
  // Chained equality sugar x1 = x2 = ... = xm (not after '!=').
  if (ts->Peek().kind == TokenKind::kTilde) {
    ts->Next();
    atom = WindowFormula::Undef(var);
  } else if (ts->Peek().kind == TokenKind::kChar) {
    atom = WindowFormula::CharEq(var, ts->Next().text[0]);
  } else if (ts->Peek().kind == TokenKind::kIdent &&
             ts->Peek().text != "true") {
    std::string prev = var;
    atom = WindowFormula::True();
    bool first = true;
    for (;;) {
      std::string rhs;
      if (ts->Peek().kind == TokenKind::kIdent) {
        rhs = ts->Next().text;
        WindowFormula eq = WindowFormula::VarEq(prev, rhs);
        atom = first ? eq : WindowFormula::And(std::move(atom), std::move(eq));
        prev = rhs;
      } else if (ts->Peek().kind == TokenKind::kTilde) {
        ts->Next();
        WindowFormula eq = WindowFormula::Undef(prev);
        atom = first ? eq : WindowFormula::And(std::move(atom), std::move(eq));
        // ~ terminates a chain (x = y = ~ means x=y and y=ε).
        break;
      } else {
        return ts->ErrorHere("expected variable or '~' in equality chain");
      }
      first = false;
      if (negated || !ts->Eat(TokenKind::kEq)) break;
    }
  } else {
    return ts->ErrorHere("expected '~', character literal or variable");
  }
  if (negated) return WindowFormula::Not(std::move(atom));
  return atom;
}

Result<WindowFormula> ParseWinAnd(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(WindowFormula out, ParseWinPrimary(ts));
  while (ts->Eat(TokenKind::kAmp)) {
    STRDB_ASSIGN_OR_RETURN(WindowFormula rhs, ParseWinPrimary(ts));
    out = WindowFormula::And(std::move(out), std::move(rhs));
  }
  return out;
}

Result<WindowFormula> ParseWinOr(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(WindowFormula out, ParseWinAnd(ts));
  while (ts->Eat(TokenKind::kPipe)) {
    STRDB_ASSIGN_OR_RETURN(WindowFormula rhs, ParseWinAnd(ts));
    out = WindowFormula::Or(std::move(out), std::move(rhs));
  }
  return out;
}

// --- string formulae -------------------------------------------------------

Result<StringFormula> ParseUnion(TokenStream* ts);

Result<StringFormula> ParseBase(TokenStream* ts) {
  if (ts->EatKeyword("lambda")) return StringFormula::Lambda();
  if (ts->Eat(TokenKind::kLParen)) {
    STRDB_ASSIGN_OR_RETURN(StringFormula inner, ParseUnion(ts));
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen, "')'"));
    return inner;
  }
  if (ts->Eat(TokenKind::kLBracket)) {
    std::vector<std::string> vars;
    if (!ts->Eat(TokenKind::kRBracket)) {
      for (;;) {
        if (ts->Peek().kind != TokenKind::kIdent) {
          return ts->ErrorHere("expected variable in transpose");
        }
        vars.push_back(ts->Next().text);
        if (!ts->Eat(TokenKind::kComma)) break;
      }
      STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRBracket, "']'"));
    }
    Dir dir;
    if (ts->EatKeyword("l")) {
      dir = Dir::kLeft;
    } else if (ts->EatKeyword("r")) {
      dir = Dir::kRight;
    } else {
      return ts->ErrorHere("expected transpose direction 'l' or 'r'");
    }
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kLParen, "'('"));
    STRDB_ASSIGN_OR_RETURN(WindowFormula window, ParseWinOr(ts));
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen, "')'"));
    return StringFormula::Atomic(dir, std::move(vars), std::move(window));
  }
  return ts->ErrorHere("expected '[', '(' or 'lambda'");
}

Result<StringFormula> ParsePostfixAfter(StringFormula out, TokenStream* ts) {
  for (;;) {
    if (ts->Eat(TokenKind::kStar)) {
      out = StringFormula::Star(std::move(out));
    } else if (ts->Eat(TokenKind::kCaret)) {
      if (ts->Peek().kind != TokenKind::kInt) {
        return ts->ErrorHere("expected exponent after '^'");
      }
      int n = ts->Next().value;
      out = StringFormula::Power(std::move(out), n);
    } else {
      break;
    }
  }
  return out;
}

Result<StringFormula> ParsePostfix(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(StringFormula out, ParseBase(ts));
  return ParsePostfixAfter(std::move(out), ts);
}

bool StartsBase(const Token& t) {
  return t.kind == TokenKind::kLBracket || t.kind == TokenKind::kLParen ||
         (t.kind == TokenKind::kIdent && t.text == "lambda");
}

Result<StringFormula> ParseConcatAfter(StringFormula out, TokenStream* ts) {
  for (;;) {
    if (ts->Eat(TokenKind::kDot)) {
      STRDB_ASSIGN_OR_RETURN(StringFormula rhs, ParsePostfix(ts));
      out = StringFormula::Concat(std::move(out), std::move(rhs));
    } else if (StartsBase(ts->Peek())) {
      // Juxtaposition is concatenation, as in the paper's examples.
      STRDB_ASSIGN_OR_RETURN(StringFormula rhs, ParsePostfix(ts));
      out = StringFormula::Concat(std::move(out), std::move(rhs));
    } else {
      break;
    }
  }
  return out;
}

Result<StringFormula> ParseConcat(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(StringFormula out, ParsePostfix(ts));
  return ParseConcatAfter(std::move(out), ts);
}

Result<StringFormula> ParseUnionAfter(StringFormula out, TokenStream* ts) {
  while (ts->Eat(TokenKind::kPlus)) {
    STRDB_ASSIGN_OR_RETURN(StringFormula rhs, ParseConcat(ts));
    out = StringFormula::Union(std::move(out), std::move(rhs));
  }
  return out;
}

Result<StringFormula> ParseUnion(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(StringFormula out, ParseConcat(ts));
  return ParseUnionAfter(std::move(out), ts);
}

}  // namespace

Result<StringFormula> ContinueStringFormula(StringFormula left,
                                            TokenStream* tokens) {
  STRDB_ASSIGN_OR_RETURN(StringFormula out,
                         ParsePostfixAfter(std::move(left), tokens));
  STRDB_ASSIGN_OR_RETURN(out, ParseConcatAfter(std::move(out), tokens));
  return ParseUnionAfter(std::move(out), tokens);
}

Result<StringFormula> ParseStringFormula(TokenStream* tokens) {
  return ParseUnion(tokens);
}

Result<WindowFormula> ParseWindowFormula(TokenStream* tokens) {
  return ParseWinOr(tokens);
}

Result<StringFormula> ParseStringFormula(const std::string& input) {
  STRDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenStream ts(std::move(tokens));
  STRDB_ASSIGN_OR_RETURN(StringFormula out, ParseStringFormula(&ts));
  if (!ts.AtEnd()) return ts.ErrorHere("trailing input after string formula");
  return out;
}

Result<WindowFormula> ParseWindowFormula(const std::string& input) {
  STRDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenStream ts(std::move(tokens));
  STRDB_ASSIGN_OR_RETURN(WindowFormula out, ParseWindowFormula(&ts));
  if (!ts.AtEnd()) return ts.ErrorHere("trailing input after window formula");
  return out;
}

}  // namespace strdb
