#include "calculus/formula.h"

#include <cassert>

namespace strdb {

struct CalcFormula::Node {
  Kind kind = Kind::kString;
  StringFormula str = StringFormula::Lambda();  // kString
  std::string relation;                         // kRelAtom
  std::vector<std::string> args;                // kRelAtom
  std::string var;                              // kExists/kForAll
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

CalcFormula CalcFormula::Str(StringFormula f) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kString;
  node->str = std::move(f);
  return CalcFormula(std::move(node));
}

CalcFormula CalcFormula::RelAtom(std::string relation,
                                 std::vector<std::string> args) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRelAtom;
  node->relation = std::move(relation);
  node->args = std::move(args);
  return CalcFormula(std::move(node));
}

CalcFormula CalcFormula::And(CalcFormula a, CalcFormula b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return CalcFormula(std::move(node));
}

CalcFormula CalcFormula::Or(CalcFormula a, CalcFormula b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return CalcFormula(std::move(node));
}

CalcFormula CalcFormula::Not(CalcFormula f) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::move(f.node_);
  return CalcFormula(std::move(node));
}

CalcFormula CalcFormula::Implies(CalcFormula a, CalcFormula b) {
  return Or(Not(std::move(a)), std::move(b));
}

CalcFormula CalcFormula::Exists(const std::vector<std::string>& vars,
                                CalcFormula body) {
  assert(!vars.empty());
  CalcFormula out = std::move(body);
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kExists;
    node->var = *it;
    node->left = std::move(out.node_);
    out = CalcFormula(std::move(node));
  }
  return out;
}

CalcFormula CalcFormula::ForAll(const std::vector<std::string>& vars,
                                CalcFormula body) {
  assert(!vars.empty());
  CalcFormula out = std::move(body);
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    auto node = std::make_shared<Node>();
    node->kind = Kind::kForAll;
    node->var = *it;
    node->left = std::move(out.node_);
    out = CalcFormula(std::move(node));
  }
  return out;
}

CalcFormula::Kind CalcFormula::kind() const { return node_->kind; }

const StringFormula& CalcFormula::str() const {
  assert(kind() == Kind::kString);
  return node_->str;
}

const std::string& CalcFormula::relation() const {
  assert(kind() == Kind::kRelAtom);
  return node_->relation;
}

const std::vector<std::string>& CalcFormula::args() const {
  assert(kind() == Kind::kRelAtom);
  return node_->args;
}

const CalcFormula CalcFormula::Left() const {
  assert(node_->left != nullptr);
  return CalcFormula(node_->left);
}

const CalcFormula CalcFormula::Right() const {
  assert(node_->right != nullptr);
  return CalcFormula(node_->right);
}

const std::string& CalcFormula::var() const {
  assert(kind() == Kind::kExists || kind() == Kind::kForAll);
  return node_->var;
}

namespace {

void CollectFree(const CalcFormula& f, std::set<std::string>* bound,
                 std::set<std::string>* free) {
  switch (f.kind()) {
    case CalcFormula::Kind::kString:
      for (const std::string& v : f.str().Vars()) {
        if (bound->count(v) == 0) free->insert(v);
      }
      break;
    case CalcFormula::Kind::kRelAtom:
      for (const std::string& v : f.args()) {
        if (bound->count(v) == 0) free->insert(v);
      }
      break;
    case CalcFormula::Kind::kAnd:
    case CalcFormula::Kind::kOr:
      CollectFree(f.Left(), bound, free);
      CollectFree(f.Right(), bound, free);
      break;
    case CalcFormula::Kind::kNot:
      CollectFree(f.Left(), bound, free);
      break;
    case CalcFormula::Kind::kExists:
    case CalcFormula::Kind::kForAll: {
      bool was_bound = bound->count(f.var()) > 0;
      bound->insert(f.var());
      CollectFree(f.Left(), bound, free);
      if (!was_bound) bound->erase(f.var());
      break;
    }
  }
}

}  // namespace

std::vector<std::string> CalcFormula::FreeVars() const {
  std::set<std::string> bound;
  std::set<std::string> free;
  CollectFree(*this, &bound, &free);
  return std::vector<std::string>(free.begin(), free.end());
}

bool CalcFormula::IsPure() const {
  switch (kind()) {
    case Kind::kString:
      return true;
    case Kind::kRelAtom:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
      return Left().IsPure() && Right().IsPure();
    case Kind::kNot:
    case Kind::kExists:
    case Kind::kForAll:
      return Left().IsPure();
  }
  return true;
}

CalcFormula CalcFormula::RenameFreeVars(
    const std::map<std::string, std::string>& renaming) const {
  if (renaming.empty()) return *this;
  auto renamed = [&renaming](const std::string& v) {
    auto it = renaming.find(v);
    return it == renaming.end() ? v : it->second;
  };
  switch (kind()) {
    case Kind::kString:
      return Str(str().RenameVars(renaming));
    case Kind::kRelAtom: {
      std::vector<std::string> new_args;
      new_args.reserve(args().size());
      for (const std::string& v : args()) new_args.push_back(renamed(v));
      return RelAtom(relation(), std::move(new_args));
    }
    case Kind::kAnd:
      return And(Left().RenameFreeVars(renaming),
                 Right().RenameFreeVars(renaming));
    case Kind::kOr:
      return Or(Left().RenameFreeVars(renaming),
                Right().RenameFreeVars(renaming));
    case Kind::kNot:
      return Not(Left().RenameFreeVars(renaming));
    case Kind::kExists:
    case Kind::kForAll: {
      std::map<std::string, std::string> inner = renaming;
      inner.erase(var());  // shadowed
      CalcFormula body = Left().RenameFreeVars(inner);
      return kind() == Kind::kExists ? Exists({var()}, std::move(body))
                                     : ForAll({var()}, std::move(body));
    }
  }
  return *this;
}

std::string CalcFormula::ToString() const {
  switch (kind()) {
    case Kind::kString:
      return str().ToString();
    case Kind::kRelAtom: {
      std::string out = relation() + "(";
      for (size_t i = 0; i < args().size(); ++i) {
        if (i > 0) out += ",";
        out += args()[i];
      }
      return out + ")";
    }
    case Kind::kAnd:
      return "(" + Left().ToString() + " & " + Right().ToString() + ")";
    case Kind::kOr:
      return "(" + Left().ToString() + " | " + Right().ToString() + ")";
    case Kind::kNot:
      return "!(" + Left().ToString() + ")";
    case Kind::kExists:
      return "exists " + var() + ": (" + Left().ToString() + ")";
    case Kind::kForAll:
      return "forall " + var() + ": (" + Left().ToString() + ")";
  }
  return "?";
}

}  // namespace strdb
