#ifndef STRDB_CALCULUS_QUERY_H_
#define STRDB_CALCULUS_QUERY_H_

#include <string>
#include <vector>

#include "calculus/formula.h"
#include "calculus/translate.h"
#include "core/budget.h"
#include "core/result.h"
#include "engine/plan.h"
#include "relational/algebra.h"
#include "relational/relation.h"
#include "safety/limitation.h"

namespace strdb {

// How Query evaluates its algebra plan.
struct QueryOptions {
  // Route through the shared execution engine (rewrites, artifact cache,
  // parallel selection).  Off = the naïve tree-walking evaluator; the
  // two agree on every query, so this is a debugging/benchmarking knob.
  bool use_engine = true;
  // When non-null, receives wall time, cache counters and the executed
  // plan (engine route only; untouched on the naïve route).
  ExecStats* stats = nullptr;
  // Per-query resource limits (0 = unlimited).  When any limit is set, a
  // ResourceBudget is opened for the execution and every σ_A search
  // step, operator output row and cold cache insert is charged against
  // it; an exhausted budget surfaces as kResourceExhausted with partial
  // ExecStats.  Applies to both routes.
  ResourceLimits limits;
  // Optional parent account (not owned; must outlive the execution).
  // When set, a per-query ResourceBudget is always opened (even with
  // empty `limits`) as a child of it, so the query's in-flight usage
  // rolls up into — and on completion is released from — the shared
  // account.  The server threads its global admission budget here.
  ResourceBudget* parent_budget = nullptr;
  // Spilled (out-of-core) relations, by name, disjoint from the
  // database's inline relations (not owned; must outlive the
  // execution).  Limit inference reads their stored max string length;
  // evaluation scans them page-at-a-time.  The shell/server thread
  // CatalogStore::PagedDb() here.
  const PagedSet* paged = nullptr;
  // Per-relation statistics for the cost-based planner (not owned; must
  // outlive the execution).  Advisory: estimates only, never answers.
  // The shell/server thread CatalogStore::StatsSnapshot() here.
  const StatsMap* relation_stats = nullptr;
};

// The end-to-end query facility a string-database engine would expose:
// parse a query x1,...,xk | φ, translate it to alignment algebra
// (Theorem 4.2), *infer a limit function* W_φ (the §5 programme: the
// paper's Eq. (6) evaluates db(E_φ ↓ W_φ(db))), and evaluate.
//
// The limit inference is syntactic and compositional, mirroring the
// proof of Theorem 4.1:
//   W(R)           = max(R, db)                     (Eq. (2))
//   W(Σ^k)         = k
//   W(E ∪ F), (E\F), (E×F) = max of the parts
//   W(π E) = W(restrict E) = W(E)
//   W(σ_A(F × (Σ*)^n)) = max(W(F), bound_A(W(F), ..., W(F)))
// where bound_A comes from AnalyzeLimitation with the F-columns as
// inputs — the query is *rejected as unsafe* when the limitation
// [F-columns] ↝ [Σ*-columns] fails, exactly as §5 prescribes.  A bare
// Σ* outside that form (negation produces one) has no finite limit:
// such queries are rejected as not (syntactically) domain independent.
class Query {
 public:
  // Parses "x, y | <calculus formula>"; the head lists the output
  // variables, which must be exactly the formula's free variables
  // (ascending order is imposed, as in the paper).  The head may be
  // omitted ("<formula>" alone), in which case the outputs are the free
  // variables in ascending order.
  static Result<Query> Parse(const std::string& text,
                             const Alphabet& alphabet);

  // Wraps an already-built formula.
  static Result<Query> FromFormula(CalcFormula formula,
                                   const Alphabet& alphabet);

  const CalcFormula& formula() const { return formula_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const AlgebraExpr& plan() const { return plan_; }

  // The inferred limit W_φ(db), or an error naming the unsafe part.
  // `paged` extends Eq. (2)'s max(R, db) to spilled relations via the
  // max string length recorded in their heap headers — no scan needed.
  Result<int> InferTruncation(const Database& db,
                              const PagedSet* paged = nullptr) const;

  // Evaluates at the inferred truncation: the paper's
  // ⟦φ⟧_db = db(E_φ ↓ W_φ(db)) for domain-independent φ (Eq. (6)).
  Result<StringRelation> Execute(const Database& db,
                                 const QueryOptions& options = {}) const;

  // Evaluates at an explicit truncation (the ⟦φ⟧^l semantics), for
  // queries the safety analysis cannot certify.
  Result<StringRelation> ExecuteTruncated(
      const Database& db, int truncation,
      const QueryOptions& options = {}) const;

  // The engine's physical plan for this query at the inferred
  // truncation, rendered with planner estimates ("explain").  `stats`
  // (optional) feeds the cost planner's cardinality estimates.
  Result<std::string> ExplainPlan(const Database& db,
                                  const PagedSet* paged = nullptr,
                                  const StatsMap* stats = nullptr) const;

 private:
  Query(CalcFormula formula, std::vector<std::string> outputs,
        AlgebraExpr plan)
      : formula_(std::move(formula)),
        outputs_(std::move(outputs)),
        plan_(std::move(plan)) {}

  CalcFormula formula_;
  std::vector<std::string> outputs_;
  AlgebraExpr plan_;
};

}  // namespace strdb

#endif  // STRDB_CALCULUS_QUERY_H_
