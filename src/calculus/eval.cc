#include "calculus/eval.h"

#include <optional>

namespace strdb {

namespace {

class NaiveEvaluator {
 public:
  NaiveEvaluator(const Database& db, const CalcEvalOptions& options)
      : db_(db), options_(options),
        domain_(db.alphabet().StringsUpTo(options.truncation)) {}

  Result<bool> Holds(const CalcFormula& f,
                     std::map<std::string, std::string>* binding) {
    if (++steps_ > options_.max_steps) {
      return Status::ResourceExhausted("naive evaluation exceeded max_steps");
    }
    switch (f.kind()) {
      case CalcFormula::Kind::kString: {
        std::vector<std::string> vars = f.str().Vars();
        std::vector<std::string> strings;
        strings.reserve(vars.size());
        for (const std::string& v : vars) {
          auto it = binding->find(v);
          if (it == binding->end()) {
            return Status::NotFound("free variable '" + v + "' unbound");
          }
          strings.push_back(it->second);
        }
        return f.str().AcceptsStrings(vars, strings);
      }
      case CalcFormula::Kind::kRelAtom: {
        STRDB_ASSIGN_OR_RETURN(const StringRelation* rel,
                               db_.Get(f.relation()));
        if (rel->arity() != static_cast<int>(f.args().size())) {
          return Status::InvalidArgument(
              "relation '" + f.relation() + "' used with arity " +
              std::to_string(f.args().size()));
        }
        Tuple t;
        t.reserve(f.args().size());
        for (const std::string& v : f.args()) {
          auto it = binding->find(v);
          if (it == binding->end()) {
            return Status::NotFound("free variable '" + v + "' unbound");
          }
          t.push_back(it->second);
        }
        return rel->Contains(t);
      }
      case CalcFormula::Kind::kAnd: {
        STRDB_ASSIGN_OR_RETURN(bool left, Holds(f.Left(), binding));
        if (!left) return false;
        return Holds(f.Right(), binding);
      }
      case CalcFormula::Kind::kOr: {
        STRDB_ASSIGN_OR_RETURN(bool left, Holds(f.Left(), binding));
        if (left) return true;
        return Holds(f.Right(), binding);
      }
      case CalcFormula::Kind::kNot: {
        STRDB_ASSIGN_OR_RETURN(bool inner, Holds(f.Left(), binding));
        return !inner;
      }
      case CalcFormula::Kind::kExists:
      case CalcFormula::Kind::kForAll: {
        const bool exists = f.kind() == CalcFormula::Kind::kExists;
        // Save and restore any outer binding of the shadowed name.
        auto it = binding->find(f.var());
        std::optional<std::string> saved;
        if (it != binding->end()) saved = it->second;
        for (const std::string& u : domain_) {
          (*binding)[f.var()] = u;
          Result<bool> r = Holds(f.Left(), binding);
          if (!r.ok()) {
            RestoreBinding(binding, f.var(), saved);
            return r;
          }
          if (*r == exists) {
            RestoreBinding(binding, f.var(), saved);
            return exists;
          }
        }
        RestoreBinding(binding, f.var(), saved);
        return !exists;
      }
    }
    return Status::Internal("unknown calculus node");
  }

 private:
  static void RestoreBinding(std::map<std::string, std::string>* binding,
                             const std::string& var,
                             const std::optional<std::string>& saved) {
    if (saved.has_value()) {
      (*binding)[var] = *saved;
    } else {
      binding->erase(var);
    }
  }

  const Database& db_;
  const CalcEvalOptions& options_;
  std::vector<std::string> domain_;
  int64_t steps_ = 0;
};

}  // namespace

Result<bool> HoldsAt(const CalcFormula& formula, const Database& db,
                     const std::map<std::string, std::string>& binding,
                     const CalcEvalOptions& options) {
  for (const auto& [var, value] : binding) {
    if (static_cast<int>(value.size()) > options.truncation) {
      return Status::InvalidArgument("binding of '" + var +
                                     "' exceeds the truncation length");
    }
    if (!db.alphabet().Contains(value)) {
      return Status::InvalidArgument("binding of '" + var +
                                     "' leaves the alphabet");
    }
  }
  NaiveEvaluator evaluator(db, options);
  std::map<std::string, std::string> mutable_binding = binding;
  return evaluator.Holds(formula, &mutable_binding);
}

Result<StringRelation> EvalCalcNaive(const CalcFormula& formula,
                                     const Database& db,
                                     const CalcEvalOptions& options) {
  std::vector<std::string> free_vars = formula.FreeVars();
  std::vector<std::string> domain =
      db.alphabet().StringsUpTo(options.truncation);
  StringRelation out(static_cast<int>(free_vars.size()));
  NaiveEvaluator evaluator(db, options);

  std::vector<size_t> idx(free_vars.size(), 0);
  std::map<std::string, std::string> binding;
  for (;;) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      binding[free_vars[i]] = domain[idx[i]];
    }
    STRDB_ASSIGN_OR_RETURN(bool truth, evaluator.Holds(formula, &binding));
    if (truth) {
      Tuple t;
      t.reserve(free_vars.size());
      for (const std::string& v : free_vars) t.push_back(binding[v]);
      STRDB_RETURN_IF_ERROR(out.Insert(std::move(t)));
    }
    if (free_vars.empty()) break;
    size_t d = 0;
    while (d < idx.size() && ++idx[d] == domain.size()) idx[d++] = 0;
    if (d == idx.size()) break;
  }
  return out;
}

}  // namespace strdb
