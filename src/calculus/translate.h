#ifndef STRDB_CALCULUS_TRANSLATE_H_
#define STRDB_CALCULUS_TRANSLATE_H_

#include <string>
#include <vector>

#include "calculus/formula.h"
#include "core/result.h"
#include "fsa/compile.h"
#include "relational/algebra.h"

namespace strdb {

// --- Theorem 4.2: calculus → algebra ---------------------------------------

struct TranslateOptions {
  CompileOptions compile;
};

// The F ⋈ B construct from the proof of Theorem 4.2: selects the tuples
// of `f` whose columns are equal within every block of the ordered
// partition `blocks` (0-based column indices, disjoint, covering f's
// arity), then projects to one representative column per block (the
// block minimum), in block order.  The equality test is the string
// formula ([c0..ca]l ⋀_j ⋀_{i∈Bj} c_i = c_minBj)* · [c0..ca]l
// (c_0 = ... = c_a = ε), compiled to an FSA selection.
Result<AlgebraExpr> JoinByPartition(AlgebraExpr f,
                                    const std::vector<std::vector<int>>& blocks,
                                    const Alphabet& alphabet,
                                    const CompileOptions& options = {});

// Translates an alignment-calculus formula into an alignment-algebra
// expression E_φ with one column per free variable, ascending by name,
// such that ⟦φ⟧_db = db(E_φ) and ⟦φ⟧^l_db = db(E_φ ↓ l) (the evaluator's
// truncation option plays the role of ↓l).
//
// ∨ and ∀ are desugared through ¬/∧/∃ as in the paper; negation over m
// free variables becomes (Σ*)^m \ E, whose evaluation materialises
// (Σ^l)^m — inherently exponential in m, like the paper's construction.
Result<AlgebraExpr> CalcToAlgebra(const CalcFormula& formula,
                                  const Alphabet& alphabet,
                                  const TranslateOptions& options = {});

// --- Theorem 4.1: algebra → calculus ---------------------------------------

struct ToCalcOptions {
  // Forwarded to FsaToStringFormula for selection automata.
  int64_t max_formula_size = 5'000'000;
};

// Translates an algebra expression into a calculus formula φ_E whose
// free variables are named v0, v1, ..., v{arity-1} (in column order)
// with db(E) = ⟦φ_E⟧_db.  Quantified helper variables are named q0,
// q1, ... and never collide with the column variables.
Result<CalcFormula> AlgebraToCalc(const AlgebraExpr& expr,
                                  const Alphabet& alphabet,
                                  const ToCalcOptions& options = {});

// The canonical column-variable name used by AlgebraToCalc.
std::string ColumnVar(int i);

}  // namespace strdb

#endif  // STRDB_CALCULUS_TRANSLATE_H_
