#include "calculus/query.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "calculus/parser.h"
#include "engine/engine.h"
#include "strform/lexer.h"

namespace strdb {

namespace {

// Recognises and consumes a "x, y |" head; returns the listed
// variables, or nullopt (with the stream untouched conceptually — the
// caller re-tokenises) when the input has no head.
std::optional<std::vector<std::string>> TryParseHead(
    const std::vector<Token>& tokens) {
  std::vector<std::string> head;
  size_t i = 0;
  for (;;) {
    if (i >= tokens.size() || tokens[i].kind != TokenKind::kIdent) {
      return std::nullopt;
    }
    head.push_back(tokens[i].text);
    ++i;
    if (i < tokens.size() && tokens[i].kind == TokenKind::kComma) {
      ++i;
      continue;
    }
    break;
  }
  if (i < tokens.size() && tokens[i].kind == TokenKind::kPipe) {
    return head;
  }
  return std::nullopt;
}

}  // namespace

Result<Query> Query::Parse(const std::string& text, const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  std::optional<std::vector<std::string>> head = TryParseHead(tokens);
  std::string body = text;
  if (head.has_value()) {
    size_t pipe = text.find('|');
    body = text.substr(pipe + 1);
  }
  STRDB_ASSIGN_OR_RETURN(CalcFormula formula, ParseCalcFormula(body));
  STRDB_ASSIGN_OR_RETURN(Query q, FromFormula(std::move(formula), alphabet));
  if (!head.has_value()) return q;

  // Validate the head covers exactly the free variables and reorder the
  // plan columns to match it.
  std::vector<std::string> free_vars = q.formula_.FreeVars();
  std::set<std::string> head_set(head->begin(), head->end());
  if (head->size() != head_set.size()) {
    return Status::InvalidArgument("duplicate variable in the query head");
  }
  if (head_set != std::set<std::string>(free_vars.begin(), free_vars.end())) {
    return Status::InvalidArgument(
        "the query head must list exactly the free variables");
  }
  std::vector<int> columns;
  for (const std::string& v : *head) {
    auto it = std::find(free_vars.begin(), free_vars.end(), v);
    columns.push_back(static_cast<int>(it - free_vars.begin()));
  }
  STRDB_ASSIGN_OR_RETURN(AlgebraExpr reordered,
                         AlgebraExpr::Project(q.plan_, std::move(columns)));
  q.plan_ = std::move(reordered);
  q.outputs_ = *head;
  return q;
}

Result<Query> Query::FromFormula(CalcFormula formula,
                                 const Alphabet& alphabet) {
  STRDB_ASSIGN_OR_RETURN(AlgebraExpr plan, CalcToAlgebra(formula, alphabet));
  std::vector<std::string> outputs = formula.FreeVars();
  return Query(std::move(formula), std::move(outputs), std::move(plan));
}

namespace {

constexpr int64_t kMaxTruncation = 4096;

// Flattens the ∃/∧ spine of a positive-existential query into its
// relational and string-formula leaves (the class the §5 programme
// certifies; negation, disjunction and ∀ fall back to explicit
// truncation).
Status FlattenConjunction(const CalcFormula& f,
                          std::vector<CalcFormula>* rel_atoms,
                          std::vector<CalcFormula>* str_leaves,
                          std::vector<CalcFormula>* neg_filters) {
  switch (f.kind()) {
    case CalcFormula::Kind::kRelAtom:
      rel_atoms->push_back(f);
      return Status::OK();
    case CalcFormula::Kind::kString:
      str_leaves->push_back(f);
      return Status::OK();
    case CalcFormula::Kind::kAnd:
      STRDB_RETURN_IF_ERROR(
          FlattenConjunction(f.Left(), rel_atoms, str_leaves, neg_filters));
      return FlattenConjunction(f.Right(), rel_atoms, str_leaves,
                                neg_filters);
    case CalcFormula::Kind::kExists:
      return FlattenConjunction(f.Left(), rel_atoms, str_leaves,
                                neg_filters);
    case CalcFormula::Kind::kNot:
      // Guarded negation: a negated conjunct only *filters* — it binds
      // nothing, so it is safe exactly when its variables are bounded
      // by the other conjuncts.
      neg_filters->push_back(f);
      return Status::OK();
    case CalcFormula::Kind::kOr:
    case CalcFormula::Kind::kForAll:
      return Status::InvalidArgument(
          "limit inference handles positive-existential conjunctive "
          "queries with guarded negation (the §5 safe class); use "
          "ExecuteTruncated for this query shape");
  }
  return Status::Internal("unknown calculus node");
}

// The limit-function expansion the paper points to at the end of §5:
// variables bound by database relations get Eq. (2)'s max(R, db);
// string formulae propagate bounds to their remaining variables through
// the Theorem 5.2 limitation analysis, iterated to a fixpoint.
Result<int64_t> InferFromFormula(const CalcFormula& formula,
                                 const Database& db, const PagedSet* paged,
                                 const Alphabet& alphabet) {
  std::vector<CalcFormula> rel_atoms;
  std::vector<CalcFormula> str_leaves;
  std::vector<CalcFormula> neg_filters;
  STRDB_RETURN_IF_ERROR(
      FlattenConjunction(formula, &rel_atoms, &str_leaves, &neg_filters));

  std::map<std::string, int64_t> limit;
  std::set<std::string> all_vars;
  for (const CalcFormula& atom : rel_atoms) {
    int64_t w = 0;
    Result<const StringRelation*> rel = db.Get(atom.relation());
    if (rel.ok()) {
      w = (*rel)->MaxStringLength();
    } else {
      // A spilled relation records its max string length in the heap
      // header: Eq. (2)'s max(R, db) without touching a single page.
      if (paged == nullptr) return rel.status();
      auto spilled = paged->find(atom.relation());
      if (spilled == paged->end()) return rel.status();
      w = spilled->second->max_string_length();
    }
    for (const std::string& v : atom.args()) {
      all_vars.insert(v);
      auto it = limit.find(v);
      // A variable constrained by several relations takes the tightest
      // bound.
      if (it == limit.end() || w < it->second) limit[v] = w;
    }
  }
  for (const CalcFormula& leaf : str_leaves) {
    for (const std::string& v : leaf.str().Vars()) all_vars.insert(v);
  }
  for (const CalcFormula& filter : neg_filters) {
    for (const std::string& v : filter.FreeVars()) all_vars.insert(v);
  }

  // Propagate through the string formulae until nothing new is bound.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const CalcFormula& leaf : str_leaves) {
      std::vector<std::string> vars = leaf.str().Vars();
      std::vector<std::string> known;
      bool any_unknown = false;
      for (const std::string& v : vars) {
        if (limit.count(v) > 0) {
          known.push_back(v);
        } else {
          any_unknown = true;
        }
      }
      if (!any_unknown) continue;
      Result<LimitationReport> report =
          AnalyzeStringFormulaLimitation(leaf.str(), alphabet, known);
      if (!report.ok()) return report.status();
      if (!report->limited()) continue;  // try other leaves first
      std::vector<int> input_lens;
      for (const std::string& v : vars) {
        if (limit.count(v) > 0) {
          input_lens.push_back(static_cast<int>(limit[v]));
        }
      }
      int64_t bound = report->bound.Eval(input_lens);
      for (const std::string& v : vars) {
        if (limit.count(v) == 0) {
          limit[v] = bound;
          progress = true;
        }
      }
    }
  }

  int64_t w = 0;
  for (const std::string& v : all_vars) {
    auto it = limit.find(v);
    if (it == limit.end()) {
      return Status::InvalidArgument(
          "unsafe query: no database relation or limited string formula "
          "bounds variable '" +
          v + "' (§5's limitation condition fails)");
    }
    w = std::max(w, it->second);
  }
  return w;
}

}  // namespace

Result<int> Query::InferTruncation(const Database& db,
                                   const PagedSet* paged) const {
  STRDB_ASSIGN_OR_RETURN(int64_t w,
                         InferFromFormula(formula_, db, paged, db.alphabet()));
  if (w > kMaxTruncation) {
    return Status::ResourceExhausted(
        "the inferred limit " + std::to_string(w) +
        " exceeds the evaluation cap " + std::to_string(kMaxTruncation));
  }
  return static_cast<int>(w);
}

Result<StringRelation> Query::Execute(const Database& db,
                                      const QueryOptions& options) const {
  STRDB_ASSIGN_OR_RETURN(int truncation, InferTruncation(db, options.paged));
  return ExecuteTruncated(db, truncation, options);
}

namespace {

bool AnyLimitSet(const ResourceLimits& l) {
  return l.deadline_ms > 0 || l.max_steps > 0 || l.max_rows > 0 ||
         l.max_cached_bytes > 0;
}

}  // namespace

Result<StringRelation> Query::ExecuteTruncated(
    const Database& db, int truncation, const QueryOptions& options) const {
  EvalOptions opts;
  opts.truncation = truncation;
  opts.paged = options.paged;
  opts.stats = options.relation_stats;
  // The budget lives on the stack for exactly one execution: charges
  // accumulate across every operator of this query and no other.
  std::optional<ResourceBudget> budget;
  if (AnyLimitSet(options.limits) || options.parent_budget != nullptr) {
    budget.emplace(options.limits, options.parent_budget);
    opts.budget = &*budget;
  }
  if (options.use_engine) {
    return Engine::Shared().Execute(plan_, db, opts, options.stats);
  }
  return EvalAlgebra(plan_, db, opts);
}

Result<std::string> Query::ExplainPlan(const Database& db,
                                       const PagedSet* paged,
                                       const StatsMap* stats) const {
  STRDB_ASSIGN_OR_RETURN(int truncation, InferTruncation(db, paged));
  EvalOptions opts;
  opts.truncation = truncation;
  opts.paged = paged;
  opts.stats = stats;
  return Engine::Shared().Explain(plan_, db, opts);
}

}  // namespace strdb
