#ifndef STRDB_CALCULUS_FORMULA_H_
#define STRDB_CALCULUS_FORMULA_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "strform/string_formula.h"

namespace strdb {

// A formula of full alignment calculus (paper §2, truth definitions
// 10-13): string formulae and atomic relational formulae closed under
// ∧, ¬ and ∃, with ∨, →, ∀ kept as first-class nodes for faithful
// printing (they are desugared where the theory requires the minimal
// set, e.g. in the Theorem 4.2 translation).
//
// The two-level design of the paper is enforced by construction: window
// formulae live inside atomic string formulae, string formulae are
// leaves of the calculus, and quantifiers/connectives never cross into
// the modal level.
class CalcFormula {
 public:
  enum class Kind : uint8_t {
    kString,   // a string formula leaf
    kRelAtom,  // R(v1, ..., vk) with variable arguments
    kAnd,
    kOr,
    kNot,
    kExists,  // ∃x. φ (one variable per node; the factory nests)
    kForAll,  // ∀x. φ
  };

  static CalcFormula Str(StringFormula f);
  static CalcFormula RelAtom(std::string relation,
                             std::vector<std::string> args);
  static CalcFormula And(CalcFormula a, CalcFormula b);
  static CalcFormula Or(CalcFormula a, CalcFormula b);
  static CalcFormula Not(CalcFormula f);
  // φ → ψ, the paper's shorthand for (¬φ) ∨ ψ.
  static CalcFormula Implies(CalcFormula a, CalcFormula b);
  static CalcFormula Exists(const std::vector<std::string>& vars,
                            CalcFormula body);
  static CalcFormula ForAll(const std::vector<std::string>& vars,
                            CalcFormula body);

  Kind kind() const;
  const StringFormula& str() const;            // kString
  const std::string& relation() const;         // kRelAtom
  const std::vector<std::string>& args() const;  // kRelAtom
  const CalcFormula Left() const;   // kAnd/kOr (left), kNot/kExists/kForAll body
  const CalcFormula Right() const;  // kAnd/kOr
  const std::string& var() const;   // kExists/kForAll

  // Free variables, ascending by name (the paper's implicit ordering of
  // query outputs).
  std::vector<std::string> FreeVars() const;

  // True iff the formula contains no atomic relational formulae (pure
  // alignment calculus; its answers do not depend on the database).
  bool IsPure() const;

  // A copy with free occurrences of the map's keys renamed
  // (simultaneous substitution).  A quantifier over a key shadows it:
  // occurrences in its scope are left alone.  The caller must ensure no
  // capture (targets should be fresh relative to the quantified names).
  CalcFormula RenameFreeVars(
      const std::map<std::string, std::string>& renaming) const;

  std::string ToString() const;

 private:
  struct Node;
  explicit CalcFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace strdb

#endif  // STRDB_CALCULUS_FORMULA_H_
