#ifndef STRDB_CALCULUS_PARSER_H_
#define STRDB_CALCULUS_PARSER_H_

#include <string>

#include "calculus/formula.h"
#include "core/result.h"

namespace strdb {

// Parses the textual alignment-calculus syntax, e.g. Example 3 of §2:
//
//   exists y, z: R1(y,z) & R2(x) &
//     ([x,y]l(x = y))* . ([x,z]l(x = z))* . [x,y,z]l(x = y = z = ~)
//
// Grammar (precedence low to high):
//   calc  := ('exists' | 'forall') var (',' var)* ':' calc
//          | imp
//   imp   := or ('->' calc)?                       (right associative)
//   or    := and ('|' and)*
//   and   := unary ('&' unary)*
//   unary := '!' unary | primary
//   primary :=
//       Ident '(' var (',' var)* ')'               relational atom
//     | Ident '(' ')'                              nullary relational atom
//     | string formula (starts with '[', 'lambda' or '(')
//     | '(' calc ')'
//
// A parenthesised subformula that is a pure string formula may be
// followed by string-formula operators ('*', '^', '.', '+',
// juxtaposition), which continue the string formula.
Result<CalcFormula> ParseCalcFormula(const std::string& input);

}  // namespace strdb

#endif  // STRDB_CALCULUS_PARSER_H_
