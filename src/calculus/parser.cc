#include "calculus/parser.h"

#include <vector>

#include "strform/lexer.h"
#include "strform/parser.h"

namespace strdb {

namespace {

Result<CalcFormula> ParseCalc(TokenStream* ts);

bool ContinuesStringFormula(const Token& t) {
  return t.kind == TokenKind::kStar || t.kind == TokenKind::kCaret ||
         t.kind == TokenKind::kDot || t.kind == TokenKind::kPlus ||
         t.kind == TokenKind::kLBracket ||
         (t.kind == TokenKind::kIdent && t.text == "lambda");
}

Result<CalcFormula> ParsePrimary(TokenStream* ts) {
  const Token& tok = ts->Peek();
  if (tok.kind == TokenKind::kIdent &&
      (tok.text == "exists" || tok.text == "forall")) {
    return ParseCalc(ts);
  }
  if (tok.kind == TokenKind::kIdent && tok.text == "lambda") {
    STRDB_ASSIGN_OR_RETURN(StringFormula f, ParseStringFormula(ts));
    return CalcFormula::Str(std::move(f));
  }
  if (tok.kind == TokenKind::kLBracket) {
    STRDB_ASSIGN_OR_RETURN(StringFormula f, ParseStringFormula(ts));
    return CalcFormula::Str(std::move(f));
  }
  if (tok.kind == TokenKind::kIdent) {
    std::string name = ts->Next().text;
    STRDB_RETURN_IF_ERROR(
        ts->Expect(TokenKind::kLParen, "'(' after relation name"));
    std::vector<std::string> args;
    if (!ts->Eat(TokenKind::kRParen)) {
      for (;;) {
        if (ts->Peek().kind != TokenKind::kIdent) {
          return ts->ErrorHere("expected variable in relational atom");
        }
        args.push_back(ts->Next().text);
        if (!ts->Eat(TokenKind::kComma)) break;
      }
      STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen, "')'"));
    }
    return CalcFormula::RelAtom(std::move(name), std::move(args));
  }
  if (ts->Eat(TokenKind::kLParen)) {
    STRDB_ASSIGN_OR_RETURN(CalcFormula inner, ParseCalc(ts));
    STRDB_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen, "')'"));
    if (inner.kind() == CalcFormula::Kind::kString &&
        ContinuesStringFormula(ts->Peek())) {
      STRDB_ASSIGN_OR_RETURN(StringFormula f,
                             ContinueStringFormula(inner.str(), ts));
      return CalcFormula::Str(std::move(f));
    }
    return inner;
  }
  return ts->ErrorHere("expected formula");
}

Result<CalcFormula> ParseUnary(TokenStream* ts) {
  if (ts->Eat(TokenKind::kBang)) {
    STRDB_ASSIGN_OR_RETURN(CalcFormula inner, ParseUnary(ts));
    return CalcFormula::Not(std::move(inner));
  }
  return ParsePrimary(ts);
}

Result<CalcFormula> ParseAnd(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(CalcFormula out, ParseUnary(ts));
  while (ts->Eat(TokenKind::kAmp)) {
    STRDB_ASSIGN_OR_RETURN(CalcFormula rhs, ParseUnary(ts));
    out = CalcFormula::And(std::move(out), std::move(rhs));
  }
  return out;
}

Result<CalcFormula> ParseOr(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(CalcFormula out, ParseAnd(ts));
  while (ts->Eat(TokenKind::kPipe)) {
    STRDB_ASSIGN_OR_RETURN(CalcFormula rhs, ParseAnd(ts));
    out = CalcFormula::Or(std::move(out), std::move(rhs));
  }
  return out;
}

Result<CalcFormula> ParseImplies(TokenStream* ts) {
  STRDB_ASSIGN_OR_RETURN(CalcFormula out, ParseOr(ts));
  if (ts->Eat(TokenKind::kArrow)) {
    STRDB_ASSIGN_OR_RETURN(CalcFormula rhs, ParseCalc(ts));
    return CalcFormula::Implies(std::move(out), std::move(rhs));
  }
  return out;
}

Result<CalcFormula> ParseCalc(TokenStream* ts) {
  if (ts->Peek().kind == TokenKind::kIdent &&
      (ts->Peek().text == "exists" || ts->Peek().text == "forall")) {
    bool is_exists = ts->Next().text == "exists";
    std::vector<std::string> vars;
    for (;;) {
      if (ts->Peek().kind != TokenKind::kIdent) {
        return ts->ErrorHere("expected quantified variable");
      }
      vars.push_back(ts->Next().text);
      if (!ts->Eat(TokenKind::kComma)) break;
    }
    STRDB_RETURN_IF_ERROR(
        ts->Expect(TokenKind::kColon, "':' after quantifier variables"));
    STRDB_ASSIGN_OR_RETURN(CalcFormula body, ParseCalc(ts));
    return is_exists ? CalcFormula::Exists(vars, std::move(body))
                     : CalcFormula::ForAll(vars, std::move(body));
  }
  return ParseImplies(ts);
}

}  // namespace

Result<CalcFormula> ParseCalcFormula(const std::string& input) {
  STRDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenStream ts(std::move(tokens));
  STRDB_ASSIGN_OR_RETURN(CalcFormula out, ParseCalc(&ts));
  if (!ts.AtEnd()) return ts.ErrorHere("trailing input after formula");
  return out;
}

}  // namespace strdb
