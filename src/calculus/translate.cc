#include "calculus/translate.h"

#include <algorithm>
#include <map>
#include <set>

#include "fsa/to_formula.h"

namespace strdb {

std::string ColumnVar(int i) { return "v" + std::to_string(i); }

// ---------------------------------------------------------------------------
// Theorem 4.2: calculus → algebra

Result<AlgebraExpr> JoinByPartition(AlgebraExpr f,
                                    const std::vector<std::vector<int>>& blocks,
                                    const Alphabet& alphabet,
                                    const CompileOptions& options) {
  const int a = f.arity();
  if (a == 0) return Status::InvalidArgument("cannot join an arity-0 value");
  std::vector<bool> covered(static_cast<size_t>(a), false);
  for (const std::vector<int>& block : blocks) {
    if (block.empty()) return Status::InvalidArgument("empty block");
    for (int c : block) {
      if (c < 0 || c >= a) return Status::OutOfRange("block column");
      if (covered[static_cast<size_t>(c)]) {
        return Status::InvalidArgument("blocks must be disjoint");
      }
      covered[static_cast<size_t>(c)] = true;
    }
  }
  if (!std::all_of(covered.begin(), covered.end(), [](bool b) { return b; })) {
    return Status::InvalidArgument("blocks must cover every column");
  }

  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(a));
  for (int i = 0; i < a; ++i) names.push_back("c" + std::to_string(i));

  // Within-block equality window formula for the sliding loop.
  WindowFormula eq = WindowFormula::True();
  bool have_eq = false;
  for (const std::vector<int>& block : blocks) {
    int rep = *std::min_element(block.begin(), block.end());
    for (int c : block) {
      if (c == rep) continue;
      WindowFormula atom = WindowFormula::VarEq(
          names[static_cast<size_t>(c)], names[static_cast<size_t>(rep)]);
      eq = have_eq ? WindowFormula::And(std::move(eq), std::move(atom))
                   : std::move(atom);
      have_eq = true;
    }
  }
  // Final check: the paper's chain c0 = c1 = ... = ε (with Kleene
  // equality of undefined positions this says "all exhausted").
  WindowFormula done = WindowFormula::And(
      WindowFormula::AllEqual(names), WindowFormula::Undef(names.back()));
  StringFormula psi = StringFormula::Concat(
      StringFormula::Star(StringFormula::Atomic(Dir::kLeft, names, eq)),
      StringFormula::Atomic(Dir::kLeft, names, std::move(done)));

  STRDB_ASSIGN_OR_RETURN(Fsa fsa,
                         CompileStringFormula(psi, alphabet, names, options));
  STRDB_ASSIGN_OR_RETURN(AlgebraExpr selected,
                         AlgebraExpr::Select(std::move(f), std::move(fsa)));
  std::vector<int> projection;
  projection.reserve(blocks.size());
  for (const std::vector<int>& block : blocks) {
    projection.push_back(*std::min_element(block.begin(), block.end()));
  }
  return AlgebraExpr::Project(std::move(selected), std::move(projection));
}

namespace {

class CalcTranslator {
 public:
  CalcTranslator(const Alphabet& alphabet, const TranslateOptions& options)
      : alphabet_(alphabet), options_(options) {}

  // Produces an expression with one column per free variable of `f`,
  // ascending by variable name.
  Result<AlgebraExpr> Translate(const CalcFormula& f) {
    switch (f.kind()) {
      case CalcFormula::Kind::kString:
        return TranslateString(f.str());
      case CalcFormula::Kind::kRelAtom:
        return TranslateRelAtom(f);
      case CalcFormula::Kind::kAnd:
        return TranslateAnd(f);
      case CalcFormula::Kind::kOr:
        // φ ∨ ψ desugars to ¬(¬φ ∧ ¬ψ) as in the paper's minimal set.
        return Translate(CalcFormula::Not(CalcFormula::And(
            CalcFormula::Not(f.Left()), CalcFormula::Not(f.Right()))));
      case CalcFormula::Kind::kNot:
        return TranslateNot(f);
      case CalcFormula::Kind::kExists:
        return TranslateExists(f);
      case CalcFormula::Kind::kForAll:
        // ∀x.φ desugars to ¬∃x.¬φ.
        return Translate(CalcFormula::Not(
            CalcFormula::Exists({f.var()}, CalcFormula::Not(f.Left()))));
    }
    return Status::Internal("unknown calculus node");
  }

 private:
  AlgebraExpr SigmaStarPower(int m) {
    AlgebraExpr out = AlgebraExpr::SigmaStar();
    for (int i = 1; i < m; ++i) {
      out = AlgebraExpr::Product(std::move(out), AlgebraExpr::SigmaStar());
    }
    return out;
  }

  // The full arity-0 relation {()} is π_{}(Σ^0).
  Result<AlgebraExpr> FullNullary() {
    return AlgebraExpr::Project(AlgebraExpr::SigmaL(0), {});
  }

  Result<AlgebraExpr> TranslateString(const StringFormula& str) {
    std::vector<std::string> vars = str.Vars();
    if (vars.empty()) {
      // A variable-free string formula is a boolean condition; test it
      // over one unconstrained dummy tape and project everything away.
      STRDB_ASSIGN_OR_RETURN(
          Fsa fsa, CompileStringFormula(str, alphabet_, {"_dummy"},
                                        options_.compile));
      STRDB_ASSIGN_OR_RETURN(
          AlgebraExpr sel,
          AlgebraExpr::Select(AlgebraExpr::SigmaStar(), std::move(fsa)));
      return AlgebraExpr::Project(std::move(sel), {});
    }
    STRDB_ASSIGN_OR_RETURN(
        Fsa fsa, CompileStringFormula(str, alphabet_, vars, options_.compile));
    return AlgebraExpr::Select(SigmaStarPower(static_cast<int>(vars.size())),
                               std::move(fsa));
  }

  Result<AlgebraExpr> TranslateRelAtom(const CalcFormula& f) {
    const int n = static_cast<int>(f.args().size());
    AlgebraExpr rel = AlgebraExpr::Relation(f.relation(), n);
    if (n == 0) return rel;
    // Blocks: one per distinct variable, ascending, holding its
    // occurrence positions.
    std::set<std::string> distinct(f.args().begin(), f.args().end());
    std::vector<std::vector<int>> blocks;
    for (const std::string& v : distinct) {
      std::vector<int> block;
      for (int i = 0; i < n; ++i) {
        if (f.args()[static_cast<size_t>(i)] == v) block.push_back(i);
      }
      blocks.push_back(std::move(block));
    }
    STRDB_ASSIGN_OR_RETURN(
        AlgebraExpr joined,
        JoinByPartition(std::move(rel), blocks, alphabet_, options_.compile));
    // The paper's ∩ (Σ*)^m, which under ↓l bounds the answer strings.
    return AlgebraExpr::RestrictToDomain(std::move(joined));
  }

  // φ ∧ σ with σ a string formula compiles directly into the paper's
  // finitely-evaluable form σ_{A_σ}(E_φ × (Σ*)^new): the automaton's
  // tapes are laid out as φ's columns followed by σ's fresh variables,
  // so the evaluator can run A_σ as a generator over the fresh columns
  // with E_φ's tuples as inputs — instead of enumerating the truncated
  // domain for σ standalone and joining afterwards.
  Result<AlgebraExpr> TranslateAndWithString(const CalcFormula& other,
                                             const StringFormula& str) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr base, Translate(other));
    std::vector<std::string> base_vars = other.FreeVars();
    std::vector<std::string> str_vars = str.Vars();
    std::vector<std::string> fresh;
    for (const std::string& v : str_vars) {
      if (std::find(base_vars.begin(), base_vars.end(), v) ==
          base_vars.end()) {
        fresh.push_back(v);
      }
    }
    if (base_vars.empty()) {
      // No columns to feed the automaton: fall back to the plain string
      // translation gated by the boolean `other`.
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr str_expr, TranslateString(str));
      return AlgebraExpr::Product(std::move(str_expr), std::move(base));
    }
    std::vector<std::string> tape_order = base_vars;
    tape_order.insert(tape_order.end(), fresh.begin(), fresh.end());
    STRDB_ASSIGN_OR_RETURN(
        Fsa fsa,
        CompileStringFormula(str, alphabet_, tape_order, options_.compile));
    AlgebraExpr child = std::move(base);
    if (!fresh.empty()) {
      child = AlgebraExpr::Product(
          std::move(child), SigmaStarPower(static_cast<int>(fresh.size())));
    }
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr sel,
                           AlgebraExpr::Select(std::move(child),
                                               std::move(fsa)));
    // Reorder to ascending variable order over the union.
    std::vector<std::string> union_vars = tape_order;
    std::sort(union_vars.begin(), union_vars.end());
    std::vector<int> columns;
    for (const std::string& v : union_vars) {
      auto it = std::find(tape_order.begin(), tape_order.end(), v);
      columns.push_back(static_cast<int>(it - tape_order.begin()));
    }
    return AlgebraExpr::Project(std::move(sel), std::move(columns));
  }

  // Guarded negation: φ ∧ ¬ψ with free(ψ) = free(φ) is the difference
  // E_φ \ E_ψ — no Σ*-complement needed (both sides' columns are the
  // same ascending variable list).
  Result<AlgebraExpr> TranslateGuardedNot(const CalcFormula& guard,
                                          const CalcFormula& negated_body) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr base, Translate(guard));
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr removed, Translate(negated_body));
    return AlgebraExpr::Difference(std::move(base), std::move(removed));
  }

  Result<AlgebraExpr> TranslateAnd(const CalcFormula& f) {
    if (f.Right().kind() == CalcFormula::Kind::kNot &&
        f.Left().FreeVars() == f.Right().FreeVars()) {
      return TranslateGuardedNot(f.Left(), f.Right().Left());
    }
    if (f.Left().kind() == CalcFormula::Kind::kNot &&
        f.Left().FreeVars() == f.Right().FreeVars()) {
      return TranslateGuardedNot(f.Right(), f.Left().Left());
    }
    if (f.Right().kind() == CalcFormula::Kind::kString) {
      return TranslateAndWithString(f.Left(), f.Right().str());
    }
    if (f.Left().kind() == CalcFormula::Kind::kString) {
      return TranslateAndWithString(f.Right(), f.Left().str());
    }
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr left, Translate(f.Left()));
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr right, Translate(f.Right()));
    std::vector<std::string> lv = f.Left().FreeVars();
    std::vector<std::string> rv = f.Right().FreeVars();
    if (lv.empty() && rv.empty()) {
      // Boolean conjunction of two nullary values: intersection.
      return AlgebraExpr::Intersect(std::move(left), std::move(right));
    }
    if (lv.empty()) {
      // left is {()} or ∅: emptiness gates the right side.  E = right ×
      // left would reorder columns for nullary, but × with arity 0
      // simply keeps/cancels tuples, so the product works directly.
      return AlgebraExpr::Product(std::move(right), std::move(left));
    }
    if (rv.empty()) {
      return AlgebraExpr::Product(std::move(left), std::move(right));
    }
    AlgebraExpr product = AlgebraExpr::Product(std::move(left),
                                               std::move(right));
    std::vector<std::string> combined = lv;
    combined.insert(combined.end(), rv.begin(), rv.end());
    std::set<std::string> distinct(combined.begin(), combined.end());
    std::vector<std::vector<int>> blocks;
    for (const std::string& v : distinct) {
      std::vector<int> block;
      for (size_t i = 0; i < combined.size(); ++i) {
        if (combined[i] == v) block.push_back(static_cast<int>(i));
      }
      blocks.push_back(std::move(block));
    }
    return JoinByPartition(std::move(product), blocks, alphabet_,
                           options_.compile);
  }

  Result<AlgebraExpr> TranslateNot(const CalcFormula& f) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr inner, Translate(f.Left()));
    const int m = inner.arity();
    if (m == 0) {
      STRDB_ASSIGN_OR_RETURN(AlgebraExpr full, FullNullary());
      return AlgebraExpr::Difference(std::move(full), std::move(inner));
    }
    return AlgebraExpr::Difference(SigmaStarPower(m), std::move(inner));
  }

  Result<AlgebraExpr> TranslateExists(const CalcFormula& f) {
    STRDB_ASSIGN_OR_RETURN(AlgebraExpr body, Translate(f.Left()));
    std::vector<std::string> body_vars = f.Left().FreeVars();
    auto it = std::find(body_vars.begin(), body_vars.end(), f.var());
    if (it == body_vars.end()) {
      // ∃x.φ with x not free in φ is φ (the domain is never empty).
      return body;
    }
    int drop = static_cast<int>(it - body_vars.begin());
    std::vector<int> keep;
    for (int i = 0; i < static_cast<int>(body_vars.size()); ++i) {
      if (i != drop) keep.push_back(i);
    }
    return AlgebraExpr::Project(std::move(body), std::move(keep));
  }

  const Alphabet& alphabet_;
  const TranslateOptions& options_;
};

}  // namespace

Result<AlgebraExpr> CalcToAlgebra(const CalcFormula& formula,
                                  const Alphabet& alphabet,
                                  const TranslateOptions& options) {
  CalcTranslator translator(alphabet, options);
  return translator.Translate(formula);
}

// ---------------------------------------------------------------------------
// Theorem 4.1: algebra → calculus

namespace {

class AlgebraTranslator {
 public:
  AlgebraTranslator(const Alphabet& alphabet, const ToCalcOptions& options)
      : alphabet_(alphabet), options_(options) {}

  // Produces a formula with free variables v0..v{arity-1}.
  Result<CalcFormula> Translate(const AlgebraExpr& e) {
    switch (e.kind()) {
      case AlgebraExpr::Kind::kRelation: {
        std::vector<std::string> args;
        for (int i = 0; i < e.arity(); ++i) args.push_back(ColumnVar(i));
        return CalcFormula::RelAtom(e.relation_name(), std::move(args));
      }
      case AlgebraExpr::Kind::kSigmaStar:
        // Identically true with free variable v0 (paper: [ ]l x1 = ε,
        // true in every initial alignment).
        return CalcFormula::Str(StringFormula::Atomic(
            Dir::kLeft, {}, WindowFormula::Undef(ColumnVar(0))));
      case AlgebraExpr::Kind::kSigmaL: {
        // ([v0]l ⊤)^l · [v0]l(v0 = ε): true iff |v0| <= l.
        StringFormula step = StringFormula::Atomic(
            Dir::kLeft, {ColumnVar(0)}, WindowFormula::True());
        StringFormula check = StringFormula::Atomic(
            Dir::kLeft, {ColumnVar(0)}, WindowFormula::Undef(ColumnVar(0)));
        return CalcFormula::Str(StringFormula::Concat(
            StringFormula::Power(std::move(step), e.sigma_l()),
            std::move(check)));
      }
      case AlgebraExpr::Kind::kUnion: {
        STRDB_ASSIGN_OR_RETURN(CalcFormula l, Translate(e.Left()));
        STRDB_ASSIGN_OR_RETURN(CalcFormula r, Translate(e.Right()));
        return CalcFormula::Or(std::move(l), std::move(r));
      }
      case AlgebraExpr::Kind::kDifference: {
        STRDB_ASSIGN_OR_RETURN(CalcFormula l, Translate(e.Left()));
        STRDB_ASSIGN_OR_RETURN(CalcFormula r, Translate(e.Right()));
        return CalcFormula::And(std::move(l),
                                CalcFormula::Not(std::move(r)));
      }
      case AlgebraExpr::Kind::kProduct: {
        STRDB_ASSIGN_OR_RETURN(CalcFormula l, Translate(e.Left()));
        STRDB_ASSIGN_OR_RETURN(CalcFormula r, Translate(e.Right()));
        std::map<std::string, std::string> shift;
        for (int i = 0; i < e.Right().arity(); ++i) {
          shift[ColumnVar(i)] = ColumnVar(i + e.Left().arity());
        }
        return CalcFormula::And(std::move(l), r.RenameFreeVars(shift));
      }
      case AlgebraExpr::Kind::kProject: {
        STRDB_ASSIGN_OR_RETURN(CalcFormula child, Translate(e.Left()));
        // Rename the dropped columns to fresh q-variables and quantify
        // them; rename kept column i_k to v_k (simultaneously).
        std::map<std::string, std::string> renaming;
        std::vector<bool> kept(static_cast<size_t>(e.Left().arity()), false);
        for (size_t k = 0; k < e.columns().size(); ++k) {
          int col = e.columns()[k];
          kept[static_cast<size_t>(col)] = true;
          renaming[ColumnVar(col)] = ColumnVar(static_cast<int>(k));
        }
        std::vector<std::string> quantified;
        for (int i = 0; i < e.Left().arity(); ++i) {
          if (kept[static_cast<size_t>(i)]) continue;
          std::string fresh = "q" + std::to_string(fresh_counter_++);
          renaming[ColumnVar(i)] = fresh;
          quantified.push_back(fresh);
        }
        CalcFormula body = child.RenameFreeVars(renaming);
        if (quantified.empty()) return body;
        return CalcFormula::Exists(quantified, std::move(body));
      }
      case AlgebraExpr::Kind::kSelect: {
        STRDB_ASSIGN_OR_RETURN(CalcFormula child, Translate(e.Left()));
        std::vector<std::string> vars;
        for (int i = 0; i < e.arity(); ++i) vars.push_back(ColumnVar(i));
        ToFormulaOptions opts;
        opts.max_formula_size = options_.max_formula_size;
        STRDB_ASSIGN_OR_RETURN(StringFormula phi,
                               FsaToStringFormula(e.fsa(), vars, opts));
        return CalcFormula::And(std::move(child),
                                CalcFormula::Str(std::move(phi)));
      }
      case AlgebraExpr::Kind::kRestrict:
        // ∩ (Σ*)^m is the identity on the calculus side (free variables
        // already range over the domain).
        return Translate(e.Left());
    }
    return Status::Internal("unknown algebra node");
  }

 private:
  const Alphabet& alphabet_;
  const ToCalcOptions& options_;
  int fresh_counter_ = 0;
};

}  // namespace

Result<CalcFormula> AlgebraToCalc(const AlgebraExpr& expr,
                                  const Alphabet& alphabet,
                                  const ToCalcOptions& options) {
  AlgebraTranslator translator(alphabet, options);
  return translator.Translate(expr);
}

}  // namespace strdb
