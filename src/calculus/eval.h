#ifndef STRDB_CALCULUS_EVAL_H_
#define STRDB_CALCULUS_EVAL_H_

#include <map>
#include <string>

#include "calculus/formula.h"
#include "core/result.h"
#include "relational/relation.h"

namespace strdb {

struct CalcEvalOptions {
  // The truncation level l of ⟦φ⟧^l_db: quantifiers and free variables
  // range over Σ^{<=l}.
  int truncation = 2;
  // Budget on string-formula evaluations (the naive evaluator is
  // exponential in the number of variables: |Σ^{<=l}|^vars).
  int64_t max_steps = 20'000'000;
};

// Truth definitions 10-13 for (A^l_0, db) ⊨ φ θ, with `binding` giving
// the strings assigned to φ's free variables (every free variable must
// be bound, and every string must have length <= truncation).
//
// This is the *reference* semantics of the calculus; the Theorem 4.2
// translation to alignment algebra is property-tested against it.  It is
// deliberately naive — quantifiers enumerate Σ^{<=l} — and only suitable
// for small l.
Result<bool> HoldsAt(const CalcFormula& formula, const Database& db,
                     const std::map<std::string, std::string>& binding,
                     const CalcEvalOptions& options);

// The truncated answer ⟦φ⟧^l_db: all tuples over Σ^{<=l} (free variables
// in ascending name order) satisfying φ.
Result<StringRelation> EvalCalcNaive(const CalcFormula& formula,
                                     const Database& db,
                                     const CalcEvalOptions& options);

}  // namespace strdb

#endif  // STRDB_CALCULUS_EVAL_H_
